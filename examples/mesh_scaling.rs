//! Run the domain-decomposed TFIM engine on the *simulated* 1993 mesh
//! multicomputer and print a strong-scaling table — the zero-hardware way
//! to reproduce the paper-era speedup curves.
//!
//! ```text
//! cargo run --release --example mesh_scaling [lattice_side]
//! ```

use qmc_comm::{job_seconds, run_model, Communicator, MachineModel};
use qmc_rng::StreamFactory;
use qmc_tfim::parallel::DistTfim;
use qmc_tfim::TfimModel;

fn main() {
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    let model = TfimModel {
        lx: side,
        ly: side,
        j: 1.0,
        h: 2.0,
        beta: 1.0,
        m: 8,
    };
    let sweeps = 4;

    println!(
        "strong scaling: 2-D TFIM {side}×{side}×{} spacetime sites, {} sweeps",
        model.m, sweeps
    );
    println!(
        "{:>6} {:>12} {:>9} {:>11}",
        "P", "model time/s", "speedup", "efficiency"
    );

    let mut t1 = 0.0;
    for p in [1usize, 4, 16, 64, 256] {
        if !side.is_multiple_of((p as f64).sqrt() as usize) {
            continue;
        }
        let reports = run_model(p, MachineModel::mesh_1993(p), move |comm| {
            let mut eng = DistTfim::new(model, comm);
            let mut rng = StreamFactory::new(7).stream(comm.rank());
            eng.halo_exchange(comm);
            for _ in 0..sweeps {
                eng.sweep(comm, &mut rng);
            }
            eng.measure(comm)
        });
        let t = job_seconds(&reports);
        if p == 1 {
            t1 = t;
        }
        println!(
            "{p:>6} {t:>12.4} {:>9.2} {:>11.3}",
            t1 / t,
            t1 / t / p as f64
        );
        // Physics sanity: every rank agreed on the measurement.
        let e = reports[0].result.energy_per_site;
        assert!(e.is_finite() && e < 0.0);
    }
    println!("\n(the efficiency decay is the α+β·bytes mesh network model at work)");
}
