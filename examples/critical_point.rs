//! Locate the quantum critical point of the 1-D transverse-field Ising
//! model by sweeping `h/J` at low temperature and watching the order
//! parameter collapse (exact answer: `h_c = J`).
//!
//! ```text
//! cargo run --release --example critical_point
//! ```

use qmc_ed::freefermion::tfim_chain_ground_energy;
use qmc_rng::Xoshiro256StarStar;
use qmc_tfim::serial::SerialTfim;
use qmc_tfim::TfimModel;

fn main() {
    let l = 32;
    println!("1-D TFIM, L = {l}, β = 16: order parameter vs transverse field");
    println!(
        "{:>6} {:>9} {:>9} {:>11} {:>13}",
        "h/J", "<|m|>", "<σx>", "E/N (QMC)", "E0/N (exact)"
    );

    let mut previous_m = 1.0;
    let mut steepest = (0.0, 0.0);
    for i in 1..=12 {
        let h = 0.15 * i as f64;
        let mut eng = SerialTfim::new(TfimModel {
            lx: l,
            ly: 1,
            j: 1.0,
            h,
            beta: 16.0,
            m: 128,
        });
        let mut rng = Xoshiro256StarStar::new(100 + i as u64);
        let series = eng.run(&mut rng, 2_000, 8_000, 2);
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let m = avg(&series.abs_m);
        let e0 = tfim_chain_ground_energy(l, 1.0, h) / l as f64;
        println!(
            "{h:>6.2} {m:>9.4} {:>9.4} {:>11.4} {:>13.4}",
            avg(&series.sigma_x),
            avg(&series.energy),
            e0
        );
        let drop = previous_m - m;
        if drop > steepest.1 {
            steepest = (h - 0.075, drop);
        }
        previous_m = m;
    }
    println!(
        "\nsteepest order-parameter drop near h/J ≈ {:.2}  (exact critical point: 1.00)",
        steepest.0
    );
}
