//! Quickstart: compute the energy of a Heisenberg spin chain three ways —
//! exact diagonalization, world-line QMC, and SSE QMC — and watch them
//! agree.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qmc_ed::xxz::{full_spectrum, XxzParams};
use qmc_lattice::Chain;
use qmc_rng::Xoshiro256StarStar;
use qmc_stats::BinningAnalysis;
use qmc_worldline::{Worldline, WorldlineParams};

fn main() {
    let l = 8; // chain length
    let beta = 1.0; // inverse temperature (J = 1 units)

    // --- Exact diagonalization: the ground truth for small systems ---
    let lattice = Chain::new(l);
    let spectrum = full_spectrum(&lattice, &XxzParams::heisenberg(1.0));
    let e_exact = spectrum.energy(beta) / l as f64;
    println!("ED          : E/N = {e_exact:.5}");

    // --- World-line QMC (discrete imaginary time, Δτ = β/m) ---
    let mut wl = Worldline::new(WorldlineParams {
        l,
        jx: 1.0,
        jz: 1.0,
        beta,
        m: 16,
    });
    let mut rng = Xoshiro256StarStar::new(42);
    let series = wl.run(&mut rng, 5_000, 50_000);
    let b = BinningAnalysis::new(&series.energy, 16);
    println!(
        "world-line  : E/N = {:.5} ± {:.5}  (Trotter Δτ = {})",
        b.mean,
        b.error(),
        beta / 16.0
    );

    // --- SSE QMC (no Trotter error) ---
    let mut rng2 = Xoshiro256StarStar::new(43);
    let mut sse = qmc_sse::Sse::new(&lattice, 1.0, beta, &mut rng2);
    let ss = sse.run(&mut rng2, 5_000, 50_000);
    let bs = BinningAnalysis::new(&ss.energy_samples(), 16);
    println!("SSE         : E/N = {:.5} ± {:.5}", bs.mean, bs.error());

    let (chi, chi_err) = ss.susceptibility();
    println!(
        "SSE         : χ/N = {:.5} ± {:.5}  (ED: {:.5})",
        chi,
        chi_err,
        spectrum.susceptibility(beta) / l as f64
    );
}
