//! Parallel tempering across a temperature ladder: one world-line replica
//! per thread-backed rank, configurations swapping between neighbouring
//! temperatures.
//!
//! ```text
//! cargo run --release --example tempering
//! ```

use qmc_comm::{run_threads, Communicator};
use qmc_core::pt::{geometric_ladder, run_pt_parallel};
use qmc_ed::xxz::{full_spectrum, XxzParams};
use qmc_lattice::Chain;
use qmc_rng::StreamFactory;
use qmc_stats::BinningAnalysis;

fn main() {
    // L = 8 keeps the exact-diagonalization comparison cheap (largest
    // magnetization sector is only 70-dimensional).
    let l = 8;
    let n_replicas = 8;
    let betas = geometric_ladder(0.25, 4.0, n_replicas);
    println!(
        "parallel tempering: Heisenberg chain L = {l}, {n_replicas} replicas, \
         β ∈ [{:.2}, {:.2}]",
        betas[0],
        betas[n_replicas - 1]
    );

    let cfg = qmc_core::pt::PtConfig {
        l,
        jx: 1.0,
        jz: 1.0,
        m: 32,
        betas: betas.clone(),
        therm: 2_000,
        sweeps: 20_000,
        exchange_every: 2,
        seed: 777,
    };
    let results = run_threads(n_replicas, move |comm| {
        let mut rng = StreamFactory::new(2024).stream(comm.rank());
        run_pt_parallel(comm, &cfg, &mut rng)
    });

    let spec = full_spectrum(&Chain::new(l), &XxzParams::heisenberg(1.0));

    println!(
        "{:>8} {:>20} {:>12} {:>12}",
        "β", "E/N (QMC)", "E/N (ED)", "acc. w/ next"
    );
    for (rank, beta) in betas.iter().enumerate() {
        let (energies, rates) = &results[rank];
        let b = BinningAnalysis::new(energies, 16);
        let acc = if rank < rates.len() {
            format!("{:.3}", rates[rank])
        } else {
            "-".to_string()
        };
        println!(
            "{beta:>8.3} {:>12.5} ± {:.5} {:>12.5} {acc:>12}",
            b.mean,
            b.error(),
            spec.energy(*beta) / l as f64
        );
    }
}
