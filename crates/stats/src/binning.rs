//! Blocking ("binning") analysis for correlated time series.
//!
//! Markov-chain output is autocorrelated, so `σ/√M` underestimates the
//! true error. Binning averages the series into blocks of growing size;
//! once the block size exceeds the autocorrelation time the block means
//! are effectively independent and the naive error formula applied to
//! them converges to the true error (it grows monotonically and then
//! plateaus).

use crate::Accumulator;

/// Result of a binning analysis at every power-of-two bin size.
#[derive(Debug, Clone)]
pub struct BinningAnalysis {
    /// Error estimate at each binning level (level ℓ → bin size 2^ℓ).
    pub errors: Vec<f64>,
    /// Number of bins at each level.
    pub bin_counts: Vec<usize>,
    /// Sample mean of the full series.
    pub mean: f64,
    /// Naive (uncorrelated) error, i.e. level 0.
    pub naive_error: f64,
}

impl BinningAnalysis {
    /// Run the analysis. Levels stop when fewer than `min_bins` bins
    /// remain (default caller value: 32 keeps the top-level error estimate
    /// itself reliable).
    pub fn new(series: &[f64], min_bins: usize) -> Self {
        assert!(min_bins >= 2, "need at least 2 bins per level");
        let mut errors = Vec::new();
        let mut bin_counts = Vec::new();
        let mut current: Vec<f64> = series.to_vec();

        let mut full = Accumulator::new();
        full.extend(series);
        let mean = full.mean();

        loop {
            let mut acc = Accumulator::new();
            acc.extend(&current);
            errors.push(acc.std_error());
            bin_counts.push(current.len());
            if current.len() / 2 < min_bins {
                break;
            }
            // Halve: average consecutive pairs (drop a trailing odd item).
            let half: Vec<f64> = current
                .chunks_exact(2)
                .map(|p| 0.5 * (p[0] + p[1]))
                .collect();
            current = half;
        }

        let naive_error = errors.first().copied().unwrap_or(0.0);
        Self {
            errors,
            bin_counts,
            mean,
            naive_error,
        }
    }

    /// The converged ("plateau") error estimate: the maximum over levels.
    ///
    /// For a well-sampled series the estimates increase and saturate; the
    /// max is the standard conservative choice.
    pub fn error(&self) -> f64 {
        self.errors.iter().cloned().fold(0.0, f64::max)
    }

    /// Estimated integrated autocorrelation time from the error growth:
    /// `τ_int = ½ (ε_plateau / ε_naive)²` (≥ 0.5 by construction; 0.5 means
    /// uncorrelated).
    pub fn tau_int(&self) -> f64 {
        if self.naive_error == 0.0 {
            return 0.5;
        }
        0.5 * (self.error() / self.naive_error).powi(2)
    }

    /// Effective number of independent samples, `M / (2 τ_int)`.
    pub fn effective_samples(&self, total: usize) -> f64 {
        total as f64 / (2.0 * self.tau_int())
    }

    /// Level at which the error estimate peaks (bin size `2^level`).
    ///
    /// For a converged analysis this is where the growth plateaus; if it
    /// is the *last* level the series was too short to resolve τ_int and
    /// [`Self::error`] may still be an underestimate.
    pub fn plateau_level(&self) -> usize {
        let mut best = 0;
        for (l, e) in self.errors.iter().enumerate() {
            if *e > self.errors[best] {
                best = l;
            }
        }
        best
    }

    /// Whether the error growth saturated before the level cap — i.e. the
    /// peak error is not at the final (coarsest) level, so the plateau was
    /// actually observed rather than truncated.
    pub fn converged(&self) -> bool {
        self.errors.len() > 1 && self.plateau_level() + 1 < self.errors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmc_rng::{Rng64, SplitMix64};

    #[test]
    fn uncorrelated_series_error_flat() {
        let mut rng = SplitMix64::new(8);
        let xs: Vec<f64> = (0..1 << 14).map(|_| rng.next_f64()).collect();
        let b = BinningAnalysis::new(&xs, 32);
        // plateau error should be within ~40% of naive for iid data
        assert!(
            b.error() / b.naive_error < 1.4,
            "ratio {}",
            b.error() / b.naive_error
        );
        assert!(b.tau_int() < 1.0, "tau {}", b.tau_int());
    }

    #[test]
    fn correlated_series_error_grows() {
        // AR(1) with φ=0.9 → τ_int = (1+φ)/(2(1−φ)) = 9.5
        let mut rng = SplitMix64::new(77);
        let phi = 0.9;
        let mut x = 0.0;
        let xs: Vec<f64> = (0..1 << 16)
            .map(|_| {
                x = phi * x + rng.gaussian();
                x
            })
            .collect();
        let b = BinningAnalysis::new(&xs, 32);
        let tau = b.tau_int();
        assert!(tau > 4.0, "tau too small: {tau}");
        assert!(tau < 25.0, "tau too large: {tau}");
        assert!(b.error() > 2.0 * b.naive_error);
    }

    #[test]
    fn mean_matches_plain_average() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = BinningAnalysis::new(&xs, 2);
        assert!((b.mean - 3.0).abs() < 1e-15);
    }

    #[test]
    fn short_series_single_level() {
        let xs = [1.0, 2.0, 3.0];
        let b = BinningAnalysis::new(&xs, 2);
        assert_eq!(b.bin_counts[0], 3);
        assert!(!b.errors.is_empty());
    }

    #[test]
    fn constant_series_zero_error() {
        let xs = vec![2.5; 1024];
        let b = BinningAnalysis::new(&xs, 16);
        assert_eq!(b.error(), 0.0);
        assert_eq!(b.tau_int(), 0.5); // naive error 0 → defined fallback
    }

    #[test]
    fn effective_samples_reduces_with_correlation() {
        let mut rng = SplitMix64::new(3);
        let mut x = 0.0;
        let xs: Vec<f64> = (0..1 << 14)
            .map(|_| {
                x = 0.8 * x + rng.gaussian();
                x
            })
            .collect();
        let b = BinningAnalysis::new(&xs, 32);
        assert!(b.effective_samples(xs.len()) < xs.len() as f64 / 2.0);
    }

    #[test]
    #[should_panic(expected = "at least 2 bins")]
    fn rejects_min_bins_below_two() {
        BinningAnalysis::new(&[1.0, 2.0], 1);
    }

    #[test]
    fn plateau_detection_on_correlated_series() {
        let mut rng = SplitMix64::new(5);
        let mut x = 0.0;
        let xs: Vec<f64> = (0..1 << 16)
            .map(|_| {
                x = 0.9 * x + rng.gaussian();
                x
            })
            .collect();
        let b = BinningAnalysis::new(&xs, 32);
        // τ ≈ 9.5 → plateau near bin size 2^5..2^7, well before the cap.
        assert!(b.plateau_level() >= 3, "level {}", b.plateau_level());
        assert!(b.converged());
        // A 3-point series has a single level: nothing to converge.
        assert!(!BinningAnalysis::new(&[1.0, 2.0, 3.0], 2).converged());
    }
}
