//! Jackknife resampling for nonlinear functions of time-series means.
//!
//! Quantities like the specific heat `C = β²(⟨E²⟩ − ⟨E⟩²)/N` are nonlinear
//! in the underlying means, so naive error propagation is biased. The
//! delete-one-block jackknife gives both a bias-corrected estimate and a
//! proper error bar for *any* function of block averages.

/// A jackknife point estimate with its error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JackknifeEstimate {
    /// Bias-corrected estimate.
    pub value: f64,
    /// Jackknife standard error.
    pub error: f64,
    /// Number of jackknife blocks used.
    pub blocks: usize,
}

/// Delete-one-block jackknife of `f(mean(x))`.
///
/// The series is cut into `blocks` contiguous blocks (block length should
/// exceed the autocorrelation time; pair with
/// [`crate::BinningAnalysis::tau_int`]). For each `k`, `f` is evaluated on
/// the mean with block `k` removed; the spread of these leave-one-out
/// values yields the error and the bias correction.
pub fn jackknife<F>(series: &[f64], blocks: usize, f: F) -> JackknifeEstimate
where
    F: Fn(f64) -> f64,
{
    jackknife_pair(series, series, blocks, |a, _| f(a))
}

/// Delete-one-block jackknife of `f(mean(x), mean(y))` for two series
/// measured on the *same* Markov chain (e.g. `E` and `E²`).
pub fn jackknife_pair<F>(xs: &[f64], ys: &[f64], blocks: usize, f: F) -> JackknifeEstimate
where
    F: Fn(f64, f64) -> f64,
{
    assert_eq!(xs.len(), ys.len(), "paired series must be equal length");
    assert!(blocks >= 2, "need at least 2 jackknife blocks");
    assert!(
        xs.len() >= blocks,
        "series shorter ({}) than block count ({blocks})",
        xs.len()
    );

    // Use only the prefix divisible by `blocks` so all blocks are equal.
    let block_len = xs.len() / blocks;
    let used = block_len * blocks;
    let xs = &xs[..used];
    let ys = &ys[..used];

    let sum_x: f64 = xs.iter().sum();
    let sum_y: f64 = ys.iter().sum();
    let mean_x = sum_x / used as f64;
    let mean_y = sum_y / used as f64;
    let full = f(mean_x, mean_y);

    let mut loo = Vec::with_capacity(blocks);
    for k in 0..blocks {
        let lo = k * block_len;
        let hi = lo + block_len;
        let bx: f64 = xs[lo..hi].iter().sum();
        let by: f64 = ys[lo..hi].iter().sum();
        let rest = (used - block_len) as f64;
        loo.push(f((sum_x - bx) / rest, (sum_y - by) / rest));
    }

    let loo_mean = loo.iter().sum::<f64>() / blocks as f64;
    let var: f64 = loo
        .iter()
        .map(|v| {
            let d = v - loo_mean;
            d * d
        })
        .sum::<f64>()
        * (blocks as f64 - 1.0)
        / blocks as f64;

    JackknifeEstimate {
        // Standard jackknife bias correction: N·full − (N−1)·mean(loo).
        value: blocks as f64 * full - (blocks as f64 - 1.0) * loo_mean,
        error: var.sqrt(),
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmc_rng::{Rng64, SplitMix64};

    #[test]
    fn identity_function_matches_mean_and_error() {
        let mut rng = SplitMix64::new(10);
        let xs: Vec<f64> = (0..4096).map(|_| rng.gaussian() + 5.0).collect();
        let j = jackknife(&xs, 64, |m| m);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((j.value - mean).abs() < 1e-10);
        // For iid data the jackknife error ≈ σ/√N ≈ 1/64
        let expected = 1.0 / (xs.len() as f64).sqrt();
        assert!(
            (j.error - expected).abs() < 0.5 * expected,
            "err {}",
            j.error
        );
    }

    #[test]
    fn variance_estimator_via_pair() {
        // f(⟨x²⟩, ⟨x⟩) = ⟨x²⟩ − ⟨x⟩² should recover the variance, here 4.
        let mut rng = SplitMix64::new(20);
        let xs: Vec<f64> = (0..1 << 15).map(|_| 2.0 * rng.gaussian()).collect();
        let sq: Vec<f64> = xs.iter().map(|x| x * x).collect();
        let j = jackknife_pair(&sq, &xs, 64, |m2, m1| m2 - m1 * m1);
        assert!(
            (j.value - 4.0).abs() < 5.0 * j.error,
            "value {} ± {}",
            j.value,
            j.error
        );
        assert!(j.error > 0.0 && j.error < 0.2);
    }

    #[test]
    fn bias_correction_improves_nonlinear_estimate() {
        // f(m) = m² of a mean is biased by +σ²/M; jackknife removes the
        // leading 1/M bias. Check the corrected estimate is closer.
        let mut rng = SplitMix64::new(30);
        let true_mean: f64 = 0.1;
        let n = 256;
        let mut err_naive = 0.0;
        let mut err_jack = 0.0;
        for _ in 0..200 {
            let xs: Vec<f64> = (0..n).map(|_| true_mean + rng.gaussian()).collect();
            let m = xs.iter().sum::<f64>() / n as f64;
            let j = jackknife(&xs, 32, |m| m * m);
            err_naive += m * m - true_mean * true_mean;
            err_jack += j.value - true_mean * true_mean;
        }
        assert!(
            err_jack.abs() < err_naive.abs(),
            "jack bias {} vs naive bias {}",
            err_jack / 200.0,
            err_naive / 200.0
        );
    }

    #[test]
    fn truncates_to_whole_blocks() {
        // 10 items, 3 blocks → uses 9 items; should not panic.
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let j = jackknife(&xs, 3, |m| m);
        assert_eq!(j.blocks, 3);
        let mean9 = (0..9).sum::<usize>() as f64 / 9.0;
        assert!((j.value - mean9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_single_block() {
        jackknife(&[1.0, 2.0], 1, |m| m);
    }

    #[test]
    #[should_panic(expected = "shorter")]
    fn rejects_more_blocks_than_samples() {
        jackknife(&[1.0, 2.0], 5, |m| m);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_mismatched_pair() {
        jackknife_pair(&[1.0, 2.0], &[1.0], 2, |a, _| a);
    }

    #[test]
    fn constant_series_zero_error() {
        let xs = vec![3.0; 100];
        let j = jackknife(&xs, 10, |m| m * m);
        assert!((j.value - 9.0).abs() < 1e-12);
        assert!(j.error < 1e-12);
    }
}
