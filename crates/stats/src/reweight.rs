//! Histogram reweighting: single-series (Ferrenberg–Swendsen) and
//! multiple-histogram (WHAM) in log space.

use crate::{logsumexp, Histogram};

/// Reweight a canonical time series measured at `beta0` to a nearby
/// `beta`:
///
/// `⟨O⟩_β = Σ O_m e^{−(β−β0) E_m} / Σ e^{−(β−β0) E_m}`.
///
/// Computed with a max-shift so arbitrarily large energy ranges cannot
/// overflow. The caller is responsible for `beta` staying within the
/// overlap window of the measured histogram (errors blow up outside it).
pub fn reweight_series(energies: &[f64], observables: &[f64], beta0: f64, beta: f64) -> f64 {
    assert_eq!(
        energies.len(),
        observables.len(),
        "energy and observable series must be paired"
    );
    assert!(!energies.is_empty(), "cannot reweight an empty series");
    let db = beta - beta0;
    // log-weights w_m = −ΔβE_m; shift by the max for stability.
    let max_lw = energies
        .iter()
        .map(|&e| -db * e)
        .fold(f64::NEG_INFINITY, f64::max);
    let mut num = 0.0;
    let mut den = 0.0;
    for (&e, &o) in energies.iter().zip(observables) {
        let w = (-db * e - max_lw).exp();
        num += o * w;
        den += w;
    }
    num / den
}

/// Result of a multiple-histogram (WHAM) analysis: the log density of
/// states over a common energy grid, from which canonical averages at any
/// temperature follow.
#[derive(Debug, Clone)]
pub struct Wham {
    /// Energy at each bin center.
    pub energies: Vec<f64>,
    /// `ln g(E)` up to a common additive constant.
    pub log_g: Vec<f64>,
    /// Converged `ln Z_i` for each input thread (gauge: first thread = 0).
    pub log_z: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
}

impl Wham {
    /// Solve the WHAM equations for histograms measured at inverse
    /// temperatures `betas` (all histograms must share a binning).
    ///
    /// Iterates
    /// `ĝ(E) = Σ_i h_i(E) / Σ_i M_i Z_i⁻¹ e^{−β_i E}` and
    /// `Z_i = Σ_E ĝ(E) e^{−β_i E}` in log space until the largest change
    /// in any `ln Z_i` drops below `tol` (or `max_iter` is hit).
    pub fn solve(betas: &[f64], histograms: &[Histogram], tol: f64, max_iter: usize) -> Self {
        assert_eq!(betas.len(), histograms.len(), "one β per histogram");
        assert!(!betas.is_empty(), "need at least one histogram");
        let bins = histograms[0].bins();
        for h in histograms {
            assert_eq!(h.bins(), bins, "histograms must share binning");
        }

        let energies: Vec<f64> = (0..bins).map(|i| histograms[0].center(i)).collect();
        let log_m: Vec<f64> = histograms
            .iter()
            .map(|h| (h.in_range().max(1) as f64).ln())
            .collect();
        // log Σ_i h_i(E) per bin (−∞ for unvisited bins).
        let log_h_sum: Vec<f64> = (0..bins)
            .map(|b| {
                let s: u64 = histograms.iter().map(|h| h.count(b)).sum();
                if s == 0 {
                    f64::NEG_INFINITY
                } else {
                    (s as f64).ln()
                }
            })
            .collect();

        let nthreads = betas.len();
        let mut log_z = vec![0.0; nthreads];
        let mut log_g = vec![f64::NEG_INFINITY; bins];
        let mut iterations = 0;

        let mut scratch = vec![0.0; nthreads];
        let mut zterms: Vec<f64> = Vec::with_capacity(bins);
        for iter in 0..max_iter {
            iterations = iter + 1;
            // ln g(E) = ln Σh − logsumexp_i(ln M_i − ln Z_i − β_i E)
            for b in 0..bins {
                if log_h_sum[b] == f64::NEG_INFINITY {
                    log_g[b] = f64::NEG_INFINITY;
                    continue;
                }
                for i in 0..nthreads {
                    scratch[i] = log_m[i] - log_z[i] - betas[i] * energies[b];
                }
                log_g[b] = log_h_sum[b] - logsumexp(&scratch);
            }
            // ln Z_i = logsumexp_E (ln g − β_i E), gauge-fixed to thread 0.
            let mut max_delta: f64 = 0.0;
            let mut new_z = vec![0.0; nthreads];
            for i in 0..nthreads {
                zterms.clear();
                for b in 0..bins {
                    if log_g[b] != f64::NEG_INFINITY {
                        zterms.push(log_g[b] - betas[i] * energies[b]);
                    }
                }
                new_z[i] = logsumexp(&zterms);
            }
            let gauge = new_z[0];
            for i in 0..nthreads {
                new_z[i] -= gauge;
                max_delta = max_delta.max((new_z[i] - log_z[i]).abs());
                log_z[i] = new_z[i];
            }
            if max_delta < tol {
                break;
            }
        }

        Self {
            energies,
            log_g,
            log_z,
            iterations,
        }
    }

    /// `ln Z(β)` from the solved density of states (same gauge as
    /// `log_g`).
    pub fn log_partition(&self, beta: f64) -> f64 {
        let terms: Vec<f64> = self
            .energies
            .iter()
            .zip(&self.log_g)
            .filter(|(_, &lg)| lg != f64::NEG_INFINITY)
            .map(|(&e, &lg)| lg - beta * e)
            .collect();
        logsumexp(&terms)
    }

    /// Canonical mean energy at inverse temperature `beta`.
    pub fn mean_energy(&self, beta: f64) -> f64 {
        self.canonical_average(beta, |e| e)
    }

    /// Canonical mean of `f(E)` at inverse temperature `beta`.
    pub fn canonical_average<F: Fn(f64) -> f64>(&self, beta: f64, f: F) -> f64 {
        let lz = self.log_partition(beta);
        self.energies
            .iter()
            .zip(&self.log_g)
            .filter(|(_, &lg)| lg != f64::NEG_INFINITY)
            .map(|(&e, &lg)| f(e) * (lg - beta * e - lz).exp())
            .sum()
    }

    /// Heat capacity `C = β²(⟨E²⟩ − ⟨E⟩²)` at `beta`.
    pub fn heat_capacity(&self, beta: f64) -> f64 {
        let e = self.mean_energy(beta);
        let e2 = self.canonical_average(beta, |x| x * x);
        beta * beta * (e2 - e * e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmc_rng::{Rng64, SplitMix64};

    #[test]
    fn reweight_identity_at_same_beta() {
        let e = [1.0, 2.0, 3.0];
        let o = [10.0, 20.0, 30.0];
        let v = reweight_series(&e, &o, 0.7, 0.7);
        assert!((v - 20.0).abs() < 1e-12);
    }

    #[test]
    fn reweight_gaussian_energy_shifts_mean() {
        // If E ~ N(μ, σ²) at β0, then at β the reweighted ⟨E⟩ is
        // μ − (β−β0)σ² (exact Gaussian identity).
        let mut rng = SplitMix64::new(123);
        let (mu, sigma) = (10.0, 2.0);
        let energies: Vec<f64> = (0..200_000).map(|_| mu + sigma * rng.gaussian()).collect();
        let obs = energies.clone();
        let v = reweight_series(&energies, &obs, 1.0, 1.05);
        let expect = mu - 0.05 * sigma * sigma;
        assert!((v - expect).abs() < 0.02, "got {v}, expect {expect}");
    }

    #[test]
    fn reweight_extreme_energies_stable() {
        // Energies of magnitude 1e4 with Δβ = 1 would overflow exp
        // without the max-shift.
        let e = [10_000.0, 10_001.0];
        let o = [1.0, 2.0];
        let v = reweight_series(&e, &o, 0.0, 1.0);
        assert!(v.is_finite());
        // the lower-energy sample dominates: v ≈ 1
        assert!((v - 1.0).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn reweight_rejects_empty() {
        reweight_series(&[], &[], 1.0, 1.1);
    }

    /// Build an exact-count "histogram" for a two-level system with
    /// degeneracies g = [1, g1] at energies [0, 1].
    fn two_level_hist(beta: f64, g1: f64, samples: u64) -> Histogram {
        let z = 1.0 + g1 * (-beta).exp();
        let p1 = g1 * (-beta).exp() / z;
        let mut h = Histogram::new(-0.25, 1.25, 3); // centers: 0, 0.5, 1.0
        let n1 = (samples as f64 * p1).round() as u64;
        for _ in 0..(samples - n1) {
            h.record(0.0);
        }
        for _ in 0..n1 {
            h.record(1.0);
        }
        h
    }

    #[test]
    fn wham_recovers_two_level_degeneracy() {
        let g1 = 4.0;
        let betas = [0.5, 1.0, 2.0];
        let hists: Vec<Histogram> = betas
            .iter()
            .map(|&b| two_level_hist(b, g1, 1_000_000))
            .collect();
        let w = Wham::solve(&betas, &hists, 1e-12, 500);
        // ln g(E=1) − ln g(E=0) should be ln g1.
        let dg = w.log_g[2] - w.log_g[0];
        assert!(
            (dg - g1.ln()).abs() < 0.01,
            "Δln g = {dg}, expect {}",
            g1.ln()
        );
        // middle bin never visited
        assert_eq!(w.log_g[1], f64::NEG_INFINITY);
    }

    #[test]
    fn wham_mean_energy_matches_exact_two_level() {
        let g1 = 3.0;
        let betas = [0.4, 0.8, 1.6];
        let hists: Vec<Histogram> = betas
            .iter()
            .map(|&b| two_level_hist(b, g1, 1_000_000))
            .collect();
        let w = Wham::solve(&betas, &hists, 1e-12, 500);
        for &beta in &[0.5f64, 1.0, 1.5] {
            let exact = g1 * (-beta).exp() / (1.0 + g1 * (-beta).exp());
            let got = w.mean_energy(beta);
            assert!((got - exact).abs() < 0.01, "β={beta}: {got} vs {exact}");
        }
    }

    #[test]
    fn wham_heat_capacity_positive_and_peaked() {
        let g1 = 10.0;
        let betas = [0.5, 1.5, 3.0];
        let hists: Vec<Histogram> = betas
            .iter()
            .map(|&b| two_level_hist(b, g1, 1_000_000))
            .collect();
        let w = Wham::solve(&betas, &hists, 1e-12, 500);
        // Schottky anomaly: C(β) > 0 with a single maximum.
        let cs: Vec<f64> = (1..=80).map(|i| w.heat_capacity(i as f64 * 0.1)).collect();
        assert!(cs.iter().all(|&c| c >= 0.0));
        let max_idx = cs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            max_idx > 0 && max_idx < cs.len() - 1,
            "peak at edge: {max_idx}"
        );
    }

    #[test]
    fn wham_single_thread_reduces_to_reweighted_histogram() {
        let g1 = 2.0;
        let beta = 1.0;
        let h = two_level_hist(beta, g1, 1_000_000);
        let w = Wham::solve(&[beta], &[h], 1e-12, 100);
        let dg = w.log_g[2] - w.log_g[0];
        assert!((dg - g1.ln()).abs() < 0.01);
    }

    #[test]
    fn wham_converges_quickly_on_consistent_data() {
        let betas = [0.5, 1.0];
        let hists: Vec<Histogram> = betas
            .iter()
            .map(|&b| two_level_hist(b, 5.0, 100_000))
            .collect();
        let w = Wham::solve(&betas, &hists, 1e-10, 1000);
        assert!(w.iterations < 200, "took {} iterations", w.iterations);
    }

    #[test]
    #[should_panic(expected = "one β per histogram")]
    fn wham_rejects_mismatched_inputs() {
        let h = two_level_hist(1.0, 2.0, 100);
        Wham::solve(&[1.0, 2.0], &[h], 1e-8, 10);
    }
}
