//! Fixed-bin histograms for energy time series.

/// A one-dimensional histogram with uniform bins over `[lo, hi)`.
///
/// Out-of-range samples are counted separately (they signal a
/// mis-configured window, which the reweighting machinery checks for).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Create a histogram with `bins` uniform bins spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "empty histogram range [{lo}, {hi})");
        assert!(bins > 0, "need at least one bin");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin width.
    pub fn width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// The bin index a value falls into, or `None` if out of range.
    pub fn bin_of(&self, x: f64) -> Option<usize> {
        if x < self.lo || x >= self.hi {
            return None;
        }
        let idx = ((x - self.lo) / self.width()) as usize;
        // Guard against floating rounding at the top edge.
        Some(idx.min(self.counts.len() - 1))
    }

    /// The center value of bin `i`.
    pub fn center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.width()
    }

    /// Record a sample.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        match self.bin_of(x) {
            Some(i) => self.counts[i] += 1,
            None if x < self.lo => self.underflow += 1,
            None => self.overflow += 1,
        }
    }

    /// Raw count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// All counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples recorded (including out-of-range).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// In-range sample count.
    pub fn in_range(&self) -> u64 {
        self.total - self.underflow - self.overflow
    }

    /// Normalized density at bin `i` (integrates to 1 over the range).
    pub fn density(&self, i: usize) -> f64 {
        if self.in_range() == 0 {
            return 0.0;
        }
        self.counts[i] as f64 / (self.in_range() as f64 * self.width())
    }

    /// Merge a histogram with identical binning (panics on mismatch).
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram lo mismatch");
        assert_eq!(self.hi, other.hi, "histogram hi mismatch");
        assert_eq!(self.bins(), other.bins(), "histogram bin-count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
    }

    /// Flatness measure used by multicanonical-style drivers:
    /// `min / mean` over *occupied-range* bins (1.0 = perfectly flat,
    /// 0.0 = some bin in the spanned range is empty).
    pub fn flatness(&self) -> f64 {
        let occupied: Vec<u64> = {
            // restrict to the contiguous range between first and last
            // nonzero bins
            let first = self.counts.iter().position(|&c| c > 0);
            let last = self.counts.iter().rposition(|&c| c > 0);
            match (first, last) {
                (Some(f), Some(l)) => self.counts[f..=l].to_vec(),
                _ => return 0.0,
            }
        };
        let mean = occupied.iter().sum::<u64>() as f64 / occupied.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        occupied.iter().copied().min().unwrap_or(0) as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(9.99);
        h.record(5.0);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.count(5), 1);
        assert_eq!(h.in_range(), 3);
    }

    #[test]
    fn out_of_range_counted() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.1);
        h.record(1.0); // hi is exclusive
        h.record(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.in_range(), 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn centers_and_width() {
        let h = Histogram::new(-1.0, 1.0, 4);
        assert!((h.width() - 0.5).abs() < 1e-15);
        assert!((h.center(0) + 0.75).abs() < 1e-15);
        assert!((h.center(3) - 0.75).abs() < 1e-15);
    }

    #[test]
    fn density_normalizes() {
        let mut h = Histogram::new(0.0, 1.0, 8);
        for i in 0..800 {
            h.record((i as f64 + 0.5) / 800.0);
        }
        let integral: f64 = (0..8).map(|i| h.density(i) * h.width()).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        let mut b = Histogram::new(0.0, 1.0, 2);
        a.record(0.25);
        b.record(0.25);
        b.record(0.75);
        a.merge(&b);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.count(1), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[should_panic(expected = "bin-count mismatch")]
    fn merge_rejects_mismatched_bins() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        let b = Histogram::new(0.0, 1.0, 3);
        a.merge(&b);
    }

    #[test]
    fn flatness_perfect_and_empty() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.flatness(), 0.0); // empty
        for c in 0..4 {
            for _ in 0..10 {
                h.record(h.center(c));
            }
        }
        assert!((h.flatness() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flatness_ignores_unvisited_tails() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        // only bins 3..=5 visited, equally
        for c in 3..=5 {
            for _ in 0..7 {
                h.record(h.center(c));
            }
        }
        assert!((h.flatness() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn top_edge_rounding_guard() {
        let mut h = Histogram::new(0.0, 1.0, 3);
        // a value epsilon below hi must land in the last bin, not panic
        h.record(1.0 - 1e-16);
        assert_eq!(h.in_range(), 1);
    }

    #[test]
    #[should_panic(expected = "empty histogram range")]
    fn rejects_inverted_range() {
        Histogram::new(1.0, 0.0, 4);
    }
}
