//! Statistical analysis of Monte Carlo time series.
//!
//! Every result a Monte Carlo code reports is a *finite* time-series
//! average of correlated data, so the analysis layer — not the sampler —
//! is where error bars come from. This crate implements the standard
//! toolkit:
//!
//! * [`Accumulator`] / [`WeightedAccumulator`] — single-pass (Welford)
//!   mean/variance accumulation, mergeable across parallel ranks.
//! * [`binning`] — blocking ("binning") analysis: the error estimate as a
//!   function of bin size converges to the true error of correlated data.
//! * [`mod@jackknife`] — bias-corrected errors for arbitrary nonlinear
//!   functions of time-series means (specific heat, Binder cumulants…).
//! * [`autocorr`] — integrated autocorrelation time with Sokal's automatic
//!   windowing.
//! * [`histogram`] — fixed-bin energy histograms.
//! * [`reweight`] — single-histogram (Ferrenberg–Swendsen) and
//!   multiple-histogram (WHAM) reweighting, all in log space via
//!   [`logsumexp`].
//!
//! ```
//! use qmc_stats::BinningAnalysis;
//!
//! // A correlated Markov-chain series: the naive σ/√N underestimates the
//! // true error; the binning plateau does not.
//! let series: Vec<f64> = (0..4096).map(|i| ((i / 8) % 7) as f64).collect();
//! let b = BinningAnalysis::new(&series, 32);
//! assert!(b.error() >= b.naive_error);
//! assert!(b.tau_int() > 1.0); // blocks of 8 repeated values are correlated
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autocorr;
pub mod binning;
pub mod histogram;
pub mod jackknife;
pub mod reweight;

mod accum;

pub use accum::{Accumulator, WeightedAccumulator};
pub use autocorr::integrated_autocorrelation_time;
pub use binning::BinningAnalysis;
pub use histogram::Histogram;
pub use jackknife::{jackknife, jackknife_pair, JackknifeEstimate};
pub use reweight::{reweight_series, Wham};

/// Numerically stable `log(Σ exp(x_i))`.
///
/// The density of states spans hundreds of orders of magnitude even for
/// small systems, so *all* partition-function arithmetic in this workspace
/// goes through this function (see the log-representation discussion in
/// any multihistogram reference).
pub fn logsumexp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let s: f64 = xs.iter().map(|&x| (x - m).exp()).sum();
    m + s.ln()
}

/// Stable `log(exp(a) + exp(b))`.
pub fn logaddexp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logsumexp_matches_direct_small_values() {
        let xs = [0.0f64, 1.0, 2.0];
        let direct: f64 = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((logsumexp(&xs) - direct).abs() < 1e-12);
    }

    #[test]
    fn logsumexp_huge_values_no_overflow() {
        let xs = [1000.0, 1000.0];
        let v = logsumexp(&xs);
        assert!((v - (1000.0 + 2.0f64.ln())).abs() < 1e-12);
        assert!(v.is_finite());
    }

    #[test]
    fn logsumexp_empty_is_neg_inf() {
        assert_eq!(logsumexp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn logsumexp_single_element() {
        assert!((logsumexp(&[-5.0]) + 5.0).abs() < 1e-15);
    }

    #[test]
    fn logaddexp_commutative_and_correct() {
        let v = logaddexp(2.0, 3.0);
        let w = logaddexp(3.0, 2.0);
        let direct = (2.0f64.exp() + 3.0f64.exp()).ln();
        assert!((v - direct).abs() < 1e-12);
        assert!((v - w).abs() < 1e-15);
    }

    #[test]
    fn logaddexp_with_neg_inf_identity() {
        assert_eq!(logaddexp(f64::NEG_INFINITY, 7.0), 7.0);
        assert_eq!(logaddexp(7.0, f64::NEG_INFINITY), 7.0);
    }

    #[test]
    fn logaddexp_extreme_difference_returns_larger() {
        // When the small term underflows, the large one must survive.
        let v = logaddexp(0.0, -1e6);
        assert_eq!(v, 0.0);
    }
}
