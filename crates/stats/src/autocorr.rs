//! Integrated autocorrelation time with automatic windowing.

/// Normalized autocorrelation function `ρ(t)` up to lag `max_lag`.
///
/// `ρ(0) = 1` by construction; returns an empty vector for series shorter
/// than 2 or with zero variance.
pub fn autocorrelation(series: &[f64], max_lag: usize) -> Vec<f64> {
    let n = series.len();
    if n < 2 {
        return Vec::new();
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    if var == 0.0 {
        return Vec::new();
    }
    let max_lag = max_lag.min(n - 1);
    (0..=max_lag)
        .map(|t| {
            let c: f64 = series[..n - t]
                .iter()
                .zip(&series[t..])
                .map(|(a, b)| (a - mean) * (b - mean))
                .sum::<f64>()
                / (n - t) as f64;
            c / var
        })
        .collect()
}

/// Integrated autocorrelation time `τ_int = ½ + Σ_{t≥1} ρ(t)` with Sokal's
/// automatic window: truncate the sum at the smallest `W` with
/// `W ≥ c · τ_int(W)` (c = 6 is the standard choice).
///
/// Returns 0.5 for uncorrelated or degenerate series (the minimum possible
/// value, meaning "every sample is independent").
pub fn integrated_autocorrelation_time(series: &[f64]) -> f64 {
    let rho = autocorrelation(series, series.len().saturating_sub(1).min(series.len() / 4));
    if rho.is_empty() {
        return 0.5;
    }
    const C: f64 = 6.0;
    let mut tau = 0.5;
    for (w, &r) in rho.iter().enumerate().skip(1) {
        tau += r;
        if (w as f64) >= C * tau {
            return tau.max(0.5);
        }
    }
    tau.max(0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmc_rng::{Rng64, SplitMix64};

    fn ar1(phi: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        let mut x = 0.0;
        (0..n)
            .map(|_| {
                x = phi * x + rng.gaussian();
                x
            })
            .collect()
    }

    #[test]
    fn rho_zero_is_one() {
        let xs = ar1(0.5, 1000, 1);
        let rho = autocorrelation(&xs, 10);
        assert!((rho[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn ar1_autocorrelation_decays_geometrically() {
        let phi = 0.7;
        let xs = ar1(phi, 1 << 17, 2);
        let rho = autocorrelation(&xs, 8);
        for t in 1..=4 {
            assert!(
                (rho[t] - phi.powi(t as i32)).abs() < 0.05,
                "rho[{t}] = {}, expect {}",
                rho[t],
                phi.powi(t as i32)
            );
        }
    }

    #[test]
    fn tau_int_ar1_matches_theory() {
        // τ_int(AR1) = ½ (1+φ)/(1−φ)
        for &phi in &[0.0, 0.5, 0.8] {
            let xs = ar1(phi, 1 << 17, 42);
            let tau = integrated_autocorrelation_time(&xs);
            let theory = 0.5 * (1.0 + phi) / (1.0 - phi);
            assert!(
                (tau - theory).abs() < 0.25 * theory.max(1.0),
                "phi={phi}: tau={tau}, theory={theory}"
            );
        }
    }

    #[test]
    fn degenerate_series_return_half() {
        assert_eq!(integrated_autocorrelation_time(&[]), 0.5);
        assert_eq!(integrated_autocorrelation_time(&[1.0]), 0.5);
        assert_eq!(integrated_autocorrelation_time(&[2.0; 100]), 0.5);
    }

    #[test]
    fn tau_never_below_half() {
        // Anti-correlated series could push the raw sum below 0.5.
        let xs: Vec<f64> = (0..1000)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(integrated_autocorrelation_time(&xs) >= 0.5);
    }

    #[test]
    fn max_lag_clamped_to_series_length() {
        let xs = [1.0, 2.0, 3.0];
        let rho = autocorrelation(&xs, 100);
        assert_eq!(rho.len(), 3);
    }
}
