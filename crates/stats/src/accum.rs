//! Single-pass moment accumulators (Welford), mergeable across ranks.

/// Streaming mean/variance accumulator using Welford's algorithm.
///
/// Numerically stable for arbitrarily long series, O(1) memory, and
/// mergeable — the parallel driver reduces one `Accumulator` per rank with
/// [`Accumulator::merge`], which is exact (same result as a single-stream
/// accumulation of the concatenated data, up to floating-point rounding).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Add every value in a slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (requires ≥ 2 observations, else 0).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (divide by N).
    pub fn variance_population(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation of the sample.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Naive standard error of the mean, `σ/√N` — valid only for
    /// *uncorrelated* data; use [`crate::BinningAnalysis`] for Markov-chain
    /// output.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.variance() / self.count as f64).sqrt()
        }
    }

    /// Smallest observation seen (+∞ if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation seen (−∞ if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (Chan et al. parallel
    /// combination).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Weighted streaming mean accumulator (for reweighted estimators where
/// each sample carries a weight, e.g. multicanonical → canonical).
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightedAccumulator {
    weight_sum: f64,
    weighted_sum: f64,
    weighted_sq_sum: f64,
    count: u64,
}

impl WeightedAccumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an observation with weight `w ≥ 0`.
    #[inline]
    pub fn push(&mut self, x: f64, w: f64) {
        debug_assert!(w >= 0.0, "negative weight");
        self.weight_sum += w;
        self.weighted_sum += w * x;
        self.weighted_sq_sum += w * x * x;
        self.count += 1;
    }

    /// Weighted mean (0 if total weight is 0).
    pub fn mean(&self) -> f64 {
        if self.weight_sum == 0.0 {
            0.0
        } else {
            self.weighted_sum / self.weight_sum
        }
    }

    /// Weighted variance around the weighted mean.
    pub fn variance(&self) -> f64 {
        if self.weight_sum == 0.0 {
            return 0.0;
        }
        let m = self.mean();
        (self.weighted_sq_sum / self.weight_sum - m * m).max(0.0)
    }

    /// Total weight.
    pub fn weight_sum(&self) -> f64 {
        self.weight_sum
    }

    /// Number of observations pushed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Merge another weighted accumulator.
    pub fn merge(&mut self, other: &WeightedAccumulator) {
        self.weight_sum += other.weight_sum;
        self.weighted_sum += other.weighted_sum;
        self.weighted_sq_sum += other.weighted_sq_sum;
        self.count += other.count;
    }
}

impl qmc_ckpt::Checkpoint for Accumulator {
    fn kind(&self) -> &'static str {
        "stats.accumulator"
    }

    fn save(&self, enc: &mut qmc_ckpt::Encoder) {
        enc.u64(self.count);
        enc.f64(self.mean);
        enc.f64(self.m2);
        enc.f64(self.min);
        enc.f64(self.max);
    }

    fn load(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
        self.count = dec.u64()?;
        self.mean = dec.f64()?;
        self.m2 = dec.f64()?;
        self.min = dec.f64()?;
        self.max = dec.f64()?;
        Ok(())
    }
}

impl qmc_ckpt::Checkpoint for WeightedAccumulator {
    fn kind(&self) -> &'static str {
        "stats.weighted_accumulator"
    }

    fn save(&self, enc: &mut qmc_ckpt::Encoder) {
        enc.f64(self.weight_sum);
        enc.f64(self.weighted_sum);
        enc.f64(self.weighted_sq_sum);
        enc.u64(self.count);
    }

    fn load(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
        self.weight_sum = dec.f64()?;
        self.weighted_sum = dec.f64()?;
        self.weighted_sq_sum = dec.f64()?;
        self.count = dec.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random series in (-scale, scale): SplitMix64
    /// scrambler mapped to a float — many bit patterns, no external
    /// property-test dependency.
    fn series(len: usize, scale: f64, salt: u64) -> Vec<f64> {
        (0..len as u64)
            .map(|i| {
                let mut z = (i ^ salt.rotate_left(17)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                ((z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) * scale
            })
            .collect()
    }

    #[test]
    fn empty_accumulator_defaults() {
        let a = Accumulator::new();
        assert_eq!(a.count(), 0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.variance(), 0.0);
        assert_eq!(a.std_error(), 0.0);
    }

    #[test]
    fn known_small_series() {
        let mut a = Accumulator::new();
        a.extend(&[1.0, 2.0, 3.0, 4.0]);
        assert!((a.mean() - 2.5).abs() < 1e-15);
        // var = Σ(x-2.5)² / 3 = (2.25+0.25+0.25+2.25)/3 = 5/3
        assert!((a.variance() - 5.0 / 3.0).abs() < 1e-15);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 4.0);
    }

    #[test]
    fn single_observation_variance_zero() {
        let mut a = Accumulator::new();
        a.push(3.7);
        assert_eq!(a.variance(), 0.0);
        assert_eq!(a.mean(), 3.7);
    }

    #[test]
    fn merge_equals_concatenation() {
        for (salt, len) in [(1u64, 0usize), (2, 1), (3, 2), (4, 17), (5, 199)] {
            let xs = series(len, 1e3, salt);
            for split in [0, 1, len / 3, len / 2, len.saturating_sub(1), len] {
                let split = split.min(len);
                let mut whole = Accumulator::new();
                whole.extend(&xs);
                let mut left = Accumulator::new();
                left.extend(&xs[..split]);
                let mut right = Accumulator::new();
                right.extend(&xs[split..]);
                left.merge(&right);
                assert_eq!(left.count(), whole.count());
                if !xs.is_empty() {
                    assert!((left.mean() - whole.mean()).abs() < 1e-9);
                    assert!((left.variance() - whole.variance()).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn variance_nonnegative() {
        for (salt, len) in [(7u64, 0usize), (8, 1), (9, 5), (10, 50), (11, 99)] {
            let xs = series(len, 1e6, salt);
            let mut a = Accumulator::new();
            a.extend(&xs);
            assert!(a.variance() >= 0.0);
            assert!(a.variance_population() >= 0.0);
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Accumulator::new();
        a.extend(&[1.0, 2.0]);
        let before = a;
        a.merge(&Accumulator::new());
        assert_eq!(a, before);

        let mut b = Accumulator::new();
        b.merge(&before);
        assert_eq!(b, before);
    }

    #[test]
    fn weighted_equal_weights_match_unweighted() {
        let xs = [1.0, 5.0, 3.0, 7.0];
        let mut w = WeightedAccumulator::new();
        let mut u = Accumulator::new();
        for &x in &xs {
            w.push(x, 2.0);
            u.push(x);
        }
        assert!((w.mean() - u.mean()).abs() < 1e-14);
        assert!((w.variance() - u.variance_population()).abs() < 1e-14);
    }

    #[test]
    fn weighted_zero_weight_ignored_in_mean() {
        let mut w = WeightedAccumulator::new();
        w.push(100.0, 0.0);
        w.push(2.0, 1.0);
        assert!((w.mean() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn accumulators_checkpoint_round_trips_bitwise() {
        let mut a = Accumulator::new();
        a.extend(&series(37, 1e3, 99));
        let bytes = qmc_ckpt::save_state(&a);
        let mut back = Accumulator::new();
        qmc_ckpt::load_state(&bytes, &mut back).unwrap();
        // Continuation after restore must be bit-identical, so every
        // internal moment must round-trip exactly — compare bits.
        assert_eq!(a.count(), back.count());
        assert_eq!(a.mean().to_bits(), back.mean().to_bits());
        assert_eq!(a.variance().to_bits(), back.variance().to_bits());
        assert_eq!(a.min().to_bits(), back.min().to_bits());
        assert_eq!(a.max().to_bits(), back.max().to_bits());
        a.push(5.0);
        back.push(5.0);
        assert_eq!(a.mean().to_bits(), back.mean().to_bits());

        let mut w = WeightedAccumulator::new();
        w.push(1.5, 2.0);
        w.push(-3.0, 0.5);
        let bytes = qmc_ckpt::save_state(&w);
        let mut wback = WeightedAccumulator::new();
        qmc_ckpt::load_state(&bytes, &mut wback).unwrap();
        assert_eq!(w.count(), wback.count());
        assert_eq!(w.mean().to_bits(), wback.mean().to_bits());
        assert_eq!(w.weight_sum().to_bits(), wback.weight_sum().to_bits());
    }

    #[test]
    fn weighted_merge_matches_combined() {
        let mut a = WeightedAccumulator::new();
        a.push(1.0, 1.0);
        a.push(2.0, 3.0);
        let mut b = WeightedAccumulator::new();
        b.push(5.0, 2.0);
        let mut c = WeightedAccumulator::new();
        for (x, w) in [(1.0, 1.0), (2.0, 3.0), (5.0, 2.0)] {
            c.push(x, w);
        }
        a.merge(&b);
        assert!((a.mean() - c.mean()).abs() < 1e-14);
        assert!((a.variance() - c.variance()).abs() < 1e-14);
        assert_eq!(a.count(), c.count());
    }
}
