//! Thread-local per-rank recorder: RAII timing spans, comm-event
//! tracing, online health feeds, and free-function metric updates.
//!
//! Each rank (one OS thread under `ThreadComm`, the single main thread
//! under `SerialComm`/`ModelComm`) calls [`init`] once before its solver
//! loop and [`finish`] once after; everything in between goes through
//! [`span`], [`counter_add`], [`hist_record`] and [`health_record`]. When
//! [`init`] was never called — the default for every existing test and
//! binary — all of those are a single thread-local flag check and nothing
//! else, which is what keeps the instrumented hot loops within the 2%
//! overhead budget.

use std::cell::{Cell, RefCell};
use std::time::Instant;

use crate::health::HealthMonitor;
use crate::metrics::Registry;
use crate::record::{CommDir, CommEvent, HealthSnapshot, OwnedSpan, RankObs};

const F_SPANS: u8 = 1;
const F_METRICS: u8 = 2;
const F_HEALTH: u8 = 4;

thread_local! {
    static FLAGS: Cell<u8> = const { Cell::new(0) };
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// What to record on this rank. Clone one config across all ranks of a run
/// so every recorder shares the same wall-clock epoch (merged traces then
/// line up on a common time axis).
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Record hierarchical timing spans into the ring.
    pub spans: bool,
    /// Record counters/histograms (and per-span duration histograms).
    pub metrics: bool,
    /// Stream observables pushed via [`health_record`] through an online
    /// [`HealthMonitor`] (τ_int, error bars, equilibration drift).
    pub health: bool,
    /// Print a one-line health report to stderr every this many samples
    /// per observable (0 = never print; snapshots still export).
    pub health_every: usize,
    /// Ring capacity in spans; the oldest spans are overwritten once the
    /// ring is full (the overflow count is reported as `dropped_spans`).
    pub span_capacity: usize,
    /// Ring capacity in traced comm events (see `TracingComm`); oldest
    /// events are overwritten, counted as `dropped_comm_events`.
    pub comm_capacity: usize,
    epoch: Instant,
}

impl ObsConfig {
    /// Spans and metrics enabled (health off), 65 536-entry rings,
    /// epoch = now.
    pub fn new() -> Self {
        Self {
            spans: true,
            metrics: true,
            health: false,
            health_every: 0,
            span_capacity: 1 << 16,
            comm_capacity: 1 << 16,
            epoch: Instant::now(),
        }
    }

    /// Metrics only (no span ring): counters and histograms without the
    /// per-span timeline.
    pub fn metrics_only() -> Self {
        Self {
            spans: false,
            ..Self::new()
        }
    }

    /// Same config with span recording set to `on`.
    pub fn with_spans(mut self, on: bool) -> Self {
        self.spans = on;
        self
    }

    /// Same config with metrics recording set to `on`.
    pub fn with_metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Same config with online health monitoring set to `on`.
    pub fn with_health(mut self, on: bool) -> Self {
        self.health = on;
        self
    }

    /// Same config with health on and a periodic stderr report every
    /// `every` samples (0 keeps reports silent).
    pub fn with_health_every(mut self, every: usize) -> Self {
        self.health = true;
        self.health_every = every;
        self
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// One completed (or in-flight) span in the fixed ring.
#[derive(Debug, Clone, Copy)]
struct SpanRec {
    name: &'static str,
    id: u64,
    t0_us: f64,
    t1_us: f64,
    depth: u16,
}

/// One traced comm event in the fixed ring (pushed by `TracingComm`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CommRec {
    pub(crate) dir: CommDir,
    pub(crate) peer: u64,
    pub(crate) tag: u32,
    pub(crate) seq: u64,
    pub(crate) bytes: u64,
    pub(crate) t0_us: f64,
    pub(crate) t1_us: f64,
    pub(crate) span_id: u64,
}

/// Default `min_bins` for the online binning behind [`health_record`]
/// (same default the offline analyses in this workspace use).
pub(crate) const HEALTH_MIN_BINS: usize = 16;

/// The per-thread recorder installed by [`init`].
struct Recorder {
    rank: u64,
    epoch: Instant,
    metrics_on: bool,
    ring: Vec<SpanRec>,
    capacity: usize,
    head: usize,
    recorded: u64,
    depth: u16,
    /// Monotone per-rank span id source (ids start at 1; 0 = "no span").
    next_span_id: u64,
    /// Ids of currently open spans, innermost last.
    open: Vec<u64>,
    comm_ring: Vec<CommRec>,
    comm_capacity: usize,
    comm_head: usize,
    comm_recorded: u64,
    registry: Registry,
    health: Vec<(&'static str, HealthMonitor)>,
    health_every: usize,
}

impl Recorder {
    fn push(&mut self, rec: SpanRec) {
        if self.ring.len() < self.capacity {
            self.ring.push(rec);
        } else {
            self.ring[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
        }
        self.recorded += 1;
    }

    fn push_comm(&mut self, rec: CommRec) {
        if self.comm_ring.len() < self.comm_capacity {
            self.comm_ring.push(rec);
        } else {
            self.comm_ring[self.comm_head] = rec;
            self.comm_head = (self.comm_head + 1) % self.comm_capacity;
        }
        self.comm_recorded += 1;
    }

    /// Completed spans, oldest first.
    fn chronological(&self) -> Vec<OwnedSpan> {
        let mut out = Vec::with_capacity(self.ring.len());
        let order = self.ring[self.head..].iter().chain(&self.ring[..self.head]);
        for r in order {
            out.push(OwnedSpan {
                name: r.name.to_string(),
                id: r.id,
                t0_us: r.t0_us,
                t1_us: r.t1_us,
                depth: r.depth,
            });
        }
        out
    }

    /// Traced comm events, oldest first.
    fn comm_chronological(&self) -> Vec<CommEvent> {
        let order = self.comm_ring[self.comm_head..]
            .iter()
            .chain(&self.comm_ring[..self.comm_head]);
        order
            .map(|r| CommEvent {
                dir: r.dir,
                peer: r.peer,
                tag: r.tag,
                seq: r.seq,
                bytes: r.bytes,
                t0_us: r.t0_us,
                t1_us: r.t1_us,
                span_id: r.span_id,
            })
            .collect()
    }
}

/// Install a recorder on the current thread. `rank` labels the trace
/// track; pass the same `config` (cloned) to every rank of a run.
pub fn init(rank: usize, config: &ObsConfig) {
    let mut flags = 0;
    if config.spans {
        flags |= F_SPANS;
    }
    if config.metrics {
        flags |= F_METRICS;
    }
    if config.health {
        flags |= F_HEALTH;
    }
    RECORDER.with(|r| {
        *r.borrow_mut() = Some(Recorder {
            rank: rank as u64,
            epoch: config.epoch,
            metrics_on: config.metrics,
            ring: Vec::with_capacity(config.span_capacity.max(1)),
            capacity: config.span_capacity.max(1),
            head: 0,
            recorded: 0,
            depth: 0,
            next_span_id: 1,
            open: Vec::with_capacity(64),
            comm_ring: Vec::with_capacity(config.comm_capacity.max(1)),
            comm_capacity: config.comm_capacity.max(1),
            comm_head: 0,
            comm_recorded: 0,
            registry: Registry::new(),
            health: Vec::new(),
            health_every: config.health_every,
        });
    });
    FLAGS.with(|f| f.set(flags));
}

/// Uninstall the current thread's recorder and return everything it
/// captured. Returns `None` when [`init`] was never called.
pub fn finish() -> Option<RankObs> {
    FLAGS.with(|f| f.set(0));
    let rec = RECORDER.with(|r| r.borrow_mut().take())?;
    let mut obs = RankObs {
        rank: rec.rank,
        dropped_spans: rec.recorded - rec.ring.len() as u64,
        spans: rec.chronological(),
        dropped_comm_events: rec.comm_recorded - rec.comm_ring.len() as u64,
        comm_events: rec.comm_chronological(),
        counters: Vec::new(),
        hists: Vec::new(),
        health: rec
            .health
            .iter()
            .map(|(name, hm)| HealthSnapshot::of(name, hm))
            .collect(),
        comm: None,
    };
    obs.absorb_registry(&rec.registry);
    Some(obs)
}

/// True when a recorder is installed with spans or metrics enabled.
#[inline]
pub fn enabled() -> bool {
    FLAGS.with(|f| f.get()) != 0
}

/// True when spans are being recorded on this thread.
#[inline]
pub fn spans_enabled() -> bool {
    FLAGS.with(|f| f.get()) & F_SPANS != 0
}

/// True when metrics are being recorded on this thread.
#[inline]
pub fn metrics_enabled() -> bool {
    FLAGS.with(|f| f.get()) & F_METRICS != 0
}

/// True when online health monitoring is enabled on this thread.
#[inline]
pub fn health_enabled() -> bool {
    FLAGS.with(|f| f.get()) & F_HEALTH != 0
}

/// RAII timing scope returned by [`span`]; the span is recorded when the
/// guard drops.
#[must_use = "a span measures the scope that holds it"]
pub struct Span {
    name: &'static str,
    /// `Some` only when armed (spans enabled at construction time).
    t0: Option<Instant>,
    id: u64,
    depth: u16,
}

/// Open a hierarchical timing span. Disabled path: one thread-local flag
/// read, no clock call, no recorder access.
#[inline]
pub fn span(name: &'static str) -> Span {
    if FLAGS.with(|f| f.get()) & F_SPANS == 0 {
        return Span {
            name,
            t0: None,
            id: 0,
            depth: 0,
        };
    }
    let (id, depth) = RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        let rec = r.as_mut().expect("spans flag set without a recorder");
        let d = rec.depth;
        rec.depth = rec.depth.saturating_add(1);
        let id = rec.next_span_id;
        rec.next_span_id += 1;
        rec.open.push(id);
        (id, d)
    });
    Span {
        name,
        t0: Some(Instant::now()),
        id,
        depth,
    }
}

impl Span {
    /// This span's per-rank id (0 when recording was disabled at open).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(t0) = self.t0 else { return };
        let t1 = Instant::now();
        RECORDER.with(|r| {
            let mut r = r.borrow_mut();
            let Some(rec) = r.as_mut() else { return };
            rec.depth = rec.depth.saturating_sub(1);
            // Guards are almost always strictly nested (the id sits on
            // top), but manual drop order is legal — remove by value.
            if let Some(pos) = rec.open.iter().rposition(|&id| id == self.id) {
                rec.open.remove(pos);
            }
            let t0_us = t0.duration_since(rec.epoch).as_secs_f64() * 1e6;
            let t1_us = t1.duration_since(rec.epoch).as_secs_f64() * 1e6;
            rec.push(SpanRec {
                name: self.name,
                id: self.id,
                t0_us,
                t1_us,
                depth: self.depth,
            });
            if rec.metrics_on {
                let ns = (t1 - t0).as_nanos().min(u128::from(u64::MAX)) as u64;
                rec.registry.record_named(self.name, ns);
            }
        });
    }
}

/// Id of the innermost currently-open span (0 when none, or when spans
/// are disabled). Comm events are stamped with this to tie message
/// traffic to the span that caused it.
#[inline]
pub fn active_span_id() -> u64 {
    if FLAGS.with(|f| f.get()) & F_SPANS == 0 {
        return 0;
    }
    RECORDER.with(|r| {
        r.borrow()
            .as_ref()
            .map_or(0, |rec| rec.open.last().copied().unwrap_or(0))
    })
}

/// Microseconds elapsed since this recorder's shared epoch (0.0 when no
/// recorder is installed). Used by `TracingComm` so comm events share the
/// span timeline.
#[inline]
pub fn now_us() -> f64 {
    RECORDER.with(|r| {
        r.borrow()
            .as_ref()
            .map_or(0.0, |rec| rec.epoch.elapsed().as_secs_f64() * 1e6)
    })
}

/// Record one traced comm event into the ring (no-op without spans).
/// Stamps `rec.span_id` with the innermost open span inside the same
/// recorder borrow — the per-message hot path pays one TLS access, not
/// two.
#[inline]
pub(crate) fn comm_event(mut rec: CommRec) {
    if FLAGS.with(|f| f.get()) & F_SPANS == 0 {
        return;
    }
    RECORDER.with(|r| {
        if let Some(r) = r.borrow_mut().as_mut() {
            rec.span_id = r.open.last().copied().unwrap_or(0);
            r.push_comm(rec);
        }
    });
}

/// Add to a named monotonic counter in this rank's recorder. No-op when
/// metrics are disabled. Hot loops should accumulate locally and call this
/// once per sweep.
#[inline]
pub fn counter_add(name: &'static str, n: u64) {
    if FLAGS.with(|f| f.get()) & F_METRICS == 0 {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.registry.add_named(name, n);
        }
    });
}

/// Record a sample into a named histogram in this rank's recorder. No-op
/// when metrics are disabled.
#[inline]
pub fn hist_record(name: &'static str, v: u64) {
    if FLAGS.with(|f| f.get()) & F_METRICS == 0 {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.registry.record_named(name, v);
        }
    });
}

/// Stream one observation of a named observable through this rank's
/// online [`HealthMonitor`]. No-op when health monitoring is disabled
/// (a single flag check), so engine measurement loops can call it
/// unconditionally; never draws random numbers or touches messages, so
/// trajectories are bit-identical with health on or off.
#[inline]
pub fn health_record(name: &'static str, value: f64) {
    if FLAGS.with(|f| f.get()) & F_HEALTH == 0 {
        return;
    }
    RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        let Some(rec) = r.as_mut() else { return };
        let every = rec.health_every;
        let rank = rec.rank;
        let hm = match rec.health.iter_mut().find(|(n, _)| *n == name) {
            Some((_, hm)) => hm,
            None => {
                rec.health.push((name, HealthMonitor::new(HEALTH_MIN_BINS)));
                &mut rec
                    .health
                    .last_mut()
                    .expect("just pushed a health monitor")
                    .1
            }
        };
        hm.push(value);
        if every > 0 && hm.count() % every as u64 == 0 {
            eprintln!("[health] rank {rank} {name}: {}", hm.report());
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        assert!(!enabled());
        // All of these must be silent no-ops without init().
        let _s = span("noop");
        counter_add("c", 1);
        hist_record("h", 1);
        health_record("e", 1.0);
        assert_eq!(active_span_id(), 0);
        assert!(finish().is_none());
    }

    #[test]
    fn nested_spans_record_depth_and_order() {
        init(3, &ObsConfig::new());
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
            {
                let _inner = span("inner");
            }
        }
        let obs = finish().unwrap();
        assert_eq!(obs.rank, 3);
        assert_eq!(obs.dropped_spans, 0);
        // Drop order: inner, inner, outer.
        let names: Vec<&str> = obs.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["inner", "inner", "outer"]);
        assert_eq!(obs.spans[0].depth, 1);
        assert_eq!(obs.spans[2].depth, 0);
        for s in &obs.spans {
            assert!(s.t1_us >= s.t0_us);
        }
        // The outer span encloses both inners on the time axis.
        assert!(obs.spans[2].t0_us <= obs.spans[0].t0_us);
        assert!(obs.spans[2].t1_us >= obs.spans[1].t1_us);
        // Ids are unique, nonzero, and assigned in open order.
        assert_eq!(obs.spans[2].id, 1); // outer opened first
        assert_eq!(obs.spans[0].id, 2);
        assert_eq!(obs.spans[1].id, 3);
        // Metrics were on: each span fed its duration histogram.
        let inner = obs.hists.iter().find(|h| h.name == "inner").unwrap();
        assert_eq!(inner.count, 2);
    }

    #[test]
    fn active_span_id_tracks_innermost() {
        init(0, &ObsConfig::new());
        assert_eq!(active_span_id(), 0);
        {
            let outer = span("outer");
            assert_eq!(active_span_id(), outer.id());
            {
                let inner = span("inner");
                assert_eq!(active_span_id(), inner.id());
            }
            assert_eq!(active_span_id(), outer.id());
        }
        assert_eq!(active_span_id(), 0);
        finish();
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let cfg = ObsConfig {
            span_capacity: 4,
            metrics: false,
            ..ObsConfig::new()
        };
        init(0, &cfg);
        for i in 0..10 {
            let _s = span(NAMES[i % NAMES.len()]);
        }
        let obs = finish().unwrap();
        assert_eq!(obs.spans.len(), 4);
        assert_eq!(obs.dropped_spans, 6);
        // The survivors are the 4 most recent, oldest first.
        let names: Vec<&str> = obs.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, [NAMES[0], NAMES[1], NAMES[2], NAMES[0]]);
        // Chronological order survives the wrap.
        for w in obs.spans.windows(2) {
            assert!(w[0].t0_us <= w[1].t0_us);
        }
    }

    const NAMES: [&str; 3] = ["a", "b", "c"];

    #[test]
    fn metrics_only_config_skips_spans() {
        init(0, &ObsConfig::metrics_only());
        assert!(!spans_enabled());
        assert!(metrics_enabled());
        {
            let _s = span("skipped");
            counter_add("seen", 2);
        }
        let obs = finish().unwrap();
        assert!(obs.spans.is_empty());
        assert_eq!(obs.counter("seen"), 2);
        // Span duration histograms need the span ring; none recorded.
        assert!(obs.hists.is_empty());
    }

    #[test]
    fn health_records_stream_and_snapshot() {
        init(1, &ObsConfig::new().with_health(true));
        assert!(health_enabled());
        for i in 0..256 {
            health_record("energy", ((i / 8) % 7) as f64);
            health_record("mag", 0.5);
        }
        let obs = finish().unwrap();
        assert_eq!(obs.health.len(), 2);
        let e = &obs.health[0];
        assert_eq!(e.name, "energy");
        assert_eq!(e.count, 256);
        assert!(e.tau_int > 1.0, "tau {}", e.tau_int);
        let m = &obs.health[1];
        assert_eq!(m.name, "mag");
        assert_eq!(m.error, 0.0);
    }

    #[test]
    fn health_off_records_nothing() {
        init(0, &ObsConfig::new());
        health_record("energy", 1.0);
        let obs = finish().unwrap();
        assert!(obs.health.is_empty());
    }
}
