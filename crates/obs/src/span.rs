//! Thread-local per-rank recorder: RAII timing spans and free-function
//! metric updates.
//!
//! Each rank (one OS thread under `ThreadComm`, the single main thread
//! under `SerialComm`/`ModelComm`) calls [`init`] once before its solver
//! loop and [`finish`] once after; everything in between goes through
//! [`span`], [`counter_add`] and [`hist_record`]. When [`init`] was never
//! called — the default for every existing test and binary — all of those
//! are a single thread-local flag check and nothing else, which is what
//! keeps the instrumented hot loops within the 2% overhead budget.

use std::cell::{Cell, RefCell};
use std::time::Instant;

use crate::metrics::Registry;
use crate::record::{OwnedSpan, RankObs};

const F_SPANS: u8 = 1;
const F_METRICS: u8 = 2;

thread_local! {
    static FLAGS: Cell<u8> = const { Cell::new(0) };
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// What to record on this rank. Clone one config across all ranks of a run
/// so every recorder shares the same wall-clock epoch (merged traces then
/// line up on a common time axis).
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Record hierarchical timing spans into the ring.
    pub spans: bool,
    /// Record counters/histograms (and per-span duration histograms).
    pub metrics: bool,
    /// Ring capacity in spans; the oldest spans are overwritten once the
    /// ring is full (the overflow count is reported as `dropped_spans`).
    pub span_capacity: usize,
    epoch: Instant,
}

impl ObsConfig {
    /// Everything enabled, 65 536-span ring, epoch = now.
    pub fn new() -> Self {
        Self {
            spans: true,
            metrics: true,
            span_capacity: 1 << 16,
            epoch: Instant::now(),
        }
    }

    /// Metrics only (no span ring): counters and histograms without the
    /// per-span timeline.
    pub fn metrics_only() -> Self {
        Self {
            spans: false,
            ..Self::new()
        }
    }

    /// Same config with span recording set to `on`.
    pub fn with_spans(mut self, on: bool) -> Self {
        self.spans = on;
        self
    }

    /// Same config with metrics recording set to `on`.
    pub fn with_metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// One completed (or in-flight) span in the fixed ring.
#[derive(Debug, Clone, Copy)]
struct SpanRec {
    name: &'static str,
    t0_us: f64,
    t1_us: f64,
    depth: u16,
}

/// The per-thread recorder installed by [`init`].
struct Recorder {
    rank: u64,
    epoch: Instant,
    metrics_on: bool,
    ring: Vec<SpanRec>,
    capacity: usize,
    head: usize,
    recorded: u64,
    depth: u16,
    registry: Registry,
}

impl Recorder {
    fn push(&mut self, rec: SpanRec) {
        if self.ring.len() < self.capacity {
            self.ring.push(rec);
        } else {
            self.ring[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
        }
        self.recorded += 1;
    }

    /// Completed spans, oldest first.
    fn chronological(&self) -> Vec<OwnedSpan> {
        let mut out = Vec::with_capacity(self.ring.len());
        let order = self.ring[self.head..].iter().chain(&self.ring[..self.head]);
        for r in order {
            out.push(OwnedSpan {
                name: r.name.to_string(),
                t0_us: r.t0_us,
                t1_us: r.t1_us,
                depth: r.depth,
            });
        }
        out
    }
}

/// Install a recorder on the current thread. `rank` labels the trace
/// track; pass the same `config` (cloned) to every rank of a run.
pub fn init(rank: usize, config: &ObsConfig) {
    let mut flags = 0;
    if config.spans {
        flags |= F_SPANS;
    }
    if config.metrics {
        flags |= F_METRICS;
    }
    RECORDER.with(|r| {
        *r.borrow_mut() = Some(Recorder {
            rank: rank as u64,
            epoch: config.epoch,
            metrics_on: config.metrics,
            ring: Vec::with_capacity(config.span_capacity.max(1)),
            capacity: config.span_capacity.max(1),
            head: 0,
            recorded: 0,
            depth: 0,
            registry: Registry::new(),
        });
    });
    FLAGS.with(|f| f.set(flags));
}

/// Uninstall the current thread's recorder and return everything it
/// captured. Returns `None` when [`init`] was never called.
pub fn finish() -> Option<RankObs> {
    FLAGS.with(|f| f.set(0));
    let rec = RECORDER.with(|r| r.borrow_mut().take())?;
    let mut obs = RankObs {
        rank: rec.rank,
        dropped_spans: rec.recorded - rec.ring.len() as u64,
        spans: rec.chronological(),
        counters: Vec::new(),
        hists: Vec::new(),
        comm: None,
    };
    obs.absorb_registry(&rec.registry);
    Some(obs)
}

/// True when a recorder is installed with spans or metrics enabled.
#[inline]
pub fn enabled() -> bool {
    FLAGS.with(|f| f.get()) != 0
}

/// True when spans are being recorded on this thread.
#[inline]
pub fn spans_enabled() -> bool {
    FLAGS.with(|f| f.get()) & F_SPANS != 0
}

/// True when metrics are being recorded on this thread.
#[inline]
pub fn metrics_enabled() -> bool {
    FLAGS.with(|f| f.get()) & F_METRICS != 0
}

/// RAII timing scope returned by [`span`]; the span is recorded when the
/// guard drops.
#[must_use = "a span measures the scope that holds it"]
pub struct Span {
    name: &'static str,
    /// `Some` only when armed (spans enabled at construction time).
    t0: Option<Instant>,
    depth: u16,
}

/// Open a hierarchical timing span. Disabled path: one thread-local flag
/// read, no clock call, no recorder access.
#[inline]
pub fn span(name: &'static str) -> Span {
    if FLAGS.with(|f| f.get()) & F_SPANS == 0 {
        return Span {
            name,
            t0: None,
            depth: 0,
        };
    }
    let depth = RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        let rec = r.as_mut().expect("spans flag set without a recorder");
        let d = rec.depth;
        rec.depth = rec.depth.saturating_add(1);
        d
    });
    Span {
        name,
        t0: Some(Instant::now()),
        depth,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(t0) = self.t0 else { return };
        let t1 = Instant::now();
        RECORDER.with(|r| {
            let mut r = r.borrow_mut();
            let Some(rec) = r.as_mut() else { return };
            rec.depth = rec.depth.saturating_sub(1);
            let t0_us = t0.duration_since(rec.epoch).as_secs_f64() * 1e6;
            let t1_us = t1.duration_since(rec.epoch).as_secs_f64() * 1e6;
            rec.push(SpanRec {
                name: self.name,
                t0_us,
                t1_us,
                depth: self.depth,
            });
            if rec.metrics_on {
                let ns = (t1 - t0).as_nanos().min(u128::from(u64::MAX)) as u64;
                rec.registry.record_named(self.name, ns);
            }
        });
    }
}

/// Add to a named monotonic counter in this rank's recorder. No-op when
/// metrics are disabled. Hot loops should accumulate locally and call this
/// once per sweep.
#[inline]
pub fn counter_add(name: &'static str, n: u64) {
    if FLAGS.with(|f| f.get()) & F_METRICS == 0 {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.registry.add_named(name, n);
        }
    });
}

/// Record a sample into a named histogram in this rank's recorder. No-op
/// when metrics are disabled.
#[inline]
pub fn hist_record(name: &'static str, v: u64) {
    if FLAGS.with(|f| f.get()) & F_METRICS == 0 {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.registry.record_named(name, v);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        assert!(!enabled());
        // All of these must be silent no-ops without init().
        let _s = span("noop");
        counter_add("c", 1);
        hist_record("h", 1);
        assert!(finish().is_none());
    }

    #[test]
    fn nested_spans_record_depth_and_order() {
        init(3, &ObsConfig::new());
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
            {
                let _inner = span("inner");
            }
        }
        let obs = finish().unwrap();
        assert_eq!(obs.rank, 3);
        assert_eq!(obs.dropped_spans, 0);
        // Drop order: inner, inner, outer.
        let names: Vec<&str> = obs.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["inner", "inner", "outer"]);
        assert_eq!(obs.spans[0].depth, 1);
        assert_eq!(obs.spans[2].depth, 0);
        for s in &obs.spans {
            assert!(s.t1_us >= s.t0_us);
        }
        // The outer span encloses both inners on the time axis.
        assert!(obs.spans[2].t0_us <= obs.spans[0].t0_us);
        assert!(obs.spans[2].t1_us >= obs.spans[1].t1_us);
        // Metrics were on: each span fed its duration histogram.
        let inner = obs.hists.iter().find(|h| h.name == "inner").unwrap();
        assert_eq!(inner.count, 2);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let cfg = ObsConfig {
            span_capacity: 4,
            metrics: false,
            ..ObsConfig::new()
        };
        init(0, &cfg);
        for i in 0..10 {
            let _s = span(NAMES[i % NAMES.len()]);
        }
        let obs = finish().unwrap();
        assert_eq!(obs.spans.len(), 4);
        assert_eq!(obs.dropped_spans, 6);
        // The survivors are the 4 most recent, oldest first.
        let names: Vec<&str> = obs.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, [NAMES[0], NAMES[1], NAMES[2], NAMES[0]]);
        // Chronological order survives the wrap.
        for w in obs.spans.windows(2) {
            assert!(w[0].t0_us <= w[1].t0_us);
        }
    }

    const NAMES: [&str; 3] = ["a", "b", "c"];

    #[test]
    fn metrics_only_config_skips_spans() {
        init(0, &ObsConfig::metrics_only());
        assert!(!spans_enabled());
        assert!(metrics_enabled());
        {
            let _s = span("skipped");
            counter_add("seen", 2);
        }
        let obs = finish().unwrap();
        assert!(obs.spans.is_empty());
        assert_eq!(obs.counter("seen"), 2);
        // Span duration histograms need the span ring; none recorded.
        assert!(obs.hists.is_empty());
    }
}
