//! Per-rank observability results and their merge across ranks.
//!
//! [`finish`](crate::finish) produces one [`RankObs`] per rank; under the
//! thread or model back-ends those live on different threads, so
//! [`gather_ranks`] ships them to rank 0 over the same [`Communicator`]
//! the physics ran on (a byte gather — observability reuses the machine
//! rather than smuggling data through host shared memory).

use qmc_comm::{CommStats, Communicator};

use crate::health::HealthMonitor;
use crate::metrics::{Hist, Registry};

/// A completed span, owned (names copied out of the ring's `&'static str`).
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedSpan {
    /// Span name (the string passed to [`crate::span`]).
    pub name: String,
    /// Per-rank span id (assigned in open order from 1; 0 only in
    /// records predating span ids).
    pub id: u64,
    /// Start, microseconds since the run's shared epoch.
    pub t0_us: f64,
    /// End, microseconds since the run's shared epoch.
    pub t1_us: f64,
    /// Nesting depth at open time (0 = top level).
    pub depth: u16,
}

/// Direction of a traced point-to-point message, from the recording
/// rank's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommDir {
    /// The recording rank sent the message.
    Send,
    /// The recording rank received the message.
    Recv,
}

/// One traced point-to-point message event (recorded by `TracingComm`).
///
/// `seq` counts messages per directed `(self, peer, tag)` channel on the
/// send side and per `(peer, self, tag)` channel on the receive side, so
/// a send and the receive it caused carry the same `(src, dst, tag, seq)`
/// key — that key is how the cross-rank merger pairs them into
/// happens-before edges without any global clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommEvent {
    /// Send or receive.
    pub dir: CommDir,
    /// The other rank.
    pub peer: u64,
    /// Message tag.
    pub tag: u32,
    /// Per-channel message sequence number (from 0).
    pub seq: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// Call start, microseconds since the shared epoch.
    pub t0_us: f64,
    /// Call end, microseconds since the shared epoch.
    pub t1_us: f64,
    /// Id of the innermost span open at call time (0 = none).
    pub span_id: u64,
}

/// Exported state of one observable's online [`HealthMonitor`].
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSnapshot {
    /// Observable name (the string passed to [`crate::health_record`]).
    pub name: String,
    /// Samples streamed so far.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Autocorrelation-aware error of the mean (binning plateau).
    pub error: f64,
    /// Integrated autocorrelation time.
    pub tau_int: f64,
    /// Equilibration drift z-score (≥ 3 flags a transient).
    pub drift_z: f64,
}

impl HealthSnapshot {
    /// Snapshot a monitor's current state.
    pub fn of(name: &str, hm: &HealthMonitor) -> Self {
        let b = hm.binning();
        Self {
            name: name.to_string(),
            count: b.count(),
            mean: b.mean(),
            std_dev: b.std_dev(),
            error: b.error(),
            tau_int: b.tau_int(),
            drift_z: hm.drift_z(),
        }
    }
}

/// A histogram flattened for transport/export: only non-empty buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// Histogram name.
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// `(inclusive bucket lower bound, sample count)` pairs, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnapshot {
    fn from_hist(name: &str, h: &Hist) -> Self {
        Self {
            name: name.to_string(),
            count: h.count,
            sum: h.sum,
            min: h.min_or_zero(),
            max: h.max,
            buckets: h.nonzero().collect(),
        }
    }

    fn merge(&mut self, other: &HistSnapshot) {
        if other.count == 0 {
            return;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        for &(lo, c) in &other.buckets {
            match self.buckets.binary_search_by_key(&lo, |&(l, _)| l) {
                Ok(i) => self.buckets[i].1 += c,
                Err(i) => self.buckets.insert(i, (lo, c)),
            }
        }
    }
}

/// Communication totals embedded in the metrics artifact — a plain-data
/// mirror of [`CommStats`] that serializes with the rest of [`RankObs`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommSummary {
    /// Point-to-point messages sent.
    pub messages_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Point-to-point messages received.
    pub messages_recv: u64,
    /// Payload bytes received.
    pub bytes_recv: u64,
    /// Largest single payload moved in either direction.
    pub max_message_bytes: u64,
    /// Seconds attributed to communication.
    pub comm_seconds: f64,
    /// Seconds attributed to compute charges.
    pub compute_seconds: f64,
    /// Seconds spent blocked in receives (subset of `comm_seconds`).
    pub recv_wait_seconds: f64,
}

impl From<CommStats> for CommSummary {
    fn from(s: CommStats) -> Self {
        Self {
            messages_sent: s.messages_sent,
            bytes_sent: s.bytes_sent,
            messages_recv: s.messages_recv,
            bytes_recv: s.bytes_recv,
            max_message_bytes: s.max_message_bytes,
            comm_seconds: s.comm_seconds,
            compute_seconds: s.compute_seconds,
            recv_wait_seconds: s.recv_wait_seconds,
        }
    }
}

/// Everything one rank recorded: spans, counters, histograms, comm totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankObs {
    /// Rank that produced this record.
    pub rank: u64,
    /// Spans lost to ring overflow (capacity exceeded).
    pub dropped_spans: u64,
    /// Completed spans, chronological (oldest first).
    pub spans: Vec<OwnedSpan>,
    /// Traced comm events lost to ring overflow.
    pub dropped_comm_events: u64,
    /// Traced comm events, chronological (oldest first).
    pub comm_events: Vec<CommEvent>,
    /// `(name, value)` monotonic counters.
    pub counters: Vec<(String, u64)>,
    /// Histogram snapshots.
    pub hists: Vec<HistSnapshot>,
    /// Online convergence health, one snapshot per observable.
    pub health: Vec<HealthSnapshot>,
    /// Communication totals, when the run attached them.
    pub comm: Option<CommSummary>,
}

impl RankObs {
    /// Sum-merge a registry's counters and histograms into this record
    /// (used to fold an engine-owned registry into the rank's results).
    pub fn absorb_registry(&mut self, reg: &Registry) {
        for &(name, v) in reg.counters() {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, cur)) => *cur += v,
                None => self.counters.push((name.to_string(), v)),
            }
        }
        for (name, h) in reg.hists() {
            let snap = HistSnapshot::from_hist(name, h);
            match self.hists.iter_mut().find(|s| s.name == *name) {
                Some(cur) => cur.merge(&snap),
                None => self.hists.push(snap),
            }
        }
    }

    /// [`RankObs::absorb_registry`] with every counter and histogram name
    /// prefixed (e.g. `tenant.alice.`). This is how the job server keeps
    /// per-tenant metrics in one record without cross-tenant collisions:
    /// each tenant's engine registry folds in under its own namespace.
    pub fn absorb_registry_prefixed(&mut self, reg: &Registry, prefix: &str) {
        for &(name, v) in reg.counters() {
            let full = format!("{prefix}{name}");
            match self.counters.iter_mut().find(|(n, _)| *n == full) {
                Some((_, cur)) => *cur += v,
                None => self.counters.push((full, v)),
            }
        }
        for (name, h) in reg.hists() {
            let mut snap = HistSnapshot::from_hist(name, h);
            snap.name = format!("{prefix}{name}");
            match self.hists.iter_mut().find(|s| s.name == snap.name) {
                Some(cur) => cur.merge(&snap),
                None => self.hists.push(snap),
            }
        }
    }

    /// Bump a named counter directly (String-keyed, unlike the
    /// `&'static str` engine [`Registry`]) — used for server-side
    /// counters like `serve.jobs_completed` whose names are dynamic.
    pub fn counter_add(&mut self, name: &str, v: u64) {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, cur)) => *cur += v,
            None => self.counters.push((name.to_string(), v)),
        }
    }

    /// Attach communication totals from the rank's communicator.
    pub fn set_comm(&mut self, stats: CommStats) {
        self.comm = Some(stats.into());
    }

    /// Value of a named counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Serialize for transport over a [`Communicator`] gather.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::new();
        put_u64(&mut b, self.rank);
        put_u64(&mut b, self.dropped_spans);
        put_u64(&mut b, self.spans.len() as u64);
        for s in &self.spans {
            put_str(&mut b, &s.name);
            put_u64(&mut b, s.id);
            put_f64(&mut b, s.t0_us);
            put_f64(&mut b, s.t1_us);
            put_u64(&mut b, s.depth as u64);
        }
        put_u64(&mut b, self.dropped_comm_events);
        put_u64(&mut b, self.comm_events.len() as u64);
        for e in &self.comm_events {
            b.push(match e.dir {
                CommDir::Send => 0,
                CommDir::Recv => 1,
            });
            put_u64(&mut b, e.peer);
            put_u64(&mut b, e.tag as u64);
            put_u64(&mut b, e.seq);
            put_u64(&mut b, e.bytes);
            put_f64(&mut b, e.t0_us);
            put_f64(&mut b, e.t1_us);
            put_u64(&mut b, e.span_id);
        }
        put_u64(&mut b, self.counters.len() as u64);
        for (n, v) in &self.counters {
            put_str(&mut b, n);
            put_u64(&mut b, *v);
        }
        put_u64(&mut b, self.hists.len() as u64);
        for h in &self.hists {
            put_str(&mut b, &h.name);
            put_u64(&mut b, h.count);
            put_u64(&mut b, h.sum);
            put_u64(&mut b, h.min);
            put_u64(&mut b, h.max);
            put_u64(&mut b, h.buckets.len() as u64);
            for &(lo, c) in &h.buckets {
                put_u64(&mut b, lo);
                put_u64(&mut b, c);
            }
        }
        put_u64(&mut b, self.health.len() as u64);
        for h in &self.health {
            put_str(&mut b, &h.name);
            put_u64(&mut b, h.count);
            put_f64(&mut b, h.mean);
            put_f64(&mut b, h.std_dev);
            put_f64(&mut b, h.error);
            put_f64(&mut b, h.tau_int);
            put_f64(&mut b, h.drift_z);
        }
        match self.comm {
            None => b.push(0),
            Some(c) => {
                b.push(1);
                put_u64(&mut b, c.messages_sent);
                put_u64(&mut b, c.bytes_sent);
                put_u64(&mut b, c.messages_recv);
                put_u64(&mut b, c.bytes_recv);
                put_u64(&mut b, c.max_message_bytes);
                put_f64(&mut b, c.comm_seconds);
                put_f64(&mut b, c.compute_seconds);
                put_f64(&mut b, c.recv_wait_seconds);
            }
        }
        b
    }

    /// Inverse of [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut c = Cursor { b: bytes, pos: 0 };
        let rank = c.u64()?;
        let dropped_spans = c.u64()?;
        let nspans = c.u64()? as usize;
        let mut spans = Vec::with_capacity(nspans.min(1 << 20));
        for _ in 0..nspans {
            spans.push(OwnedSpan {
                name: c.str()?,
                id: c.u64()?,
                t0_us: c.f64()?,
                t1_us: c.f64()?,
                depth: c.u64()? as u16,
            });
        }
        let dropped_comm_events = c.u64()?;
        let nev = c.u64()? as usize;
        let mut comm_events = Vec::with_capacity(nev.min(1 << 20));
        for _ in 0..nev {
            let dir = match c.u8()? {
                0 => CommDir::Send,
                1 => CommDir::Recv,
                t => return Err(format!("bad comm event dir {t}")),
            };
            comm_events.push(CommEvent {
                dir,
                peer: c.u64()?,
                tag: c.u64()? as u32,
                seq: c.u64()?,
                bytes: c.u64()?,
                t0_us: c.f64()?,
                t1_us: c.f64()?,
                span_id: c.u64()?,
            });
        }
        let nctr = c.u64()? as usize;
        let mut counters = Vec::with_capacity(nctr.min(1 << 20));
        for _ in 0..nctr {
            counters.push((c.str()?, c.u64()?));
        }
        let nhist = c.u64()? as usize;
        let mut hists = Vec::with_capacity(nhist.min(1 << 20));
        for _ in 0..nhist {
            let name = c.str()?;
            let count = c.u64()?;
            let sum = c.u64()?;
            let min = c.u64()?;
            let max = c.u64()?;
            let nb = c.u64()? as usize;
            let mut buckets = Vec::with_capacity(nb.min(1 << 20));
            for _ in 0..nb {
                buckets.push((c.u64()?, c.u64()?));
            }
            hists.push(HistSnapshot {
                name,
                count,
                sum,
                min,
                max,
                buckets,
            });
        }
        let nhealth = c.u64()? as usize;
        let mut health = Vec::with_capacity(nhealth.min(1 << 20));
        for _ in 0..nhealth {
            health.push(HealthSnapshot {
                name: c.str()?,
                count: c.u64()?,
                mean: c.f64()?,
                std_dev: c.f64()?,
                error: c.f64()?,
                tau_int: c.f64()?,
                drift_z: c.f64()?,
            });
        }
        let comm = match c.u8()? {
            0 => None,
            1 => Some(CommSummary {
                messages_sent: c.u64()?,
                bytes_sent: c.u64()?,
                messages_recv: c.u64()?,
                bytes_recv: c.u64()?,
                max_message_bytes: c.u64()?,
                comm_seconds: c.f64()?,
                compute_seconds: c.f64()?,
                recv_wait_seconds: c.f64()?,
            }),
            t => return Err(format!("bad comm tag {t}")),
        };
        if c.pos != bytes.len() {
            return Err(format!(
                "trailing bytes: consumed {} of {}",
                c.pos,
                bytes.len()
            ));
        }
        Ok(Self {
            rank,
            dropped_spans,
            spans,
            dropped_comm_events,
            comm_events,
            counters,
            hists,
            health,
            comm,
        })
    }
}

/// Gather every rank's record at rank 0 (rank order). Returns `Some` on
/// rank 0, `None` elsewhere — same convention as
/// [`Communicator::gather_bytes`].
pub fn gather_ranks<C: Communicator>(comm: &mut C, mine: &RankObs) -> Option<Vec<RankObs>> {
    let payloads = comm.gather_bytes(0, &mine.to_bytes())?;
    Some(
        payloads
            .iter()
            .map(|b| RankObs::from_bytes(b).expect("malformed RankObs payload in gather"))
            .collect(),
    )
}

// ---------------------------------------------------------------------
// Little-endian wire helpers.
// ---------------------------------------------------------------------

fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(b: &mut Vec<u8>, v: f64) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_str(b: &mut Vec<u8>, s: &str) {
    put_u64(b, s.len() as u64);
    b.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        if self.pos + n > self.b.len() {
            return Err(format!("truncated at byte {} (need {n} more)", self.pos));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("take returned 8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("take returned 8 bytes"),
        ))
    }

    fn str(&mut self) -> Result<String, String> {
        let n = self.u64()? as usize;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RankObs {
        let mut reg = Registry::new();
        reg.add_named("accepted", 41);
        reg.add_named("proposed", 100);
        reg.record_named("sweep_ns", 1500);
        reg.record_named("sweep_ns", 900);
        let mut obs = RankObs {
            rank: 2,
            dropped_spans: 1,
            spans: vec![OwnedSpan {
                name: "sweep".into(),
                id: 17,
                t0_us: 1.5,
                t1_us: 9.25,
                depth: 0,
            }],
            dropped_comm_events: 3,
            comm_events: vec![
                CommEvent {
                    dir: CommDir::Send,
                    peer: 1,
                    tag: 7,
                    seq: 0,
                    bytes: 128,
                    t0_us: 2.0,
                    t1_us: 2.5,
                    span_id: 17,
                },
                CommEvent {
                    dir: CommDir::Recv,
                    peer: 1,
                    tag: 7,
                    seq: 0,
                    bytes: 128,
                    t0_us: 3.0,
                    t1_us: 4.5,
                    span_id: 17,
                },
            ],
            health: vec![HealthSnapshot {
                name: "energy".into(),
                count: 400,
                mean: -1.25,
                std_dev: 0.5,
                error: 0.05,
                tau_int: 2.0,
                drift_z: 0.4,
            }],
            ..Default::default()
        };
        obs.absorb_registry(&reg);
        obs.set_comm(CommStats {
            messages_sent: 7,
            bytes_sent: 1024,
            comm_seconds: 0.25,
            ..Default::default()
        });
        obs
    }

    #[test]
    fn wire_round_trip_is_lossless() {
        let obs = sample();
        let back = RankObs::from_bytes(&obs.to_bytes()).unwrap();
        assert_eq!(back, obs);
    }

    #[test]
    fn from_bytes_rejects_truncation_and_trailing() {
        let bytes = sample().to_bytes();
        assert!(RankObs::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(RankObs::from_bytes(&extra).is_err());
    }

    #[test]
    fn absorb_merges_counters_and_hists() {
        let mut obs = sample();
        let mut reg = Registry::new();
        reg.add_named("accepted", 9);
        reg.record_named("sweep_ns", 3);
        obs.absorb_registry(&reg);
        assert_eq!(obs.counter("accepted"), 50);
        let h = obs.hists.iter().find(|h| h.name == "sweep_ns").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 3);
        assert_eq!(h.max, 1500);
        // Buckets stay sorted after the merge inserts a new low bucket.
        assert!(h.buckets.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn absorb_prefixed_namespaces_counters_and_hists() {
        let mut obs = RankObs::default();
        let mut alice = Registry::new();
        alice.add_named("accepted", 7);
        alice.record_named("sweep_ns", 100);
        let mut bob = Registry::new();
        bob.add_named("accepted", 3);
        bob.record_named("sweep_ns", 900);

        obs.absorb_registry_prefixed(&alice, "tenant.alice.");
        obs.absorb_registry_prefixed(&bob, "tenant.bob.");

        // Same engine counter name, two tenants: no cross-talk.
        assert_eq!(obs.counter("tenant.alice.accepted"), 7);
        assert_eq!(obs.counter("tenant.bob.accepted"), 3);
        assert_eq!(obs.counter("accepted"), 0);
        let a = obs
            .hists
            .iter()
            .find(|h| h.name == "tenant.alice.sweep_ns")
            .unwrap();
        assert_eq!((a.count, a.max), (1, 100));
        let b = obs
            .hists
            .iter()
            .find(|h| h.name == "tenant.bob.sweep_ns")
            .unwrap();
        assert_eq!((b.count, b.max), (1, 900));

        // Re-absorbing the same tenant sums into the same namespace.
        obs.absorb_registry_prefixed(&alice, "tenant.alice.");
        assert_eq!(obs.counter("tenant.alice.accepted"), 14);
        assert_eq!(obs.counter("tenant.bob.accepted"), 3);
    }

    #[test]
    fn counter_add_accumulates_dynamic_names() {
        let mut obs = RankObs::default();
        obs.counter_add("serve.jobs_completed", 2);
        obs.counter_add("serve.jobs_completed", 3);
        obs.counter_add("serve.requeues", 1);
        assert_eq!(obs.counter("serve.jobs_completed"), 5);
        assert_eq!(obs.counter("serve.requeues"), 1);
    }

    #[test]
    fn gather_collects_rank_order() {
        let results = qmc_comm::run_threads(3, |comm| {
            let mine = RankObs {
                rank: comm.rank() as u64,
                counters: vec![("x".to_string(), comm.rank() as u64 + 1)],
                ..Default::default()
            };
            gather_ranks(comm, &mine)
        });
        let gathered = results[0].as_ref().unwrap();
        assert_eq!(gathered.len(), 3);
        for (r, obs) in gathered.iter().enumerate() {
            assert_eq!(obs.rank, r as u64);
            assert_eq!(obs.counter("x"), r as u64 + 1);
        }
        assert!(results[1].is_none() && results[2].is_none());
    }
}
