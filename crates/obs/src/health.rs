//! Online convergence health: streaming binning for τ_int and error
//! bars, an equilibration drift test, and replica-ladder agreement.
//!
//! The offline analysis (`qmc_stats::BinningAnalysis`) needs the full
//! series in memory after the run ends; [`HealthMonitor`] is its
//! streaming twin, so a run can report its own error bars, integrated
//! autocorrelation time, and equilibration status *while it executes*
//! and export them into `METRICS_run.json`. The level-doubling scheme is
//! identical: level ℓ holds the series pair-averaged ℓ times, the error
//! estimate per level plateaus at the true error of the correlated
//! series, and `τ_int = ½ (ε_plateau / ε_naive)²`.
//!
//! `qmc-stats` sits *above* this crate in the dependency graph
//! (`qmc-stats → qmc-ckpt → qmc-obs`), so the online binner lives here
//! and is pinned against the offline `BinningAnalysis` by an integration
//! test requiring agreement within 1% on the same series.
//!
//! Everything is allocation-free in steady state: the level and era
//! tables are fixed arrays sized for 2⁶⁴ samples.

/// Hard upper bound on binning levels / drift eras (enough for any u64
/// sample count).
const MAX_LEVELS: usize = 64;

/// Welford accumulator for one binning level (mirrors
/// `qmc_stats::Accumulator` so online and offline error bars agree).
#[derive(Debug, Clone, Copy, Default)]
struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    #[inline]
    fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }
}

/// Streaming level-doubling binning analysis.
///
/// Each pushed value lands in level 0; every complete pair of values at
/// level ℓ is averaged into one value at level ℓ+1 (a trailing unpaired
/// value is simply never propagated — the exact semantics of the offline
/// `chunks_exact(2)` halving).
#[derive(Debug, Clone)]
pub struct OnlineBinning {
    levels: [Welford; MAX_LEVELS],
    /// Unpaired value waiting at each level (`NaN` = none; `push`
    /// rejects non-finite samples so the sentinel is unambiguous).
    pending: [f64; MAX_LEVELS],
    min_bins: usize,
    /// Non-finite samples rejected by `push`.
    rejected: u64,
}

impl OnlineBinning {
    /// Empty analysis; levels deeper than `min_bins` remaining bins are
    /// excluded from the plateau search, exactly like
    /// `BinningAnalysis::new(series, min_bins)`.
    pub fn new(min_bins: usize) -> Self {
        assert!(min_bins >= 2, "need at least 2 bins per level");
        Self {
            levels: [Welford::default(); MAX_LEVELS],
            pending: [f64::NAN; MAX_LEVELS],
            min_bins,
            rejected: 0,
        }
    }

    /// Add one observation. Non-finite samples are rejected (and counted
    /// in [`rejected`](Self::rejected)) rather than pushed: `NaN` would
    /// poison the Welford accumulators and, because `NaN` doubles as the
    /// empty-pending-slot sentinel, silently desynchronize the level
    /// pairing relative to the offline `BinningAnalysis`.
    #[inline]
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.rejected += 1;
            return;
        }
        let mut v = x;
        for lvl in 0..MAX_LEVELS {
            self.levels[lvl].push(v);
            if self.pending[lvl].is_nan() {
                self.pending[lvl] = v;
                return;
            }
            v = 0.5 * (self.pending[lvl] + v);
            self.pending[lvl] = f64::NAN;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.levels[0].n
    }

    /// Number of non-finite samples rejected by [`push`](Self::push).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.levels[0].mean
    }

    /// Sample standard deviation (single-sample spread, not the error of
    /// the mean).
    pub fn std_dev(&self) -> f64 {
        self.levels[0].variance().sqrt()
    }

    /// Naive (uncorrelated) error of the mean, `σ/√N`.
    pub fn naive_error(&self) -> f64 {
        self.levels[0].std_error()
    }

    /// Deepest level included in the plateau search: levels are included
    /// from 0 while the *previous* level still had `≥ 2·min_bins` bins.
    fn top_level(&self) -> usize {
        let mut top = 0;
        while top + 1 < MAX_LEVELS && self.levels[top].n / 2 >= self.min_bins as u64 {
            top += 1;
        }
        top
    }

    /// Plateau error estimate: the maximum over included levels.
    pub fn error(&self) -> f64 {
        (0..=self.top_level())
            .map(|l| self.levels[l].std_error())
            .fold(0.0, f64::max)
    }

    /// Integrated autocorrelation time, `½ (ε_plateau / ε_naive)²`.
    pub fn tau_int(&self) -> f64 {
        let naive = self.naive_error();
        if naive == 0.0 {
            return 0.5;
        }
        0.5 * (self.error() / naive).powi(2)
    }

    /// Effective number of independent samples, `N / (2 τ_int)`.
    pub fn effective_samples(&self) -> f64 {
        self.count() as f64 / (2.0 * self.tau_int())
    }
}

/// Streaming convergence health for one observable: the online binning
/// analysis plus a dyadic-window equilibration drift test.
///
/// The drift test keeps one accumulator per *era*, where era `k` covers
/// the `k`-th dyadic block of samples (`[2ᵏ, 2ᵏ⁺¹)` in 1-based order).
/// The *late* window is the newest eras merged until they hold at least
/// a third of the series; everything older is the *early* window. An
/// unequilibrated start shows up as a large z-score between the two
/// windows' means; the naive errors are inflated by `√(2 τ_int)` to
/// account for autocorrelation.
///
/// τ_int for that inflation is estimated on the *newest era only* (a
/// second binning restarted at each doubling): a slow drift masquerades
/// as correlation in the full-series τ, which would inflate the error
/// bars by exactly the signal being tested and mask it. The recent
/// window is stationary once the transient has passed, so its τ reflects
/// genuine autocorrelation.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    bin: OnlineBinning,
    /// Binning over the newest era only (reset at each doubling).
    recent: OnlineBinning,
    eras: [Welford; MAX_LEVELS],
}

impl HealthMonitor {
    /// Fresh monitor; `min_bins` as in [`OnlineBinning::new`].
    pub fn new(min_bins: usize) -> Self {
        Self {
            bin: OnlineBinning::new(min_bins),
            recent: OnlineBinning::new(min_bins),
            eras: [Welford::default(); MAX_LEVELS],
        }
    }

    /// Add one observation (non-finite samples are rejected and counted,
    /// as in [`OnlineBinning::push`]).
    #[inline]
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.bin.rejected += 1;
            return;
        }
        let i = self.bin.count() + 1; // 1-based index of this sample
        if i & (i - 1) == 0 {
            // Entering a new dyadic era: restart the recent-window
            // binning (fixed arrays — no allocation).
            self.recent = OnlineBinning::new(self.recent.min_bins);
        }
        let era = (64 - i.leading_zeros() - 1) as usize;
        self.eras[era].push(x);
        self.recent.push(x);
        self.bin.push(x);
    }

    /// The underlying binning analysis.
    pub fn binning(&self) -> &OnlineBinning {
        &self.bin
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.bin.count()
    }

    /// Number of non-finite samples rejected.
    pub fn rejected(&self) -> u64 {
        self.bin.rejected()
    }

    /// Drift z-score between the early and late sample windows
    /// (0 when fewer than 16 samples or the series is constant).
    pub fn drift_z(&self) -> f64 {
        let count = self.bin.count();
        if count < 16 {
            return 0.0;
        }
        let newest = (64 - count.leading_zeros() - 1) as usize;
        // Late window: newest eras merged until ≥ a third of the series
        // (a lone just-started era is never judged on its own).
        let mut late = Welford::default();
        let mut split = newest + 1;
        while split > 0 && late.n * 3 < count {
            split -= 1;
            late = merge(late, self.eras[split]);
        }
        let mut early = Welford::default();
        for era in &self.eras[..split] {
            if era.n > 0 {
                early = merge(early, *era);
            }
        }
        if early.n < 2 || late.n < 2 {
            return 0.0;
        }
        let infl = (2.0 * self.recent.tau_int()).sqrt().max(1.0);
        let se = ((early.std_error() * infl).powi(2) + (late.std_error() * infl).powi(2)).sqrt();
        if se == 0.0 {
            return 0.0;
        }
        (late.mean - early.mean).abs() / se
    }

    /// True when the drift z-score is below 3 (no detectable
    /// equilibration transient at the current sample count).
    pub fn equilibrated(&self) -> bool {
        self.drift_z() < 3.0
    }

    /// One-line human-readable status.
    pub fn report(&self) -> String {
        let b = &self.bin;
        format!(
            "n={} mean={:.6} ±{:.2e} tau_int={:.2} drift_z={:.2}{}",
            b.count(),
            b.mean(),
            b.error(),
            b.tau_int(),
            self.drift_z(),
            if self.equilibrated() { "" } else { " [DRIFT]" },
        )
    }
}

/// Chan et al. pairwise combination of two Welford accumulators.
fn merge(a: Welford, b: Welford) -> Welford {
    if a.n == 0 {
        return b;
    }
    if b.n == 0 {
        return a;
    }
    let (n1, n2) = (a.n as f64, b.n as f64);
    let delta = b.mean - a.mean;
    let total = n1 + n2;
    Welford {
        n: a.n + b.n,
        mean: a.mean + delta * n2 / total,
        m2: a.m2 + b.m2 + delta * delta * n1 * n2 / total,
    }
}

/// Replica-ladder agreement: z-separations `|m_{k+1} − m_k| /
/// √(σ_k² + σ_{k+1}²)` between successive replicas' sample
/// distributions (means `m`, standard deviations `σ`).
///
/// For a parallel-tempering ladder this predicts exchange viability:
/// adjacent rungs whose observable distributions barely overlap (large
/// z) cannot swap, so walkers stop diffusing across the ladder.
pub fn replica_agreement(means: &[f64], std_devs: &[f64]) -> Vec<f64> {
    assert_eq!(means.len(), std_devs.len());
    means
        .windows(2)
        .zip(std_devs.windows(2))
        .map(|(m, s)| {
            let spread = (s[0] * s[0] + s[1] * s[1]).sqrt();
            if spread == 0.0 {
                0.0
            } else {
                (m[1] - m[0]).abs() / spread
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The doc-comment series from qmc-stats: blocks of 8 repeated values
    /// are strongly correlated.
    fn correlated_series(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i / 8) % 7) as f64).collect()
    }

    #[test]
    fn online_binning_matches_known_tau_regime() {
        let xs = correlated_series(4096);
        let mut ob = OnlineBinning::new(32);
        for &x in &xs {
            ob.push(x);
        }
        assert_eq!(ob.count(), 4096);
        assert!(ob.error() > ob.naive_error());
        assert!(ob.tau_int() > 1.0, "tau {}", ob.tau_int());
    }

    #[test]
    fn constant_series_has_zero_error_and_unit_floor_tau() {
        let mut ob = OnlineBinning::new(2);
        for _ in 0..64 {
            ob.push(2.5);
        }
        assert_eq!(ob.error(), 0.0);
        assert_eq!(ob.tau_int(), 0.5);
        assert_eq!(ob.mean(), 2.5);
    }

    #[test]
    fn non_finite_samples_are_rejected_not_pooled() {
        // A NaN must neither poison the statistics nor be mistaken for
        // the empty-pending-slot sentinel (which would desynchronize the
        // level pairing for every later sample).
        let xs = correlated_series(4096);
        let mut clean = OnlineBinning::new(32);
        let mut dirty = OnlineBinning::new(32);
        for (i, &x) in xs.iter().enumerate() {
            clean.push(x);
            dirty.push(x);
            if i == 17 {
                dirty.push(f64::NAN);
                dirty.push(f64::INFINITY);
            }
        }
        assert_eq!(dirty.rejected(), 2);
        assert_eq!(dirty.count(), clean.count());
        assert_eq!(dirty.mean(), clean.mean());
        assert_eq!(dirty.error(), clean.error());
        assert_eq!(dirty.tau_int(), clean.tau_int());
        // The monitor guards its era accumulators the same way.
        let mut hm = HealthMonitor::new(16);
        for i in 0..512u32 {
            hm.push((i % 5) as f64);
            if i == 100 {
                hm.push(f64::NAN);
            }
        }
        assert_eq!(hm.rejected(), 1);
        assert_eq!(hm.count(), 512);
        assert!(hm.drift_z().is_finite());
    }

    #[test]
    fn drift_is_flagged_for_a_shifted_first_half() {
        let mut hm = HealthMonitor::new(16);
        // A cold start: far-off transient, then stationary noise-free-ish.
        for i in 0..1024u32 {
            let x = if i < 256 { 10.0 } else { 0.0 } + (i % 5) as f64 * 0.01;
            hm.push(x);
        }
        assert!(hm.drift_z() > 3.0, "z {}", hm.drift_z());
        assert!(!hm.equilibrated());
        // A stationary series is clean.
        let mut ok = HealthMonitor::new(16);
        for i in 0..1024u32 {
            ok.push((i % 5) as f64 * 0.01);
        }
        assert!(ok.equilibrated(), "z {}", ok.drift_z());
    }

    #[test]
    fn replica_agreement_scores_overlap() {
        // Overlapping rungs → small z; disjoint rungs → large z.
        let z = replica_agreement(&[0.0, 0.5, 10.0], &[1.0, 1.0, 1.0]);
        assert_eq!(z.len(), 2);
        assert!(z[0] < 1.0);
        assert!(z[1] > 3.0);
        assert_eq!(replica_agreement(&[1.0, 1.0], &[0.0, 0.0]), vec![0.0]);
    }

    #[test]
    fn report_mentions_drift_only_when_present() {
        let mut hm = HealthMonitor::new(16);
        for i in 0..512u32 {
            hm.push((i % 3) as f64);
        }
        assert!(!hm.report().contains("[DRIFT]"));
    }
}
