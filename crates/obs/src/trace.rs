//! Causal comm tracing: a communicator wrapper stamping every user-level
//! point-to-point operation into the rank's comm-event ring.
//!
//! [`TracingComm`] follows the same opt-in wrapper pattern as
//! `qmc_verify::RecordingComm` and `qmc_comm::FaultyComm`: production
//! drivers never construct it, so bare runs carry zero overhead and move
//! exactly the same bytes; a traced run wraps each rank's communicator
//! and the physics code is untouched. Compound operations (sendrecv, the
//! collectives, the `_into` variants) are *not* forwarded wholesale —
//! the trait's default implementations decompose them through
//! `send_bytes`/`recv_bytes`/`*_internal` on the wrapper, so the traced
//! event stream is the exact user-level message pattern.
//!
//! Each event carries a per-channel sequence number: the `seq`-th user
//! message on the directed channel `(src, dst, tag)`. Both end points
//! count their own channel traffic, so a send and the receive it
//! satisfied agree on `(src, dst, tag, seq)` with no global clock — the
//! merger in [`crate::analysis`] pairs them on that key into
//! happens-before edges. Collective-internal traffic is forwarded
//! verbatim and untraced (it would swamp the ring and its causality is
//! already implied by the SPMD collective ordering).

use std::time::Duration;

use qmc_comm::{CommStats, Communicator};

use crate::record::CommDir;
use crate::span::{comm_event, now_us, spans_enabled, CommRec};

/// Per-channel message counters. A rank talks to a handful of peers over
/// a handful of tags, so a linear scan over a tiny table beats hashing
/// on the per-message hot path (the guarded trace overhead budget is 2%
/// of a whole halo-exchange sweep).
#[derive(Default)]
struct ChannelSeq(Vec<(usize, u32, u64)>);

impl ChannelSeq {
    /// Post-increment the counter for `(peer, tag)`.
    #[inline]
    fn bump(&mut self, peer: usize, tag: u32) -> u64 {
        for e in &mut self.0 {
            if e.0 == peer && e.1 == tag {
                let s = e.2;
                e.2 += 1;
                return s;
            }
        }
        self.0.push((peer, tag, 1));
        0
    }
}

/// Communicator wrapper that records user-level sends/receives into the
/// current thread's recorder (see [`crate::init`]). When no recorder is
/// installed or spans are disabled, every operation forwards with one
/// thread-local flag check of overhead.
pub struct TracingComm<'a, C: Communicator> {
    inner: &'a mut C,
    /// Messages sent so far per `(dest, tag)` channel.
    send_seq: ChannelSeq,
    /// Messages received so far per `(src, tag)` channel.
    recv_seq: ChannelSeq,
}

impl<'a, C: Communicator> TracingComm<'a, C> {
    /// Wrap `inner`. Channel sequence numbers start at zero, so wrap
    /// once per run (before the first traced message), not mid-stream.
    pub fn new(inner: &'a mut C) -> Self {
        Self {
            inner,
            send_seq: ChannelSeq::default(),
            recv_seq: ChannelSeq::default(),
        }
    }
}

impl<C: Communicator> Communicator for TracingComm<'_, C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send_bytes(&mut self, dest: usize, tag: u32, data: &[u8]) {
        // Sequence numbers advance whether or not recording is on: both
        // endpoints must agree on them, and the peer can't see our flag.
        let seq = self.send_seq.bump(dest, tag);
        if !spans_enabled() {
            return self.inner.send_bytes(dest, tag, data);
        }
        let t0 = now_us();
        self.inner.send_bytes(dest, tag, data);
        comm_event(CommRec {
            dir: CommDir::Send,
            peer: dest as u64,
            tag,
            seq,
            bytes: data.len() as u64,
            t0_us: t0,
            t1_us: now_us(),
            span_id: 0, // stamped by comm_event
        });
    }

    fn recv_bytes(&mut self, src: usize, tag: u32) -> Vec<u8> {
        let seq = self.recv_seq.bump(src, tag);
        if !spans_enabled() {
            return self.inner.recv_bytes(src, tag);
        }
        let t0 = now_us();
        let msg = self.inner.recv_bytes(src, tag);
        comm_event(CommRec {
            dir: CommDir::Recv,
            peer: src as u64,
            tag,
            seq,
            bytes: msg.len() as u64,
            t0_us: t0,
            t1_us: now_us(),
            span_id: 0, // stamped by comm_event
        });
        msg
    }

    fn recv_bytes_timeout(&mut self, src: usize, tag: u32, timeout: Duration) -> Option<Vec<u8>> {
        if !spans_enabled() {
            let msg = self.inner.recv_bytes_timeout(src, tag, timeout)?;
            self.recv_seq.bump(src, tag);
            return Some(msg);
        }
        let t0 = now_us();
        // A timed-out attempt delivered nothing: the channel count must
        // only advance on delivery or the key would drift off the
        // sender's numbering.
        let msg = self.inner.recv_bytes_timeout(src, tag, timeout)?;
        let seq = self.recv_seq.bump(src, tag);
        comm_event(CommRec {
            dir: CommDir::Recv,
            peer: src as u64,
            tag,
            seq,
            bytes: msg.len() as u64,
            t0_us: t0,
            t1_us: now_us(),
            span_id: 0, // stamped by comm_event
        });
        Some(msg)
    }

    fn compute(&mut self, units: f64) {
        self.inner.compute(units);
    }

    fn now(&self) -> f64 {
        self.inner.now()
    }

    fn stats(&self) -> CommStats {
        self.inner.stats()
    }

    fn next_collective_seq(&mut self) -> u32 {
        self.inner.next_collective_seq()
    }

    fn send_internal(&mut self, dest: usize, tag: u32, data: &[u8]) {
        self.inner.send_internal(dest, tag, data);
    }

    fn recv_internal(&mut self, src: usize, tag: u32) -> Vec<u8> {
        self.inner.recv_internal(src, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CommDir;
    use crate::span::{finish, init, span, ObsConfig};
    use qmc_comm::SerialComm;

    #[test]
    fn untraced_when_recorder_absent() {
        let mut comm = SerialComm::new();
        let mut tc = TracingComm::new(&mut comm);
        tc.send_bytes(0, 3, &[1, 2]);
        assert_eq!(tc.recv_bytes(0, 3), vec![1, 2]);
        assert!(finish().is_none());
    }

    #[test]
    fn events_carry_channel_seq_and_span_id() {
        init(0, &ObsConfig::new());
        let mut comm = SerialComm::new();
        let mut tc = TracingComm::new(&mut comm);
        let sweep_id = {
            let s = span("exchange");
            let id = s.id();
            tc.send_bytes(0, 7, &[1, 2, 3]);
            tc.send_bytes(0, 7, &[4]);
            tc.recv_bytes(0, 7);
            tc.recv_bytes(0, 7);
            id
        };
        // Outside any span: span_id is 0.
        tc.send_bytes(0, 9, &[5]);
        tc.recv_bytes(0, 9);
        let obs = finish().unwrap();
        assert_eq!(obs.comm_events.len(), 6);
        assert_eq!(obs.dropped_comm_events, 0);
        let e = &obs.comm_events;
        assert_eq!(e[0].dir, CommDir::Send);
        assert_eq!((e[0].tag, e[0].seq, e[0].bytes), (7, 0, 3));
        assert_eq!((e[1].tag, e[1].seq), (7, 1));
        assert_eq!(e[2].dir, CommDir::Recv);
        assert_eq!((e[2].tag, e[2].seq, e[2].bytes), (7, 0, 3));
        assert_eq!((e[3].tag, e[3].seq), (7, 1));
        for ev in &e[..4] {
            assert_eq!(ev.span_id, sweep_id);
            assert!(ev.t1_us >= ev.t0_us);
        }
        // The tag-9 pair is a fresh channel: seq restarts at 0.
        assert_eq!((e[4].tag, e[4].seq, e[4].span_id), (9, 0, 0));
        assert_eq!(e[5].dir, CommDir::Recv);
        // Events are chronological.
        for w in e.windows(2) {
            assert!(w[0].t0_us <= w[1].t0_us);
        }
    }

    #[test]
    fn collective_traffic_is_not_traced() {
        init(0, &ObsConfig::new());
        let mut comm = SerialComm::new();
        let mut tc = TracingComm::new(&mut comm);
        tc.barrier();
        let sum = tc.allreduce_f64(&[2.0], qmc_comm::ReduceOp::Sum);
        assert_eq!(sum, vec![2.0]);
        let obs = finish().unwrap();
        assert!(obs.comm_events.is_empty());
    }

    #[test]
    fn sendrecv_decomposes_into_traced_send_then_recv() {
        init(0, &ObsConfig::new());
        let mut comm = SerialComm::new();
        let mut tc = TracingComm::new(&mut comm);
        let got = tc.sendrecv_bytes(0, 4, &[9, 9], 0, 4);
        assert_eq!(got, vec![9, 9]);
        let obs = finish().unwrap();
        assert_eq!(obs.comm_events.len(), 2);
        assert_eq!(obs.comm_events[0].dir, CommDir::Send);
        assert_eq!(obs.comm_events[1].dir, CommDir::Recv);
    }

    #[test]
    fn timeout_recv_counts_only_deliveries() {
        init(0, &ObsConfig::new());
        let mut comm = SerialComm::new();
        let mut tc = TracingComm::new(&mut comm);
        tc.send_bytes(0, 2, &[1]);
        let got = tc.recv_bytes_timeout(0, 2, Duration::from_millis(1));
        assert_eq!(got, Some(vec![1]));
        let obs = finish().unwrap();
        assert_eq!(obs.comm_events.len(), 2);
        assert_eq!(obs.comm_events[1].seq, 0);
    }
}
