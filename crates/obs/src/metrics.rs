//! Named monotonic counters and log₂-bucketed histograms.
//!
//! A [`Registry`] is a small, flat store: registration (name → id) is a
//! linear scan done once per counter at construction time; updates through
//! a [`CounterId`]/[`HistId`] are a single indexed add. Engines own one
//! registry each so their counters exist (and keep reporting the same
//! values) whether or not the observability layer is enabled; the per-rank
//! recorder owns another for harness-level metrics.

/// Handle to a registered counter (index into the registry's flat store).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(pub(crate) usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(pub(crate) usize);

/// Number of log₂ buckets: bucket 0 holds the value 0, bucket `b ≥ 1`
/// holds values with bit length `b`, i.e. `[2^(b−1), 2^b)`.
pub const N_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples (durations in nanoseconds,
/// message sizes in bytes, …). Fixed-size, allocation-free recording.
#[derive(Debug, Clone)]
pub struct Hist {
    /// Per-bucket sample counts (see [`N_BUCKETS`] for the bucket rule).
    pub buckets: [u64; N_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping add; practical totals never wrap).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl Hist {
    /// Fresh empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a value: 0 for 0, else the bit length.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()) as usize
        }
    }

    /// Inclusive lower bound of bucket `b`.
    #[inline]
    pub fn bucket_lo(b: usize) -> u64 {
        if b == 0 {
            0
        } else {
            1u64 << (b - 1)
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Smallest sample, or 0 when the histogram is empty (the serialized
    /// form; `min` itself is `u64::MAX` until the first sample).
    pub fn min_or_zero(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(inclusive lower bound, count)` pairs.
    pub fn nonzero(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (Self::bucket_lo(b), c))
    }
}

/// A flat registry of named counters and histograms.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: Vec<(&'static str, u64)>,
    hists: Vec<(&'static str, Hist)>,
}

impl Registry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or look up) a counter by name.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| *n == name) {
            return CounterId(i);
        }
        self.counters.push((name, 0));
        CounterId(self.counters.len() - 1)
    }

    /// Register (or look up) a histogram by name.
    pub fn hist(&mut self, name: &'static str) -> HistId {
        if let Some(i) = self.hists.iter().position(|(n, _)| *n == name) {
            return HistId(i);
        }
        self.hists.push((name, Hist::new()));
        HistId(self.hists.len() - 1)
    }

    /// Add `n` to a registered counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].1 += n;
    }

    /// Add `n` to a counter by name (registers it on first use).
    pub fn add_named(&mut self, name: &'static str, n: u64) {
        let id = self.counter(name);
        self.add(id, n);
    }

    /// Record a sample into a registered histogram.
    #[inline]
    pub fn record(&mut self, id: HistId, v: u64) {
        self.hists[id.0].1.record(v);
    }

    /// Record a sample by histogram name (registers it on first use).
    pub fn record_named(&mut self, name: &'static str, v: u64) {
        let id = self.hist(name);
        self.record(id, v);
    }

    /// Current value of a counter (0 when unregistered).
    pub fn get(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Current value of a counter by id.
    #[inline]
    pub fn value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Histogram by name, if registered.
    pub fn hist_get(&self, name: &str) -> Option<&Hist> {
        self.hists.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }

    /// Overwrite counter `index` (registration order). Only checkpoint
    /// restore may rewind a counter; everything else must go through
    /// the monotonic `add` path.
    pub fn set_counter(&mut self, index: usize, value: u64) {
        self.counters[index].1 = value;
    }

    /// Mutable histogram by registration index, for checkpoint restore.
    pub fn hist_mut(&mut self, index: usize) -> &mut Hist {
        &mut self.hists[index].1
    }

    /// All counters in registration order.
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    /// All histograms in registration order.
    pub fn hists(&self) -> &[(&'static str, Hist)] {
        &self.hists
    }

    /// True when no counter or histogram was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_register_is_idempotent() {
        let mut r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        assert_eq!(a, b);
        r.add(a, 3);
        r.add_named("x", 4);
        assert_eq!(r.get("x"), 7);
        assert_eq!(r.get("missing"), 0);
    }

    #[test]
    fn hist_bucket_rule() {
        assert_eq!(Hist::bucket_index(0), 0);
        assert_eq!(Hist::bucket_index(1), 1);
        assert_eq!(Hist::bucket_index(2), 2);
        assert_eq!(Hist::bucket_index(3), 2);
        assert_eq!(Hist::bucket_index(4), 3);
        assert_eq!(Hist::bucket_index(u64::MAX), 64);
        assert_eq!(Hist::bucket_lo(0), 0);
        assert_eq!(Hist::bucket_lo(1), 1);
        assert_eq!(Hist::bucket_lo(5), 16);
        // every value lands in the bucket whose range contains it
        for v in [0u64, 1, 2, 5, 100, 1 << 40, u64::MAX] {
            let b = Hist::bucket_index(v);
            assert!(v >= Hist::bucket_lo(b));
            if b < 64 {
                assert!(v < Hist::bucket_lo(b + 1) || b == 0);
            }
        }
    }

    #[test]
    fn hist_stats_track_samples() {
        let mut h = Hist::new();
        assert_eq!(h.min_or_zero(), 0);
        for v in [5u64, 9, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 1014);
        assert_eq!(h.min, 5);
        assert_eq!(h.max, 1000);
        assert!((h.mean() - 338.0).abs() < 1.0);
        let nz: Vec<_> = h.nonzero().collect();
        assert_eq!(nz, vec![(4, 1), (8, 1), (512, 1)]);
    }
}
