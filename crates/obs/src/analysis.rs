//! Cross-rank trace analysis: happens-before merging of traced comm
//! events, critical-path extraction, and per-rank time attribution.
//!
//! Input is the per-rank [`RankObs`] records gathered at rank 0 from a
//! run whose communicators were wrapped in
//! [`TracingComm`](crate::TracingComm). Each traced send and receive
//! carries the channel key `(src, dst, tag, seq)`; a send and the
//! receive it satisfied agree on that key, so joining the per-rank
//! streams on it yields the cross-rank happens-before DAG without any
//! global clock: within a rank, events are ordered by program order, and
//! across ranks each matched pair contributes a send → receive edge.
//!
//! Before trusting the DAG, [`analyze`] rebuilds a
//! [`qmc_verify::WorldTrace`] from the same events and runs the protocol
//! checker over it — the send/recv matching discipline the checker
//! enforces is exactly what makes the seq-key join sound.
//!
//! The **critical path** is extracted by walking the DAG backward from
//! the last event of the last-finishing rank. At a receive, the binding
//! constraint is whichever finished later: the matched send on the peer
//! (→ a *message* segment, and the walk jumps ranks) or the previous
//! local event (→ a *compute* segment). The resulting alternation of
//! compute and message segments is the longest dependency chain through
//! the run — the thing that must shrink for the run to get faster.

use std::collections::HashMap;

use crate::record::{CommDir, CommEvent, RankObs};
use crate::RunMeta;

/// A matched message: a send on `src` paired with its receive on `dst`.
#[derive(Debug, Clone, Copy)]
pub struct Flow {
    /// Sending rank.
    pub src: u64,
    /// Receiving rank.
    pub dst: u64,
    /// Message tag.
    pub tag: u32,
    /// Channel sequence number.
    pub seq: u64,
    /// The send call (as recorded on `src`).
    pub send: CommEvent,
    /// The receive call (as recorded on `dst`).
    pub recv: CommEvent,
}

/// Result of joining all ranks' comm events on the channel key.
#[derive(Debug, Clone, Default)]
pub struct FlowMatch {
    /// Matched send/receive pairs.
    pub flows: Vec<Flow>,
    /// Sends whose receive never appeared (ring overflow, or in-flight
    /// at finish).
    pub unmatched_sends: u64,
    /// Receives whose send never appeared.
    pub unmatched_recvs: u64,
}

/// Join the ranks' traced comm events into matched message flows.
pub fn match_flows(ranks: &[RankObs]) -> FlowMatch {
    // Key: (src, dst, tag, seq) — both endpoints computed it locally.
    let mut sends: HashMap<(u64, u64, u32, u64), CommEvent> = HashMap::new();
    let mut out = FlowMatch::default();
    for r in ranks {
        for e in &r.comm_events {
            if e.dir == CommDir::Send {
                sends.insert((r.rank, e.peer, e.tag, e.seq), *e);
            }
        }
    }
    for r in ranks {
        for e in &r.comm_events {
            if e.dir == CommDir::Recv {
                match sends.remove(&(e.peer, r.rank, e.tag, e.seq)) {
                    Some(send) => out.flows.push(Flow {
                        src: e.peer,
                        dst: r.rank,
                        tag: e.tag,
                        seq: e.seq,
                        send,
                        recv: *e,
                    }),
                    None => out.unmatched_recvs += 1,
                }
            }
        }
    }
    out.unmatched_sends = sends.len() as u64;
    out
}

/// Rebuild a [`qmc_verify::WorldTrace`] from the traced user-level comm
/// events, suitable for [`qmc_verify::check`]. Ranks are indexed by
/// their `rank` field; gaps (a rank that recorded nothing) are empty.
pub fn world_trace(ranks: &[RankObs]) -> qmc_verify::WorldTrace {
    let n = ranks.iter().map(|r| r.rank + 1).max().unwrap_or(0) as usize;
    let mut tr = qmc_verify::WorldTrace {
        ranks: vec![Vec::new(); n],
    };
    for r in ranks {
        let events = &mut tr.ranks[r.rank as usize];
        for e in &r.comm_events {
            events.push(match e.dir {
                CommDir::Send => qmc_verify::Event::Send {
                    dst: e.peer as usize,
                    tag: e.tag,
                    bytes: e.bytes as usize,
                    internal: false,
                },
                CommDir::Recv => qmc_verify::Event::Recv {
                    src: e.peer as usize,
                    tag: e.tag,
                    bytes: e.bytes as usize,
                    internal: false,
                },
            });
        }
    }
    tr
}

/// What a critical-path segment spends its time on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Local work on `rank` (everything between two comm events).
    Compute,
    /// A message in flight from `from_rank` to `rank` (send completion
    /// to receive completion, including the receiver's wait).
    Message,
}

/// One segment of the critical path, in run order after
/// [`Analysis::critical_path`] is assembled.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Kind of segment.
    pub kind: SegmentKind,
    /// Rank the segment ends on (receiver for messages).
    pub rank: u64,
    /// Rank the segment starts on (sender for messages; `rank` itself
    /// for compute).
    pub from_rank: u64,
    /// Human label: the innermost span active at the segment's terminal
    /// event (or `tag N` for an unlabelled message).
    pub label: String,
    /// Span id of that span in the same rank's trace (0 = none).
    pub span_id: u64,
    /// Segment start, microseconds since the shared epoch.
    pub t0_us: f64,
    /// Segment end.
    pub t1_us: f64,
}

impl Segment {
    /// Segment duration in microseconds.
    pub fn dur_us(&self) -> f64 {
        (self.t1_us - self.t0_us).max(0.0)
    }
}

/// Per-rank wall-time attribution over the traced window.
#[derive(Debug, Clone, Copy)]
pub struct RankAttribution {
    /// Rank.
    pub rank: u64,
    /// Traced window: first event start to last event end, µs.
    pub wall_us: f64,
    /// Time inside top-level spans not spent in traced comm calls.
    pub compute_us: f64,
    /// Time inside traced receive calls (blocked or copying).
    pub wait_us: f64,
    /// Time inside traced send calls.
    pub send_us: f64,
    /// Traced messages this rank received.
    pub messages_in: u64,
    /// Traced messages this rank sent.
    pub messages_out: u64,
}

impl RankAttribution {
    /// Fraction of the traced window the attribution accounts for.
    pub fn coverage(&self) -> f64 {
        if self.wall_us > 0.0 {
            (self.compute_us + self.wait_us + self.send_us) / self.wall_us
        } else {
            1.0
        }
    }
}

/// Full analysis result for one traced run.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Global traced window (max rank end − min rank start), µs.
    pub wall_us: f64,
    /// Per-rank attribution, rank order.
    pub ranks: Vec<RankAttribution>,
    /// Critical path, run order.
    pub critical_path: Vec<Segment>,
    /// Sum of critical-path segment durations, µs.
    pub critical_path_us: f64,
    /// Rank with the most attributed compute time.
    pub straggler: u64,
    /// Load imbalance: max over ranks of compute time ÷ mean.
    pub imbalance: f64,
    /// Matched message pairs.
    pub matched_messages: u64,
    /// Sends with no matching traced receive.
    pub unmatched_sends: u64,
    /// Receives with no matching traced send.
    pub unmatched_recvs: u64,
}

impl Analysis {
    /// Total critical-path time attributed to each rank's compute
    /// segments, µs, indexed by rank.
    pub fn path_compute_by_rank(&self) -> Vec<f64> {
        let n = self.ranks.len();
        let mut out = vec![0.0; n];
        for s in &self.critical_path {
            if s.kind == SegmentKind::Compute && (s.rank as usize) < n {
                out[s.rank as usize] += s.dur_us();
            }
        }
        out
    }

    /// Rank owning the largest share of critical-path compute time.
    pub fn path_dominant_rank(&self) -> u64 {
        let by_rank = self.path_compute_by_rank();
        by_rank
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite path times"))
            .map(|(r, _)| r as u64)
            .unwrap_or(0)
    }
}

/// Traced window of one rank: `(start, end)` over spans and comm events.
fn rank_window(r: &RankObs) -> Option<(f64, f64)> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for s in &r.spans {
        lo = lo.min(s.t0_us);
        hi = hi.max(s.t1_us);
    }
    for e in &r.comm_events {
        lo = lo.min(e.t0_us);
        hi = hi.max(e.t1_us);
    }
    (lo <= hi).then_some((lo, hi))
}

fn span_label(r: &RankObs, span_id: u64) -> Option<&str> {
    if span_id == 0 {
        return None;
    }
    r.spans
        .iter()
        .find(|s| s.id == span_id)
        .map(|s| s.name.as_str())
}

/// Analyze a gathered set of per-rank records from a traced run.
///
/// When no rank overflowed its comm ring, the reconstructed event trace
/// is first validated with `qmc_verify::check` — a protocol violation is
/// returned as `Err` rather than silently producing a nonsense DAG.
/// (With overflow the trace is incomplete, so the check is skipped and
/// unmatched counts tell the story instead.)
pub fn analyze(ranks: &[RankObs]) -> Result<Analysis, String> {
    if ranks.is_empty() {
        return Err("no rank records to analyze".to_string());
    }
    let complete = ranks.iter().all(|r| r.dropped_comm_events == 0);
    if complete {
        qmc_verify::check(&world_trace(ranks)).map_err(|vs| {
            let lines: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
            format!("protocol check failed: {}", lines.join("; "))
        })?;
    }
    let fm = match_flows(ranks);
    // recv lookup: (dst, src, tag, seq) → flow. seq numbers count per
    // directed (src, dst, tag) channel, so the sender must be part of
    // the key — the same (tag, seq) received from two different peers
    // is two distinct messages, not one.
    let mut recv_flow: HashMap<(u64, u64, u32, u64), &Flow> = HashMap::new();
    for f in &fm.flows {
        recv_flow.insert((f.dst, f.src, f.tag, f.seq), f);
    }
    let by_rank: HashMap<u64, &RankObs> = ranks.iter().map(|r| (r.rank, r)).collect();

    // ---- per-rank attribution ----------------------------------------
    let mut attrs = Vec::with_capacity(ranks.len());
    let mut global_lo = f64::INFINITY;
    let mut global_hi = f64::NEG_INFINITY;
    for r in ranks {
        let (lo, hi) = rank_window(r).unwrap_or((0.0, 0.0));
        global_lo = global_lo.min(lo);
        global_hi = global_hi.max(hi);
        let mut wait = 0.0;
        let mut send = 0.0;
        let mut in_span_comm = 0.0;
        let mut m_in = 0;
        let mut m_out = 0;
        for e in &r.comm_events {
            let d = (e.t1_us - e.t0_us).max(0.0);
            match e.dir {
                CommDir::Recv => {
                    wait += d;
                    m_in += 1;
                }
                CommDir::Send => {
                    send += d;
                    m_out += 1;
                }
            }
            if e.span_id != 0 {
                in_span_comm += d;
            }
        }
        let top: f64 = r
            .spans
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| (s.t1_us - s.t0_us).max(0.0))
            .sum();
        attrs.push(RankAttribution {
            rank: r.rank,
            wall_us: hi - lo,
            compute_us: (top - in_span_comm).max(0.0),
            wait_us: wait,
            send_us: send,
            messages_in: m_in,
            messages_out: m_out,
        });
    }

    // ---- critical path (backward walk) -------------------------------
    let mut segments: Vec<Segment> = Vec::new();
    // End on the last-finishing rank.
    let end_rank = ranks
        .iter()
        .max_by(|a, b| {
            let ea = rank_window(a).map_or(f64::NEG_INFINITY, |w| w.1);
            let eb = rank_window(b).map_or(f64::NEG_INFINITY, |w| w.1);
            ea.partial_cmp(&eb).expect("finite windows")
        })
        .expect("ranks nonempty");
    let (_, end_time) = rank_window(end_rank).unwrap_or((0.0, 0.0));
    let mut cur_rank = end_rank;
    let mut cur_idx = end_rank.comm_events.len();
    // Tail: compute from the last comm event (or window start) to the end.
    {
        let t0 = end_rank
            .comm_events
            .last()
            .map(|e| e.t1_us)
            .unwrap_or_else(|| rank_window(end_rank).map_or(0.0, |w| w.0));
        if end_time > t0 {
            segments.push(Segment {
                kind: SegmentKind::Compute,
                rank: end_rank.rank,
                from_rank: end_rank.rank,
                label: "run-tail".to_string(),
                span_id: 0,
                t0_us: t0,
                t1_us: end_time,
            });
        }
    }
    // Walk backward; each step consumes one event (program-order hop) or
    // jumps along a matched message edge. The happens-before order of a
    // real execution is acyclic, but the "was the message binding?"
    // test below compares *timestamps*, and preemption can skew those
    // (a sender parked inside `send_bytes` after depositing stamps its
    // completion long after the receiver consumed the message). A
    // skew-misled hop can then land *above* territory this walk already
    // covered on the sender's rank and loop through the same exchange
    // forever. `lowest` records the lowest event index examined per
    // rank; clamping every hop target to it makes each iteration
    // examine a fresh (rank, index) pair, so the walk provably
    // terminates and no segment is emitted twice. The step cap stays as
    // a backstop against a corrupted trace.
    let total_events: usize = ranks.iter().map(|r| r.comm_events.len()).sum();
    let mut lowest: HashMap<u64, usize> = HashMap::new();
    let mut steps = 0usize;
    while cur_idx > 0 && steps <= 2 * total_events + 2 {
        steps += 1;
        lowest.insert(cur_rank.rank, cur_idx - 1);
        let e = &cur_rank.comm_events[cur_idx - 1];
        let prev_t1 = if cur_idx >= 2 {
            cur_rank.comm_events[cur_idx - 2].t1_us
        } else {
            rank_window(cur_rank).map_or(e.t0_us, |w| w.0)
        };
        let flow = (e.dir == CommDir::Recv)
            .then(|| recv_flow.get(&(cur_rank.rank, e.peer, e.tag, e.seq)))
            .flatten();
        if let Some(f) = flow {
            if f.send.t1_us > prev_t1 {
                // The message (and the wait for it) was the binding
                // constraint: jump to the sender.
                segments.push(Segment {
                    kind: SegmentKind::Message,
                    rank: cur_rank.rank,
                    from_rank: f.src,
                    label: format!("tag {}", e.tag),
                    span_id: e.span_id,
                    t0_us: f.send.t1_us,
                    t1_us: e.t1_us,
                });
                let Some(sender) = by_rank.get(&f.src) else {
                    break;
                };
                let mut sidx = sender
                    .comm_events
                    .iter()
                    .position(|s| {
                        s.dir == CommDir::Send
                            && s.peer == f.dst
                            && s.tag == f.tag
                            && s.seq == f.seq
                    })
                    .map(|i| i + 1)
                    .unwrap_or(0);
                if let Some(&lo) = lowest.get(&f.src) {
                    // Never re-enter already-walked territory (see the
                    // loop comment): resume below the sender's floor.
                    sidx = sidx.min(lo);
                }
                cur_rank = sender;
                cur_idx = sidx;
                continue;
            }
        }
        // Local work (or the local program order) was binding.
        segments.push(Segment {
            kind: SegmentKind::Compute,
            rank: cur_rank.rank,
            from_rank: cur_rank.rank,
            label: span_label(cur_rank, e.span_id)
                .unwrap_or("untracked")
                .to_string(),
            span_id: e.span_id,
            t0_us: prev_t1,
            t1_us: e.t1_us,
        });
        cur_idx -= 1;
    }
    segments.reverse();
    let critical_path_us = segments.iter().map(Segment::dur_us).sum();

    // ---- straggler / imbalance ---------------------------------------
    let straggler = attrs
        .iter()
        .max_by(|a, b| {
            a.compute_us
                .partial_cmp(&b.compute_us)
                .expect("finite compute")
        })
        .map(|a| a.rank)
        .unwrap_or(0);
    let mean_compute: f64 =
        attrs.iter().map(|a| a.compute_us).sum::<f64>() / attrs.len().max(1) as f64;
    let max_compute = attrs.iter().map(|a| a.compute_us).fold(0.0, f64::max);
    let imbalance = if mean_compute > 0.0 {
        max_compute / mean_compute
    } else {
        1.0
    };

    Ok(Analysis {
        wall_us: (global_hi - global_lo).max(0.0),
        ranks: attrs,
        critical_path: segments,
        critical_path_us,
        straggler,
        imbalance,
        matched_messages: fm.flows.len() as u64,
        unmatched_sends: fm.unmatched_sends,
        unmatched_recvs: fm.unmatched_recvs,
    })
}

/// Schema identifier written into every analysis artifact.
pub const ANALYSIS_SCHEMA: &str = "qmc-analysis/v1";

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the `qmc-analysis/v1` artifact.
pub fn analysis_json(meta: &RunMeta, a: &Analysis) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{ANALYSIS_SCHEMA}\",\n"));
    out.push_str("  \"run\": {\n");
    out.push_str(&format!("    \"name\": \"{}\",\n", esc(&meta.name)));
    out.push_str(&format!("    \"engine\": \"{}\",\n", esc(&meta.engine)));
    out.push_str(&format!("    \"backend\": \"{}\",\n", esc(&meta.backend)));
    out.push_str(&format!("    \"ranks\": {}\n  }},\n", meta.ranks));
    out.push_str(&format!("  \"wall_us\": {},\n", a.wall_us));
    out.push_str(&format!("  \"imbalance\": {},\n", a.imbalance));
    out.push_str(&format!("  \"straggler\": {},\n", a.straggler));
    out.push_str(&format!(
        "  \"messages\": {{\"matched\": {}, \"unmatched_sends\": {}, \"unmatched_recvs\": {}}},\n",
        a.matched_messages, a.unmatched_sends, a.unmatched_recvs
    ));
    out.push_str("  \"ranks\": [");
    for (i, r) in a.ranks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rank\": {}, \"wall_us\": {}, \"compute_us\": {}, \"wait_us\": {}, \
             \"send_us\": {}, \"coverage\": {}, \"messages_in\": {}, \"messages_out\": {}}}",
            r.rank,
            r.wall_us,
            r.compute_us,
            r.wait_us,
            r.send_us,
            r.coverage(),
            r.messages_in,
            r.messages_out
        ));
    }
    if !a.ranks.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    out.push_str("  \"critical_path\": {\n");
    out.push_str(&format!("    \"total_us\": {},\n", a.critical_path_us));
    out.push_str("    \"segments\": [");
    for (i, s) in a.critical_path.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n      {{\"kind\": \"{}\", \"rank\": {}, \"from_rank\": {}, \"label\": \"{}\", \
             \"span_id\": {}, \"t0_us\": {}, \"t1_us\": {}}}",
            match s.kind {
                SegmentKind::Compute => "compute",
                SegmentKind::Message => "message",
            },
            s.rank,
            s.from_rank,
            esc(&s.label),
            s.span_id,
            s.t0_us,
            s.t1_us
        ));
    }
    if !a.critical_path.is_empty() {
        out.push_str("\n    ");
    }
    out.push_str("]\n  }\n}\n");
    out
}

/// Human-readable report for `repro analyze`.
pub fn render_report(a: &Analysis) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "wall {:.1} ms · critical path {:.1} ms ({:.0}% of wall) · {} messages matched\n",
        a.wall_us / 1e3,
        a.critical_path_us / 1e3,
        100.0 * a.critical_path_us / a.wall_us.max(1e-9),
        a.matched_messages
    ));
    out.push_str(&format!(
        "straggler rank {} · load imbalance {:.2}x\n",
        a.straggler, a.imbalance
    ));
    out.push_str("per-rank attribution (compute / wait / send, % of rank wall):\n");
    for r in &a.ranks {
        let w = r.wall_us.max(1e-9);
        out.push_str(&format!(
            "  rank {}: {:6.1} ms  {:5.1}% / {:5.1}% / {:5.1}%  (coverage {:5.1}%)\n",
            r.rank,
            r.wall_us / 1e3,
            100.0 * r.compute_us / w,
            100.0 * r.wait_us / w,
            100.0 * r.send_us / w,
            100.0 * r.coverage()
        ));
    }
    out.push_str("critical path (oldest first):\n");
    let shown = a.critical_path.len().min(40);
    for s in a.critical_path.iter().rev().take(shown).rev() {
        match s.kind {
            SegmentKind::Compute => out.push_str(&format!(
                "  rank {} compute {:8.1} µs  {} (span {})\n",
                s.rank,
                s.dur_us(),
                s.label,
                s.span_id
            )),
            SegmentKind::Message => out.push_str(&format!(
                "  rank {} → {} message {:6.1} µs  {}\n",
                s.from_rank,
                s.rank,
                s.dur_us(),
                s.label
            )),
        }
    }
    if a.critical_path.len() > shown {
        out.push_str(&format!(
            "  … {} earlier segments elided\n",
            a.critical_path.len() - shown
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::OwnedSpan;

    fn ev(dir: CommDir, peer: u64, tag: u32, seq: u64, t0: f64, t1: f64, span: u64) -> CommEvent {
        CommEvent {
            dir,
            peer,
            tag,
            seq,
            bytes: 8,
            t0_us: t0,
            t1_us: t1,
            span_id: span,
        }
    }

    fn span(name: &str, id: u64, t0: f64, t1: f64) -> OwnedSpan {
        OwnedSpan {
            name: name.into(),
            id,
            t0_us: t0,
            t1_us: t1,
            depth: 0,
        }
    }

    /// Rank 0 computes 100 µs then sends to rank 1, which was waiting.
    fn pipeline_ranks() -> Vec<RankObs> {
        let r0 = RankObs {
            rank: 0,
            spans: vec![span("work0", 1, 0.0, 101.0)],
            comm_events: vec![ev(CommDir::Send, 1, 5, 0, 100.0, 101.0, 1)],
            ..Default::default()
        };
        let r1 = RankObs {
            rank: 1,
            spans: vec![span("work1", 1, 0.0, 160.0)],
            comm_events: vec![ev(CommDir::Recv, 0, 5, 0, 1.0, 105.0, 1)],
            ..Default::default()
        };
        vec![r0, r1]
    }

    #[test]
    fn flows_match_on_channel_key() {
        let fm = match_flows(&pipeline_ranks());
        assert_eq!(fm.flows.len(), 1);
        assert_eq!(fm.unmatched_sends, 0);
        assert_eq!(fm.unmatched_recvs, 0);
        let f = &fm.flows[0];
        assert_eq!((f.src, f.dst, f.tag, f.seq), (0, 1, 5, 0));
    }

    #[test]
    fn unmatched_events_are_counted() {
        let mut ranks = pipeline_ranks();
        ranks[0]
            .comm_events
            .push(ev(CommDir::Send, 1, 5, 1, 110.0, 111.0, 0));
        ranks[1]
            .comm_events
            .push(ev(CommDir::Recv, 0, 9, 0, 120.0, 130.0, 0));
        let fm = match_flows(&ranks);
        assert_eq!(fm.flows.len(), 1);
        assert_eq!(fm.unmatched_sends, 1);
        assert_eq!(fm.unmatched_recvs, 1);
    }

    #[test]
    fn critical_path_crosses_the_binding_message() {
        let ranks = pipeline_ranks();
        // Rank 1's recv returned at 105 but the send only completed at
        // 101 while rank 1 had nothing local since 0 → the path runs
        // rank 0 compute → message → rank 1 tail.
        // dropped_comm_events == 0 and the trace is consistent, so the
        // verify gate runs too.
        let a = analyze(&ranks).unwrap();
        assert_eq!(a.matched_messages, 1);
        let kinds: Vec<SegmentKind> = a.critical_path.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SegmentKind::Message));
        let msg = a
            .critical_path
            .iter()
            .find(|s| s.kind == SegmentKind::Message)
            .unwrap();
        assert_eq!((msg.from_rank, msg.rank), (0, 1));
        assert_eq!(msg.t0_us, 101.0);
        assert_eq!(msg.t1_us, 105.0);
        // The compute segment before the message lives on rank 0 and is
        // labelled by its span.
        let first = &a.critical_path[0];
        assert_eq!(first.kind, SegmentKind::Compute);
        assert_eq!(first.rank, 0);
        assert_eq!(first.label, "work0");
        assert_eq!(first.span_id, 1);
        // Tail compute on rank 1 closes the path at the global end.
        let last = a.critical_path.last().unwrap();
        assert_eq!(last.rank, 1);
        assert_eq!(last.t1_us, 160.0);
    }

    #[test]
    fn local_work_binds_when_message_arrived_early() {
        // Rank 1 received at 10 a message sent at 2–3, then computed to
        // 200: the send completed long before rank 1's local timeline
        // reached the recv, so the path stays on rank 1.
        let r0 = RankObs {
            rank: 0,
            spans: vec![span("w0", 1, 0.0, 3.0)],
            comm_events: vec![ev(CommDir::Send, 1, 5, 0, 2.0, 3.0, 1)],
            ..Default::default()
        };
        let r1 = RankObs {
            rank: 1,
            spans: vec![span("w1", 1, 0.0, 200.0)],
            comm_events: vec![
                ev(CommDir::Send, 0, 6, 0, 5.0, 6.0, 1),
                ev(CommDir::Recv, 0, 5, 0, 9.0, 10.0, 1),
            ],
            ..Default::default()
        };
        // Give rank 0 the matching recv so the protocol check passes.
        let mut r0 = r0;
        r0.comm_events.push(ev(CommDir::Recv, 1, 6, 0, 4.0, 7.0, 1));
        let a = analyze(&[r0, r1]).unwrap();
        assert!(
            a.critical_path
                .iter()
                .all(|s| s.kind != SegmentKind::Message || s.rank != 1),
            "early message must not bind rank 1's path"
        );
    }

    #[test]
    fn same_tag_seq_from_different_peers_bind_to_their_own_sender() {
        // Channel seq numbers count per (src, dst, tag), so rank 1 can
        // receive tag 7 seq 0 from rank 0 AND from rank 2 — exactly what
        // the 4-rank PT demo does. The recv→flow lookup must key on the
        // peer too; collapsing the key to (dst, tag, seq) lets one
        // sender's flow shadow the other's, and the walk then binds the
        // recv-from-2 below to rank 0's early send (t1=2), reporting a
        // message from the wrong rank with the wrong times.
        let r0 = RankObs {
            rank: 0,
            spans: vec![span("w0", 1, 0.0, 2.0)],
            comm_events: vec![ev(CommDir::Send, 1, 7, 0, 0.0, 2.0, 1)],
            ..Default::default()
        };
        let r1 = RankObs {
            rank: 1,
            spans: vec![span("w1", 1, 0.0, 50.0)],
            comm_events: vec![
                ev(CommDir::Recv, 2, 7, 0, 5.0, 45.0, 1),
                ev(CommDir::Recv, 0, 7, 0, 46.0, 48.0, 1),
            ],
            ..Default::default()
        };
        let r2 = RankObs {
            rank: 2,
            spans: vec![span("w2", 1, 0.0, 40.0)],
            comm_events: vec![ev(CommDir::Send, 1, 7, 0, 30.0, 40.0, 1)],
            ..Default::default()
        };
        let a = analyze(&[r0, r1, r2]).unwrap();
        assert_eq!(a.matched_messages, 2);
        // Rank 1 waited on rank 2's late send: the binding message comes
        // from rank 2 and spans send-completion (40) to recv-return (45).
        let msgs: Vec<&Segment> = a
            .critical_path
            .iter()
            .filter(|s| s.kind == SegmentKind::Message)
            .collect();
        assert_eq!(msgs.len(), 1, "path {:?}", a.critical_path);
        assert_eq!((msgs[0].from_rank, msgs[0].rank), (2, 1));
        assert_eq!(msgs[0].t0_us, 40.0);
        assert_eq!(msgs[0].t1_us, 45.0);
    }

    #[test]
    fn skewed_send_stamps_do_not_cycle_the_walk() {
        // Preemption can stamp a send's completion long after the
        // receiver consumed the message, so the walk's timestamp-based
        // binding test points it back above territory it already
        // covered. Here each rank's recv binds to a send *above* the
        // other rank's floor: without the low-water clamp the walk
        // ping-pongs between the two exchanges until the step cap,
        // emitting the same segments over and over and inflating the
        // path far past the wall window. Dropped events on rank 0 skip
        // the protocol replay, as a real overflowed trace would.
        let r0 = RankObs {
            rank: 0,
            dropped_comm_events: 1,
            comm_events: vec![
                ev(CommDir::Recv, 1, 7, 0, 10.0, 90.0, 1),
                // Skew: deposited before the recv at t1=20 below, but
                // stamped at 100 after the scheduler parked the sender.
                ev(CommDir::Send, 1, 8, 0, 95.0, 100.0, 1),
            ],
            ..Default::default()
        };
        let r1 = RankObs {
            rank: 1,
            comm_events: vec![
                ev(CommDir::Recv, 0, 8, 0, 0.0, 20.0, 1),
                ev(CommDir::Send, 0, 7, 0, 30.0, 40.0, 1),
            ],
            ..Default::default()
        };
        let a = analyze(&[r0, r1]).unwrap();
        let wall = 100.0;
        assert!(
            a.critical_path_us <= wall + 1e-9,
            "path {} must not exceed the {} wall window",
            a.critical_path_us,
            wall
        );
        let mut seen = std::collections::HashSet::new();
        for s in &a.critical_path {
            let key = (
                s.rank,
                s.kind == SegmentKind::Message,
                s.t0_us.to_bits(),
                s.t1_us.to_bits(),
            );
            assert!(seen.insert(key), "segment revisited: {s:?}");
        }
    }

    #[test]
    fn attribution_covers_the_window() {
        let a = analyze(&pipeline_ranks()).unwrap();
        assert_eq!(a.ranks.len(), 2);
        let r1 = &a.ranks[1];
        // Rank 1: span [0,160], recv [1,105] inside it.
        assert!((r1.wall_us - 160.0).abs() < 1e-9);
        assert!((r1.wait_us - 104.0).abs() < 1e-9);
        assert!((r1.compute_us - 56.0).abs() < 1e-9);
        assert!(r1.coverage() > 0.99);
        assert_eq!(r1.messages_in, 1);
        let r0 = &a.ranks[0];
        assert!((r0.send_us - 1.0).abs() < 1e-9);
        assert_eq!(r0.messages_out, 1);
    }

    #[test]
    fn analysis_json_round_trips() {
        let a = analyze(&pipeline_ranks()).unwrap();
        let meta = RunMeta::new("demo", "pt", "threads", 2);
        let doc = crate::json::Json::parse(&analysis_json(&meta, &a)).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(ANALYSIS_SCHEMA));
        assert_eq!(
            doc.get("run").unwrap().get("ranks").unwrap().as_f64(),
            Some(2.0)
        );
        let ranks = doc.get("ranks").unwrap().as_arr().unwrap();
        assert_eq!(ranks.len(), 2);
        assert!(ranks[1].get("coverage").unwrap().as_f64().unwrap() > 0.99);
        let cp = doc.get("critical_path").unwrap();
        let segs = cp.get("segments").unwrap().as_arr().unwrap();
        assert!(!segs.is_empty());
        for s in segs {
            let kind = s.get("kind").unwrap().as_str().unwrap();
            assert!(kind == "compute" || kind == "message");
        }
        // Report renders without panicking and names the straggler.
        let report = render_report(&a);
        assert!(report.contains("straggler rank"));
    }

    #[test]
    fn protocol_violation_is_reported() {
        // A recv with no send anywhere and a claimed-complete trace.
        let r0 = RankObs {
            rank: 0,
            comm_events: vec![ev(CommDir::Recv, 0, 5, 0, 1.0, 2.0, 0)],
            ..Default::default()
        };
        assert!(analyze(&[r0]).is_err());
    }
}
