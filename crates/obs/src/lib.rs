//! Observability layer for the QMC workspace: per-rank spans, a metrics
//! registry, and machine-readable exporters.
//!
//! The SC'93 paper's evidence is tables of update rates, communication
//! fractions, and scaling curves — numbers that demand a per-phase timing
//! breakdown (sweep vs. halo vs. collective vs. measurement) rather than
//! ad-hoc `Instant` calls. This crate is that breakdown as a permanent,
//! always-compiled layer:
//!
//! * **Spans** ([`span`]) — hierarchical RAII timing scopes recorded into a
//!   per-rank fixed-capacity ring ([`init`]/[`finish`]). Steady-state
//!   recording performs no heap allocation: the ring is preallocated and
//!   span names are `&'static str`. When observability is off (the
//!   default: no [`init`] call, or spans disabled in [`ObsConfig`]),
//!   [`span`] is a branch on a thread-local flag and nothing else.
//! * **Metrics** ([`Registry`]) — named monotonic counters and log₂-bucketed
//!   histograms. Engines own a registry for their acceptance counters (the
//!   values exist whether or not observability is on, preserving reported
//!   acceptance rates); harness-level counts go through [`counter_add`] /
//!   [`hist_record`] into the rank recorder's registry. Completed spans are
//!   folded into a duration histogram per span name automatically when
//!   metrics are enabled.
//! * **Exporters** ([`metrics_json`], [`chrome_trace_json`]) — a versioned
//!   `qmc-metrics/v1` JSON artifact and a Chrome trace-event file (one
//!   track per rank; load `trace.json` in Perfetto or `chrome://tracing`).
//!   Per-rank records are merged at finalize with [`gather_ranks`] over any
//!   [`qmc_comm::Communicator`].
//!
//! Instrumentation must never perturb physics: nothing here draws random
//! numbers or reorders messages, so fixed-seed trajectories are
//! bit-identical with observability on or off (enforced by the
//! `observability` integration tests).
//!
//! Span timestamps are **wall-clock** microseconds from a shared epoch
//! ([`ObsConfig::new`]), even under the simulated machine: the trace shows
//! where host time goes, while *virtual*-time attribution stays in
//! [`qmc_comm::CommStats`] (which [`RankObs`] embeds).
//!
//! ```
//! use qmc_obs::{init, finish, span, counter_add, ObsConfig};
//!
//! init(0, &ObsConfig::new());
//! {
//!     let _sweep = span("sweep");
//!     counter_add("proposals", 128);
//! }
//! let rank = finish().expect("recorder was installed");
//! assert_eq!(rank.counter("proposals"), 128);
//! assert_eq!(rank.spans.len(), 1);
//! let trace = qmc_obs::chrome_trace_json(std::slice::from_ref(&rank));
//! assert!(trace.contains("\"ph\": \"B\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod export;
pub mod health;
pub mod json;
mod metrics;
mod record;
mod span;
mod trace;

pub use analysis::{
    analysis_json, analyze, match_flows, render_report, world_trace, Analysis, Flow, FlowMatch,
    RankAttribution, Segment, SegmentKind, ANALYSIS_SCHEMA,
};
pub use export::{chrome_trace_json, metrics_json, RunMeta};
pub use health::{replica_agreement, HealthMonitor, OnlineBinning};
pub use metrics::{CounterId, Hist, HistId, Registry, N_BUCKETS};
pub use record::{
    gather_ranks, CommDir, CommEvent, CommSummary, HealthSnapshot, HistSnapshot, OwnedSpan, RankObs,
};
pub use span::{
    active_span_id, counter_add, enabled, finish, health_enabled, health_record, hist_record, init,
    metrics_enabled, now_us, span, spans_enabled, ObsConfig, Span,
};
pub use trace::TracingComm;

/// Mirror a rank's [`qmc_comm::FaultStats`] into the thread-local metrics
/// registry as `comm.retries` / `comm.timeouts`.
///
/// Lives here rather than on `FaultyComm` itself because `qmc-comm` sits
/// below this crate in the dependency graph. No-op when metrics are
/// disabled, like every [`counter_add`].
pub fn publish_fault_stats(stats: &qmc_comm::FaultStats) {
    counter_add("comm.retries", stats.retries);
    counter_add("comm.timeouts", stats.timeouts);
}
