//! A minimal JSON reader for validating the crate's own artifacts.
//!
//! The workspace is dependency-free, so the schema round-trip and trace
//! validity tests need an in-repo parser. It accepts standard JSON
//! (objects, arrays, strings with the common escapes plus `\uXXXX`,
//! numbers, booleans, null) — enough to read back `METRICS_run.json` and
//! `trace.json`; it is not meant as a general-purpose library.

/// A parsed JSON value. Object keys keep their document order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`, like browsers do).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// anything else after the value is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.b.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member by key (`None` for missing keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.b.len() && self.b[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.b.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.b[self.pos + 1..self.pos + 5])
                                .map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Basic-plane only; surrogate pairs are not
                            // produced by our own emitters.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        c => return Err(format!("bad escape {c:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.b.len() && (self.b[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.b[start..self.pos])
                        .expect("run boundaries follow UTF-8 continuation bytes");
                    out.push_str(run);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text =
            std::str::from_utf8(&self.b[start..self.pos]).expect("number characters are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc = Json::parse(
            r#"{"a": 1.5, "b": [true, false, null, -2e3], "c": {"d": "x\ny"}, "e": ""}"#,
        )
        .unwrap();
        assert_eq!(doc.get("a").unwrap().as_f64(), Some(1.5));
        let b = doc.get("b").unwrap().as_arr().unwrap();
        assert_eq!(b[0], Json::Bool(true));
        assert!(b[2].is_null());
        assert_eq!(b[3].as_f64(), Some(-2000.0));
        assert_eq!(
            doc.get("c").unwrap().get("d").unwrap().as_str(),
            Some("x\ny")
        );
        assert_eq!(doc.get("e").unwrap().as_str(), Some(""));
    }

    #[test]
    fn unicode_escapes_and_raw_utf8() {
        let doc = Json::parse(r#"{"k": "β β"}"#).unwrap();
        assert_eq!(doc.get("k").unwrap().as_str(), Some("β β"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1, 2",
            "{\"a\" 1}",
            "{\"a\": 1} extra",
            "\"unterminated",
            "nul",
            "01a",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse(" [ ] ").unwrap(), Json::Arr(vec![]));
    }
}
