//! Machine-readable exporters: the versioned `qmc-metrics/v1` artifact and
//! Chrome trace-event JSON.
//!
//! Both emitters are hand-rolled string builders (the workspace is
//! deliberately dependency-free); the in-repo [`crate::json`] parser reads
//! the artifacts back in the schema round-trip tests.

use crate::analysis::match_flows;
use crate::record::{CommSummary, RankObs};

/// Schema identifier written into every metrics artifact.
pub const METRICS_SCHEMA: &str = "qmc-metrics/v1";

/// Identity of a run, embedded in the metrics artifact header.
#[derive(Debug, Clone, Default)]
pub struct RunMeta {
    /// Run name (e.g. the CLI experiment or subcommand).
    pub name: String,
    /// Engine that produced the numbers (`tfim`, `worldline`, `sse`, …).
    pub engine: String,
    /// Communicator back-end (`serial`, `threads`, `mesh1993`, …).
    pub backend: String,
    /// Number of ranks in the run.
    pub ranks: u64,
    /// Free-form `(key, value)` run parameters (sizes, β, sweep counts).
    pub params: Vec<(String, String)>,
}

impl RunMeta {
    /// Describe a run.
    pub fn new(name: &str, engine: &str, backend: &str, ranks: usize) -> Self {
        Self {
            name: name.to_string(),
            engine: engine.to_string(),
            backend: backend.to_string(),
            ranks: ranks as u64,
            params: Vec::new(),
        }
    }

    /// Attach one run parameter (builder style).
    pub fn param(mut self, key: &str, value: impl ToString) -> Self {
        self.params.push((key.to_string(), value.to_string()));
        self
    }
}

/// Escape a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn comm_json(c: &CommSummary, indent: &str) -> String {
    format!(
        "{{\n{i}  \"messages_sent\": {},\n{i}  \"bytes_sent\": {},\n\
         {i}  \"messages_recv\": {},\n{i}  \"bytes_recv\": {},\n\
         {i}  \"max_message_bytes\": {},\n{i}  \"comm_seconds\": {},\n\
         {i}  \"compute_seconds\": {},\n{i}  \"recv_wait_seconds\": {}\n{i}}}",
        c.messages_sent,
        c.bytes_sent,
        c.messages_recv,
        c.bytes_recv,
        c.max_message_bytes,
        c.comm_seconds,
        c.compute_seconds,
        c.recv_wait_seconds,
        i = indent,
    )
}

/// Render the `qmc-metrics/v1` artifact for a set of per-rank records
/// (typically the output of [`crate::gather_ranks`] on rank 0).
pub fn metrics_json(meta: &RunMeta, ranks: &[RankObs]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{METRICS_SCHEMA}\",\n"));

    // Run header.
    out.push_str("  \"run\": {\n");
    out.push_str(&format!("    \"name\": \"{}\",\n", esc(&meta.name)));
    out.push_str(&format!("    \"engine\": \"{}\",\n", esc(&meta.engine)));
    out.push_str(&format!("    \"backend\": \"{}\",\n", esc(&meta.backend)));
    out.push_str(&format!("    \"ranks\": {},\n", meta.ranks));
    out.push_str("    \"params\": {");
    for (i, (k, v)) in meta.params.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n      \"{}\": \"{}\"", esc(k), esc(v)));
    }
    if !meta.params.is_empty() {
        out.push_str("\n    ");
    }
    out.push_str("}\n  },\n");

    // Cross-rank totals: summed counters, merged comm stats.
    let mut totals: Vec<(String, u64)> = Vec::new();
    for r in ranks {
        for (name, v) in &r.counters {
            match totals.iter_mut().find(|(n, _)| n == name) {
                Some((_, cur)) => *cur += v,
                None => totals.push((name.clone(), *v)),
            }
        }
    }
    let comm_total = ranks
        .iter()
        .filter_map(|r| r.comm)
        .fold(None::<CommSummary>, |acc, c| match acc {
            None => Some(c),
            Some(a) => Some(CommSummary {
                messages_sent: a.messages_sent + c.messages_sent,
                bytes_sent: a.bytes_sent + c.bytes_sent,
                messages_recv: a.messages_recv + c.messages_recv,
                bytes_recv: a.bytes_recv + c.bytes_recv,
                max_message_bytes: a.max_message_bytes.max(c.max_message_bytes),
                comm_seconds: a.comm_seconds + c.comm_seconds,
                compute_seconds: a.compute_seconds + c.compute_seconds,
                recv_wait_seconds: a.recv_wait_seconds + c.recv_wait_seconds,
            }),
        });
    out.push_str("  \"totals\": {\n    \"counters\": {");
    for (i, (k, v)) in totals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n      \"{}\": {v}", esc(k)));
    }
    if !totals.is_empty() {
        out.push_str("\n    ");
    }
    out.push_str("},\n    \"comm\": ");
    match &comm_total {
        Some(c) => out.push_str(&comm_json(c, "    ")),
        None => out.push_str("null"),
    }
    out.push_str("\n  },\n");

    // Per-rank detail.
    out.push_str("  \"ranks\": [");
    for (ri, r) in ranks.iter().enumerate() {
        if ri > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        out.push_str(&format!("      \"rank\": {},\n", r.rank));
        out.push_str(&format!("      \"spans\": {},\n", r.spans.len()));
        out.push_str(&format!("      \"dropped_spans\": {},\n", r.dropped_spans));
        out.push_str("      \"counters\": {");
        for (i, (k, v)) in r.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n        \"{}\": {v}", esc(k)));
        }
        if !r.counters.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("},\n      \"histograms\": {");
        for (i, h) in r.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n        \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                esc(&h.name),
                h.count,
                h.sum,
                h.min,
                h.max
            ));
            for (j, (lo, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{lo}, {c}]"));
            }
            out.push_str("]}");
        }
        if !r.hists.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("},\n      \"health\": [");
        for (i, h) in r.health.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n        {{\"name\": \"{}\", \"count\": {}, \"mean\": {}, \"std_dev\": {}, \
                 \"error\": {}, \"tau_int\": {}, \"drift_z\": {}}}",
                esc(&h.name),
                h.count,
                h.mean,
                h.std_dev,
                h.error,
                h.tau_int,
                h.drift_z
            ));
        }
        if !r.health.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("],\n      \"comm\": ");
        match &r.comm {
            Some(c) => out.push_str(&comm_json(c, "      ")),
            None => out.push_str("null"),
        }
        out.push_str("\n    }");
    }
    if !ranks.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Render per-rank spans as Chrome trace-event JSON (the "JSON Array
/// Format" with a `traceEvents` wrapper): one track (`tid`) per rank under
/// a single `pid`, `ts` in microseconds from the run's shared epoch. Load
/// the file in [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`.
///
/// Within each rank the B/E events are emitted in valid stack order
/// (non-decreasing `ts`, every `E` matching the most recent open `B`),
/// reconstructed from the completed-span list. Each `B` carries its
/// per-rank span id in `args.span`, matched send/receive pairs from the
/// comm-event rings are drawn as flow arrows (`ph: "s"`/`ph: "f"`)
/// between the rank tracks, and a rank that overflowed a ring gets an
/// instant `dropped_spans` marker (plus a stderr warning) so a
/// truncated trace is never mistaken for a complete one.
pub fn chrome_trace_json(ranks: &[RankObs]) -> String {
    fn push_ev(out: &mut String, first: &mut bool, ev: &str) {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str("\n    ");
        out.push_str(ev);
    }
    fn close_ev(out: &mut String, first: &mut bool, tid: u64, s: &crate::record::OwnedSpan) {
        push_ev(
            out,
            first,
            &format!(
                "{{\"name\": \"{}\", \"ph\": \"E\", \"pid\": 0, \"tid\": {tid}, \"ts\": {:.3}}}",
                esc(&s.name),
                s.t1_us
            ),
        );
    }

    let mut out = String::from("{\n  \"traceEvents\": [");
    let mut first = true;
    for r in ranks {
        let tid = r.rank;
        push_ev(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {tid}, \
                 \"args\": {{\"name\": \"rank {tid}\"}}}}"
            ),
        );

        // Completed spans → a properly nested event stream: visit spans by
        // start time (outermost first on ties), closing every open span
        // that ends before the next one starts.
        let mut idx: Vec<usize> = (0..r.spans.len()).collect();
        idx.sort_by(|&a, &b| {
            let (sa, sb) = (&r.spans[a], &r.spans[b]);
            sa.t0_us
                .partial_cmp(&sb.t0_us)
                .expect("span timestamps are finite")
                .then(
                    sb.t1_us
                        .partial_cmp(&sa.t1_us)
                        .expect("span timestamps are finite"),
                )
                .then(sa.depth.cmp(&sb.depth))
        });
        let mut stack: Vec<usize> = Vec::new();
        for &i in &idx {
            let s = &r.spans[i];
            while let Some(&top) = stack.last() {
                if r.spans[top].t1_us <= s.t0_us {
                    close_ev(&mut out, &mut first, tid, &r.spans[top]);
                    stack.pop();
                } else {
                    break;
                }
            }
            push_ev(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\": \"{}\", \"ph\": \"B\", \"pid\": 0, \"tid\": {tid}, \
                     \"ts\": {:.3}, \"args\": {{\"span\": {}}}}}",
                    esc(&s.name),
                    s.t0_us,
                    s.id
                ),
            );
            stack.push(i);
        }
        while let Some(top) = stack.pop() {
            close_ev(&mut out, &mut first, tid, &r.spans[top]);
        }

        // Ring overflow is data loss: mark it in-band so the truncated
        // timeline can't silently pass for the whole run.
        if r.dropped_spans > 0 || r.dropped_comm_events > 0 {
            eprintln!(
                "warning: rank {tid} trace is incomplete ({} spans, {} comm events \
                 overwritten by ring overflow) — raise ObsConfig::span_capacity / comm_capacity",
                r.dropped_spans, r.dropped_comm_events
            );
            let ts = r.spans.first().map(|s| s.t0_us).unwrap_or(0.0);
            push_ev(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\": \"dropped_spans\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 0, \
                     \"tid\": {tid}, \"ts\": {ts:.3}, \"args\": {{\"dropped_spans\": {}, \
                     \"dropped_comm_events\": {}}}}}",
                    r.dropped_spans, r.dropped_comm_events
                ),
            );
        }
    }

    // Matched messages become flow arrows between the rank tracks: the
    // "s" end sits at send completion on the sender's track, the "f"
    // (binding-point "e") end at receive completion on the receiver's.
    for (i, f) in match_flows(ranks).flows.iter().enumerate() {
        push_ev(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\": \"msg tag {}\", \"cat\": \"comm\", \"ph\": \"s\", \"id\": {i}, \
                 \"pid\": 0, \"tid\": {}, \"ts\": {:.3}}}",
                f.tag, f.src, f.send.t1_us
            ),
        );
        push_ev(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\": \"msg tag {}\", \"cat\": \"comm\", \"ph\": \"f\", \"bp\": \"e\", \
                 \"id\": {i}, \"pid\": 0, \"tid\": {}, \"ts\": {:.3}}}",
                f.tag, f.dst, f.recv.t1_us
            ),
        );
    }

    out.push_str("\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::record::OwnedSpan;

    fn two_ranks() -> Vec<RankObs> {
        let mk = |rank: u64, off: f64| RankObs {
            rank,
            spans: vec![
                OwnedSpan {
                    name: "inner".into(),
                    id: 2,
                    t0_us: off + 2.0,
                    t1_us: off + 5.0,
                    depth: 1,
                },
                OwnedSpan {
                    name: "outer".into(),
                    id: 1,
                    t0_us: off,
                    t1_us: off + 10.0,
                    depth: 0,
                },
            ],
            counters: vec![("proposed".to_string(), 100 * (rank + 1))],
            ..Default::default()
        };
        vec![mk(0, 0.0), mk(1, 1.0)]
    }

    #[test]
    fn metrics_json_parses_and_totals_sum() {
        let meta = RunMeta::new("demo", "tfim", "threads", 2).param("l", 16);
        let doc = Json::parse(&metrics_json(&meta, &two_ranks())).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str().unwrap(), METRICS_SCHEMA);
        let run = doc.get("run").unwrap();
        assert_eq!(run.get("engine").unwrap().as_str().unwrap(), "tfim");
        assert_eq!(
            run.get("params").unwrap().get("l").unwrap().as_str(),
            Some("16")
        );
        let totals = doc.get("totals").unwrap().get("counters").unwrap();
        assert_eq!(totals.get("proposed").unwrap().as_f64(), Some(300.0));
        let ranks = doc.get("ranks").unwrap().as_arr().unwrap();
        assert_eq!(ranks.len(), 2);
        assert_eq!(ranks[1].get("rank").unwrap().as_f64(), Some(1.0));
        assert!(ranks[0].get("comm").unwrap().is_null());
    }

    #[test]
    fn trace_events_keep_stack_discipline() {
        let doc = Json::parse(&chrome_trace_json(&two_ranks())).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 metadata + 2×(2 B + 2 E)
        assert_eq!(events.len(), 10);
        for tid in 0..2 {
            let mut stack = Vec::new();
            let mut last_ts = f64::NEG_INFINITY;
            for e in events {
                if e.get("tid").unwrap().as_f64() != Some(tid as f64) {
                    continue;
                }
                match e.get("ph").unwrap().as_str().unwrap() {
                    "M" => {}
                    "B" => {
                        let ts = e.get("ts").unwrap().as_f64().unwrap();
                        assert!(ts >= last_ts, "unsorted ts in tid {tid}");
                        last_ts = ts;
                        stack.push(e.get("name").unwrap().as_str().unwrap().to_string());
                    }
                    "E" => {
                        let ts = e.get("ts").unwrap().as_f64().unwrap();
                        assert!(ts >= last_ts);
                        last_ts = ts;
                        let open = stack.pop().expect("E without open B");
                        assert_eq!(open, e.get("name").unwrap().as_str().unwrap());
                    }
                    ph => panic!("unexpected phase {ph}"),
                }
            }
            assert!(stack.is_empty(), "unclosed spans in tid {tid}");
        }
    }

    #[test]
    fn b_events_carry_span_ids() {
        let doc = Json::parse(&chrome_trace_json(&two_ranks())).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let mut b_ids = Vec::new();
        for e in events {
            if e.get("ph").unwrap().as_str() == Some("B") {
                b_ids.push(
                    e.get("args")
                        .unwrap()
                        .get("span")
                        .unwrap()
                        .as_f64()
                        .unwrap(),
                );
            }
        }
        // Two ranks × (outer id 1, inner id 2), emitted outer-first.
        assert_eq!(b_ids, vec![1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn matched_comm_events_become_flow_pairs() {
        use crate::record::{CommDir, CommEvent};
        let mut ranks = two_ranks();
        let msg = |dir, peer, t0: f64, t1: f64| CommEvent {
            dir,
            peer,
            tag: 7,
            seq: 0,
            bytes: 16,
            t0_us: t0,
            t1_us: t1,
            span_id: 1,
        };
        ranks[0].comm_events.push(msg(CommDir::Send, 1, 3.0, 3.5));
        ranks[1].comm_events.push(msg(CommDir::Recv, 0, 4.0, 6.0));
        let doc = Json::parse(&chrome_trace_json(&ranks)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let flows: Vec<&Json> = events
            .iter()
            .filter(|e| matches!(e.get("ph").unwrap().as_str(), Some("s") | Some("f")))
            .collect();
        assert_eq!(flows.len(), 2);
        let s = flows
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("s"))
            .unwrap();
        let f = flows
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("f"))
            .unwrap();
        // Arrow from sender's track at send end to receiver's at recv end.
        assert_eq!(s.get("tid").unwrap().as_f64(), Some(0.0));
        assert_eq!(s.get("ts").unwrap().as_f64(), Some(3.5));
        assert_eq!(f.get("tid").unwrap().as_f64(), Some(1.0));
        assert_eq!(f.get("ts").unwrap().as_f64(), Some(6.0));
        assert_eq!(f.get("bp").unwrap().as_str(), Some("e"));
        // Shared flow id stitches the pair.
        assert_eq!(s.get("id").unwrap().as_f64(), f.get("id").unwrap().as_f64());
    }

    #[test]
    fn dropped_spans_leave_an_in_band_marker() {
        let mut ranks = two_ranks();
        ranks[1].dropped_spans = 6;
        let doc = Json::parse(&chrome_trace_json(&ranks)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let markers: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("i"))
            .collect();
        assert_eq!(markers.len(), 1);
        let m = markers[0];
        assert_eq!(m.get("name").unwrap().as_str(), Some("dropped_spans"));
        assert_eq!(m.get("tid").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            m.get("args")
                .unwrap()
                .get("dropped_spans")
                .unwrap()
                .as_f64(),
            Some(6.0)
        );
        // A clean trace has no marker.
        let clean = Json::parse(&chrome_trace_json(&two_ranks())).unwrap();
        assert!(clean
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .all(|e| e.get("ph").unwrap().as_str() != Some("i")));
    }

    #[test]
    fn metrics_json_includes_health_snapshots() {
        use crate::record::HealthSnapshot;
        let mut ranks = two_ranks();
        ranks[0].health.push(HealthSnapshot {
            name: "energy".into(),
            count: 128,
            mean: -1.0,
            std_dev: 0.25,
            error: 0.03,
            tau_int: 1.5,
            drift_z: 0.2,
        });
        let meta = RunMeta::new("demo", "tfim", "threads", 2);
        let doc = Json::parse(&metrics_json(&meta, &ranks)).unwrap();
        let r0 = &doc.get("ranks").unwrap().as_arr().unwrap()[0];
        let health = r0.get("health").unwrap().as_arr().unwrap();
        assert_eq!(health.len(), 1);
        assert_eq!(health[0].get("name").unwrap().as_str(), Some("energy"));
        assert_eq!(health[0].get("tau_int").unwrap().as_f64(), Some(1.5));
        let r1 = &doc.get("ranks").unwrap().as_arr().unwrap()[1];
        assert!(r1.get("health").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn strings_are_escaped() {
        let meta = RunMeta::new("a\"b\\c\nd", "e", "f", 1);
        let doc = Json::parse(&metrics_json(&meta, &[])).unwrap();
        assert_eq!(
            doc.get("run").unwrap().get("name").unwrap().as_str(),
            Some("a\"b\\c\nd")
        );
    }
}
