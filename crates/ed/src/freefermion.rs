//! Jordan-Wigner free-fermion oracles for chains.
//!
//! The XY chain (`Jz = 0`) and the 1-D TFIM map to free fermions, giving
//! closed-form results at *any* size — but the mapping has a subtlety that
//! sloppy treatments drop: the fermion-parity boundary term. The even
//! (odd) parity sector sees antiperiodic (periodic) momenta, and the
//! canonical partition function is the projected combination
//!
//! `Z = ½ [ Π_AP(1+x) + Π_AP(1−x) + Π_P(1+x) − Π_P(1−x) ] · e^{−βC}`
//!
//! with `x_k = e^{−βε_k}`. We implement the projection exactly, validate
//! against dense ED at small `L` (see tests), and then use these formulas
//! as large-`L` oracles for the F3 experiment.

use std::f64::consts::PI;

/// Antiperiodic momentum grid `k = (2m+1)π/L`.
fn ap_grid(l: usize) -> impl Iterator<Item = f64> {
    (0..l).map(move |m| (2.0 * m as f64 + 1.0) * PI / l as f64)
}

/// Periodic momentum grid `k = 2mπ/L`.
fn p_grid(l: usize) -> impl Iterator<Item = f64> {
    (0..l).map(move |m| 2.0 * m as f64 * PI / l as f64)
}

/// Signed logarithm: `(sign, ln|v|)` pairs combined stably.
fn signed_log_sum(terms: &[(f64, f64)]) -> (f64, f64) {
    // terms: (sign, log magnitude); returns (sign, log magnitude) of sum.
    let max = terms
        .iter()
        .map(|&(_, l)| l)
        .fold(f64::NEG_INFINITY, f64::max);
    if max == f64::NEG_INFINITY {
        return (0.0, f64::NEG_INFINITY);
    }
    let s: f64 = terms.iter().map(|&(sg, l)| sg * (l - max).exp()).sum();
    (s.signum(), max + s.abs().ln())
}

/// `(sign, ln|Π_k (1 ± e^{−βε_k})|)` over a momentum grid.
fn log_product(eps: impl Iterator<Item = f64>, beta: f64, plus: bool) -> (f64, f64) {
    let mut sign = 1.0;
    let mut log = 0.0;
    for e in eps {
        let x = (-beta * e).exp();
        let term = if plus { 1.0 + x } else { 1.0 - x };
        if term == 0.0 {
            return (0.0, f64::NEG_INFINITY);
        }
        sign *= term.signum();
        log += term.abs().ln();
    }
    (sign, log)
}

/// `ln Z` of the XY chain `H = J Σ (SˣSˣ + SʸSʸ) − h Σ Sᶻ` of length `l`
/// (periodic), with exact fermion-parity projection.
///
/// Single-particle dispersion after Jordan-Wigner: `ε_k = J cos k − h`,
/// plus the constant `C = hL/2`.
pub fn xy_chain_log_z(l: usize, j: f64, field: f64, beta: f64) -> f64 {
    assert!(l >= 2 && l.is_multiple_of(2), "length must be even ≥ 2");
    let eps = |k: f64| j * k.cos() - field;

    let (s_ap_p, l_ap_p) = log_product(ap_grid(l).map(eps), beta, true);
    let (s_ap_m, l_ap_m) = log_product(ap_grid(l).map(eps), beta, false);
    let (s_p_p, l_p_p) = log_product(p_grid(l).map(eps), beta, true);
    let (s_p_m, l_p_m) = log_product(p_grid(l).map(eps), beta, false);

    let (sign, log) = signed_log_sum(&[
        (s_ap_p, l_ap_p),
        (s_ap_m, l_ap_m),
        (s_p_p, l_p_p),
        (-s_p_m, l_p_m),
    ]);
    assert!(sign > 0.0, "partition function must be positive");
    // ½ prefactor and the constant C = hL/2 from −h Σ (n − ½).
    log - std::f64::consts::LN_2 - beta * field * l as f64 / 2.0
}

/// Mean energy of the XY chain via `E = −∂ ln Z/∂β` (five-point stencil;
/// accurate to ~1e-10 relative, far below any QMC error bar).
pub fn xy_chain_energy(l: usize, j: f64, field: f64, beta: f64) -> f64 {
    let db = 1e-4 * beta.max(0.1);
    let f = |b: f64| xy_chain_log_z(l, j, field, b);
    // five-point central first derivative
    let d = (f(beta - 2.0 * db) - 8.0 * f(beta - db) + 8.0 * f(beta + db) - f(beta + 2.0 * db))
        / (12.0 * db);
    -d
}

/// Heat capacity via `C = β² ∂² ln Z/∂β²` (central stencil).
pub fn xy_chain_heat_capacity(l: usize, j: f64, field: f64, beta: f64) -> f64 {
    let db = 1e-3 * beta.max(0.1);
    let f = |b: f64| xy_chain_log_z(l, j, field, b);
    let d2 = (f(beta + db) - 2.0 * f(beta) + f(beta - db)) / (db * db);
    beta * beta * d2
}

/// Uniform susceptibility `χ = (1/β)∂² ln Z/∂h²` at `field = 0` (total,
/// divide by `l` for per-site).
pub fn xy_chain_susceptibility(l: usize, j: f64, beta: f64) -> f64 {
    let dh = 1e-4;
    let f = |h: f64| xy_chain_log_z(l, j, h, beta);
    let d2 = (f(dh) - 2.0 * f(0.0) + f(-dh)) / (dh * dh);
    d2 / beta
}

/// Ground-state energy of the periodic 1-D TFIM
/// `H = −J Σ σᶻσᶻ − h Σ σˣ`: the even-parity (antiperiodic) vacuum,
/// `E₀ = −½ Σ_{k∈AP} Λ_k`, `Λ_k = 2√(J² + h² − 2Jh cos k)`.
pub fn tfim_chain_ground_energy(l: usize, j: f64, h: f64) -> f64 {
    assert!(l >= 2, "need at least two sites");
    -0.5 * ap_grid(l)
        .map(|k| 2.0 * (j * j + h * h - 2.0 * j * h * k.cos()).sqrt())
        .sum::<f64>()
}

/// Thermodynamic-limit ground-state energy density of the 1-D TFIM
/// (numerical momentum integral, 1e-10 accurate).
pub fn tfim_chain_ground_energy_density_inf(j: f64, h: f64) -> f64 {
    // −(1/2π)∫₀^{2π} Λ(k)/2 dk via Simpson on a fine grid.
    let n = 20_000;
    let dk = 2.0 * PI / n as f64;
    let f = |k: f64| (j * j + h * h - 2.0 * j * h * k.cos()).sqrt();
    let mut s = f(0.0) + f(2.0 * PI);
    for i in 1..n {
        let k = i as f64 * dk;
        s += if i % 2 == 1 { 4.0 } else { 2.0 } * f(k);
    }
    -(s * dk / 3.0) / (2.0 * PI)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thermo::Spectrum;
    use crate::xxz::{full_spectrum, XxzParams};
    use crate::{freefermion, tfim};
    use qmc_lattice::Chain;

    #[test]
    fn log_z_matches_ed_xy_chain() {
        // The decisive test: the projected free-fermion ln Z must equal
        // dense ED *absolutely* (same Hamiltonian, same constant).
        for l in [4usize, 6, 8] {
            let lat = Chain::new(l);
            for &(h, beta) in &[(0.0, 0.5), (0.0, 2.0), (0.3, 1.0), (-0.2, 3.0)] {
                let spec = full_spectrum(&lat, &XxzParams::xy(1.0).with_field(h));
                let exact = spec.log_partition(beta);
                let ff = xy_chain_log_z(l, 1.0, h, beta);
                assert!(
                    (exact - ff).abs() < 1e-9,
                    "L={l} h={h} β={beta}: ED {exact} vs FF {ff}"
                );
            }
        }
    }

    #[test]
    fn energy_matches_ed() {
        let lat = Chain::new(8);
        let spec = full_spectrum(&lat, &XxzParams::xy(1.0));
        for &beta in &[0.5f64, 1.0, 4.0] {
            let e_ed = spec.energy(beta);
            let e_ff = xy_chain_energy(8, 1.0, 0.0, beta);
            assert!((e_ed - e_ff).abs() < 1e-6, "β={beta}: {e_ed} vs {e_ff}");
        }
    }

    #[test]
    fn susceptibility_matches_ed() {
        let lat = Chain::new(6);
        let spec = full_spectrum(&lat, &XxzParams::xy(1.0));
        for &beta in &[0.5f64, 1.0, 2.0] {
            let chi_ed = spec.susceptibility(beta);
            let chi_ff = xy_chain_susceptibility(6, 1.0, beta);
            assert!(
                (chi_ed - chi_ff).abs() < 1e-5,
                "β={beta}: {chi_ed} vs {chi_ff}"
            );
        }
    }

    #[test]
    fn heat_capacity_matches_ed() {
        let lat = Chain::new(6);
        let spec = full_spectrum(&lat, &XxzParams::xy(1.0));
        let beta = 1.0;
        let c_ed = spec.heat_capacity(beta);
        let c_ff = xy_chain_heat_capacity(6, 1.0, 0.0, beta);
        assert!((c_ed - c_ff).abs() < 1e-4, "{c_ed} vs {c_ff}");
    }

    #[test]
    fn tfim_ground_energy_matches_ed() {
        for l in [4usize, 6, 8] {
            let lat = Chain::new(l);
            for &h in &[0.3f64, 1.0, 2.5] {
                let ed = tfim::full_spectrum(&lat, &tfim::TfimParams { j: 1.0, h }).ground_energy();
                let ff = tfim_chain_ground_energy(l, 1.0, h);
                assert!((ed - ff).abs() < 1e-8, "L={l} h={h}: ED {ed} vs FF {ff}");
            }
        }
    }

    #[test]
    fn tfim_infinite_volume_known_limits() {
        // h=0: E/N = −J; critical point h=J: E/N = −4/π.
        assert!((tfim_chain_ground_energy_density_inf(1.0, 0.0) + 1.0).abs() < 1e-8);
        let crit = tfim_chain_ground_energy_density_inf(1.0, 1.0);
        assert!(
            (crit + 4.0 / PI).abs() < 1e-6,
            "critical E/N = {crit}, expect {}",
            -4.0 / PI
        );
    }

    #[test]
    fn tfim_finite_size_converges_to_bulk() {
        let bulk = tfim_chain_ground_energy_density_inf(1.0, 0.7);
        let e64 = tfim_chain_ground_energy(64, 1.0, 0.7) / 64.0;
        assert!((bulk - e64).abs() < 1e-4, "{bulk} vs {e64}");
    }

    #[test]
    fn xy_large_l_energy_bounded_and_smooth() {
        // No exact comparison at L=64, but the curve must be smooth,
        // monotone in β (energy decreases), and within physical bounds.
        let es: Vec<f64> = (1..=10)
            .map(|i| xy_chain_energy(64, 1.0, 0.0, i as f64 * 0.4) / 64.0)
            .collect();
        for w in es.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "energy must decrease with β: {es:?}");
        }
        // Bulk XY GS energy density = −1/π.
        assert!(es.last().unwrap() > &(-1.0 / PI - 0.05));
    }

    #[test]
    fn signed_log_sum_basic() {
        // 3 − 1 = 2 in log space.
        let (s, l) = freefermion::signed_log_sum(&[(1.0, 3.0f64.ln()), (-1.0, 0.0)]);
        assert!(s > 0.0);
        assert!((l - 2.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn infinite_temperature_entropy() {
        // β→0: ln Z → N ln 2.
        let lz = xy_chain_log_z(10, 1.0, 0.0, 1e-8);
        assert!((lz - 10.0 * std::f64::consts::LN_2).abs() < 1e-6);
        let _ = Spectrum::from_energies(vec![0.0]); // keep import used
    }
}
