//! Transverse-field Ising model, exact diagonalization in the full basis.
//!
//! `H = −J Σ_{⟨ij⟩} σᶻσᶻ − h Σ_i σˣ`  (Pauli matrices, eigenvalues ±1).
//!
//! The transverse field breaks magnetization conservation, so the full
//! `2^N` basis is diagonalized; practical up to N ≈ 10–12 sites. For the
//! observables the F4 experiment needs (`⟨|m|⟩`, `⟨σˣ⟩`) the eigenvectors
//! are used directly.

use crate::lanczos::LinearOp;
use crate::matrix::{tridiag_eigen, SymMatrix};
use crate::thermo::Spectrum;
use qmc_lattice::Lattice;
use qmc_stats::logsumexp;

/// TFIM couplings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TfimParams {
    /// Ferromagnetic Ising coupling (J > 0 favors alignment).
    pub j: f64,
    /// Transverse field strength.
    pub h: f64,
}

/// Diagonal (Ising) energy of a σᶻ basis state (bit set = σᶻ = +1).
fn ising_energy<L: Lattice>(lat: &L, j: f64, state: u64) -> f64 {
    let mut e = 0.0;
    for b in lat.bonds() {
        let sa = if state >> b.a & 1 == 1 { 1.0 } else { -1.0 };
        let sb = if state >> b.b & 1 == 1 { 1.0 } else { -1.0 };
        e -= j * sa * sb;
    }
    e
}

/// Dense TFIM Hamiltonian in the full basis (`dim = 2^N`, N ≤ 20 hard
/// limit; dense solves are practical to N ≈ 12).
pub fn hamiltonian<L: Lattice>(lat: &L, p: &TfimParams) -> SymMatrix {
    let n = lat.num_sites();
    assert!(n <= 20, "full TFIM basis limited to 20 sites, got {n}");
    let dim = 1usize << n;
    let mut hmat = SymMatrix::zeros(dim);
    for state in 0..dim as u64 {
        hmat.set(
            state as usize,
            state as usize,
            ising_energy(lat, p.j, state),
        );
        for site in 0..n {
            let flipped = (state ^ (1 << site)) as usize;
            if flipped > state as usize {
                hmat.add(state as usize, flipped, -p.h);
            }
        }
    }
    hmat
}

/// Full TFIM spectrum (magnetization not resolved — it is not conserved).
pub fn full_spectrum<L: Lattice>(lat: &L, p: &TfimParams) -> Spectrum {
    let h = hamiltonian(lat, p);
    Spectrum::from_energies(tridiag_eigen(&h, false).values)
}

/// Exact thermal observables from the eigen-decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TfimThermal {
    /// Total energy `⟨H⟩`.
    pub energy: f64,
    /// `⟨|m|⟩` with `m = (1/N) Σ σᶻ` (order parameter of the FM phase).
    pub abs_magnetization: f64,
    /// `⟨σˣ⟩` averaged over sites.
    pub sx: f64,
}

/// Compute [`TfimThermal`] at inverse temperature `beta`.
pub fn thermal<L: Lattice>(lat: &L, p: &TfimParams, beta: f64) -> TfimThermal {
    let n = lat.num_sites();
    let dim = 1usize << n;
    let hmat = hamiltonian(lat, p);
    let eig = tridiag_eigen(&hmat, true);
    let z = eig.vectors.as_ref().expect("vectors requested");

    // Boltzmann weights, stably.
    let logw: Vec<f64> = eig.values.iter().map(|&e| -beta * e).collect();
    let lz = logsumexp(&logw);
    let w: Vec<f64> = logw.iter().map(|&lw| (lw - lz).exp()).collect();

    // |m| per basis state (diagonal in σᶻ).
    let absm: Vec<f64> = (0..dim as u64)
        .map(|s| {
            let up = s.count_ones() as f64;
            ((2.0 * up - n as f64) / n as f64).abs()
        })
        .collect();

    let mut energy = 0.0;
    let mut abs_mag = 0.0;
    let mut sx = 0.0;
    for k in 0..dim {
        if w[k] < 1e-300 {
            continue;
        }
        energy += w[k] * eig.values[k];
        // ⟨k| |m| |k⟩ = Σ_s |m(s)| z[s][k]²
        let mut mk = 0.0;
        for s in 0..dim {
            let amp = z[s * dim + k];
            mk += absm[s] * amp * amp;
        }
        abs_mag += w[k] * mk;
        // ⟨k| σˣ_i |k⟩ summed over sites: σˣ flips one bit.
        let mut sxk = 0.0;
        for s in 0..dim {
            let amp = z[s * dim + k];
            if amp == 0.0 {
                continue;
            }
            for site in 0..n {
                let flipped = s ^ (1 << site);
                sxk += amp * z[flipped * dim + k];
            }
        }
        sx += w[k] * sxk / n as f64;
    }

    TfimThermal {
        energy,
        abs_magnetization: abs_mag,
        sx,
    }
}

/// Matrix-free TFIM Hamiltonian for Lanczos at sizes beyond dense reach.
pub struct TfimOp<'a, L: Lattice> {
    lattice: &'a L,
    params: TfimParams,
    diag: Vec<f64>,
}

impl<'a, L: Lattice> TfimOp<'a, L> {
    /// Build the operator (precomputes the diagonal; `2^N` f64s).
    pub fn new(lattice: &'a L, params: TfimParams) -> Self {
        let n = lattice.num_sites();
        assert!(n <= 26, "TFIM Lanczos limited to 26 sites");
        let diag = (0..1u64 << n)
            .map(|s| ising_energy(lattice, params.j, s))
            .collect();
        Self {
            lattice,
            params,
            diag,
        }
    }
}

impl<L: Lattice> LinearOp for TfimOp<'_, L> {
    fn dim(&self) -> usize {
        self.diag.len()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let n = self.lattice.num_sites();
        for (s, out) in y.iter_mut().enumerate() {
            let mut acc = self.diag[s] * x[s];
            for site in 0..n {
                acc -= self.params.h * x[s ^ (1 << site)];
            }
            *out = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanczos::lanczos_ground_energy;
    use qmc_lattice::Chain;

    #[test]
    fn two_site_exact_spectrum() {
        // Two sites, one bond: eigenvalues ±J, ±√(J²+4h²).
        let lat = Chain::new(2);
        let (j, h) = (1.0, 0.7);
        let s = full_spectrum(&lat, &TfimParams { j, h });
        let gap = (j * j + 4.0 * h * h).sqrt();
        let mut expect = vec![-gap, -j, j, gap];
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (a, b) in s.levels.iter().map(|l| l.energy).zip(expect) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn zero_field_matches_classical_ising() {
        let lat = Chain::new(4);
        let s = full_spectrum(&lat, &TfimParams { j: 1.0, h: 0.0 });
        // Classical 4-ring ferromagnet: E ∈ {−4, 0, +4} with known
        // degeneracies 2, 12, 2.
        let count = |e: f64| {
            s.levels
                .iter()
                .filter(|l| (l.energy - e).abs() < 1e-9)
                .count()
        };
        assert_eq!(count(-4.0), 2);
        assert_eq!(count(0.0), 12);
        assert_eq!(count(4.0), 2);
    }

    #[test]
    fn zero_coupling_free_spins() {
        // J=0: N independent spins in a transverse field; GS = −hN and
        // ⟨σˣ⟩ = tanh(βh).
        let lat = Chain::new(4);
        let p = TfimParams { j: 0.0, h: 0.9 };
        let s = full_spectrum(&lat, &p);
        assert!((s.ground_energy() + 0.9 * 4.0).abs() < 1e-10);
        let beta = 1.3;
        let t = thermal(&lat, &p, beta);
        assert!(
            (t.sx - (beta * 0.9).tanh()).abs() < 1e-8,
            "sx {} vs {}",
            t.sx,
            (beta * 0.9).tanh()
        );
    }

    #[test]
    fn low_temperature_ferromagnet_orders() {
        let lat = Chain::new(6);
        let t = thermal(&lat, &TfimParams { j: 1.0, h: 0.1 }, 20.0);
        assert!(t.abs_magnetization > 0.9, "m = {}", t.abs_magnetization);
    }

    #[test]
    fn strong_field_paramagnet_disorders() {
        let lat = Chain::new(6);
        let t = thermal(&lat, &TfimParams { j: 1.0, h: 4.0 }, 20.0);
        // Paramagnet: ⟨|m|⟩ is O(1/√N) ≈ 0.41 at L = 6, far below the
        // ordered value ≈ 1.
        assert!(t.abs_magnetization < 0.45, "m = {}", t.abs_magnetization);
        assert!(t.sx > 0.9, "sx = {}", t.sx);
    }

    #[test]
    fn thermal_energy_matches_spectrum_average() {
        let lat = Chain::new(4);
        let p = TfimParams { j: 1.0, h: 0.8 };
        let beta = 0.9;
        let t = thermal(&lat, &p, beta);
        let s = full_spectrum(&lat, &p);
        assert!((t.energy - s.energy(beta)).abs() < 1e-9);
    }

    #[test]
    fn lanczos_op_matches_dense_ground_state() {
        let lat = Chain::new(8);
        let p = TfimParams { j: 1.0, h: 0.9 };
        let dense = full_spectrum(&lat, &p).ground_energy();
        let op = TfimOp::new(&lat, p);
        let lz = lanczos_ground_energy(&op, 3, 300, 1e-11);
        assert!((dense - lz).abs() < 1e-8, "{dense} vs {lz}");
    }

    #[test]
    fn spectrum_symmetric_under_field_sign() {
        // σˣ → −σˣ is a unitary (rotate about z): spectra must match.
        let lat = Chain::new(4);
        let sp = full_spectrum(&lat, &TfimParams { j: 1.0, h: 0.6 });
        let sm = full_spectrum(&lat, &TfimParams { j: 1.0, h: -0.6 });
        for (a, b) in sp.levels.iter().zip(&sm.levels) {
            assert!((a.energy - b.energy).abs() < 1e-9);
        }
    }
}
