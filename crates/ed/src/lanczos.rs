//! Lanczos iteration for extreme eigenvalues of large sparse operators.

use crate::matrix::{tridiag_eigen, SymMatrix};
use crate::xxz::{sector_basis, XxzParams};
use qmc_lattice::Lattice;
use qmc_rng::{Rng64, SplitMix64};
use std::collections::HashMap;

/// A symmetric linear operator given by its action on a vector.
pub trait LinearOp {
    /// Vector-space dimension.
    fn dim(&self) -> usize;
    /// `y ← A x`.
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

impl LinearOp for SymMatrix {
    fn dim(&self) -> usize {
        SymMatrix::dim(self)
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec(x, y);
    }
}

/// Ground-state (smallest) eigenvalue by Lanczos with full
/// reorthogonalization.
///
/// Memory is `O(dim · iterations)` — fine for the ≤ 20 000-dimensional
/// sectors the oracles need. Stops when the Ritz value changes by less
/// than `tol` between iterations, or at `max_iter`.
pub fn lanczos_ground_energy(op: &dyn LinearOp, seed: u64, max_iter: usize, tol: f64) -> f64 {
    let n = op.dim();
    assert!(n > 0);
    if n == 1 {
        let mut y = vec![0.0];
        op.apply(&[1.0], &mut y);
        return y[0];
    }

    let mut rng = SplitMix64::new(seed);
    let mut v: Vec<f64> = (0..n).map(|_| rng.next_f64() - 0.5).collect();
    normalize(&mut v);

    let mut vs: Vec<Vec<f64>> = vec![v.clone()]; // Lanczos basis
    let mut alphas: Vec<f64> = Vec::new();
    let mut betas: Vec<f64> = Vec::new();
    let mut w = vec![0.0; n];
    let mut prev_ritz = f64::INFINITY;

    for iter in 0..max_iter.min(n) {
        op.apply(&vs[iter], &mut w);
        let alpha = dot(&vs[iter], &w);
        alphas.push(alpha);
        // w ← w − α v_j − β v_{j−1}
        for i in 0..n {
            w[i] -= alpha * vs[iter][i];
        }
        if iter > 0 {
            let beta_prev = betas[iter - 1];
            for i in 0..n {
                w[i] -= beta_prev * vs[iter - 1][i];
            }
        }
        // Full reorthogonalization (twice is enough).
        for _ in 0..2 {
            for basis_vec in &vs {
                let c = dot(basis_vec, &w);
                for i in 0..n {
                    w[i] -= c * basis_vec[i];
                }
            }
        }
        let beta = norm(&w);

        // Ritz value from the current tridiagonal matrix.
        let k = alphas.len();
        let mut t = SymMatrix::zeros(k);
        for i in 0..k {
            t.set(i, i, alphas[i]);
            if i + 1 < k {
                t.set(i, i + 1, betas[i]);
            }
        }
        let ritz = tridiag_eigen(&t, false).values[0];
        if (ritz - prev_ritz).abs() < tol || beta < 1e-13 {
            return ritz;
        }
        prev_ritz = ritz;

        betas.push(beta);
        let next: Vec<f64> = w.iter().map(|x| x / beta).collect();
        vs.push(next);
    }
    prev_ritz
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

fn normalize(a: &mut [f64]) {
    let nrm = norm(a);
    assert!(nrm > 0.0, "cannot normalize zero vector");
    for x in a {
        *x /= nrm;
    }
}

/// Matrix-free XXZ Hamiltonian on one magnetization sector, for Lanczos
/// at sizes beyond dense reach (e.g. the 4×4 Heisenberg lattice, sector
/// dimension 12 870).
pub struct XxzSectorOp<'a, L: Lattice> {
    lattice: &'a L,
    params: XxzParams,
    basis: Vec<u64>,
    index: HashMap<u64, u32>,
}

impl<'a, L: Lattice> XxzSectorOp<'a, L> {
    /// Build the operator for the sector with `n_up` up spins.
    pub fn new(lattice: &'a L, params: XxzParams, n_up: usize) -> Self {
        let basis = sector_basis(lattice.num_sites(), n_up);
        let index = basis
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u32))
            .collect();
        Self {
            lattice,
            params,
            basis,
            index,
        }
    }

    /// Sector dimension.
    pub fn sector_dim(&self) -> usize {
        self.basis.len()
    }
}

impl<L: Lattice> LinearOp for XxzSectorOp<'_, L> {
    fn dim(&self) -> usize {
        self.basis.len()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let p = &self.params;
        let n = self.lattice.num_sites() as f64;
        for (row, &state) in self.basis.iter().enumerate() {
            // Diagonal part.
            let mut diag = 0.0;
            for b in self.lattice.bonds() {
                let sa = if state >> b.a & 1 == 1 { 0.5 } else { -0.5 };
                let sb = if state >> b.b & 1 == 1 { 0.5 } else { -0.5 };
                diag += p.jz * sa * sb;
            }
            let m = state.count_ones() as f64 - n / 2.0;
            diag -= p.field * m;
            let mut acc = diag * x[row];
            // Off-diagonal spin flips.
            for b in self.lattice.bonds() {
                if (state >> b.a & 1) != (state >> b.b & 1) {
                    let flipped = state ^ (1 << b.a) ^ (1 << b.b);
                    let col = self.index[&flipped] as usize;
                    acc += p.jx / 2.0 * x[col];
                }
            }
            y[row] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xxz::{full_spectrum, sector_hamiltonian};
    use qmc_lattice::{Chain, Square};

    #[test]
    fn lanczos_matches_dense_on_random_matrix() {
        use qmc_rng::Xoshiro256StarStar;
        let n = 60;
        let mut rng = Xoshiro256StarStar::new(5);
        let mut m = SymMatrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                m.set(i, j, rng.next_f64() - 0.5);
            }
        }
        let dense = tridiag_eigen(&m, false).values[0];
        let lz = lanczos_ground_energy(&m, 99, 200, 1e-12);
        assert!((dense - lz).abs() < 1e-9, "{dense} vs {lz}");
    }

    #[test]
    fn sector_op_matches_dense_hamiltonian() {
        let lat = Chain::new(8);
        let p = XxzParams::heisenberg(1.0);
        let op = XxzSectorOp::new(&lat, p, 4);
        let basis = sector_basis(8, 4);
        let dense = sector_hamiltonian(&lat, &p, &basis);
        // Apply both to a few unit vectors and compare columns.
        for col in [0usize, 7, 33, 69] {
            let mut x = vec![0.0; op.dim()];
            x[col] = 1.0;
            let mut y1 = vec![0.0; op.dim()];
            let mut y2 = vec![0.0; op.dim()];
            op.apply(&x, &mut y1);
            dense.matvec(&x, &mut y2);
            for (a, b) in y1.iter().zip(&y2) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn lanczos_heisenberg_chain_ground_state() {
        let lat = Chain::new(10);
        let p = XxzParams::heisenberg(1.0);
        let op = XxzSectorOp::new(&lat, p, 5); // GS lives in Sz=0 sector
        let e_lanczos = lanczos_ground_energy(&op, 7, 300, 1e-11);
        let e_dense = full_spectrum(&lat, &p).ground_energy();
        assert!(
            (e_lanczos - e_dense).abs() < 1e-8,
            "{e_lanczos} vs {e_dense}"
        );
    }

    #[test]
    fn four_by_four_heisenberg_reference_energy() {
        // 4×4 Heisenberg PBC ground state: E0/N = −0.7017802 (exact
        // diagonalization literature). Sector dimension 12 870.
        let lat = Square::new(4, 4);
        let p = XxzParams::heisenberg(1.0);
        let op = XxzSectorOp::new(&lat, p, 8);
        assert_eq!(op.sector_dim(), 12870);
        let e0 = lanczos_ground_energy(&op, 11, 250, 1e-10);
        assert!((e0 / 16.0 + 0.7017802).abs() < 1e-5, "E0/N = {}", e0 / 16.0);
    }

    #[test]
    fn one_dimensional_operator() {
        let mut m = SymMatrix::zeros(1);
        m.set(0, 0, 4.2);
        assert_eq!(lanczos_ground_energy(&m, 0, 10, 1e-12), 4.2);
    }
}
