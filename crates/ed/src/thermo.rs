//! Exact canonical thermodynamics from a full spectrum.

use qmc_stats::logsumexp;

/// One eigenstate: energy and total magnetization `Σ Sᶻ` (half-integer
/// values are fine; stored as `f64`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Level {
    /// Eigenenergy.
    pub energy: f64,
    /// Total Sᶻ of the eigenstate (0 when not resolved).
    pub magnetization: f64,
}

/// A complete spectrum with (optional) magnetization resolution, from
/// which every canonical average follows exactly.
#[derive(Debug, Clone)]
pub struct Spectrum {
    /// All levels (with multiplicity — degenerate levels appear repeatedly).
    pub levels: Vec<Level>,
}

impl Spectrum {
    /// Spectrum from bare energies (magnetization set to 0).
    pub fn from_energies(energies: Vec<f64>) -> Self {
        Self {
            levels: energies
                .into_iter()
                .map(|e| Level {
                    energy: e,
                    magnetization: 0.0,
                })
                .collect(),
        }
    }

    /// Number of levels (Hilbert-space dimension).
    pub fn dim(&self) -> usize {
        self.levels.len()
    }

    /// Ground-state energy.
    pub fn ground_energy(&self) -> f64 {
        self.levels
            .iter()
            .map(|l| l.energy)
            .fold(f64::INFINITY, f64::min)
    }

    /// `ln Z(β)`, overflow-safe.
    pub fn log_partition(&self, beta: f64) -> f64 {
        let terms: Vec<f64> = self.levels.iter().map(|l| -beta * l.energy).collect();
        logsumexp(&terms)
    }

    /// Canonical average of `f(level)`.
    pub fn average<F: Fn(&Level) -> f64>(&self, beta: f64, f: F) -> f64 {
        let lz = self.log_partition(beta);
        self.levels
            .iter()
            .map(|l| f(l) * (-beta * l.energy - lz).exp())
            .sum()
    }

    /// Mean energy `⟨E⟩` (total, not per site).
    pub fn energy(&self, beta: f64) -> f64 {
        self.average(beta, |l| l.energy)
    }

    /// Heat capacity `C = β²(⟨E²⟩ − ⟨E⟩²)` (total).
    pub fn heat_capacity(&self, beta: f64) -> f64 {
        let e = self.energy(beta);
        let e2 = self.average(beta, |l| l.energy * l.energy);
        (beta * beta * (e2 - e * e)).max(0.0)
    }

    /// Uniform susceptibility `χ = β(⟨M²⟩ − ⟨M⟩²)` (total), valid because
    /// `M = Σ Sᶻ` commutes with the XXZ Hamiltonian.
    pub fn susceptibility(&self, beta: f64) -> f64 {
        let m = self.average(beta, |l| l.magnetization);
        let m2 = self.average(beta, |l| l.magnetization * l.magnetization);
        (beta * (m2 - m * m)).max(0.0)
    }

    /// Helmholtz free energy `F = −ln Z / β` (total).
    pub fn free_energy(&self, beta: f64) -> f64 {
        -self.log_partition(beta) / beta
    }

    /// Entropy `S = β(⟨E⟩ − F)` (in units of k_B, total).
    pub fn entropy(&self, beta: f64) -> f64 {
        beta * (self.energy(beta) - self.free_energy(beta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_level(gap: f64) -> Spectrum {
        Spectrum::from_energies(vec![0.0, gap])
    }

    #[test]
    fn two_level_energy_exact() {
        let s = two_level(1.0);
        let beta = 2.0;
        let exact = (-beta_exp(beta)) / (1.0 + beta_exp_raw(beta));
        // ⟨E⟩ = Δ e^{−βΔ}/(1+e^{−βΔ}) with Δ=1
        let expect = (-beta).exp() / (1.0 + (-beta).exp());
        assert!((s.energy(beta) - expect).abs() < 1e-14);
        let _ = exact; // silence helper
    }

    fn beta_exp(beta: f64) -> f64 {
        -(-beta).exp()
    }
    fn beta_exp_raw(beta: f64) -> f64 {
        (-beta).exp()
    }

    #[test]
    fn infinite_temperature_limits() {
        let s = Spectrum::from_energies(vec![0.0, 1.0, 2.0, 3.0]);
        let beta = 1e-9;
        // ⟨E⟩ → mean of levels; S → ln(dim)
        assert!((s.energy(beta) - 1.5).abs() < 1e-6);
        assert!((s.entropy(beta) - 4.0f64.ln()).abs() < 1e-6);
    }

    #[test]
    fn zero_temperature_limit() {
        let s = Spectrum::from_energies(vec![-2.0, 1.0, 5.0]);
        let beta = 200.0;
        assert!((s.energy(beta) + 2.0).abs() < 1e-10);
        assert!(s.heat_capacity(beta) < 1e-8);
        assert_eq!(s.ground_energy(), -2.0);
    }

    #[test]
    fn heat_capacity_consistent_with_energy_derivative() {
        // C = −β² dE/dβ ⇒ compare with a central finite difference.
        let s = Spectrum::from_energies(vec![0.0, 0.7, 1.1, 2.5]);
        let beta = 1.3;
        let db = 1e-5;
        let dedb = (s.energy(beta + db) - s.energy(beta - db)) / (2.0 * db);
        let c_fd = -beta * beta * dedb;
        assert!((s.heat_capacity(beta) - c_fd).abs() < 1e-6);
    }

    #[test]
    fn susceptibility_free_spin() {
        // A single free spin-1/2: χ = β/4.
        let s = Spectrum {
            levels: vec![
                Level {
                    energy: 0.0,
                    magnetization: 0.5,
                },
                Level {
                    energy: 0.0,
                    magnetization: -0.5,
                },
            ],
        };
        let beta = 1.7;
        assert!((s.susceptibility(beta) - beta / 4.0).abs() < 1e-14);
    }

    #[test]
    fn log_partition_huge_energies_stable() {
        let s = Spectrum::from_energies(vec![-1e5, -1e5 + 1.0]);
        let lz = s.log_partition(1.0);
        assert!(lz.is_finite());
        assert!((lz - (1e5 + (1.0 + (-1.0f64).exp()).ln())).abs() < 1e-9);
    }

    #[test]
    fn free_energy_below_ground_plus_entropy() {
        let s = Spectrum::from_energies(vec![0.0, 1.0]);
        // F ≤ E_min at any β (since S ≥ 0); also F → E_min as β→∞
        assert!(s.free_energy(1.0) <= 0.0);
        assert!((s.free_energy(500.0) - 0.0).abs() < 1e-8);
    }
}
