//! Exact oracles for validating the Monte Carlo engines.
//!
//! A QMC code without an exact cross-check is a random-number generator
//! with extra steps. This crate provides the three oracle families the
//! test suite and the paper-reproduction harness lean on:
//!
//! * **Full diagonalization** ([`matrix`]) — an in-repo dense symmetric
//!   eigensolver (Householder tridiagonalization + implicit-shift QL, with
//!   cyclic Jacobi as an independent cross-check). No BLAS/LAPACK.
//! * **Sector-resolved spin Hamiltonians** ([`xxz`], [`tfim`]) — the
//!   spin-1/2 XXZ chain/square Hamiltonian built per magnetization sector
//!   (so uniform susceptibility is exact), and the transverse-field Ising
//!   Hamiltonian in the full 2^N basis.
//! * **Lanczos** ([`lanczos`]) — ground-state energies for sizes beyond
//!   dense reach (e.g. the 4×4 Heisenberg lattice).
//! * **Free fermions** ([`freefermion`]) — Jordan-Wigner solutions of the
//!   XY chain (finite temperature, with exact fermion-parity projection)
//!   and the 1-D TFIM ground state; validated against ED at small sizes so
//!   they can be trusted as large-`L` oracles.
//!
//! Thermodynamic averages from spectra (E, C, χ) live in [`thermo`].
//!
//! ```
//! use qmc_ed::xxz::{full_spectrum, XxzParams};
//! use qmc_lattice::Chain;
//!
//! // Two-site Heisenberg model: singlet at −3J/4, triplet at +J/4.
//! let spec = full_spectrum(&Chain::new(2), &XxzParams::heisenberg(1.0));
//! assert!((spec.ground_energy() + 0.75).abs() < 1e-12);
//! assert_eq!(spec.dim(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod freefermion;
pub mod lanczos;
pub mod matrix;
pub mod tfim;
pub mod thermo;
pub mod xxz;

pub use matrix::{jacobi_eigen, tridiag_eigen, EigenDecomposition, SymMatrix};
pub use thermo::Spectrum;
