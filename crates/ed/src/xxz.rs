//! Spin-1/2 XXZ Hamiltonian, built per magnetization sector.
//!
//! `H = Σ_{⟨ij⟩} [Jx (SˣSˣ + SʸSʸ) + Jz SᶻSᶻ] − h Σ_i Sᶻ`
//!
//! Total `Sᶻ` commutes with `H`, so the Hilbert space block-diagonalizes
//! into sectors of fixed up-spin count — which both shrinks the dense
//! diagonalization work and hands us the exact uniform susceptibility
//! (each level carries its magnetization quantum number).

use crate::matrix::{tridiag_eigen, SymMatrix};
use crate::thermo::{Level, Spectrum};
use qmc_lattice::Lattice;
use std::collections::HashMap;

/// XXZ couplings. `jx > 0, jz > 0` is the antiferromagnet in our sign
/// convention (`H = +J Σ S·S` for `jx = jz = J`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XxzParams {
    /// Transverse (XY) exchange.
    pub jx: f64,
    /// Longitudinal (Ising) exchange.
    pub jz: f64,
    /// Uniform longitudinal field `h` (couples as `−h Σ Sᶻ`).
    pub field: f64,
}

impl XxzParams {
    /// Isotropic Heisenberg coupling `J`.
    pub fn heisenberg(j: f64) -> Self {
        Self {
            jx: j,
            jz: j,
            field: 0.0,
        }
    }

    /// XY model (`Jz = 0`).
    pub fn xy(j: f64) -> Self {
        Self {
            jx: j,
            jz: 0.0,
            field: 0.0,
        }
    }

    /// Add a longitudinal field.
    pub fn with_field(mut self, h: f64) -> Self {
        self.field = h;
        self
    }
}

/// All basis states (bitmasks; bit set = spin up) with exactly `n_up` up
/// spins on `n_sites` sites, ascending.
pub fn sector_basis(n_sites: usize, n_up: usize) -> Vec<u64> {
    assert!(n_sites <= 63, "sector basis limited to 63 sites");
    assert!(n_up <= n_sites);
    let mut out = Vec::new();
    // Gosper's hack would be fancier; a filter is clear and these oracles
    // only run on small systems.
    if n_up == 0 {
        return vec![0];
    }
    let mut state: u64 = (1 << n_up) - 1; // smallest pattern
    let limit: u64 = state << (n_sites - n_up);
    loop {
        out.push(state);
        if state == limit {
            break;
        }
        // Next bit-permutation (Gosper).
        let c = state & state.wrapping_neg();
        let r = state + c;
        state = (((r ^ state) >> 2) / c) | r;
    }
    out
}

/// Diagonal (Ising + field) energy of a basis state.
fn diagonal_energy<L: Lattice>(lat: &L, p: &XxzParams, state: u64) -> f64 {
    let mut e = 0.0;
    for b in lat.bonds() {
        let sa = if state >> b.a & 1 == 1 { 0.5 } else { -0.5 };
        let sb = if state >> b.b & 1 == 1 { 0.5 } else { -0.5 };
        e += p.jz * sa * sb;
    }
    let n_up = state.count_ones() as f64;
    let m = n_up - lat.num_sites() as f64 / 2.0;
    e - p.field * m
}

/// Dense Hamiltonian restricted to the sector spanned by `basis`.
pub fn sector_hamiltonian<L: Lattice>(lat: &L, p: &XxzParams, basis: &[u64]) -> SymMatrix {
    let index: HashMap<u64, usize> = basis.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let mut h = SymMatrix::zeros(basis.len());
    for (row, &state) in basis.iter().enumerate() {
        h.set(row, row, diagonal_energy(lat, p, state));
        for b in lat.bonds() {
            let ba = state >> b.a & 1;
            let bb = state >> b.b & 1;
            if ba != bb {
                // S⁺S⁻ + S⁻S⁺ flips the antiparallel pair; amplitude Jx/2.
                let flipped = state ^ (1 << b.a) ^ (1 << b.b);
                let col = index[&flipped];
                if col > row {
                    h.add(row, col, p.jx / 2.0);
                }
            }
        }
    }
    h
}

/// The complete spectrum of the XXZ model on `lat`, magnetization
/// resolved. Feasible up to ~12 sites (largest sector 924).
pub fn full_spectrum<L: Lattice>(lat: &L, p: &XxzParams) -> Spectrum {
    let n = lat.num_sites();
    let mut levels = Vec::with_capacity(1 << n);
    for n_up in 0..=n {
        let m = n_up as f64 - n as f64 / 2.0;
        let basis = sector_basis(n, n_up);
        if basis.len() == 1 {
            levels.push(Level {
                energy: diagonal_energy(lat, p, basis[0]),
                magnetization: m,
            });
            continue;
        }
        let h = sector_hamiltonian(lat, p, &basis);
        let eig = tridiag_eigen(&h, false);
        levels.extend(eig.values.into_iter().map(|energy| Level {
            energy,
            magnetization: m,
        }));
    }
    Spectrum { levels }
}

/// Thermal average of an arbitrary *diagonal* (in the Sᶻ basis)
/// observable `f(state)` — e.g. spin-spin correlations — computed exactly
/// from the sector eigen-decompositions (requires eigenvectors, so keep
/// to ≤ 12 sites).
pub fn thermal_diagonal_average<L: Lattice, F>(lat: &L, p: &XxzParams, beta: f64, f: F) -> f64
where
    F: Fn(u64) -> f64,
{
    let n = lat.num_sites();
    // Two passes: one for ln Z (stable), one for the weighted average.
    let mut log_terms: Vec<f64> = Vec::new();
    let mut contributions: Vec<(f64, f64)> = Vec::new(); // (log w, ⟨n|f|n⟩)
    for n_up in 0..=n {
        let basis = sector_basis(n, n_up);
        if basis.len() == 1 {
            let e = diagonal_energy(lat, p, basis[0]);
            log_terms.push(-beta * e);
            contributions.push((-beta * e, f(basis[0])));
            continue;
        }
        let h = sector_hamiltonian(lat, p, &basis);
        let eig = crate::matrix::tridiag_eigen(&h, true);
        let dim = basis.len();
        let z = eig.vectors.as_ref().expect("vectors requested");
        for (k, &energy) in eig.values.iter().enumerate() {
            // ⟨k| f |k⟩ = Σ_s f(s) |⟨s|k⟩|²
            let mut fk = 0.0;
            for (row, &state) in basis.iter().enumerate() {
                let amp = z[row * dim + k];
                fk += f(state) * amp * amp;
            }
            log_terms.push(-beta * energy);
            contributions.push((-beta * energy, fk));
        }
    }
    let lz = qmc_stats::logsumexp(&log_terms);
    contributions
        .iter()
        .map(|&(lw, fk)| (lw - lz).exp() * fk)
        .sum()
}

/// Exact `⟨Sᶻ_i Sᶻ_j⟩` at inverse temperature `beta`.
pub fn szsz_correlation<L: Lattice>(lat: &L, p: &XxzParams, beta: f64, i: usize, j: usize) -> f64 {
    thermal_diagonal_average(lat, p, beta, |state| {
        let si = if state >> i & 1 == 1 { 0.5 } else { -0.5 };
        let sj = if state >> j & 1 == 1 { 0.5 } else { -0.5 };
        si * sj
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmc_lattice::{Chain, Square};

    fn binomial(n: usize, k: usize) -> usize {
        if k > n {
            return 0;
        }
        let mut r = 1usize;
        for i in 0..k.min(n - k) {
            r = r * (n - i) / (i + 1);
        }
        r
    }

    #[test]
    fn sector_basis_sizes_are_binomials() {
        for n in [2usize, 4, 6, 8] {
            for k in 0..=n {
                assert_eq!(sector_basis(n, k).len(), binomial(n, k), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn sector_basis_sorted_and_correct_popcount() {
        let b = sector_basis(8, 3);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert!(b.iter().all(|s| s.count_ones() == 3));
    }

    #[test]
    fn two_site_heisenberg_singlet_triplet() {
        // Single bond J S·S: singlet −3J/4, triplet +J/4 (×3).
        let lat = Chain::new(2);
        let s = full_spectrum(&lat, &XxzParams::heisenberg(1.0));
        let mut es: Vec<f64> = s.levels.iter().map(|l| l.energy).collect();
        es.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((es[0] + 0.75).abs() < 1e-12, "singlet: {}", es[0]);
        for e in &es[1..] {
            assert!((e - 0.25).abs() < 1e-12, "triplet: {e}");
        }
    }

    #[test]
    fn four_site_heisenberg_ring_ground_state() {
        // E0 = −2J for the 4-site Heisenberg ring (exact).
        let lat = Chain::new(4);
        let s = full_spectrum(&lat, &XxzParams::heisenberg(1.0));
        assert!((s.ground_energy() + 2.0).abs() < 1e-10);
        assert_eq!(s.dim(), 16);
    }

    #[test]
    fn spectrum_traceless_at_zero_field() {
        // Heisenberg exchange is traceless ⇒ Σ E_n = 0.
        let lat = Chain::new(6);
        let s = full_spectrum(&lat, &XxzParams::heisenberg(1.0));
        let sum: f64 = s.levels.iter().map(|l| l.energy).sum();
        assert!(sum.abs() < 1e-9, "trace {sum}");
    }

    #[test]
    fn high_temperature_susceptibility_is_curie() {
        // β→0: χ_total → β N/4 (free spins).
        let lat = Chain::new(6);
        let s = full_spectrum(&lat, &XxzParams::heisenberg(1.0));
        let beta = 1e-4;
        let chi = s.susceptibility(beta);
        assert!(
            (chi - beta * 6.0 / 4.0).abs() < 1e-6,
            "chi {chi} vs {}",
            beta * 6.0 / 4.0
        );
    }

    #[test]
    fn ising_limit_matches_direct_enumeration() {
        // jx = 0: H is diagonal; spectrum = classical Ising energies.
        let lat = Chain::new(4);
        let p = XxzParams {
            jx: 0.0,
            jz: 1.0,
            field: 0.3,
        };
        let s = full_spectrum(&lat, &p);
        let mut qm: Vec<f64> = s.levels.iter().map(|l| l.energy).collect();
        qm.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut cl: Vec<f64> = (0u64..16)
            .map(|state| diagonal_energy(&lat, &p, state))
            .collect();
        cl.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (a, b) in qm.iter().zip(&cl) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn field_shifts_sectors_linearly() {
        let lat = Chain::new(4);
        let h = 0.7;
        let s0 = full_spectrum(&lat, &XxzParams::heisenberg(1.0));
        let sh = full_spectrum(&lat, &XxzParams::heisenberg(1.0).with_field(h));
        // Match levels sector by sector: E(h) = E(0) − h·m.
        for (a, b) in s0.levels.iter().zip(&sh.levels) {
            assert_eq!(a.magnetization, b.magnetization);
            assert!((b.energy - (a.energy - h * a.magnetization)).abs() < 1e-9);
        }
    }

    #[test]
    fn heisenberg_chain_l8_reference_ground_energy() {
        // L=8 Heisenberg ring: E0/N = −0.456386… (exact diagonalization
        // literature value E0 = −3.651093…).
        let lat = Chain::new(8);
        let s = full_spectrum(&lat, &XxzParams::heisenberg(1.0));
        assert!(
            (s.ground_energy() + 3.651093).abs() < 1e-5,
            "E0 = {}",
            s.ground_energy()
        );
    }

    #[test]
    fn two_by_two_square_ground_state() {
        // 2×2 "square" with our single-bond convention is a 4-cycle —
        // same as the 4-site ring: E0 = −2J.
        let lat = Square::new(2, 2);
        let s = full_spectrum(&lat, &XxzParams::heisenberg(1.0));
        assert!((s.ground_energy() + 2.0).abs() < 1e-10);
    }

    #[test]
    fn szsz_same_site_is_quarter() {
        // ⟨(Sᶻ)²⟩ = 1/4 for spin-1/2, at any temperature.
        let lat = Chain::new(4);
        let p = XxzParams::heisenberg(1.0);
        for beta in [0.3, 1.0, 5.0] {
            let v = szsz_correlation(&lat, &p, beta, 2, 2);
            assert!((v - 0.25).abs() < 1e-10, "β={beta}: {v}");
        }
    }

    #[test]
    fn szsz_nearest_neighbor_relates_to_energy_at_heisenberg_point() {
        // SU(2) symmetry: ⟨S_i·S_j⟩ = 3⟨Sᶻ_i Sᶻ_j⟩, and the energy per
        // bond is J⟨S_i·S_j⟩ ⇒ E_total = 3 J N_b ⟨SᶻSᶻ⟩_nn.
        let lat = Chain::new(6);
        let p = XxzParams::heisenberg(1.0);
        let beta = 1.3;
        let spec = full_spectrum(&lat, &p);
        let szsz = szsz_correlation(&lat, &p, beta, 0, 1);
        assert!(
            (spec.energy(beta) - 3.0 * 6.0 * szsz).abs() < 1e-8,
            "E = {}, 3 N_b ⟨SzSz⟩ = {}",
            spec.energy(beta),
            3.0 * 6.0 * szsz
        );
    }

    #[test]
    fn szsz_afm_correlations_alternate_in_sign() {
        let lat = Chain::new(8);
        let p = XxzParams::heisenberg(1.0);
        let beta = 2.0;
        let c1 = szsz_correlation(&lat, &p, beta, 0, 1);
        let c2 = szsz_correlation(&lat, &p, beta, 0, 2);
        let c3 = szsz_correlation(&lat, &p, beta, 0, 3);
        assert!(c1 < 0.0, "nn must be AFM: {c1}");
        assert!(c2 > 0.0, "nnn must be FM: {c2}");
        assert!(c3 < 0.0, "3rd neighbour AFM: {c3}");
        assert!(c1.abs() > c2.abs() && c2.abs() > c3.abs(), "must decay");
    }

    #[test]
    fn thermal_diagonal_average_of_constant_is_constant() {
        let lat = Chain::new(4);
        let p = XxzParams::heisenberg(1.0);
        let v = thermal_diagonal_average(&lat, &p, 0.7, |_| 3.25);
        assert!((v - 3.25).abs() < 1e-10);
    }

    #[test]
    fn xy_chain_ground_energy_matches_free_fermions_l4() {
        // XY 4-ring: E0 = −Σ_{k occ} cos k over AP grid… cross-checked
        // value from free-fermion theory: E0 = −√2 for J=1.
        let lat = Chain::new(4);
        let s = full_spectrum(&lat, &XxzParams::xy(1.0));
        assert!(
            (s.ground_energy() + std::f64::consts::SQRT_2).abs() < 1e-10,
            "E0 = {}",
            s.ground_energy()
        );
    }
}
