//! Dense symmetric storage and eigensolvers (no external linear algebra).
//!
//! Two independent algorithms are provided:
//!
//! * [`tridiag_eigen`] — Householder reduction to tridiagonal form
//!   followed by the implicit-shift QL iteration. `O(n³)` with a small
//!   constant; the production path.
//! * [`jacobi_eigen`] — cyclic Jacobi rotations. Simpler, slower,
//!   unconditionally robust; used as an independent cross-check in tests
//!   (two different algorithms agreeing on random matrices is a strong
//!   correctness argument for both).

/// Dense symmetric matrix, row-major full storage.
#[derive(Debug, Clone, PartialEq)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// Zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        assert!(n > 0, "empty matrix");
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Set `(i, j)` *and* `(j, i)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
        self.data[j * self.n + i] = v;
    }

    /// Add `v` to `(i, j)` (and `(j, i)` when off-diagonal).
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] += v;
        if i != j {
            self.data[j * self.n + i] += v;
        }
    }

    /// Matrix–vector product `y = A x`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for (row, out) in self.data.chunks_exact(self.n).zip(y.iter_mut()) {
            *out = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    /// Verify symmetry to tolerance (used by debug assertions in tests).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for j in 0..i {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

/// Eigenvalues (ascending) and, optionally, the matching orthonormal
/// eigenvectors (column `k` of `vectors` ↔ `values[k]`, stored as
/// `vectors[i][k]` = component `i`).
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Row-major matrix whose columns are eigenvectors (empty when not
    /// requested).
    pub vectors: Option<Vec<f64>>,
    /// Dimension (for indexing into `vectors`).
    pub n: usize,
}

impl EigenDecomposition {
    /// Component `i` of eigenvector `k`.
    pub fn vector_component(&self, k: usize, i: usize) -> f64 {
        self.vectors.as_ref().expect("vectors not computed")[i * self.n + k]
    }
}

fn sign_of(a: f64, b: f64) -> f64 {
    if b >= 0.0 {
        a.abs()
    } else {
        -a.abs()
    }
}

/// Householder + implicit-shift QL eigensolver.
///
/// Panics if the QL iteration fails to converge (does not happen for
/// finite symmetric input).
pub fn tridiag_eigen(a: &SymMatrix, want_vectors: bool) -> EigenDecomposition {
    let n = a.n;
    let mut z = a.data.clone(); // becomes Q, then eigenvectors
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];

    // --- Householder reduction (tred2) ---
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let scale: f64 = (0..=l).map(|k| z[i * n + k].abs()).sum();
            if scale == 0.0 {
                e[i] = z[i * n + l];
            } else {
                for k in 0..=l {
                    z[i * n + k] /= scale;
                    h += z[i * n + k] * z[i * n + k];
                }
                let f = z[i * n + l];
                let g = -sign_of(h.sqrt(), f);
                e[i] = scale * g;
                h -= f * g;
                z[i * n + l] = f - g;
                let mut f_acc = 0.0;
                for j in 0..=l {
                    z[j * n + i] = z[i * n + j] / h;
                    let mut g_acc = 0.0;
                    for k in 0..=j {
                        g_acc += z[j * n + k] * z[i * n + k];
                    }
                    for k in (j + 1)..=l {
                        g_acc += z[k * n + j] * z[i * n + k];
                    }
                    e[j] = g_acc / h;
                    f_acc += e[j] * z[i * n + j];
                }
                let hh = f_acc / (h + h);
                for j in 0..=l {
                    let f = z[i * n + j];
                    e[j] -= hh * f;
                    let g = e[j];
                    for k in 0..=j {
                        z[j * n + k] -= f * e[k] + g * z[i * n + k];
                    }
                }
            }
        } else {
            e[i] = z[i * n + l];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    // Accumulate the orthogonal transformation.
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[i * n + k] * z[k * n + j];
                }
                for k in 0..i {
                    z[k * n + j] -= g * z[k * n + i];
                }
            }
        }
        d[i] = z[i * n + i];
        z[i * n + i] = 1.0;
        for j in 0..i {
            z[j * n + i] = 0.0;
            z[i * n + j] = 0.0;
        }
    }

    // --- Implicit-shift QL (tqli) ---
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find the first small off-diagonal element.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter <= 64, "QL iteration failed to converge");
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + sign_of(r, g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0;
            let mut i = m as isize - 1;
            let mut underflow = false;
            while i >= l as isize {
                let iu = i as usize;
                let mut f = s * e[iu];
                let b = c * e[iu];
                r = f.hypot(g);
                e[iu + 1] = r;
                if r == 0.0 {
                    d[iu + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[iu + 1] - p;
                r = (d[iu] - g) * s + 2.0 * c * b;
                p = s * r;
                d[iu + 1] = g + p;
                g = c * r - b;
                if want_vectors {
                    for k in 0..n {
                        f = z[k * n + iu + 1];
                        z[k * n + iu + 1] = s * z[k * n + iu] + c * f;
                        z[k * n + iu] = c * z[k * n + iu] - s * f;
                    }
                }
                i -= 1;
            }
            if underflow && i >= l as isize {
                continue;
            }
            if !underflow {
                d[l] -= p;
                e[l] = g;
                e[m] = 0.0;
            }
        }
    }

    sort_eigen(n, &mut d, want_vectors.then_some(&mut z));
    EigenDecomposition {
        values: d,
        vectors: want_vectors.then_some(z),
        n,
    }
}

/// Cyclic Jacobi eigensolver (robust reference implementation).
pub fn jacobi_eigen(a: &SymMatrix, want_vectors: bool) -> EigenDecomposition {
    let n = a.n;
    let mut m = a.data.clone();
    let mut v = vec![0.0; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    let off_norm = |m: &[f64]| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..i {
                s += m[i * n + j] * m[i * n + j];
            }
        }
        s.sqrt()
    };

    let mut sweeps = 0;
    while off_norm(&m) > 1e-12 * (n as f64) {
        sweeps += 1;
        assert!(sweeps <= 100, "Jacobi failed to converge");
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p * n + q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = sign_of(1.0, theta) / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply rotation G(p,q,θ)ᵀ A G(p,q,θ).
                for k in 0..n {
                    let akp = m[k * n + p];
                    let akq = m[k * n + q];
                    m[k * n + p] = c * akp - s * akq;
                    m[k * n + q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = m[p * n + k];
                    let aqk = m[q * n + k];
                    m[p * n + k] = c * apk - s * aqk;
                    m[q * n + k] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut d: Vec<f64> = (0..n).map(|i| m[i * n + i]).collect();
    sort_eigen(n, &mut d, want_vectors.then_some(&mut v));
    EigenDecomposition {
        values: d,
        vectors: want_vectors.then_some(v),
        n,
    }
}

/// Sort eigenvalues ascending, permuting eigenvector columns alongside.
fn sort_eigen(n: usize, d: &mut [f64], z: Option<&mut Vec<f64>>) {
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).expect("NaN eigenvalue"));
    let sorted: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    d.copy_from_slice(&sorted);
    if let Some(z) = z {
        let old = z.clone();
        for row in 0..n {
            for (new_col, &old_col) in order.iter().enumerate() {
                z[row * n + new_col] = old[row * n + old_col];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmc_rng::{Rng64, SplitMix64};

    fn random_sym(n: usize, seed: u64) -> SymMatrix {
        let mut rng = SplitMix64::new(seed);
        let mut m = SymMatrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                m.set(i, j, 2.0 * rng.next_f64() - 1.0);
            }
        }
        m
    }

    fn check_decomposition(a: &SymMatrix, eig: &EigenDecomposition, tol: f64) {
        let n = a.dim();
        let z = eig.vectors.as_ref().expect("vectors requested");
        // A v_k = λ_k v_k for every k
        for k in 0..n {
            let v: Vec<f64> = (0..n).map(|i| z[i * n + k]).collect();
            let mut av = vec![0.0; n];
            a.matvec(&v, &mut av);
            for i in 0..n {
                assert!(
                    (av[i] - eig.values[k] * v[i]).abs() < tol,
                    "residual at ({i},{k}): {} vs {}",
                    av[i],
                    eig.values[k] * v[i]
                );
            }
        }
        // Orthonormality
        for k1 in 0..n {
            for k2 in 0..=k1 {
                let dot: f64 = (0..n).map(|i| z[i * n + k1] * z[i * n + k2]).sum();
                let expect = if k1 == k2 { 1.0 } else { 0.0 };
                assert!(
                    (dot - expect).abs() < tol,
                    "orthonormality ({k1},{k2}): {dot}"
                );
            }
        }
    }

    #[test]
    fn two_by_two_known_answer() {
        // [[2, 1], [1, 2]] → eigenvalues 1, 3
        let mut m = SymMatrix::zeros(2);
        m.set(0, 0, 2.0);
        m.set(1, 1, 2.0);
        m.set(0, 1, 1.0);
        for eig in [tridiag_eigen(&m, true), jacobi_eigen(&m, true)] {
            assert!((eig.values[0] - 1.0).abs() < 1e-12);
            assert!((eig.values[1] - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn diagonal_matrix_eigenvalues_sorted() {
        let mut m = SymMatrix::zeros(4);
        for (i, v) in [3.0, -1.0, 2.0, 0.5].iter().enumerate() {
            m.set(i, i, *v);
        }
        let eig = tridiag_eigen(&m, false);
        assert_eq!(eig.values, vec![-1.0, 0.5, 2.0, 3.0]);
    }

    #[test]
    fn residuals_and_orthogonality_tridiag() {
        for n in [2, 3, 5, 8, 17, 32] {
            let a = random_sym(n, 1000 + n as u64);
            let eig = tridiag_eigen(&a, true);
            check_decomposition(&a, &eig, 1e-9);
        }
    }

    #[test]
    fn residuals_and_orthogonality_jacobi() {
        for n in [2, 3, 5, 8, 17] {
            let a = random_sym(n, 2000 + n as u64);
            let eig = jacobi_eigen(&a, true);
            check_decomposition(&a, &eig, 1e-9);
        }
    }

    #[test]
    fn two_algorithms_agree_on_random_matrices() {
        for n in [3, 7, 16, 25] {
            let a = random_sym(n, 3000 + n as u64);
            let e1 = tridiag_eigen(&a, false);
            let e2 = jacobi_eigen(&a, false);
            for (v1, v2) in e1.values.iter().zip(&e2.values) {
                assert!((v1 - v2).abs() < 1e-9, "n={n}: {v1} vs {v2}");
            }
        }
    }

    #[test]
    fn trace_preserved() {
        let a = random_sym(12, 4);
        let trace: f64 = (0..12).map(|i| a.get(i, i)).sum();
        let eig = tridiag_eigen(&a, false);
        let sum: f64 = eig.values.iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }

    #[test]
    fn matvec_identity() {
        let mut m = SymMatrix::zeros(3);
        for i in 0..3 {
            m.set(i, i, 1.0);
        }
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        m.matvec(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn degenerate_eigenvalues_handled() {
        // 3×3 identity ⊕ a 2-degenerate block.
        let mut m = SymMatrix::zeros(3);
        m.set(0, 0, 1.0);
        m.set(1, 1, 1.0);
        m.set(2, 2, 5.0);
        let eig = tridiag_eigen(&m, true);
        assert!((eig.values[0] - 1.0).abs() < 1e-12);
        assert!((eig.values[1] - 1.0).abs() < 1e-12);
        assert!((eig.values[2] - 5.0).abs() < 1e-12);
        check_decomposition(&m, &eig, 1e-10);
    }

    #[test]
    fn one_by_one_matrix() {
        let mut m = SymMatrix::zeros(1);
        m.set(0, 0, -3.5);
        let eig = tridiag_eigen(&m, true);
        assert_eq!(eig.values, vec![-3.5]);
    }

    #[test]
    fn vector_component_accessor() {
        let mut m = SymMatrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(1, 1, 2.0);
        let eig = tridiag_eigen(&m, true);
        // eigenvector of λ=1 is ±e0
        assert!((eig.vector_component(0, 0).abs() - 1.0).abs() < 1e-12);
        assert!(eig.vector_component(0, 1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty matrix")]
    fn rejects_zero_dim() {
        SymMatrix::zeros(0);
    }
}
