//! Criterion micro-benchmarks for the hot kernels behind every
//! experiment: update sweeps (one group per engine/table), RNG throughput,
//! halo exchange, and the analysis pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qmc_comm::{run_threads, Communicator, SerialComm};
use qmc_ed::matrix::{jacobi_eigen, tridiag_eigen, SymMatrix};
use qmc_lattice::{Chain, Square};
use qmc_rng::{LaggedFibonacci55, Lcg64, Rng64, SplitMix64, Xoshiro256StarStar};
use qmc_stats::{jackknife, BinningAnalysis};
use qmc_tfim::parallel::DistTfim;
use qmc_tfim::serial::SerialTfim;
use qmc_tfim::TfimModel;
use qmc_worldline::{Worldline, WorldlineParams};

/// F1/F2/F3 kernel: world-line sweep throughput.
fn bench_worldline_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("worldline_sweep");
    for l in [16usize, 64] {
        let params = WorldlineParams {
            l,
            jx: 1.0,
            jz: 1.0,
            beta: 2.0,
            m: 16,
        };
        group.throughput(Throughput::Elements((l * 32) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(l), &params, |b, &p| {
            let mut sim = Worldline::new(p);
            let mut rng = Xoshiro256StarStar::new(1);
            b.iter(|| sim.sweep(&mut rng));
        });
    }
    group.finish();
}

/// F5/T5 kernel: SSE sweep throughput (diagonal + loop update).
fn bench_sse_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sse_sweep");
    for l in [8usize, 16] {
        let lat = Square::new(l, l);
        group.throughput(Throughput::Elements((l * l) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(l * l), &lat, |b, lat| {
            let mut rng = Xoshiro256StarStar::new(2);
            let mut sse = qmc_sse::Sse::new(lat, 1.0, 2.0, &mut rng);
            for _ in 0..200 {
                sse.sweep(&mut rng);
            }
            b.iter(|| sse.sweep(&mut rng));
        });
    }
    group.finish();
}

/// F4/T1/T2 kernel: TFIM spacetime Metropolis sweep, serial engine.
fn bench_tfim_serial_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("tfim_serial_sweep");
    for l in [32usize, 64] {
        let model = TfimModel {
            lx: l,
            ly: l,
            j: 1.0,
            h: 2.0,
            beta: 1.0,
            m: 8,
        };
        group.throughput(Throughput::Elements((l * l * 8) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(l), &model, |b, &m| {
            let mut eng = SerialTfim::new(m);
            let mut rng = Xoshiro256StarStar::new(3);
            b.iter(|| eng.metropolis_sweep(&mut rng));
        });
    }
    group.finish();
}

/// T1 kernel on one rank: distributed engine path including (self-) halo
/// bookkeeping.
fn bench_tfim_dist_sweep(c: &mut Criterion) {
    let model = TfimModel {
        lx: 64,
        ly: 64,
        j: 1.0,
        h: 2.0,
        beta: 1.0,
        m: 8,
    };
    c.bench_function("tfim_dist_sweep_1rank", |b| {
        let mut comm = SerialComm::new();
        let mut eng = DistTfim::new(model, &comm);
        let mut rng = Xoshiro256StarStar::new(4);
        eng.halo_exchange(&mut comm);
        b.iter(|| eng.sweep(&mut comm, &mut rng));
    });
}

/// T3 kernel: a four-rank halo exchange round-trip on real threads.
fn bench_halo_exchange_threads(c: &mut Criterion) {
    let model = TfimModel {
        lx: 64,
        ly: 64,
        j: 1.0,
        h: 2.0,
        beta: 1.0,
        m: 8,
    };
    c.bench_function("halo_exchange_4ranks_100x", |b| {
        b.iter(|| {
            run_threads(4, |comm| {
                let mut eng = DistTfim::new(model, comm);
                for _ in 0..100 {
                    eng.halo_exchange(comm);
                }
                comm.barrier();
            })
        });
    });
}

/// T6 kernel: raw generator throughput.
fn bench_rng_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng_next_u64_1k");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("splitmix64", |b| {
        let mut g = SplitMix64::new(1);
        b.iter(|| (0..1000).fold(0u64, |acc, _| acc ^ g.next_u64()));
    });
    group.bench_function("lcg64", |b| {
        let mut g = Lcg64::new(1);
        b.iter(|| (0..1000).fold(0u64, |acc, _| acc ^ g.next_u64()));
    });
    group.bench_function("xoshiro256ss", |b| {
        let mut g = Xoshiro256StarStar::new(1);
        b.iter(|| (0..1000).fold(0u64, |acc, _| acc ^ g.next_u64()));
    });
    group.bench_function("lfg55", |b| {
        let mut g = LaggedFibonacci55::new(1);
        b.iter(|| (0..1000).fold(0u64, |acc, _| acc ^ g.next_u64()));
    });
    group.finish();
}

/// Analysis pipeline: binning + jackknife over a 64k series.
fn bench_analysis(c: &mut Criterion) {
    let mut rng = Xoshiro256StarStar::new(9);
    let series: Vec<f64> = (0..1 << 16).map(|_| rng.next_f64()).collect();
    c.bench_function("binning_64k", |b| {
        b.iter(|| BinningAnalysis::new(&series, 32).error())
    });
    c.bench_function("jackknife_64k_64blocks", |b| {
        b.iter(|| jackknife(&series, 64, |m| m * m).value)
    });
}

/// ED oracle cost: the two eigensolvers on a 64-dim sector.
fn bench_eigensolvers(c: &mut Criterion) {
    let n = 64;
    let mut rng = Xoshiro256StarStar::new(10);
    let mut m = SymMatrix::zeros(n);
    for i in 0..n {
        for j in 0..=i {
            m.set(i, j, rng.next_f64() - 0.5);
        }
    }
    c.bench_function("tridiag_eigen_64", |b| {
        b.iter(|| tridiag_eigen(&m, false).values[0])
    });
    c.bench_function("jacobi_eigen_64", |b| {
        b.iter(|| jacobi_eigen(&m, false).values[0])
    });
}

/// Ablation: generic weight-ratio local move (world-line) vs the
/// specialized precomputed acceptance table (TFIM engine) — measures the
/// cost of the "recompute everything touched" safety-first design.
fn bench_update_granularity_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_kernel_ablation");
    // world-line: generic 4-plaquette ratio per accepted move
    group.bench_function("worldline_generic_ratio_l32", |b| {
        let mut sim = Worldline::new(WorldlineParams {
            l: 32,
            jx: 1.0,
            jz: 1.0,
            beta: 2.0,
            m: 16,
        });
        let mut rng = Xoshiro256StarStar::new(11);
        b.iter(|| sim.sweep(&mut rng));
    });
    // TFIM: table-lookup Metropolis on a comparable spacetime volume
    group.bench_function("tfim_table_lookup_l32", |b| {
        let mut eng = SerialTfim::new(TfimModel {
            lx: 32,
            ly: 1,
            j: 1.0,
            h: 1.0,
            beta: 2.0,
            m: 32,
        });
        let mut rng = Xoshiro256StarStar::new(12);
        b.iter(|| eng.metropolis_sweep(&mut rng));
    });
    group.finish();
}

/// Chain oracle cost (used by every validation test).
fn bench_ed_full_spectrum(c: &mut Criterion) {
    let lat = Chain::new(8);
    c.bench_function("ed_full_spectrum_l8", |b| {
        b.iter(|| {
            qmc_ed::xxz::full_spectrum(&lat, &qmc_ed::xxz::XxzParams::heisenberg(1.0))
                .ground_energy()
        })
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets =
        bench_worldline_sweep,
        bench_sse_sweep,
        bench_tfim_serial_sweep,
        bench_tfim_dist_sweep,
        bench_halo_exchange_threads,
        bench_rng_throughput,
        bench_analysis,
        bench_eigensolvers,
        bench_update_granularity_ablation,
        bench_ed_full_spectrum,
}
criterion_main!(kernels);
