//! `qmc` — command-line driver for the three QMC engines.
//!
//! ```text
//! qmc worldline --l 16 --jx 1.0 --jz 1.0 --beta 2.0 --m 32 --sweeps 20000
//! qmc sse       --lattice chain  --l 16 --beta 2.0 --sweeps 20000
//! qmc sse       --lattice square --l 8  --beta 4.0 --sweeps 20000
//! qmc tfim      --lx 32 --ly 1 --h 1.0 --beta 8.0 --m 64 --sweeps 10000
//! qmc tfim      --lx 64 --ly 64 --h 2.0 --beta 1.0 --m 8 --ranks 16 --machine mesh1993
//! qmc serve     --addr 127.0.0.1:7777 --workers 4 --ckpt-dir ckpt/serve
//! qmc submit    --addr 127.0.0.1:7777 --tenant alice --engine tfim --lx 16 --sweeps 2000
//! qmc submit    --addr 127.0.0.1:7777 --tenant alice --stats
//! qmc submit    --addr 127.0.0.1:7777 --tenant admin --drain
//! ```
//!
//! Common flags: `--seed N` (default 1), `--therm N` (default sweeps/5).
//!
//! Checkpoint/restart (serial engines): `--checkpoint-every N` writes an
//! atomic generation every N sweeps into `--checkpoint-dir D` (default
//! `ckpt/qmc-<engine>` at the repository root, gitignored); `--resume`
//! restores the newest valid generation and continues the identical
//! fixed-seed trajectory bit for bit.
//!
//! Observability: `--metrics` writes `METRICS_run.json` and `--trace`
//! writes a Chrome trace-event `trace.json` (both at the repository
//! root; load the trace in Perfetto). With `--machine threads` every
//! rank records its own track and the records are gathered over the
//! communicator; serial commands record the driver thread.
//!
//! Convergence health: `--metrics` streams every engine observable
//! through the online health monitor (τ_int, error bars, equilibration
//! drift — exported into `METRICS_run.json`); `--health-every N` also
//! prints a one-line report per observable every N samples.

// CLI entry point: exiting with a status code is this file's job.
#![allow(clippy::disallowed_methods)]
use qmc_comm::{job_seconds, run_model, run_threads, Communicator, MachineModel, SerialComm};
use qmc_lattice::{Chain, Square};
use qmc_rng::{Buffered, StreamFactory, Xoshiro256StarStar};
use qmc_stats::BinningAnalysis;
use qmc_tfim::parallel::DistTfim;
use qmc_tfim::serial::SerialTfim;
use qmc_tfim::TfimModel;
use qmc_worldline::{Worldline, WorldlineParams};
use std::collections::HashMap;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        usage_and_exit();
    };
    let flags = parse_flags(args.collect());
    match cmd.as_str() {
        "worldline" => run_worldline(&flags),
        "sse" => run_sse(&flags),
        "tfim" => run_tfim(&flags),
        "serve" => run_serve(&flags),
        "submit" => run_submit(&flags),
        _ => usage_and_exit(),
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "usage: qmc <worldline|sse|tfim|serve|submit> [flags]\n\
         see crate docs (src/bin/qmc.rs) for the flag list per engine"
    );
    std::process::exit(2);
}

/// Flags that take no value (presence means `true`).
const BOOL_FLAGS: &[&str] = &["metrics", "trace", "resume", "drain", "stats", "quiet"];

fn parse_flags(items: Vec<String>) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut it = items.into_iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            eprintln!("expected --flag, got '{key}'");
            std::process::exit(2);
        };
        if BOOL_FLAGS.contains(&name) {
            out.insert(name.to_string(), "true".to_string());
            continue;
        }
        let Some(value) = it.next() else {
            eprintln!("flag --{name} needs a value");
            std::process::exit(2);
        };
        out.insert(name.to_string(), value);
    }
    out
}

/// `(metrics, trace)` from parsed flags.
fn obs_flags(flags: &HashMap<String, String>) -> (bool, bool) {
    (flags.contains_key("metrics"), flags.contains_key("trace"))
}

/// Build the recorder config for the requested artifacts, or `None` when
/// observability was not asked for. `--metrics` also turns on online
/// health monitoring (per-observable τ_int/error/drift snapshots export
/// into `METRICS_run.json`); `--health-every N` additionally prints a
/// one-line health report per observable every N samples.
fn obs_config(flags: &HashMap<String, String>) -> Option<qmc_obs::ObsConfig> {
    let (metrics, trace) = obs_flags(flags);
    let health_every: usize = get(flags, "health-every", 0);
    (metrics || trace || health_every > 0).then(|| {
        let mut cfg = qmc_obs::ObsConfig::new().with_metrics(metrics);
        if metrics || health_every > 0 {
            cfg = cfg.with_health_every(health_every);
        }
        cfg
    })
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, name: &str, default: T) -> T {
    match flags.get(name) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("cannot parse --{name} value '{v}'");
            std::process::exit(2);
        }),
    }
}

/// Checkpointing requested via `--checkpoint-every N` /
/// `--checkpoint-dir D` / `--resume`.
struct CkptRequest {
    store: qmc_ckpt::CkptStore,
    every: usize,
    full_every: usize,
    resume: bool,
}

/// Parse the checkpoint flags; `None` when checkpointing was not asked
/// for. `--resume` without `--checkpoint-every` keeps checkpointing at a
/// default cadence of 100 sweeps. `--checkpoint-full-every K` (default 8)
/// writes every K-th generation as a full snapshot and the rest as deltas
/// against it; `0` turns deltas off. The default directory is
/// `ckpt/qmc-<engine>` at the repository root (gitignored).
fn ckpt_request(flags: &HashMap<String, String>, engine: &str) -> Option<CkptRequest> {
    let every: usize = get(flags, "checkpoint-every", 0);
    let full_every: usize = get(flags, "checkpoint-full-every", 8);
    let resume = flags.contains_key("resume");
    if every == 0 && !resume {
        return None;
    }
    let dir = flags
        .get("checkpoint-dir")
        .cloned()
        .unwrap_or_else(|| format!("{}/../../ckpt/qmc-{engine}", env!("CARGO_MANIFEST_DIR")));
    let store = qmc_ckpt::CkptStore::new(&dir, 3).unwrap_or_else(|e| {
        eprintln!("cannot open checkpoint dir '{dir}': {e}");
        std::process::exit(2);
    });
    Some(CkptRequest {
        store,
        every: if every == 0 { 100 } else { every },
        full_every,
        resume,
    })
}

/// `qmc serve --addr H:P --workers N --ckpt-dir D --ckpt-every N
/// --max-active N --admin T` — run the multi-tenant job server until an
/// admin session drains it (`qmc submit --addr H:P --tenant admin
/// --drain`).
fn run_serve(flags: &HashMap<String, String>) {
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7777".to_string());
    let ckpt_root = flags
        .get("ckpt-dir")
        .cloned()
        .unwrap_or_else(|| format!("{}/../../ckpt/qmc-serve", env!("CARGO_MANIFEST_DIR")));
    let cfg = qmc_serve::ServeConfig {
        workers: get(flags, "workers", 4),
        ckpt_root: ckpt_root.into(),
        ckpt_every: get(flags, "ckpt-every", 10),
        quota: qmc_serve::TenantQuota {
            max_active: get(flags, "max-active", 64),
        },
        admin: flags
            .get("admin")
            .cloned()
            .unwrap_or_else(|| "admin".into()),
        ..qmc_serve::ServeConfig::default()
    };
    let workers = cfg.workers;
    let server = qmc_serve::Server::start(cfg, &addr).unwrap_or_else(|e| {
        eprintln!("cannot bind '{addr}': {e}");
        std::process::exit(2);
    });
    println!(
        "qmc-serve listening on {} ({workers} workers); stop with \
         `qmc submit --addr {} --tenant admin --drain`",
        server.addr(),
        server.addr()
    );
    let obs = server.join();
    let mut counters = obs.counters;
    counters.sort();
    println!("drained; final counters:");
    for (name, v) in counters {
        println!("  {name} = {v}");
    }
}

/// Build a [`qmc_serve::JobSpec`] from submit flags.
fn submit_spec(flags: &HashMap<String, String>, tenant: &str) -> qmc_serve::JobSpec {
    let engine = flags
        .get("engine")
        .map(String::as_str)
        .unwrap_or("tfim")
        .to_string();
    let sweeps: u32 = get(flags, "sweeps", 1000);
    let (kind, betas) = match engine.as_str() {
        "tfim" => (
            qmc_serve::JobKind::Tfim {
                lx: get(flags, "lx", 16),
                ly: get(flags, "ly", 1),
                j: get(flags, "j", 1.0),
                h: get(flags, "h", 2.0),
                m: get(flags, "m", 8),
                wolff: get(flags, "wolff", 1),
            },
            vec![get(flags, "beta", 1.0)],
        ),
        "pt" => {
            let betas: Vec<f64> = flags
                .get("betas")
                .map(String::as_str)
                .unwrap_or("0.5,1.0,2.0")
                .split(',')
                .filter_map(|b| b.trim().parse().ok())
                .collect();
            (
                qmc_serve::JobKind::PtXxz {
                    l: get(flags, "l", 8),
                    jx: get(flags, "jx", 1.0),
                    jz: get(flags, "jz", 1.0),
                    m: get(flags, "m", 8),
                    exchange_every: get(flags, "exchange-every", 2),
                },
                betas,
            )
        }
        other => {
            eprintln!("unknown --engine '{other}' (want tfim or pt)");
            std::process::exit(2);
        }
    };
    qmc_serve::JobSpec {
        tenant: tenant.to_string(),
        name: flags
            .get("name")
            .cloned()
            .unwrap_or_else(|| format!("{engine}-job")),
        kind,
        betas,
        therm: get(flags, "therm", sweeps / 5),
        sweeps,
        seed: get(flags, "seed", 1),
        priority: get(flags, "priority", 0),
        ckpt_every: get(flags, "job-ckpt-every", 0),
    }
}

/// `qmc submit --addr H:P --tenant T [job flags]` — submit a job and
/// stream its progress; `--stats` prints the tenant's counters instead;
/// `--drain` asks the server to checkpoint everything and shut down.
fn run_submit(flags: &HashMap<String, String>) {
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7777".to_string());
    let tenant = flags
        .get("tenant")
        .cloned()
        .unwrap_or_else(|| "default".to_string());
    let mut client = qmc_serve::Client::connect(addr.as_str(), &tenant).unwrap_or_else(|e| {
        eprintln!("cannot connect to '{addr}': {e}");
        std::process::exit(2);
    });
    if flags.contains_key("drain") {
        match client.drain() {
            Ok(()) => println!("server is draining"),
            Err(e) => {
                eprintln!("drain failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if flags.contains_key("stats") {
        match client.stats(&tenant) {
            Ok((counters, health)) => {
                for (name, v) in counters {
                    println!("{name} = {v}");
                }
                for h in health {
                    println!(
                        "health {}: n {} mean {:.6} ± {:.3e} tau_int {:.2}",
                        h.name, h.count, h.mean, h.error, h.tau_int
                    );
                }
            }
            Err(e) => {
                eprintln!("stats failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let spec = submit_spec(flags, &tenant);
    let quiet = flags.contains_key("quiet");
    let id = match client.submit(&spec) {
        Ok(id) => id,
        Err(e) => {
            eprintln!("submit rejected: {e}");
            std::process::exit(1);
        }
    };
    println!("job {id} accepted ({} as {})", spec.name, tenant);
    let on_snap = |sweep: u64, total: u64, mean: f64, attempt: u32| {
        if !quiet {
            println!("  job {id} attempt {attempt}: sweep {sweep}/{total}, mean energy {mean:.6}");
        }
    };
    match client.await_result(id, on_snap) {
        Ok((obs, attempts)) => {
            let n = obs.energy.first().map(Vec::len).unwrap_or(0);
            let mean = obs
                .energy
                .first()
                .filter(|e| !e.is_empty())
                .map(|e| e.iter().sum::<f64>() / e.len() as f64)
                .unwrap_or(f64::NAN);
            println!(
                "job {id} done in {attempts} attempt(s): {} series x {n} samples, \
                 mean energy {mean:.6}",
                obs.energy.len()
            );
        }
        Err(e) => {
            eprintln!("job {id} failed: {e}");
            std::process::exit(1);
        }
    }
}

fn run_worldline(flags: &HashMap<String, String>) {
    let (metrics, trace) = obs_flags(flags);
    if let Some(cfg) = obs_config(flags) {
        qmc_obs::init(0, &cfg);
    }
    let sweeps: usize = get(flags, "sweeps", 20_000);
    let params = WorldlineParams {
        l: get(flags, "l", 16),
        jx: get(flags, "jx", 1.0),
        jz: get(flags, "jz", 1.0),
        beta: get(flags, "beta", 1.0),
        m: get(flags, "m", 16),
    };
    let therm: usize = get(flags, "therm", sweeps / 5);
    let mut rng = Buffered::new(Xoshiro256StarStar::new(get(flags, "seed", 1)));
    let (sim, series) = match ckpt_request(flags, "worldline") {
        None => {
            let mut sim = Worldline::new(params);
            let series = sim.run(&mut rng, therm, sweeps);
            (sim, series)
        }
        Some(req) => {
            let ck = qmc_bench::ckpt_driver::CkptCfg {
                store: &req.store,
                every: req.every,
                full_every: req.full_every,
                resume: req.resume,
                stop: None,
            };
            qmc_bench::ckpt_driver::run_worldline_ckpt(
                params,
                &mut rng,
                therm,
                sweeps,
                Some(&ck),
                None,
            )
            .expect("no simulated crash requested")
        }
    };

    let be = BinningAnalysis::new(&series.energy, 16);
    let (chi, chi_err) = series.susceptibility();
    let (c, c_err) = series.specific_heat();
    println!(
        "world-line XXZ chain: L={} Jx={} Jz={} β={} m={} (Δτ={:.4})",
        params.l,
        params.jx,
        params.jz,
        params.beta,
        params.m,
        params.dtau()
    );
    println!(
        "  E/N  = {:+.6} ± {:.6}   (τ_int ≈ {:.1})",
        be.mean,
        be.error(),
        be.tau_int()
    );
    println!("  C/N  = {:+.6} ± {:.6}", c, c_err);
    println!("  χ/N  = {:+.6} ± {:.6}", chi, chi_err);
    let corr = series.correlations();
    let shown = corr.len().min(5);
    println!(
        "  C(r) = {:?}",
        corr[..shown]
            .iter()
            .map(|v| (v * 1e4).round() / 1e4)
            .collect::<Vec<_>>()
    );
    println!(
        "  acceptance: local {:.3}, straight-line {:.3}",
        sim.local_accepted as f64 / sim.local_proposed.max(1) as f64,
        sim.straight_accepted as f64 / sim.straight_proposed.max(1) as f64
    );
    print!(
        "{}",
        qmc_bench::obs::export_current_thread("qmc-worldline", metrics, trace)
    );
}

fn run_sse(flags: &HashMap<String, String>) {
    let (metrics, trace) = obs_flags(flags);
    if let Some(cfg) = obs_config(flags) {
        qmc_obs::init(0, &cfg);
    }
    let sweeps: usize = get(flags, "sweeps", 20_000);
    let therm: usize = get(flags, "therm", sweeps / 5);
    let beta: f64 = get(flags, "beta", 1.0);
    let j: f64 = get(flags, "j", 1.0);
    let l: usize = get(flags, "l", 16);
    let lattice = flags.get("lattice").map(|s| s.as_str()).unwrap_or("chain");
    let mut rng = Buffered::new(Xoshiro256StarStar::new(get(flags, "seed", 1)));

    let req = ckpt_request(flags, "sse");
    let ck = req.as_ref().map(|req| qmc_bench::ckpt_driver::CkptCfg {
        store: &req.store,
        every: req.every,
        full_every: req.full_every,
        resume: req.resume,
        stop: None,
    });
    let series = match lattice {
        "chain" => {
            let lat = Chain::new(l);
            match &ck {
                None => {
                    let mut sse = qmc_sse::Sse::new(&lat, j, beta, &mut rng);
                    sse.run(&mut rng, therm, sweeps)
                }
                Some(ck) => {
                    qmc_bench::ckpt_driver::run_sse_ckpt(
                        &lat,
                        j,
                        beta,
                        &mut rng,
                        therm,
                        sweeps,
                        Some(ck),
                        None,
                    )
                    .expect("no simulated crash requested")
                    .1
                }
            }
        }
        "square" => {
            let ly = get(flags, "ly", l);
            let lat = Square::new(l, ly);
            match &ck {
                None => {
                    let mut sse = qmc_sse::Sse::new(&lat, j, beta, &mut rng);
                    sse.run(&mut rng, therm, sweeps)
                }
                Some(ck) => {
                    qmc_bench::ckpt_driver::run_sse_ckpt(
                        &lat,
                        j,
                        beta,
                        &mut rng,
                        therm,
                        sweeps,
                        Some(ck),
                        None,
                    )
                    .expect("no simulated crash requested")
                    .1
                }
            }
        }
        other => {
            eprintln!("unknown --lattice '{other}' (chain|square)");
            std::process::exit(2);
        }
    };

    let be = BinningAnalysis::new(&series.energy_samples(), 16);
    let (c, c_err) = series.specific_heat();
    let (chi, chi_err) = series.susceptibility();
    println!(
        "SSE Heisenberg {lattice}: N={} β={beta} J={j}",
        series.n_sites
    );
    println!("  E/N     = {:+.6} ± {:.6}", be.mean, be.error());
    println!("  C/N     = {:+.6} ± {:.6}", c, c_err);
    println!("  χ/N     = {:+.6} ± {:.6}", chi, chi_err);
    println!("  S(π)/N  = {:+.6}", series.staggered_structure_factor());
    print!(
        "{}",
        qmc_bench::obs::export_current_thread("qmc-sse", metrics, trace)
    );
}

fn run_tfim(flags: &HashMap<String, String>) {
    let (metrics, trace) = obs_flags(flags);
    let obs_cfg = obs_config(flags);
    let sweeps: usize = get(flags, "sweeps", 10_000);
    let therm: usize = get(flags, "therm", sweeps / 5);
    let model = TfimModel {
        lx: get(flags, "lx", 32),
        ly: get(flags, "ly", 1),
        j: get(flags, "j", 1.0),
        h: get(flags, "h", 1.0),
        beta: get(flags, "beta", 8.0),
        m: get(flags, "m", 64),
    };
    let ranks: usize = get(flags, "ranks", 1);
    let seed: u64 = get(flags, "seed", 1);
    let machine = flags.get("machine").map(|s| s.as_str()).unwrap_or("serial");
    if (flags.contains_key("checkpoint-every") || flags.contains_key("resume"))
        && !(machine == "serial" && ranks == 1)
    {
        eprintln!(
            "note: --checkpoint-every/--checkpoint-dir/--resume drive the serial \
             TFIM engine only (distributed checkpointing lives in `repro faults`); ignoring"
        );
    }

    let report = |series: &qmc_tfim::serial::TfimSeries| {
        let be = BinningAnalysis::new(&series.energy, 16);
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "TFIM: {}×{} J={} h={} β={} m={} (Δτ={:.4})",
            model.lx,
            model.ly,
            model.j,
            model.h,
            model.beta,
            model.m,
            model.dtau()
        );
        println!("  E/N   = {:+.6} ± {:.6}", be.mean, be.error());
        println!("  <|m|> = {:.6}", avg(&series.abs_m));
        println!("  U4    = {:.6}", series.binder_cumulant());
        println!("  <σx>  = {:.6}", avg(&series.sigma_x));
    };

    match (machine, ranks) {
        ("serial", 1) => {
            if let Some(cfg) = &obs_cfg {
                qmc_obs::init(0, cfg);
            }
            let mut rng = Buffered::new(Xoshiro256StarStar::new(seed));
            let wolff = get(flags, "wolff", 1);
            let (eng, series) = match ckpt_request(flags, "tfim") {
                None => {
                    let mut eng = SerialTfim::new(model);
                    let series = eng.run(&mut rng, therm, sweeps, wolff);
                    (eng, series)
                }
                Some(req) => {
                    let ck = qmc_bench::ckpt_driver::CkptCfg {
                        store: &req.store,
                        every: req.every,
                        full_every: req.full_every,
                        resume: req.resume,
                        stop: None,
                    };
                    qmc_bench::ckpt_driver::run_serial_tfim_ckpt(
                        model,
                        &mut rng,
                        therm,
                        sweeps,
                        wolff,
                        Some(&ck),
                        None,
                    )
                    .expect("no simulated crash requested")
                }
            };
            report(&series);
            if let Some(mut mine) = qmc_obs::finish() {
                mine.absorb_registry(eng.metrics());
                let meta = qmc_obs::RunMeta::new("qmc-tfim", "serial-tfim", "serial", 1);
                print!(
                    "{}",
                    qmc_bench::obs::write_artifacts(&meta, &[mine], metrics, trace)
                );
            }
        }
        ("serial", _) => {
            if let Some(cfg) = &obs_cfg {
                qmc_obs::init(0, cfg);
            }
            let mut comm = SerialComm::new();
            let mut eng = DistTfim::new(model, &comm);
            let mut rng = StreamFactory::new(seed).stream(0);
            let series = eng.run(&mut comm, &mut rng, therm, sweeps);
            report(&series);
            if let Some(mut mine) = qmc_obs::finish() {
                mine.absorb_registry(eng.metrics());
                mine.set_comm(comm.stats());
                let meta = qmc_obs::RunMeta::new("qmc-tfim", "dist-tfim", "serial", 1);
                print!(
                    "{}",
                    qmc_bench::obs::write_artifacts(&meta, &[mine], metrics, trace)
                );
            }
        }
        ("threads", p) => {
            let cfg = obs_cfg.clone();
            let mut results = run_threads(p, move |comm| {
                if let Some(cfg) = &cfg {
                    qmc_obs::init(comm.rank(), cfg);
                }
                let mut eng = DistTfim::new(model, comm);
                let mut rng = StreamFactory::new(seed).stream(comm.rank());
                let series = eng.run(comm, &mut rng, therm, sweeps);
                let gathered = qmc_obs::finish().map(|mut mine| {
                    mine.absorb_registry(eng.metrics());
                    mine.set_comm(comm.stats());
                    qmc_obs::gather_ranks(comm, &mine)
                });
                (series, gathered)
            });
            report(&results[0].0);
            println!("  ({p} thread-backed ranks)");
            if let Some(Some(gathered)) = results.swap_remove(0).1 {
                let meta = qmc_obs::RunMeta::new("qmc-tfim", "dist-tfim", "threads", p);
                print!(
                    "{}",
                    qmc_bench::obs::write_artifacts(&meta, &gathered, metrics, trace)
                );
            }
        }
        ("mesh1993", p) => {
            let reports = run_model(p, MachineModel::mesh_1993(p), move |comm| {
                let mut eng = DistTfim::new(model, comm);
                let mut rng = StreamFactory::new(seed).stream(comm.rank());
                eng.run(comm, &mut rng, therm, sweeps)
            });
            report(&reports[0].result);
            let merged = reports
                .iter()
                .fold(qmc_comm::CommStats::default(), |acc, r| {
                    acc.merged(&r.stats)
                });
            println!(
                "  simulated 1993 mesh, P={p}: job time {:.3} model-s \
                 (comm fraction {:.1}%, recv wait {:.3} model-s, max message {} B)",
                job_seconds(&reports),
                100.0 * merged.comm_fraction(),
                merged.recv_wait_seconds,
                merged.max_message_bytes
            );
        }
        (other, _) => {
            eprintln!("unknown --machine '{other}' (serial|threads|mesh1993)");
            std::process::exit(2);
        }
    }
}
