//! `repro` — regenerate every table and figure of the evaluation.
//!
//! ```text
//! repro <experiment|all|bench> [--quick]
//!
//! experiments: f1 f2 f3 f4 f5 t1 t2 t3 t4 t5 t6
//! ```
//!
//! `--quick` shrinks sweep counts ~10× for smoke runs; the full settings
//! are what EXPERIMENTS.md records.
//!
//! `repro bench` times the hot update kernels with fixed seeds and
//! writes `BENCH_kernels.json` at the repository root (it is kept out of
//! `all` so physics regeneration never overwrites the benchmark
//! artifact).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let wanted: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    if wanted.is_empty() {
        eprintln!("usage: repro <f1|f2|f3|f4|f5|t1|t2|t3|t4|t5|t6|all|bench> [--quick]");
        std::process::exit(2);
    }

    let registry = qmc_bench::registry();
    for name in wanted {
        if name == "all" {
            print!("{}", qmc_bench::run_all(quick));
            continue;
        }
        if name == "bench" {
            println!("=== bench ===");
            print!("{}", qmc_bench::kernels::bench_kernels(quick));
            continue;
        }
        match registry.iter().find(|(id, _)| id == name) {
            Some((id, f)) => {
                println!("=== {id} ===");
                print!("{}", f(quick));
            }
            None => {
                eprintln!("unknown experiment '{name}'");
                std::process::exit(2);
            }
        }
    }
}
