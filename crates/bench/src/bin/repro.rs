//! `repro` — regenerate every table and figure of the evaluation.
//!
//! ```text
//! repro <experiment|all|bench> [--quick] [--metrics] [--trace]
//!
//! experiments: f1 f2 f3 f4 f5 t1 t2 t3 t4 t5 t6
//! ```
//!
//! `--quick` shrinks sweep counts ~10× for smoke runs; the full settings
//! are what EXPERIMENTS.md records.
//!
//! `repro bench` times the hot update kernels with fixed seeds and
//! writes `BENCH_kernels.json` at the repository root (it is kept out of
//! `all` so physics regeneration never overwrites the benchmark
//! artifact). With `--assert-guards` it exits non-zero when the
//! `packed_speedup_vs_scalar` guard misses its target (≥ 4x full,
//! ≥ 2x relaxed under `--quick`) — the `scripts/check.sh bench-quick`
//! stage.
//!
//! `repro verify` records a 4-rank parallel-tempering run through the
//! `qmc-verify` tracing layer, proves the captured comm traffic
//! deadlock-free, shows the checker flagging a crossed-recv
//! counterexample, and runs `qmc-lint` over the workspace. Exits
//! non-zero on any violation (the `scripts/check.sh verify` stage).
//!
//! `repro faults` runs the fault-tolerance demo: a 4-rank thread-backed
//! parallel-tempering run behind `FaultyComm` (seeded drops, duplicates,
//! delays, transient send failures), then a scheduled rank kill and a
//! checkpoint-based recovery that lands on the bit-identical trajectory.
//! `--checkpoint-every N` / `--checkpoint-dir D` override the cadence
//! and store location; `--resume` skips straight to the recovery act.
//!
//! `repro serve-demo` runs the multi-tenant job-server drill: 240 jobs
//! from four tenants over TCP with five injected worker deaths, a
//! parallel-tempering world kill, and a drain/restart — every result
//! verified bit-identical to a direct in-process run, zero jobs lost.
//! Writes `METRICS_serve.json` and exits non-zero on any divergence
//! (the `scripts/check.sh serve` stage).
//!
//! `repro elastic` runs the elastic-worlds demo: a 4-rank
//! parallel-tempering world loses a rank mid-flight and finishes
//! bit-identical after an in-place respawn, then the same death with a
//! zero respawn budget shrinks the β ladder and resumes the survivors
//! deterministically. Writes `VERIFY_elastic.json` and exits non-zero
//! on any divergence (the `scripts/check.sh elastic` stage).
//!
//! `repro analyze` records the same 4-rank parallel-tempering run
//! through `qmc_obs::TracingComm`, merges the per-rank streams into a
//! cross-rank happens-before DAG, and prints the critical path with
//! per-rank compute/wait/send attribution and the straggler/imbalance
//! summary. Writes `ANALYSIS_run.json` (schema `qmc-analysis/v1`) and a
//! `trace.json` whose flow events draw each matched message as an arrow
//! between rank tracks. Exits non-zero if the trace fails analysis (the
//! `scripts/check.sh analyze` stage).
//!
//! `--metrics` / `--trace` turn on the observability layer (`qmc-obs`):
//! with no experiment named they run the 4-rank thread-backed TFIM demo
//! and write `METRICS_run.json` / `trace.json` at the repository root;
//! with experiments named they record the driver thread's spans and
//! counters across the run and export the same artifacts. `--metrics`
//! also streams engine observables through the online health monitor
//! (τ_int, error bars, equilibration drift → `METRICS_run.json`);
//! `--health-every N` prints a one-line report per observable every N
//! samples.

// CLI entry point: exiting with a status code is this file's job.
#![allow(clippy::disallowed_methods)]
fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // Pull out the two value-taking checkpoint flags first; everything
    // else stays positional/boolean as before.
    let mut args = Vec::new();
    let mut ck_every = 0usize;
    let mut ck_dir = String::new();
    let mut health_every = 0usize;
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--checkpoint-every" => {
                ck_every = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--checkpoint-every needs a sweep count");
                    std::process::exit(2);
                });
            }
            "--checkpoint-dir" => {
                ck_dir = it.next().unwrap_or_else(|| {
                    eprintln!("--checkpoint-dir needs a path");
                    std::process::exit(2);
                });
            }
            "--health-every" => {
                health_every = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--health-every needs a sample count");
                    std::process::exit(2);
                });
            }
            _ => args.push(a),
        }
    }
    let quick = args.iter().any(|a| a == "--quick");
    let assert_guards = args.iter().any(|a| a == "--assert-guards");
    let metrics = args.iter().any(|a| a == "--metrics");
    let trace = args.iter().any(|a| a == "--trace");
    let resume = args.iter().any(|a| a == "--resume");
    let obs_on = metrics || trace || health_every > 0;
    let wanted: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    if wanted.is_empty() {
        if obs_on {
            // The flagship path: a 4-rank ThreadWorld TFIM run with
            // per-rank recorders gathered over the communicator.
            println!("=== obs ===");
            print!("{}", qmc_bench::obs::obs_demo(metrics, trace, quick));
            return;
        }
        eprintln!(
            "usage: repro <f1|f2|f3|f4|f5|t1|t2|t3|t4|t5|t6|all|bench|faults|verify|analyze|serve-demo|elastic> \
             [--quick] [--metrics] [--trace] [--health-every N] [--assert-guards] \
             [--checkpoint-every N] [--checkpoint-dir D] [--resume]"
        );
        std::process::exit(2);
    }

    if obs_on {
        let mut config = qmc_obs::ObsConfig::new().with_metrics(metrics);
        if metrics || health_every > 0 {
            config = config.with_health_every(health_every);
        }
        qmc_obs::init(0, &config);
    }

    let registry = qmc_bench::registry();
    let mut label = String::from("repro");
    for name in &wanted {
        label.push('-');
        label.push_str(name);
        if *name == "all" {
            print!("{}", qmc_bench::run_all(quick));
            continue;
        }
        if *name == "bench" {
            println!("=== bench ===");
            let (report, guards_ok) = qmc_bench::kernels::bench_kernels_checked(quick);
            print!("{report}");
            if assert_guards && !guards_ok {
                eprintln!("bench guard failed: packed_speedup_vs_scalar below target");
                std::process::exit(1);
            }
            continue;
        }
        if *name == "faults" {
            println!("=== faults ===");
            print!(
                "{}",
                qmc_bench::faults::faults_demo(quick, ck_every, &ck_dir, resume)
            );
            continue;
        }
        if *name == "serve-demo" {
            println!("=== serve-demo ===");
            let (report, ok) = qmc_bench::serve_demo::serve_demo(quick);
            print!("{report}");
            if !ok {
                std::process::exit(1);
            }
            continue;
        }
        if *name == "elastic" {
            println!("=== elastic ===");
            let (report, ok) = qmc_bench::elastic::elastic_demo(quick);
            print!("{report}");
            if !ok {
                std::process::exit(1);
            }
            continue;
        }
        if *name == "verify" {
            println!("=== verify ===");
            let (report, ok) = qmc_bench::verify::verify_demo();
            print!("{report}");
            if !ok {
                std::process::exit(1);
            }
            continue;
        }
        if *name == "analyze" {
            println!("=== analyze ===");
            let (report, ok) = qmc_bench::analyze::analyze_demo(quick);
            print!("{report}");
            if !ok {
                std::process::exit(1);
            }
            continue;
        }
        match registry.iter().find(|(id, _)| id == *name) {
            Some((id, f)) => {
                println!("=== {id} ===");
                print!("{}", f(quick));
            }
            None => {
                eprintln!("unknown experiment '{name}'");
                std::process::exit(2);
            }
        }
    }

    if obs_on {
        print!(
            "{}",
            qmc_bench::obs::export_current_thread(&label, metrics, trace)
        );
    }
}
