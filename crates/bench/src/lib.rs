//! Experiment implementations behind the `repro` binary.
//!
//! One module per table/figure of the evaluation (see DESIGN.md for the
//! experiment index). Every function returns the rendered text of its
//! table(s) so the binary, the integration tests, and EXPERIMENTS.md all
//! consume the same output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod ckpt_driver;
pub mod elastic;
pub mod faults;
pub mod figures;
pub mod kernels;
pub mod obs;
pub mod scaling;
pub mod serve_demo;
pub mod validation;
pub mod verify;

/// Everything, in order — `repro all`.
pub fn run_all(quick: bool) -> String {
    let mut out = String::new();
    for (name, f) in registry() {
        out.push_str(&format!("=== {name} ===\n"));
        out.push_str(&f(quick));
        out.push('\n');
    }
    out
}

type Runner = fn(bool) -> String;

/// The experiment registry: `(id, runner)` pairs.
pub fn registry() -> Vec<(&'static str, Runner)> {
    vec![
        ("f1", figures::f1_heisenberg_chain_thermo as Runner),
        ("f2", figures::f2_trotter_extrapolation),
        ("f3", figures::f3_xy_susceptibility),
        ("f4", figures::f4_tfim_critical_sweep),
        ("f5", figures::f5_heisenberg_2d),
        ("t1", scaling::t1_strong_scaling),
        ("t2", scaling::t2_weak_scaling),
        ("t3", scaling::t3_comm_fraction),
        ("t4", validation::t4_parallel_tempering),
        ("t5", validation::t5_cross_validation),
        ("t6", validation::t6_rng_quality),
    ]
}
