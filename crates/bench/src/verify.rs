//! `repro verify` — run the comm-protocol model checker and the
//! workspace invariant linter, the two static/dynamic analyses from
//! `qmc-verify`.
//!
//! Three acts:
//!
//! 1. Record a real 4-rank thread-backed parallel-tempering run through
//!    [`qmc_verify::RecordingComm`] and prove the captured traffic
//!    deadlock-free (send/recv matching, reserved-tag discipline, SPMD
//!    collective agreement).
//! 2. Feed the checker a deliberately broken crossed-receive program and
//!    show it reports the exact wait-for cycle.
//! 3. Run `qmc-lint` over the workspace sources.
//!
//! Returns the report text and whether everything passed (the CLI turns
//! a failure into a non-zero exit for `scripts/check.sh`).

use qmc_comm::Communicator;
use qmc_core::pt::{run_pt_parallel, PtConfig};
use qmc_rng::StreamFactory;
use qmc_verify::{check, lint, record_threads, Event, WorldTrace};
use std::fmt::Write as _;

/// Record a quick 4-rank PT run and return its trace.
fn record_pt_trace() -> WorldTrace {
    let cfg = PtConfig {
        l: 8,
        jx: 1.0,
        jz: 1.0,
        m: 4,
        betas: vec![0.5, 1.0, 1.5, 2.0],
        therm: 10,
        sweeps: 30,
        exchange_every: 5,
        seed: 7,
    };
    let (_, trace) = record_threads(4, move |comm| {
        let mut rng = StreamFactory::new(41).stream(comm.rank());
        run_pt_parallel(comm, &cfg, &mut rng)
    });
    trace
}

/// A crossed-receive program's trace: both ranks post a receive for the
/// other and the sends that would satisfy them come after — the
/// canonical deadlock. Hand-built because actually *running* it would
/// trip the runtime detector in `qmc-comm` instead of producing a trace.
fn crossed_recv_trace() -> WorldTrace {
    let recv = |src| Event::Recv {
        src,
        tag: 7,
        bytes: 8,
        internal: false,
    };
    let send = |dst| Event::Send {
        dst,
        tag: 7,
        bytes: 8,
        internal: false,
    };
    WorldTrace {
        ranks: vec![vec![recv(1), send(1)], vec![recv(0), send(0)]],
    }
}

/// `repro verify`: returns (report text, all checks passed).
pub fn verify_demo() -> (String, bool) {
    let mut out = String::new();
    let mut ok = true;

    // Act 1: a real PT run must verify deadlock-free.
    let trace = record_pt_trace();
    let _ = writeln!(
        out,
        "[1/3] trace check: 4-rank ThreadWorld parallel tempering \
         ({} events recorded)",
        trace.len()
    );
    match check(&trace) {
        Ok(report) => {
            let _ = writeln!(out, "      OK: {report}");
        }
        Err(violations) => {
            ok = false;
            let _ = writeln!(out, "      FAIL: {} violation(s)", violations.len());
            for v in &violations {
                let _ = writeln!(out, "        {v}");
            }
        }
    }

    // Act 2: the checker must flag a crossed-receive program with the
    // exact wait-for cycle (a self-test that the gate has teeth).
    let _ = writeln!(out, "[2/3] trace check: crossed-recv counterexample");
    match check(&crossed_recv_trace()) {
        Ok(_) => {
            ok = false;
            let _ = writeln!(out, "      FAIL: deadlock was not detected");
        }
        Err(violations) => {
            let cycle = violations
                .iter()
                .find(|v| v.to_string().contains("waits on"));
            match cycle {
                Some(v) => {
                    let _ = writeln!(out, "      OK, flagged: {v}");
                }
                None => {
                    ok = false;
                    let _ = writeln!(
                        out,
                        "      FAIL: violations reported but no wait-for cycle named"
                    );
                }
            }
        }
    }

    // Act 3: the workspace linter.
    let _ = writeln!(out, "[3/3] qmc-lint: workspace invariants");
    match lint::workspace_root_from(std::path::Path::new(env!("CARGO_MANIFEST_DIR"))) {
        Some(root) => match lint::lint_workspace(&root) {
            Ok(findings) if findings.is_empty() => {
                let _ = writeln!(
                    out,
                    "      OK: {} rules clean over {}",
                    lint::Rule::all().len(),
                    root.display()
                );
            }
            Ok(findings) => {
                ok = false;
                let _ = writeln!(out, "      FAIL: {} finding(s)", findings.len());
                for f in &findings {
                    let _ = writeln!(out, "        {f}");
                }
            }
            Err(e) => {
                ok = false;
                let _ = writeln!(out, "      FAIL: I/O error while scanning: {e}");
            }
        },
        None => {
            ok = false;
            let _ = writeln!(out, "      FAIL: workspace root not found");
        }
    }

    let _ = writeln!(out, "verify: {}", if ok { "PASS" } else { "FAIL" });
    (out, ok)
}
