//! `repro verify` — run the comm-protocol model checker and the
//! workspace invariant linter, the two static/dynamic analyses from
//! `qmc-verify`.
//!
//! Four acts:
//!
//! 1. Record a real 4-rank thread-backed parallel-tempering run through
//!    [`qmc_verify::RecordingComm`] and prove the captured traffic
//!    deadlock-free (send/recv matching, reserved-tag discipline, SPMD
//!    collective agreement).
//! 2. Feed the checker a deliberately broken crossed-receive program and
//!    show it reports the exact wait-for cycle.
//! 3. Run `qmc-lint` over the workspace sources.
//! 4. Exhaustively explore the checkpoint-commit, drain-verdict, and
//!    scheduler protocol models (sleep sets + DPOR) at the committed
//!    instance sizes: all three must be invariant-clean under their
//!    transition ceilings, DPOR must beat the naive enumeration by at
//!    least 2×, and a seeded drain mutant must yield a minimized,
//!    rendered counterexample (the gate's teeth). Writes
//!    `VERIFY_explore.json` (schema `qmc-verify-explore/v1`).
//!
//! Returns the report text and whether everything passed (the CLI turns
//! a failure into a non-zero exit for `scripts/check.sh`).

use qmc_comm::Communicator;
use qmc_core::pt::{run_pt_parallel, PtConfig};
use qmc_rng::StreamFactory;
use qmc_verify::model::{
    CkptCommitModel, DrainModel, DrainMutation, RespawnModel, RespawnMutation, SchedModel,
};
use qmc_verify::{
    check, explore, explore_naive, lint, record_threads, Budget, Event, Outcome, WorldTrace,
};
use std::fmt::Write as _;

/// Record a quick 4-rank PT run and return its trace.
fn record_pt_trace() -> WorldTrace {
    let cfg = PtConfig {
        l: 8,
        jx: 1.0,
        jz: 1.0,
        m: 4,
        betas: vec![0.5, 1.0, 1.5, 2.0],
        therm: 10,
        sweeps: 30,
        exchange_every: 5,
        seed: 7,
    };
    let (_, trace) = record_threads(4, move |comm| {
        let mut rng = StreamFactory::new(41).stream(comm.rank());
        run_pt_parallel(comm, &cfg, &mut rng)
    });
    trace
}

/// A crossed-receive program's trace: both ranks post a receive for the
/// other and the sends that would satisfy them come after — the
/// canonical deadlock. Hand-built because actually *running* it would
/// trip the runtime detector in `qmc-comm` instead of producing a trace.
fn crossed_recv_trace() -> WorldTrace {
    let recv = |src| Event::Recv {
        src,
        tag: 7,
        bytes: 8,
        internal: false,
    };
    let send = |dst| Event::Send {
        dst,
        tag: 7,
        bytes: 8,
        internal: false,
    };
    WorldTrace {
        ranks: vec![vec![recv(1), send(1)], vec![recv(0), send(0)]],
    }
}

/// `repro verify`: returns (report text, all checks passed).
pub fn verify_demo() -> (String, bool) {
    let mut out = String::new();
    let mut ok = true;

    // Act 1: a real PT run must verify deadlock-free.
    let trace = record_pt_trace();
    let _ = writeln!(
        out,
        "[1/4] trace check: 4-rank ThreadWorld parallel tempering \
         ({} events recorded)",
        trace.len()
    );
    match check(&trace) {
        Ok(report) => {
            let _ = writeln!(out, "      OK: {report}");
        }
        Err(violations) => {
            ok = false;
            let _ = writeln!(out, "      FAIL: {} violation(s)", violations.len());
            for v in &violations {
                let _ = writeln!(out, "        {v}");
            }
        }
    }

    // Act 2: the checker must flag a crossed-receive program with the
    // exact wait-for cycle (a self-test that the gate has teeth).
    let _ = writeln!(out, "[2/4] trace check: crossed-recv counterexample");
    match check(&crossed_recv_trace()) {
        Ok(_) => {
            ok = false;
            let _ = writeln!(out, "      FAIL: deadlock was not detected");
        }
        Err(violations) => {
            let cycle = violations
                .iter()
                .find(|v| v.to_string().contains("waits on"));
            match cycle {
                Some(v) => {
                    let _ = writeln!(out, "      OK, flagged: {v}");
                }
                None => {
                    ok = false;
                    let _ = writeln!(
                        out,
                        "      FAIL: violations reported but no wait-for cycle named"
                    );
                }
            }
        }
    }

    // Act 3: the workspace linter.
    let _ = writeln!(out, "[3/4] qmc-lint: workspace invariants");
    match lint::workspace_root_from(std::path::Path::new(env!("CARGO_MANIFEST_DIR"))) {
        Some(root) => match lint::lint_workspace(&root) {
            Ok(findings) if findings.is_empty() => {
                let _ = writeln!(
                    out,
                    "      OK: {} rules clean over {}",
                    lint::Rule::all().len(),
                    root.display()
                );
            }
            Ok(findings) => {
                ok = false;
                let _ = writeln!(out, "      FAIL: {} finding(s)", findings.len());
                for f in &findings {
                    let _ = writeln!(out, "        {f}");
                }
            }
            Err(e) => {
                ok = false;
                let _ = writeln!(out, "      FAIL: I/O error while scanning: {e}");
            }
        },
        None => {
            ok = false;
            let _ = writeln!(out, "      FAIL: workspace root not found");
        }
    }

    // Act 4: exhaustive protocol exploration at the committed budgets.
    let _ = writeln!(
        out,
        "[4/4] explore: exhaustive protocol exploration (sleep sets + DPOR)"
    );
    ok &= explore_act(&mut out);

    let _ = writeln!(out, "verify: {}", if ok { "PASS" } else { "FAIL" });
    (out, ok)
}

/// Committed exploration budgets: instance, fault budget, transition
/// ceiling. A ceiling regression means the protocol grew a race or the
/// model grew state; either deserves a red gate, not a silent slowdown.
const CKPT_CEILING: u64 = 40_000;
const DRAIN_CEILING: u64 = 6_000;
const SCHED_CEILING: u64 = 600_000;
const RESPAWN_CEILING: u64 = 4_000;
/// Minimum acceptable DPOR-vs-naive transition ratio on the committed
/// reduction instances.
const MIN_REDUCTION: f64 = 2.0;

/// Act 4 body: returns overall pass, appends to the report, and writes
/// `VERIFY_explore.json`.
fn explore_act(out: &mut String) -> bool {
    let mut ok = true;

    // (a) The four protocol models must be invariant-clean within
    // their committed ceilings.
    let mut model_rows = Vec::new();
    let runs: [(&str, qmc_verify::ExploreStats, bool, u64); 4] = {
        let ckpt = explore(&CkptCommitModel::new(3, 2, 2), Budget::with_faults(2));
        let drain = explore(&DrainModel::new(4, 3), Budget::with_faults(0));
        let sched = explore(&SchedModel::new(2, 2, 2, 2), Budget::with_faults(2));
        let respawn = explore(&RespawnModel::new(3), Budget::with_faults(0));
        [
            (
                "ckpt-commit(3 ranks, 2 rounds, full_every 2, 2 faults)",
                ckpt.stats(),
                ckpt.is_clean(),
                CKPT_CEILING,
            ),
            (
                "drain-verdict(4 ranks, 3 sweeps)",
                drain.stats(),
                drain.is_clean(),
                DRAIN_CEILING,
            ),
            (
                "scheduler(2 tenants x 2 jobs, 2 workers, quota 2, 2 faults)",
                sched.stats(),
                sched.is_clean(),
                SCHED_CEILING,
            ),
            (
                "respawn-barrier(3 ranks, 1 crash)",
                respawn.stats(),
                respawn.is_clean(),
                RESPAWN_CEILING,
            ),
        ]
    };
    for (name, stats, clean, ceiling) in &runs {
        let within = stats.transitions <= *ceiling;
        if *clean && within {
            let _ = writeln!(
                out,
                "      OK: {name}: clean, {} transitions / {} states \
                 (ceiling {ceiling})",
                stats.transitions, stats.unique_states
            );
        } else {
            ok = false;
            let _ = writeln!(
                out,
                "      FAIL: {name}: clean={clean}, {} transitions \
                 (ceiling {ceiling})",
                stats.transitions
            );
        }
        model_rows.push(format!(
            "{{\"model\": \"{name}\", \"clean\": {clean}, \
             \"transitions\": {}, \"unique_states\": {}, \
             \"executions\": {}, \"ceiling\": {ceiling}}}",
            stats.transitions, stats.unique_states, stats.executions
        ));
    }

    // (b) DPOR must genuinely reduce: same verdict as the naive
    // enumeration, at least MIN_REDUCTION times fewer transitions.
    let mut reduction_rows = Vec::new();
    {
        type Counted = (u64, bool);
        fn stat<A>(o: &Outcome<A>) -> Counted {
            (o.stats().transitions, o.is_clean())
        }
        let instances: [(&str, Counted, Counted); 2] = {
            let m1 = CkptCommitModel::new(3, 1, 1);
            let m2 = DrainModel::new(3, 2);
            let b = Budget::with_faults(0);
            [
                (
                    "ckpt-commit(3 ranks, 1 round)",
                    stat(&explore(&m1, b)),
                    stat(&explore_naive(&m1, b)),
                ),
                (
                    "drain-verdict(3 ranks, 2 sweeps)",
                    stat(&explore(&m2, b)),
                    stat(&explore_naive(&m2, b)),
                ),
            ]
        };
        for (name, (d, d_clean), (n, n_clean)) in &instances {
            let ratio = *n as f64 / (*d).max(1) as f64;
            let agree = d_clean == n_clean;
            if agree && ratio >= MIN_REDUCTION {
                let _ = writeln!(
                    out,
                    "      OK: {name}: DPOR {d} vs naive {n} transitions \
                     ({ratio:.1}x reduction)"
                );
            } else {
                ok = false;
                let _ = writeln!(
                    out,
                    "      FAIL: {name}: DPOR {d} vs naive {n}, agree={agree} \
                     ({ratio:.1}x < {MIN_REDUCTION:.1}x)"
                );
            }
            reduction_rows.push(format!(
                "{{\"instance\": \"{name}\", \"dpor\": {d}, \"naive\": {n}, \
                 \"ratio\": {ratio:.3}}}"
            ));
        }
    }

    // (c) Teeth: a seeded drain mutant must produce a minimized,
    // rendered counterexample (rank 0 stops on a raised flag without
    // broadcasting the verdict; the world deadlocks on the receive).
    let mutant = DrainModel::new(3, 2).mutated(DrainMutation::SkipFinalBroadcast);
    let mut ce_len = 0usize;
    match explore(&mutant, Budget::with_faults(0)) {
        Outcome::Violation(ce) => {
            ce_len = ce.schedule.len();
            let _ = writeln!(
                out,
                "      OK, flagged: drain SkipFinalBroadcast mutant, minimized \
                 to {ce_len} steps:"
            );
            for line in ce.render().lines() {
                let _ = writeln!(out, "      {line}");
            }
        }
        other => {
            ok = false;
            let _ = writeln!(
                out,
                "      FAIL: drain mutant not flagged (got {:?})",
                other.stats()
            );
        }
    }

    // Same teeth for the elastic-world rejoin: resetting the mailboxes
    // while an incarnation-0 thread still runs must be caught as stale
    // residue reaching incarnation 1.
    let mutant = RespawnModel::new(2).mutated(RespawnMutation::EagerReset);
    let mut respawn_ce_len = 0usize;
    match explore(&mutant, Budget::with_faults(0)) {
        Outcome::Violation(ce) => {
            respawn_ce_len = ce.schedule.len();
            let _ = writeln!(
                out,
                "      OK, flagged: respawn EagerReset mutant, minimized \
                 to {respawn_ce_len} steps:"
            );
            for line in ce.render().lines() {
                let _ = writeln!(out, "      {line}");
            }
        }
        other => {
            ok = false;
            let _ = writeln!(
                out,
                "      FAIL: respawn mutant not flagged (got {:?})",
                other.stats()
            );
        }
    }

    // Artifact with guard verdicts, next to the other repro outputs.
    let json = format!
(
        "{{\n  \"schema\": \"qmc-verify-explore/v1\",\n  \"models\": [\n    {}\n  ],\n  \"reduction\": [\n    {}\n  ],\n  \"mutants\": [\n    {{\"model\": \"drain SkipFinalBroadcast\", \"schedule_len\": {ce_len}}},\n    {{\"model\": \"respawn EagerReset\", \"schedule_len\": {respawn_ce_len}}}\n  ],\n  \"guards\": {{\"all_clean_within_ceiling\": {ok}, \"min_reduction_ratio\": {MIN_REDUCTION:.1}}}\n}}\n",
        model_rows.join(",\n    "),
        reduction_rows.join(",\n    ")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../VERIFY_explore.json");
    match std::fs::write(path, &json) {
        Ok(()) => {
            let _ = writeln!(
                out,
                "      wrote VERIFY_explore.json ({} bytes)",
                json.len()
            );
        }
        Err(e) => {
            ok = false;
            let _ = writeln!(out, "      could not write VERIFY_explore.json: {e}");
        }
    }
    ok
}
