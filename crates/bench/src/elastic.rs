//! `repro elastic` — the elastic-worlds demo.
//!
//! Two acts, each pinned against an uninterrupted reference run:
//!
//! 1. **Respawn**: a 4-rank parallel-tempering world loses a rank
//!    mid-flight; `run_threads_elastic` spawns a fresh thread into the
//!    dead slot and every rank rolls back to the newest coordinated
//!    checkpoint generation. The finished run must be bit-identical —
//!    observables AND total RNG draw counts — to a run that never died.
//! 2. **Shrink**: the same death with a zero respawn budget instead
//!    drops the dead β rung and resumes the survivors on the shrunk
//!    ladder. Two resumes from copies of the same store must agree
//!    bit-for-bit, and every survivor must carry its full measurement
//!    history across the resize.
//!
//! Writes `VERIFY_elastic.json` (schema `qmc-elastic/v1`) at the
//! repository root with the respawn/resize counts and per-act verdicts;
//! the caller exits non-zero when any verdict fails (the
//! `scripts/check.sh elastic` stage).

use qmc_ckpt::{Checkpoint, CkptStore};
use qmc_comm::{run_threads, run_threads_elastic, Communicator};
use qmc_core::pt::{run_pt_parallel_ckpt, PtCheckpointing, PtConfig};
use qmc_rng::{Rng64, StreamFactory};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Counts raw draws while forwarding to the wrapped generator; the
/// count rides in the checkpoint so a respawned rank reports the same
/// total as the uninterrupted reference.
struct CountingRng<R> {
    inner: R,
    draws: u64,
}

impl<R: Rng64> Rng64 for CountingRng<R> {
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }

    fn fill_u64(&mut self, out: &mut [u64]) {
        self.draws += out.len() as u64;
        self.inner.fill_u64(out);
    }
}

impl<R: Checkpoint> Checkpoint for CountingRng<R> {
    fn kind(&self) -> &'static str {
        "bench.counting-rng"
    }

    fn save(&self, enc: &mut qmc_ckpt::Encoder) {
        enc.u64(self.draws);
        enc.state(&self.inner);
    }

    fn load(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
        self.draws = dec.u64()?;
        dec.load_state(&mut self.inner)
    }
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn scratch(label: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "qmc-elastic-demo-{}-{label}-{n}",
        std::process::id()
    ))
}

fn copy_store(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("copy dst");
    for entry in std::fs::read_dir(src).expect("copy src") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy generation");
    }
}

fn cfg(quick: bool) -> PtConfig {
    PtConfig {
        l: 8,
        jx: 1.0,
        jz: 1.0,
        m: 8,
        betas: vec![0.5, 0.8, 1.2, 1.8],
        therm: if quick { 4 } else { 10 },
        sweeps: if quick { 12 } else { 40 },
        exchange_every: 2,
        seed: 99,
    }
}

type RankOut = (Vec<f64>, Vec<f64>, u64);

fn reference(cfg: &PtConfig) -> Vec<RankOut> {
    let cfg2 = cfg.clone();
    run_threads(cfg.betas.len(), move |comm| {
        let mut rng = CountingRng {
            inner: StreamFactory::new(17).stream(comm.rank()),
            draws: 0,
        };
        let (e, r) = run_pt_parallel_ckpt(comm, &cfg2, &mut rng, None, |_, _| {});
        (e, r, rng.draws)
    })
}

/// Run the demo; returns the rendered report and an overall verdict.
pub fn elastic_demo(quick: bool) -> (String, bool) {
    let mut out = String::new();
    let mut ok = true;
    let cfg = cfg(quick);
    let kill_sweep = (cfg.therm + cfg.sweeps) * 2 / 3;
    let victim = 2usize;

    let _ = writeln!(
        out,
        "elastic worlds: {}-rank PT ladder, {} sweeps, kill rank {victim} at sweep {kill_sweep}",
        cfg.betas.len(),
        cfg.therm + cfg.sweeps
    );
    let want = reference(&cfg);

    // Act 1: in-place respawn, bit-identical finish.
    let dir = scratch("respawn");
    let fired = Arc::new(AtomicBool::new(false));
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let run = {
        let cfg2 = cfg.clone();
        let dir2 = dir.clone();
        let fired2 = Arc::clone(&fired);
        run_threads_elastic(cfg.betas.len(), Duration::from_secs(60), 1, move |comm| {
            let mut rng = CountingRng {
                inner: StreamFactory::new(17).stream(comm.rank()),
                draws: 0,
            };
            let store = CkptStore::new(&dir2, 3).expect("store");
            let ck = PtCheckpointing {
                store: &store,
                every: 2,
                full_every: 2,
                resume: true,
                stop: None,
                elastic_from: None,
            };
            let fired = Arc::clone(&fired2);
            let (e, r) = run_pt_parallel_ckpt(comm, &cfg2, &mut rng, Some(&ck), move |c, s| {
                if s == kill_sweep && c.rank() == victim && !fired.swap(true, Ordering::SeqCst) {
                    panic!("injected kill: rank {victim} at sweep {s}");
                }
            });
            (e, r, rng.draws)
        })
    };
    std::panic::set_hook(hook);
    let _ = std::fs::remove_dir_all(&dir);

    let (respawns, respawn_identical) = match run {
        Ok(run) => {
            let identical = run.results.iter().zip(&want).all(|(got, exp)| {
                bits(&got.0) == bits(&exp.0) && bits(&got.1) == bits(&exp.1) && got.2 == exp.2
            });
            (run.respawned.len(), identical)
        }
        Err(e) => {
            let _ = writeln!(out, "  act 1: elastic run FAILED: {e:?}");
            (0, false)
        }
    };
    ok &= respawns == 1 && respawn_identical;
    let _ = writeln!(
        out,
        "  act 1: respawned {respawns} rank(s); bit-identical to uninterrupted reference \
         (observables + RNG draws): {}",
        if respawn_identical { "yes" } else { "NO" }
    );

    // Act 2: shrink the ladder instead of respawning. Seed a store
    // with one mid-run generation, then resume twice on the shrunk
    // ladder from copies of the same generations.
    let seed_dir = scratch("shrink-seed");
    {
        let cfg2 = cfg.clone();
        let dir2 = seed_dir.clone();
        let every = cfg.sweeps / 2;
        run_threads(cfg.betas.len(), move |comm| {
            let mut rng = CountingRng {
                inner: StreamFactory::new(17).stream(comm.rank()),
                draws: 0,
            };
            let store = CkptStore::new(&dir2, 3).expect("seed store");
            let ck = PtCheckpointing {
                store: &store,
                every,
                full_every: 0,
                resume: false,
                stop: None,
                elastic_from: None,
            };
            run_pt_parallel_ckpt(comm, &cfg2, &mut rng, Some(&ck), |_, _| {})
        });
    }
    let old_betas = cfg.betas.clone();
    let shrunk = PtConfig {
        betas: old_betas
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != victim)
            .map(|(_, b)| *b)
            .collect(),
        ..cfg.clone()
    };
    let copy_dir = scratch("shrink-copy");
    copy_store(&seed_dir, &copy_dir);
    let resume = |dir: &Path| -> Vec<RankOut> {
        let cfg2 = shrunk.clone();
        let old: Vec<f64> = old_betas.clone();
        let dir2 = dir.to_path_buf();
        let every = cfg.sweeps / 2;
        run_threads(shrunk.betas.len(), move |comm| {
            let mut rng = CountingRng {
                inner: StreamFactory::new(17).stream(comm.rank()),
                draws: 0,
            };
            let store = CkptStore::new(&dir2, 3).expect("resize store");
            let ck = PtCheckpointing {
                store: &store,
                every,
                full_every: 0,
                resume: true,
                stop: None,
                elastic_from: Some(&old),
            };
            let (e, r) = run_pt_parallel_ckpt(comm, &cfg2, &mut rng, Some(&ck), |_, _| {});
            (e, r, rng.draws)
        })
    };
    let a = resume(&seed_dir);
    let b = resume(&copy_dir);
    let _ = std::fs::remove_dir_all(&seed_dir);
    let _ = std::fs::remove_dir_all(&copy_dir);

    let shrink_deterministic = a
        .iter()
        .zip(&b)
        .all(|(ra, rb)| bits(&ra.0) == bits(&rb.0) && bits(&ra.1) == bits(&rb.1) && ra.2 == rb.2);
    let shrink_rows = a
        .iter()
        .all(|(e, r, _)| e.len() == shrunk.sweeps && r.len() == shrunk.betas.len() - 1);
    ok &= shrink_deterministic && shrink_rows;
    let _ = writeln!(
        out,
        "  act 2: shrank ladder {} -> {} rungs; deterministic resume: {}; \
         full survivor history: {}",
        old_betas.len(),
        shrunk.betas.len(),
        if shrink_deterministic { "yes" } else { "NO" },
        if shrink_rows { "yes" } else { "NO" }
    );

    // Artifact with the counts and verdicts, next to the other repro
    // outputs.
    let json = format!(
        "{{\n  \"schema\": \"qmc-elastic/v1\",\n  \"respawns\": {respawns},\n  \"resizes\": 1,\n  \"verdicts\": {{\n    \"respawn_bit_identical\": {respawn_identical},\n    \"shrink_deterministic\": {shrink_deterministic},\n    \"shrink_full_history\": {shrink_rows}\n  }}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../VERIFY_elastic.json");
    match std::fs::write(path, &json) {
        Ok(()) => {
            let _ = writeln!(out, "  wrote VERIFY_elastic.json ({} bytes)", json.len());
        }
        Err(e) => {
            ok = false;
            let _ = writeln!(out, "  could not write VERIFY_elastic.json: {e}");
        }
    }
    let _ = writeln!(out, "elastic: {}", if ok { "PASS" } else { "FAIL" });
    (out, ok)
}
