//! `repro serve-demo` — the simulation-as-a-service fault drill.
//!
//! Three acts against a live [`qmc_serve::Server`] over real sockets:
//!
//! 1. **Fleet**: four tenants submit 240 jobs over one TCP connection
//!    each; five of the jobs have deterministic worker deaths injected
//!    mid-run. Every job must come back (zero lost), every killed job
//!    must show a second attempt, and *every* result — killed or not —
//!    must be bit-identical to a direct in-process run of the same spec.
//! 2. **Parallel tempering**: a 4-rank PT job whose world is killed at a
//!    scheduled sweep; the world respawns the dead rank in place and
//!    rides through *inside the same attempt* — no requeue — and still
//!    matches the uninterrupted reference bit for bit
//!    (`serve.respawns` records the event).
//! 3. **Drain / restart**: a server draining mid-job checkpoints it; a
//!    fresh server over the same checkpoint root finishes the job to the
//!    same bits.
//!
//! Writes `METRICS_serve.json` (schema `qmc-metrics/v1`) with the server
//! counters (`serve.*`, per-tenant `tenant.<name>.*`) at the repository
//! root. The `scripts/check.sh serve` stage runs this with `--quick`.

use qmc_obs::{metrics_json, RunMeta};
use qmc_serve::{
    run_job, Client, JobKind, JobObservables, JobSpec, KillSpec, Outcome, RunCtl, ServeConfig,
    Server, TenantQuota,
};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const TENANTS: [&str; 4] = ["alice", "bob", "carol", "dave"];
const FLEET_JOBS: usize = 240;
const WORKERS: usize = 4;

/// Injected worker deaths for act 1: (submission-order job id, sweep).
const KILLS: [(u64, u64); 5] = [(7, 6), (58, 9), (123, 5), (199, 8), (233, 7)];

fn scratch(label: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("qmc-serve-demo-{}-{label}-{n}", std::process::id()))
}

/// The i-th fleet job: a tiny serial TFIM chain with varied sweep
/// budgets, seeds, and priorities.
fn fleet_spec(i: usize) -> JobSpec {
    JobSpec {
        tenant: TENANTS[i % TENANTS.len()].into(),
        name: format!("fleet-{i}"),
        kind: JobKind::Tfim {
            lx: 4,
            ly: 1,
            j: 1.0,
            h: 2.0,
            m: 4,
            wolff: 1,
        },
        betas: vec![1.0],
        therm: 4,
        sweeps: (12 + i % 5) as u32,
        seed: 1000 + i as u64,
        priority: (i % 3) as u8,
        ckpt_every: 4,
    }
}

fn pt_spec(quick: bool) -> JobSpec {
    JobSpec {
        tenant: "alice".into(),
        name: "pt-drill".into(),
        kind: JobKind::PtXxz {
            l: 8,
            jx: 1.0,
            jz: 1.0,
            m: 8,
            exchange_every: 2,
        },
        betas: vec![0.5, 0.9, 1.4, 2.0],
        therm: if quick { 6 } else { 12 },
        sweeps: if quick { 12 } else { 24 },
        seed: 4242,
        priority: 2,
        ckpt_every: 4,
    }
}

fn reference(spec: &JobSpec) -> JobObservables {
    match run_job(spec, RunCtl::default()) {
        Outcome::Done { obs, .. } => obs,
        other => panic!("reference run must complete, got {other:?}"),
    }
}

/// Run the full demo; returns (report, ok).
pub fn serve_demo(quick: bool) -> (String, bool) {
    let mut out = String::new();
    let mut ok = true;

    // ---- Act 1: the fleet ------------------------------------------
    let cfg = ServeConfig {
        workers: WORKERS,
        ckpt_root: scratch("fleet"),
        ckpt_every: 4,
        quota: TenantQuota { max_active: 64 },
        kills: KILLS
            .iter()
            .map(|&(job, at_sweep)| KillSpec { job, at_sweep })
            .collect(),
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, "127.0.0.1:0").expect("serve-demo server");
    let addr = server.addr();
    let _ = writeln!(
        out,
        "act 1: {FLEET_JOBS} jobs, {} tenants, {WORKERS} workers, {} injected kills @ {addr}",
        TENANTS.len(),
        KILLS.len()
    );

    let mut clients: Vec<Client> = TENANTS
        .iter()
        .map(|t| Client::connect(addr, t).expect("tenant connects"))
        .collect();

    // Submit everything up front so the queue holds the whole fleet.
    let mut ids = Vec::with_capacity(FLEET_JOBS);
    for i in 0..FLEET_JOBS {
        let spec = fleet_spec(i);
        let id = clients[i % TENANTS.len()]
            .submit(&spec)
            .expect("fleet submit");
        ids.push((id, spec));
    }
    let peak_pending = ids.len();

    // Await every result; verify bit-identity against direct runs.
    let mut completed = 0usize;
    let mut identical = 0usize;
    let mut kill_attempts_ok = 0usize;
    let mut snapshots_seen = 0usize;
    for (i, (id, spec)) in ids.iter().enumerate() {
        let client = &mut clients[i % TENANTS.len()];
        match client.await_result(*id, |_, _, _, _| snapshots_seen += 1) {
            Ok((obs, attempts)) => {
                completed += 1;
                if obs.bits_eq(&reference(spec)) {
                    identical += 1;
                }
                if KILLS.iter().any(|&(k, _)| k == *id) && attempts >= 2 {
                    kill_attempts_ok += 1;
                }
            }
            Err(e) => {
                let _ = writeln!(out, "  LOST job {id}: {e}");
            }
        }
    }
    let lost = FLEET_JOBS - completed;
    let _ = writeln!(
        out,
        "  completed {completed}/{FLEET_JOBS} (lost {lost}), peak queue {peak_pending}, \
         snapshots streamed {snapshots_seen}"
    );
    let _ = writeln!(
        out,
        "  bit-identical to direct runs: {identical}/{FLEET_JOBS}; \
         killed jobs retried: {kill_attempts_ok}/{}",
        KILLS.len()
    );
    ok &= lost == 0 && identical == FLEET_JOBS && kill_attempts_ok == KILLS.len();

    // Global counters need operator powers: tenant sessions are pinned
    // to their own namespace, so the drill connects an admin session for
    // the unfiltered view (and, below, the drains).
    let mut admin = Client::connect(addr, "admin").expect("admin connects");
    let (counters, _) = admin.stats("").expect("global stats");
    let get = |name: &str| {
        counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    let _ = writeln!(
        out,
        "  counters: submitted {} completed {} requeues {} worker_kills {}",
        get("serve.jobs_submitted"),
        get("serve.jobs_completed"),
        get("serve.requeues"),
        get("serve.worker_kills"),
    );
    ok &= get("serve.jobs_completed") == FLEET_JOBS as u64
        && get("serve.requeues") == KILLS.len() as u64;

    // Per-tenant isolation over the wire: each tenant's filtered view
    // carries its own counters and nobody else's.
    let mut isolated = true;
    for (i, t) in TENANTS.iter().enumerate() {
        let (mine, _) = clients[i].stats(t).expect("tenant stats");
        isolated &= mine
            .iter()
            .any(|(k, _)| *k == format!("tenant.{t}.jobs_completed"));
        isolated &= mine
            .iter()
            .all(|(k, _)| !k.starts_with("tenant.") || k.starts_with(&format!("tenant.{t}.")));
    }
    let _ = writeln!(out, "  tenant metric isolation: {}", yes(isolated));
    ok &= isolated;

    admin.drain().expect("drain ack");
    let fleet_obs = server.join();

    // ---- Act 2: PT world kill --------------------------------------
    let spec = pt_spec(quick);
    let kill_sweep = (spec.therm + spec.sweeps / 2) as u64;
    let cfg = ServeConfig {
        workers: 1,
        ckpt_root: scratch("pt"),
        ckpt_every: 4,
        kills: vec![KillSpec {
            job: 0,
            at_sweep: kill_sweep,
        }],
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, "127.0.0.1:0").expect("pt server");
    let mut client = Client::connect(server.addr(), "alice").expect("connect");
    let id = client.submit(&spec).expect("pt submit");
    let (obs, attempts) = client.await_result(id, |_, _, _, _| {}).expect("pt result");
    let pt_identical = obs.bits_eq(&reference(&spec));
    let mut admin = Client::connect(server.addr(), "admin").expect("admin connects");
    let (counters, _) = admin.stats("").expect("pt stats");
    let respawns = counters
        .iter()
        .find(|(k, _)| k == "serve.respawns")
        .map(|&(_, v)| v)
        .unwrap_or(0);
    let _ = writeln!(
        out,
        "act 2: PT world killed at sweep {kill_sweep}: rode through in \
         attempts {attempts} with respawns {respawns}, bit-identical resume {}",
        yes(pt_identical)
    );
    // The whole point of the elastic world: the death is absorbed inside
    // the attempt (respawn counter fires), not retried by the scheduler.
    ok &= attempts == 1 && respawns >= 1 && pt_identical;
    admin.drain().expect("drain ack");
    server.join();

    // ---- Act 3: drain, restart, finish -----------------------------
    let root = scratch("drain");
    let mut spec = fleet_spec(0);
    spec.name = "long-haul".into();
    spec.sweeps = 400;
    spec.ckpt_every = 8;
    let cfg = ServeConfig {
        workers: 1,
        ckpt_root: root.clone(),
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, "127.0.0.1:0").expect("drain server");
    let mut client = Client::connect(server.addr(), spec.tenant.as_str()).expect("connect");
    client.submit(&spec).expect("submit long job");
    // Drain right away: the job pauses at its next sweep boundary (or
    // stays queued if no worker picked it up yet — either is safe).
    let mut admin = Client::connect(server.addr(), "admin").expect("admin connects");
    admin.drain().expect("drain ack");
    let drained_obs = server.join();
    let paused = drained_obs.counter("serve.jobs_drained");

    let cfg = ServeConfig {
        workers: 1,
        ckpt_root: root,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, "127.0.0.1:0").expect("restart server");
    let mut client = Client::connect(server.addr(), spec.tenant.as_str()).expect("reconnect");
    let id = client.submit(&spec).expect("resubmit after restart");
    let (obs, _) = client
        .await_result(id, |_, _, _, _| {})
        .expect("resumed result");
    let drain_identical = obs.bits_eq(&reference(&spec));
    let _ = writeln!(
        out,
        "act 3: drained mid-flight (paused {paused}), restarted server resumed \
         bit-identical {}",
        yes(drain_identical)
    );
    ok &= drain_identical;
    let mut admin = Client::connect(server.addr(), "admin").expect("admin connects");
    admin.drain().expect("drain ack");
    server.join();

    // ---- Artifact ---------------------------------------------------
    let meta = RunMeta::new("serve-demo", "serve", "tcp", WORKERS)
        .param("jobs", FLEET_JOBS)
        .param("tenants", TENANTS.len())
        .param("kills", KILLS.len());
    let json = metrics_json(&meta, std::slice::from_ref(&fleet_obs));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../METRICS_serve.json");
    match std::fs::write(path, &json) {
        Ok(()) => {
            let _ = writeln!(out, "wrote METRICS_serve.json ({} bytes)", json.len());
        }
        Err(e) => {
            let _ = writeln!(out, "could not write METRICS_serve.json: {e}");
        }
    }

    let _ = writeln!(
        out,
        "[{}] serve demo: {FLEET_JOBS} jobs, {} kills, zero lost, bit-identical",
        if ok { "PASS" } else { "FAIL" },
        KILLS.len()
    );
    (out, ok)
}

fn yes(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "NO"
    }
}
