//! Stepwise checkpointed drivers for the serial engines.
//!
//! Each driver replays the exact sweep/measure sequence of its engine's
//! `run()` method (one combined `for s in 0..therm + sweeps` loop with
//! the thermalization/measurement split on `s >= therm`), but writes an
//! atomic checkpoint generation every `CkptCfg::every` sweeps — *before*
//! the sweep whose index it carries — and can resume from the newest
//! valid generation. Because the checkpoint captures engine, RNG, and
//! accumulated series together, a resumed run continues the identical
//! fixed-seed trajectory bit for bit; the crash-at-every-boundary tests
//! in `tests/checkpoint.rs` pin this for every engine and every sweep
//! index.
//!
//! `kill_at: Some(k)` simulates a crash: the driver returns `None` just
//! before sweep `k` runs (after any checkpoint due at `k` was written),
//! leaving the store exactly as a real mid-run failure would.

use qmc_ckpt::{
    plan_sections, restore_sections, Checkpoint, CkptStore, Decoder, Encoder, SectionPlan,
};
use qmc_lattice::Lattice;
use qmc_rng::Rng64;
use qmc_sse::{Sse, SseSeries};
use qmc_tfim::packed::{PackedReplicas, PackedSeries};
use qmc_tfim::serial::{SerialTfim, TfimSeries};
use qmc_tfim::TfimModel;
use qmc_worldline::estimators::TimeSeries;
use qmc_worldline::{GenericParams, GenericWorldline, Worldline, WorldlineParams};
use std::sync::atomic::{AtomicBool, Ordering};

/// Checkpoint policy shared by the serial drivers.
pub struct CkptCfg<'a> {
    /// Generation store (atomic write + retain-K pruning).
    pub store: &'a CkptStore,
    /// Write a generation every `every` sweeps.
    pub every: usize,
    /// Write every `full_every`-th generation as a full snapshot; the
    /// generations in between are deltas against the last full one
    /// (sections whose state is unchanged are stored as base
    /// references). `0` disables deltas entirely — every generation is
    /// a full snapshot, matching the pre-delta behaviour.
    pub full_every: usize,
    /// Resume from the newest valid generation before sweeping.
    pub resume: bool,
    /// Graceful-drain flag: when set (observed at a sweep boundary) the
    /// driver writes a final full checkpoint generation and returns
    /// early instead of being killed mid-write. A later run with
    /// `resume: true` continues the identical trajectory bit for bit.
    pub stop: Option<&'a AtomicBool>,
}

/// Shared loop: restore (optionally), then for each sweep write the due
/// checkpoint, honour `kill_at`, and run `step`. Returns `false` when
/// the simulated crash fired.
fn drive<E, R, S>(
    eng: &mut E,
    rng: &mut R,
    series: &mut S,
    total: usize,
    ck: Option<&CkptCfg<'_>>,
    kill_at: Option<usize>,
    mut step: impl FnMut(&mut E, &mut R, &mut S, usize),
) -> bool
where
    E: Checkpoint,
    R: Checkpoint,
    S: Checkpoint,
{
    let mut start = 0usize;
    if let Some(ck) = ck {
        if ck.resume {
            if let Some((generation, file)) = ck.store.latest() {
                let meta = file.require("meta").expect("checkpoint meta section");
                let mut dec = Decoder::new(meta);
                let s0 = dec.u64().expect("checkpoint sweep index") as usize;
                assert_eq!(generation, s0 as u64, "generation = sweep index");
                if file.get("engine").is_some() {
                    // Legacy monolithic layout (files written before the
                    // sectioned format). Restore works, but everything is
                    // left dirty: a delta against this file would have to
                    // reference section names it never carried, so the
                    // next write degrades to a full snapshot instead.
                    file.restore("engine", eng).expect("restore engine");
                    file.restore("rng", rng).expect("restore rng");
                    file.restore("series", series).expect("restore series");
                } else {
                    restore_sections(&file, "engine", eng).expect("restore engine");
                    restore_sections(&file, "rng", rng).expect("restore rng");
                    restore_sections(&file, "series", series).expect("restore series");
                }
                start = s0;
            }
        }
    }
    for s in start..total {
        // A drain request is honoured at the sweep boundary: write a
        // final (full) generation, then exit cleanly instead of being
        // killed mid-write.
        let draining = ck
            .and_then(|c| c.stop)
            .is_some_and(|f| f.load(Ordering::SeqCst));
        if let Some(ck) = ck {
            if draining || s % ck.every == 0 {
                // A drain can land between cadence boundaries, where the
                // generation-index arithmetic below has no meaning —
                // draining always forces a full snapshot.
                let gen_index = s / ck.every;
                let want_full = draining || ck.full_every == 0 || gen_index % ck.full_every == 0;
                // The base must be strictly older: resuming exactly at a
                // checkpoint boundary would otherwise try to write this
                // generation as a delta against itself.
                let delta = !want_full && ck.store.delta_base().is_some_and(|b| b < s as u64);
                let mut meta = Encoder::new();
                meta.u64(s as u64);
                let mut plan = vec![("meta".to_string(), SectionPlan::Payload(meta.into_bytes()))];
                plan_sections(&mut plan, "engine", eng, delta);
                plan_sections(&mut plan, "rng", rng, delta);
                plan_sections(&mut plan, "series", series, delta);
                match ck.store.write_plan(s as u64, plan, delta) {
                    Ok(_) => {
                        // Only a durably written generation may mark state
                        // clean: a false "clean" would let a later delta
                        // reference a base that never captured it.
                        eng.mark_clean();
                        rng.mark_clean();
                        series.mark_clean();
                    }
                    Err(e) => {
                        eprintln!(
                            "warning: checkpoint generation {s} not written: {e}; continuing"
                        );
                    }
                }
            }
        }
        if draining {
            return false;
        }
        if kill_at == Some(s) {
            return false;
        }
        step(eng, rng, series, s);
    }
    true
}

/// Checkpointed serial TFIM run; draw-for-draw identical to
/// [`SerialTfim::run`]. Returns the final engine alongside the series;
/// `None` = simulated crash at `kill_at`.
pub fn run_serial_tfim_ckpt<R: Rng64 + Checkpoint>(
    model: TfimModel,
    rng: &mut R,
    therm: usize,
    sweeps: usize,
    wolff_per_sweep: usize,
    ck: Option<&CkptCfg<'_>>,
    kill_at: Option<usize>,
) -> Option<(SerialTfim, TfimSeries)> {
    let mut eng = SerialTfim::new(model);
    let mut series = TfimSeries::default();
    let done = drive(
        &mut eng,
        rng,
        &mut series,
        therm + sweeps,
        ck,
        kill_at,
        |eng, rng, series, s| {
            eng.metropolis_sweep(rng);
            for _ in 0..wolff_per_sweep {
                eng.wolff_update(rng);
            }
            if s >= therm {
                series.record(&eng.measure());
            }
        },
    );
    done.then_some((eng, series))
}

/// Checkpointed replica-packed TFIM run; draw-for-draw identical to
/// [`PackedReplicas::run`]. The checkpoint captures the bit-packed
/// configuration verbatim (plus per-lane series with chunked dirty
/// tracking), so a resumed run continues every lane bit for bit.
#[allow(clippy::too_many_arguments)]
pub fn run_packed_tfim_ckpt<R: Rng64 + Checkpoint>(
    model: TfimModel,
    lanes: usize,
    rng: &mut R,
    therm: usize,
    sweeps: usize,
    ck: Option<&CkptCfg<'_>>,
    kill_at: Option<usize>,
) -> Option<(PackedReplicas, PackedSeries)> {
    let mut eng = PackedReplicas::new(model, lanes);
    let mut series = PackedSeries::new(lanes);
    let mut meas = Vec::with_capacity(lanes);
    let done = drive(
        &mut eng,
        rng,
        &mut series,
        therm + sweeps,
        ck,
        kill_at,
        |eng, rng, series, s| {
            eng.metropolis_sweep(rng);
            if s >= therm {
                eng.measure_into(&mut meas);
                series.record(&meas);
            }
        },
    );
    done.then_some((eng, series))
}

/// Checkpointed world-line chain run; draw-for-draw identical to
/// [`Worldline::run`].
pub fn run_worldline_ckpt<R: Rng64 + Checkpoint>(
    params: WorldlineParams,
    rng: &mut R,
    therm: usize,
    sweeps: usize,
    ck: Option<&CkptCfg<'_>>,
    kill_at: Option<usize>,
) -> Option<(Worldline, TimeSeries)> {
    let mut eng = Worldline::new(params);
    let mut series = TimeSeries::new(params.l);
    series.set_beta(params.beta);
    let done = drive(
        &mut eng,
        rng,
        &mut series,
        therm + sweeps,
        ck,
        kill_at,
        |eng, rng, series, s| {
            eng.sweep(rng);
            if s >= therm {
                series.record(&qmc_worldline::estimators::measure(eng));
                series.record_correlations(eng);
            }
        },
    );
    done.then_some((eng, series))
}

/// Checkpointed generic world-line run; draw-for-draw identical to
/// [`GenericWorldline::run`].
pub fn run_generic_worldline_ckpt<L: Lattice, R: Rng64 + Checkpoint>(
    lattice: L,
    params: GenericParams,
    rng: &mut R,
    therm: usize,
    sweeps: usize,
    ck: Option<&CkptCfg<'_>>,
    kill_at: Option<usize>,
) -> Option<(GenericWorldline<L>, TimeSeries)> {
    let n_sites = lattice.num_sites();
    let mut eng = GenericWorldline::new(lattice, params);
    let mut series = TimeSeries::new(n_sites);
    series.set_beta(params.beta);
    let done = drive(
        &mut eng,
        rng,
        &mut series,
        therm + sweeps,
        ck,
        kill_at,
        |eng, rng, series, s| {
            eng.sweep(rng);
            if s >= therm {
                series.record(&eng.measure());
            }
        },
    );
    done.then_some((eng, series))
}

/// Checkpointed SSE run; draw-for-draw identical to [`Sse::run`]
/// (thermalization sweeps adapt the cutoff, measured sweeps do not).
///
/// `Sse::new` itself consumes RNG draws for the random initial state, so
/// the caller must pass a freshly seeded RNG on resume too — the restore
/// then rewinds both engine and RNG to the checkpointed state.
#[allow(clippy::too_many_arguments)]
pub fn run_sse_ckpt<L: Lattice, R: Rng64 + Checkpoint>(
    lattice: &L,
    j: f64,
    beta: f64,
    rng: &mut R,
    therm: usize,
    sweeps: usize,
    ck: Option<&CkptCfg<'_>>,
    kill_at: Option<usize>,
) -> Option<(Sse, SseSeries)> {
    let mut eng = Sse::new(lattice, j, beta, rng);
    let mut series = eng.begin_series(sweeps);
    let done = drive(
        &mut eng,
        rng,
        &mut series,
        therm + sweeps,
        ck,
        kill_at,
        |eng, rng, series, s| {
            eng.sweep(rng);
            if s < therm {
                eng.adjust_cutoff();
            } else {
                eng.record_measurement(series);
            }
        },
    );
    done.then_some((eng, series))
}
