//! `repro faults` — fault injection, recovery, and deterministic resume.
//!
//! A three-act demonstration on a 4-rank thread-backed parallel-tempering
//! run (one replica per rank, common-random-number swap decisions):
//!
//! 1. **Reference** — a clean run records every rank's energy series and
//!    the pair acceptance rates.
//! 2. **Absorbable faults** — the same run behind [`qmc_comm::FaultyComm`]
//!    with seeded drops, duplicates, delays, and transient send failures.
//!    The retry/backoff and sequence-number layers absorb all of it: the
//!    results must be bit-identical to the reference.
//! 3. **Rank kill + recovery** — the run checkpoints every few sweeps
//!    through the coordinated rank-0 store; a scheduled kill takes one
//!    rank down mid-run (its peers give up after bounded retries). A
//!    fresh world then resumes from the newest intact generation — still
//!    under injected faults — and must land on the identical trajectory.
//!
//! The same machinery backs `--checkpoint-every/--checkpoint-dir/--resume`
//! on the `qmc` CLI and the crash-at-every-boundary tests in
//! `tests/checkpoint.rs`.

use qmc_ckpt::CkptStore;
use qmc_comm::{run_threads, run_threads_with_timeout, Communicator, FaultPlan, FaultyComm};
use qmc_core::pt::{geometric_ladder, run_pt_parallel_ckpt, PtCheckpointing, PtConfig};
use qmc_rng::StreamFactory;
use std::fmt::Write as _;
use std::time::Duration;

/// Ranks (= temperatures) in the demo ladder.
const RANKS: usize = 4;

/// The rank the scheduled kill takes down in act 3.
const KILLED_RANK: usize = 2;

fn demo_cfg(quick: bool) -> PtConfig {
    PtConfig {
        l: 8,
        jx: 1.0,
        jz: 1.0,
        m: 8,
        betas: geometric_ladder(0.5, 2.0, RANKS),
        therm: if quick { 10 } else { 30 },
        sweeps: if quick { 30 } else { 90 },
        exchange_every: 2,
        seed: 4242,
    }
}

/// Absorbable-fault schedule: noisy but survivable.
fn noisy_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .drops(30)
        .duplicates(30)
        .delays(40)
        .transient_fails(20)
        .retry(8, Duration::from_millis(25))
}

type RankResult = (Vec<f64>, Vec<f64>);

fn bitwise_equal(a: &[RankResult], b: &[RankResult]) -> bool {
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| bits(&x.0) == bits(&y.0) && bits(&x.1) == bits(&y.1))
}

/// Clean reference run (no fault layer, no checkpointing).
fn reference_run(cfg: &PtConfig) -> Vec<RankResult> {
    let cfg = cfg.clone();
    run_threads(RANKS, move |comm| {
        let mut rng = StreamFactory::new(cfg.seed).stream(comm.rank());
        run_pt_parallel_ckpt(comm, &cfg, &mut rng, None, |_, _| {})
    })
}

/// The same run behind `FaultyComm`, optionally checkpointing into
/// `dir`, optionally resuming, with the plan's scheduled kill (if any)
/// armed. Returns per-rank `(result, fault_stats)`.
fn faulty_run(
    cfg: &PtConfig,
    plan: FaultPlan,
    ckpt: Option<(&str, usize, bool)>,
    timeout: Duration,
) -> Vec<(RankResult, qmc_comm::FaultStats)> {
    let cfg = cfg.clone();
    let ckpt = ckpt.map(|(d, e, r)| (d.to_string(), e, r));
    run_threads_with_timeout(RANKS, timeout, move |comm| {
        let mut rng = StreamFactory::new(cfg.seed).stream(comm.rank());
        let mut faulty = FaultyComm::new(comm, plan);
        let result = match &ckpt {
            None => run_pt_parallel_ckpt(&mut faulty, &cfg, &mut rng, None, |c, s| c.tick_sweep(s)),
            Some((dir, every, resume)) => {
                let store = CkptStore::new(dir, 3).expect("checkpoint dir");
                let ck = PtCheckpointing {
                    store: &store,
                    every: *every,
                    full_every: 2,
                    resume: *resume,
                    stop: None,
                    elastic_from: None,
                };
                run_pt_parallel_ckpt(&mut faulty, &cfg, &mut rng, Some(&ck), |c, s| {
                    c.tick_sweep(s)
                })
            }
        };
        let stats = faulty.fault_stats();
        qmc_obs::publish_fault_stats(&stats);
        (result, stats)
    })
}

/// The fault-injection demo — `repro faults`.
///
/// `every`/`dir` override the checkpoint cadence and directory (`0` /
/// empty = defaults); `resume_only` skips the reference and crash acts
/// and just resumes whatever the directory holds (the flag `--resume`).
pub fn faults_demo(quick: bool, every: usize, dir: &str, resume_only: bool) -> String {
    let cfg = demo_cfg(quick);
    let every = if every == 0 { 8 } else { every };
    let default_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../ckpt/faults-demo");
    let dir = if dir.is_empty() { default_dir } else { dir };
    let total = cfg.therm + cfg.sweeps;
    let kill_sweep = 2 * total / 3;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fault demo: {RANKS}-rank PT ladder (L={}, m={}, β ∈ [{:.2}, {:.2}]), \
         {total} sweeps, checkpoint every {every}",
        cfg.l,
        cfg.m,
        cfg.betas[0],
        cfg.betas[RANKS - 1],
    );

    // Act 1: the clean reference trajectory.
    let reference = reference_run(&cfg);
    let mean0 = reference[0].0.iter().sum::<f64>() / reference[0].0.len().max(1) as f64;
    let _ = writeln!(
        out,
        "  reference: rank-0 ⟨E/N⟩ = {mean0:+.6}, swap rates {:?}",
        reference[0]
            .1
            .iter()
            .map(|r| (r * 1e3).round() / 1e3)
            .collect::<Vec<_>>()
    );

    if !resume_only {
        // Act 2: absorbable faults must not change a single bit.
        let noisy = faulty_run(&cfg, noisy_plan(909), None, Duration::from_secs(60));
        let results: Vec<RankResult> = noisy.iter().map(|(r, _)| r.clone()).collect();
        let absorbed = bitwise_equal(&reference, &results);
        let sum =
            |f: fn(&qmc_comm::FaultStats) -> u64| noisy.iter().map(|(_, s)| f(s)).sum::<u64>();
        let _ = writeln!(
            out,
            "  absorbed faults: {} drops, {} dups, {} delays, {} send failures \
             → {} retries, {} stale discards; results bit-identical: {}",
            sum(|s| s.dropped),
            sum(|s| s.duplicated),
            sum(|s| s.delayed),
            sum(|s| s.send_failures),
            sum(|s| s.retries),
            sum(|s| s.stale_discarded),
            if absorbed { "yes" } else { "NO" }
        );
        assert!(absorbed, "absorbable faults changed the trajectory");

        // Act 3a: checkpoint + scheduled rank kill. The whole world goes
        // down (peers exhaust their retries); silence the panic hook so
        // the expected crash does not spray backtraces over the report.
        let _ = std::fs::remove_dir_all(dir);
        let kill_plan = noisy_plan(909)
            .kill(KILLED_RANK, kill_sweep)
            .retry(3, Duration::from_millis(10));
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            faulty_run(
                &cfg,
                kill_plan,
                Some((dir, every, false)),
                Duration::from_secs(5),
            )
        }));
        std::panic::set_hook(hook);
        assert!(
            crashed.is_err(),
            "the scheduled kill must take the run down"
        );
        let _ = writeln!(
            out,
            "  kill: rank {KILLED_RANK} down at sweep {kill_sweep}; world lost \
             (peers gave up after bounded retries)"
        );
    }

    // Act 3b: resume from the newest intact generation, faults still on.
    let survivor = CkptStore::new(dir, 3).expect("checkpoint dir");
    let generation = survivor
        .generations()
        .last()
        .copied()
        .expect("a coordinated checkpoint survived the crash");
    let resumed = faulty_run(
        &cfg,
        noisy_plan(911),
        Some((dir, every, true)),
        Duration::from_secs(60),
    );
    let results: Vec<RankResult> = resumed.iter().map(|(r, _)| r.clone()).collect();
    let identical = bitwise_equal(&reference, &results);
    let retries = resumed
        .iter()
        .map(|(_, s)| s.retries + s.timeouts)
        .sum::<u64>();
    let _ = writeln!(
        out,
        "  recovery: resumed from generation {generation} under injected faults \
         ({retries} retry/timeout events); trajectory bit-identical: {}",
        if identical { "yes" } else { "NO" }
    );
    assert!(
        identical,
        "resumed run diverged from the reference trajectory"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorbable_faults_and_recovery_reproduce_the_reference() {
        let dir = std::env::temp_dir().join(format!("qmc-faults-demo-{}", std::process::id()));
        let report = faults_demo(true, 0, dir.to_str().unwrap(), false);
        assert!(report.contains("bit-identical: yes"));
        assert!(!report.contains("bit-identical: NO"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
