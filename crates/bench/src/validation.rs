//! Validation tables T4–T6.

use qmc_core::pt::{geometric_ladder, PtLadder};
use qmc_core::table::{pm, Table};
use qmc_ed::xxz::{full_spectrum, XxzParams};
use qmc_lattice::Chain;
use qmc_rng::{Rng64, StreamFactory, StreamKind, Xoshiro256StarStar};
use qmc_stats::BinningAnalysis;
use qmc_worldline::{Worldline, WorldlineParams};

/// T4: replica-exchange ladder — per-pair acceptance and round trips.
pub fn t4_parallel_tempering(quick: bool) -> String {
    let sweeps = if quick { 2_000 } else { 20_000 };
    let l = 16;
    let betas = geometric_ladder(0.25, 4.0, 8);
    let mut ladder = PtLadder::new(l, 1.0, 1.0, 32, betas.clone());
    let mut rng = Xoshiro256StarStar::new(44);
    let energies = ladder.run(&mut rng, sweeps / 10, sweeps, 2);

    let mut t = Table::new(
        &format!("T4: parallel tempering, Heisenberg chain L={l}, 8 replicas"),
        &["pair", "β_lo", "β_hi", "acceptance", "E/N(β_lo)"],
    );
    for k in 0..betas.len() - 1 {
        let b = BinningAnalysis::new(&energies[k], 16);
        t.row(&[
            format!("{k}"),
            format!("{:.3}", betas[k]),
            format!("{:.3}", betas[k + 1]),
            format!("{:.3}", ladder.stats().rate(k)),
            pm(b.mean, b.error(), 4),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "round trips completed: {} (walkers diffusing bottom↔top)\n",
        ladder.stats().round_trips
    ));
    out
}

/// T5: engine cross-validation matrix — ED vs world-line vs SSE on the
/// Heisenberg chain, plus ED vs world-line for anisotropic XXZ.
pub fn t5_cross_validation(quick: bool) -> String {
    let sweeps = if quick { 4_000 } else { 40_000 };
    let l = 8usize;
    let lat = Chain::new(l);
    let mut out = String::new();

    let mut t = Table::new(
        &format!("T5: E/N cross-validation, Heisenberg chain L={l}"),
        &["β", "ED", "world-line (Δτ=0.125)", "SSE"],
    );
    let spec = full_spectrum(&lat, &XxzParams::heisenberg(1.0));
    for &beta in &[0.5f64, 1.0, 2.0] {
        let e_ed = spec.energy(beta) / l as f64;

        let mut wl = Worldline::new(WorldlineParams {
            l,
            jx: 1.0,
            jz: 1.0,
            beta,
            m: crate::figures::trotter_m(beta, 0.125),
        });
        let mut rng = Xoshiro256StarStar::new(50 + (beta * 10.0) as u64);
        let ws = wl.run(&mut rng, sweeps / 2, sweeps);
        let bw = BinningAnalysis::new(&ws.energy, 16);

        let mut rng2 = Xoshiro256StarStar::new(60 + (beta * 10.0) as u64);
        let mut sse = qmc_sse::Sse::new(&lat, 1.0, beta, &mut rng2);
        let ss = sse.run(&mut rng2, sweeps / 10, sweeps);
        let bs = BinningAnalysis::new(&ss.energy_samples(), 16);

        t.row(&[
            format!("{beta:.1}"),
            format!("{e_ed:.5}"),
            pm(bw.mean, bw.error(), 5),
            pm(bs.mean, bs.error(), 5),
        ]);
    }
    out.push_str(&t.render());

    let mut t2 = Table::new(
        &format!("T5b: E/N, anisotropic XXZ (Δ = 0.5) chain L={l}"),
        &["β", "ED", "world-line (Δτ=0.125)"],
    );
    let spec_xxz = full_spectrum(
        &lat,
        &XxzParams {
            jx: 1.0,
            jz: 0.5,
            field: 0.0,
        },
    );
    for &beta in &[0.5f64, 1.0, 2.0] {
        let e_ed = spec_xxz.energy(beta) / l as f64;
        let mut wl = Worldline::new(WorldlineParams {
            l,
            jx: 1.0,
            jz: 0.5,
            beta,
            m: crate::figures::trotter_m(beta, 0.125),
        });
        let mut rng = Xoshiro256StarStar::new(70 + (beta * 10.0) as u64);
        let ws = wl.run(&mut rng, sweeps / 2, sweeps);
        let bw = BinningAnalysis::new(&ws.energy, 16);
        t2.row(&[
            format!("{beta:.1}"),
            format!("{e_ed:.5}"),
            pm(bw.mean, bw.error(), 5),
        ]);
    }
    out.push_str(&t2.render());

    // T5c: the 2-D world-line engine against SSE (both sampling the 8×8
    // Heisenberg model; winding bias is negligible at this size).
    let sweeps2d = sweeps / 2;
    let mut t3 = Table::new(
        "T5c: E/N, 2-D Heisenberg 8×8 — world-line (ring+window moves) vs SSE",
        &["β", "world-line (Δτ=0.125)", "SSE"],
    );
    for &beta in &[0.5f64, 1.0] {
        let mut wl = qmc_worldline::GenericWorldline::new(
            qmc_lattice::Square::new(8, 8),
            qmc_worldline::GenericParams {
                jx: 1.0,
                jz: 1.0,
                beta,
                m: crate::figures::trotter_m(beta, 0.125),
            },
        );
        let mut rng = Xoshiro256StarStar::new(80 + (beta * 10.0) as u64);
        let ws = wl.run(&mut rng, sweeps2d / 4, sweeps2d);
        let bw = BinningAnalysis::new(&ws.energy, 16);

        let lat2 = qmc_lattice::Square::new(8, 8);
        let mut rng2 = Xoshiro256StarStar::new(90 + (beta * 10.0) as u64);
        let mut sse = qmc_sse::Sse::new(&lat2, 1.0, beta, &mut rng2);
        let ss = sse.run(&mut rng2, sweeps2d / 4, sweeps2d);
        let bs = BinningAnalysis::new(&ss.energy_samples(), 16);

        t3.row(&[
            format!("{beta:.1}"),
            pm(bw.mean, bw.error(), 5),
            pm(bs.mean, bs.error(), 5),
        ]);
    }
    out.push_str(&t3.render());
    out
}

/// T6: per-stream RNG quality across 1024 parallel streams of each
/// generator family.
pub fn t6_rng_quality(quick: bool) -> String {
    let n_streams = if quick { 128 } else { 1024 };
    let draws = if quick { 4_000 } else { 20_000 };
    let mut t = Table::new(
        &format!("T6: parallel stream quality, {n_streams} streams × {draws} draws"),
        &[
            "generator",
            "worst |mean−½|·√(12n)",
            "worst χ²(255) dev/σ",
            "max |corr(r, r+1)|·√n",
        ],
    );
    for (name, kind) in [
        ("LCG64 (jump-ahead)", StreamKind::Lcg),
        ("xoshiro256** (jump)", StreamKind::Xoshiro),
        ("lagged Fibonacci(55,24)", StreamKind::LaggedFibonacci),
    ] {
        let factory = StreamFactory::with_kind(987, kind);
        let mut worst_mean = 0.0f64;
        let mut worst_chi = 0.0f64;
        let mut worst_corr = 0.0f64;
        let mut prev: Option<Vec<f64>> = None;
        for r in 0..n_streams {
            let mut g = factory.stream(r);
            let mut sum = 0.0;
            let mut counts = [0u32; 256];
            let mut vals = Vec::with_capacity(draws);
            for _ in 0..draws {
                let u = g.next_u64();
                counts[(u >> 56) as usize] += 1;
                let x = (u >> 11) as f64 / (1u64 << 53) as f64;
                sum += x;
                vals.push(x);
            }
            let n = draws as f64;
            worst_mean = worst_mean.max((sum / n - 0.5).abs() * (12.0 * n).sqrt());
            let expected = n / 256.0;
            let chi: f64 = counts
                .iter()
                .map(|&c| {
                    let d = c as f64 - expected;
                    d * d / expected
                })
                .sum();
            worst_chi = worst_chi.max((chi - 255.0).abs() / (2.0f64 * 255.0).sqrt());
            if let Some(p) = &prev {
                let corr: f64 = p
                    .iter()
                    .zip(&vals)
                    .map(|(a, b)| (a - 0.5) * (b - 0.5))
                    .sum::<f64>()
                    / n
                    / (1.0 / 12.0);
                worst_corr = worst_corr.max(corr.abs() * n.sqrt());
            }
            prev = Some(vals);
        }
        t.row(&[
            name.to_string(),
            format!("{worst_mean:.2}"),
            format!("{worst_chi:.2}"),
            format!("{worst_corr:.2}"),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "all columns are in units of σ under the null hypothesis; values ≲ 4–5 \
         across 1024 streams indicate healthy, uncorrelated streams\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t6_quick_streams_healthy() {
        let out = t6_rng_quality(true);
        // Every deviation column should stay below 6σ even at quick size.
        for line in out.lines().skip(3) {
            let cells: Vec<&str> = line.split('|').collect();
            if cells.len() == 4 {
                for c in &cells[1..] {
                    if let Ok(v) = c.trim().parse::<f64>() {
                        assert!(v < 6.0, "stream deviation too large: {line}");
                    }
                }
            }
        }
    }

    #[test]
    fn t4_quick_has_positive_acceptance() {
        let out = t4_parallel_tempering(true);
        assert!(out.contains("round trips"));
        let rates: Vec<f64> = out
            .lines()
            .filter_map(|l| {
                let cells: Vec<&str> = l.split('|').collect();
                (cells.len() == 5).then(|| cells[3].trim().parse::<f64>().ok())?
            })
            .collect();
        assert!(!rates.is_empty());
        assert!(rates.iter().any(|&r| r > 0.1), "rates: {rates:?}");
    }
}
