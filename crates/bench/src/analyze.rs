//! `repro analyze` — the causal-tracing and critical-path demo.
//!
//! Records a 4-rank thread-backed parallel-tempering run through
//! [`qmc_obs::TracingComm`] (every user-level send/receive lands in the
//! per-rank ring with its channel sequence number and enclosing span),
//! merges the per-rank streams into a cross-rank happens-before DAG,
//! and walks out the critical path:
//!
//! 1. the longest compute+message chain through the run, segment by
//!    segment (which rank, which span, or which message bound progress),
//! 2. per-rank attribution (compute / receive-wait / send) covering the
//!    observed window, and
//! 3. the straggler rank and load-imbalance factor.
//!
//! The report is printed and the structured version written as
//! `ANALYSIS_run.json` (schema `qmc-analysis/v1`) next to `trace.json`
//! (whose flow events draw the same messages as arrows between rank
//! tracks in Perfetto). The same run doubles as the fixture for the
//! integration tests: injecting an artificial per-sweep stall on one
//! rank must drag the critical path onto it.

use qmc_comm::{run_threads, Communicator};
use qmc_core::pt::{run_pt_parallel_ckpt, PtConfig};
use qmc_obs::{
    analysis_json, analyze, chrome_trace_json, gather_ranks, render_report, ObsConfig, RankObs,
    RunMeta, TracingComm,
};
use qmc_rng::StreamFactory;
use std::fmt::Write as _;

/// The demo workload: 4 thread-backed ranks, one β rung each.
const RANKS: usize = 4;

/// The exact PT configuration [`run_traced`] runs — public so the
/// integration tests can replay it bare and compare trajectories.
pub fn demo_cfg() -> PtConfig {
    PtConfig {
        l: 8,
        jx: 1.0,
        jz: 1.0,
        m: 4,
        betas: vec![0.5, 1.0, 1.5, 2.0],
        therm: 10,
        sweeps: 30,
        exchange_every: 5,
        seed: 7,
    }
}

/// Per-sweep stall injected on a designated slow rank — used by the
/// integration tests to prove the critical path follows a straggler.
const STALL: std::time::Duration = std::time::Duration::from_millis(2);

/// RNG stream-factory seed of the demo run (shared with the bare replay
/// in the integration tests).
pub const STREAM_SEED: u64 = 41;

/// Run the traced 4-rank PT demo and return (gathered per-rank records,
/// rank-0 energy series). `slow_rank` injects a per-sweep stall there.
///
/// Tracing is observation-only: the stall hook and the `TracingComm`
/// wrapper never touch the RNG streams or message payloads, so the
/// energy series is bit-identical to an untraced run of the same seeds
/// (pinned by `tests/observability.rs`).
pub fn run_traced(slow_rank: Option<usize>) -> (Vec<RankObs>, Vec<f64>) {
    let cfg = demo_cfg();
    let obs = ObsConfig::new();
    let mut results = run_threads(RANKS, move |comm| {
        qmc_obs::init(comm.rank(), &obs);
        let me = comm.rank();
        let mut rng = StreamFactory::new(STREAM_SEED).stream(me);
        let (energies, _rates) = {
            let mut traced = TracingComm::new(comm);
            run_pt_parallel_ckpt(&mut traced, &cfg, &mut rng, None, |_c, _s| {
                if Some(me) == slow_rank {
                    std::thread::sleep(STALL);
                }
            })
        };
        let mut mine = qmc_obs::finish().expect("recorder installed by init");
        mine.set_comm(comm.stats());
        (gather_ranks(comm, &mine), energies)
    });
    let (gathered, energies) = results.swap_remove(0);
    (
        gathered.expect("rank 0 holds the gathered records"),
        energies,
    )
}

/// Metadata describing the analyze demo run.
pub fn demo_meta() -> RunMeta {
    let cfg = demo_cfg();
    RunMeta::new("analyze-demo", "pt-worldline", "threads", RANKS)
        .param("l", cfg.l)
        .param("m", cfg.m)
        .param("betas", cfg.betas.len())
        .param("sweeps", cfg.sweeps)
        .param("exchange_every", cfg.exchange_every)
}

/// `repro analyze`: returns (report text, analysis succeeded).
///
/// Writes `ANALYSIS_run.json` and `trace.json` at the repository root.
pub fn analyze_demo(_quick: bool) -> (String, bool) {
    let (ranks, _) = run_traced(None);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "analyze demo: 4-rank ThreadWorld parallel tempering (traced)"
    );
    match analyze(&ranks) {
        Ok(a) => {
            out.push_str(&render_report(&a));
            let json = analysis_json(&demo_meta(), &a);
            let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../ANALYSIS_run.json");
            match std::fs::write(path, &json) {
                Ok(()) => {
                    let _ = writeln!(out, "wrote {path}");
                }
                Err(e) => {
                    let _ = writeln!(out, "could not write {path}: {e}");
                }
            }
            let trace = chrome_trace_json(&ranks);
            let tpath = concat!(env!("CARGO_MANIFEST_DIR"), "/../../trace.json");
            match std::fs::write(tpath, &trace) {
                Ok(()) => {
                    let _ = writeln!(
                        out,
                        "wrote {tpath} (open in https://ui.perfetto.dev — flow arrows \
                         draw the same messages the critical path walks)"
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "could not write {tpath}: {e}");
                }
            }
            (out, true)
        }
        Err(e) => {
            let _ = writeln!(out, "analysis failed: {e}");
            (out, false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_demo_yields_flows_and_an_analysis() {
        let (ranks, energies) = run_traced(None);
        assert_eq!(ranks.len(), RANKS);
        assert!(!energies.is_empty());
        for r in &ranks {
            assert!(!r.spans.is_empty(), "rank {} recorded no spans", r.rank);
            assert!(
                !r.comm_events.is_empty(),
                "rank {} recorded no comm events",
                r.rank
            );
            assert_eq!(r.dropped_comm_events, 0);
        }
        let a = analyze(&ranks).expect("clean analysis");
        assert!(!a.critical_path.is_empty());
        assert!(a.matched_messages > 0);
        for att in &a.ranks {
            assert!(
                att.coverage() >= 0.99,
                "rank {} coverage {}",
                att.rank,
                att.coverage()
            );
        }
    }
}
