//! `repro --metrics --trace` — the observability demo run.
//!
//! A 4-rank thread-backed distributed TFIM job with per-rank spans and
//! metrics enabled: each rank records into its own ring, the records are
//! gathered to rank 0 over the [`qmc_comm::Communicator`], and the merged
//! view is exported as `METRICS_run.json` (schema `qmc-metrics/v1`)
//! and/or a Chrome trace-event `trace.json` (one track per rank — load it
//! in Perfetto or `chrome://tracing`).
//!
//! The same `--metrics`/`--trace` flags also work on every `repro`
//! experiment and on the `qmc` driver; this module is the self-contained
//! demonstration the README walks through.

use qmc_comm::{run_threads, Communicator};
use qmc_obs::{chrome_trace_json, gather_ranks, metrics_json, ObsConfig, RankObs, RunMeta};
use qmc_rng::StreamFactory;
use qmc_tfim::parallel::DistTfim;
use qmc_tfim::TfimModel;
use std::fmt::Write as _;

/// The demo workload: 4 thread-backed ranks, 32×32×8 TFIM.
const RANKS: usize = 4;

fn demo_model() -> TfimModel {
    TfimModel {
        lx: 32,
        ly: 32,
        j: 1.0,
        h: 2.0,
        beta: 1.0,
        m: 8,
    }
}

/// Run the instrumented 4-rank TFIM job and return the gathered per-rank
/// records (always `RANKS` entries, rank order).
pub fn run_instrumented(sweeps: usize, config: &ObsConfig) -> Vec<RankObs> {
    let model = demo_model();
    let cfg = config.clone();
    let mut results = run_threads(RANKS, move |comm| {
        qmc_obs::init(comm.rank(), &cfg);
        let mut eng = DistTfim::new(model, comm);
        let mut rng = StreamFactory::new(97).stream(comm.rank());
        eng.halo_exchange(comm);
        for _ in 0..sweeps {
            eng.sweep(comm, &mut rng);
            // Feeds convergence health when the config enables it;
            // measure() is collective + RNG-free, so the demo stays
            // deterministic either way.
            let m = eng.measure(comm);
            qmc_obs::health_record("energy", m.energy_per_site);
        }
        let mut mine = qmc_obs::finish().expect("recorder installed by init");
        mine.absorb_registry(eng.metrics());
        mine.set_comm(comm.stats());
        gather_ranks(comm, &mine)
    });
    results
        .swap_remove(0)
        .expect("rank 0 holds the gathered records")
}

/// Metadata describing the demo run (engine/backend/params).
pub fn demo_meta(sweeps: usize) -> RunMeta {
    let model = demo_model();
    RunMeta::new("obs-demo", "dist-tfim", "threads", RANKS)
        .param("lx", model.lx)
        .param("ly", model.ly)
        .param("m", model.m)
        .param("h", model.h)
        .param("beta", model.beta)
        .param("sweeps", sweeps)
}

/// The observability demo — `repro --metrics --trace` with no experiment.
///
/// Writes `METRICS_run.json` when `metrics`, `trace.json` when `trace`,
/// both at the repository root, and returns a human-readable summary.
pub fn obs_demo(metrics: bool, trace: bool, quick: bool) -> String {
    let sweeps = if quick { 30 } else { 300 };
    let mut config = ObsConfig::new()
        .with_spans(trace || metrics)
        .with_metrics(metrics);
    if metrics {
        // Silent monitor (no periodic printing): snapshots still land
        // in METRICS_run.json's per-rank `health` arrays.
        config = config.with_health_every(0);
    }
    let ranks = run_instrumented(sweeps, &config);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "observability demo: dist TFIM 32×32×8, {RANKS} thread ranks, {sweeps} sweeps"
    );
    for r in &ranks {
        let spans = r.spans.len();
        let accepted = r.counter("tfim.accepted");
        let proposed = r.counter("tfim.proposed");
        // ThreadComm is a wall-clock backend: compute_seconds holds raw
        // flop charges there, so report wall comm time, not a fraction.
        let (sent, wait_ms) = r
            .comm
            .map(|c| (c.bytes_sent, 1e3 * c.recv_wait_seconds))
            .unwrap_or((0, 0.0));
        let _ = writeln!(
            out,
            "  rank {}: {} spans ({} dropped), acceptance {:.3}, sent {} B, recv wait {:.2} ms",
            r.rank,
            spans,
            r.dropped_spans,
            accepted as f64 / proposed.max(1) as f64,
            sent,
            wait_ms
        );
    }

    out.push_str(&write_artifacts(&demo_meta(sweeps), &ranks, metrics, trace));
    out
}

/// Write whichever artifacts were requested (`METRICS_run.json`,
/// `trace.json`, both at the repository root) from gathered per-rank
/// records; returns the log lines naming what was written.
pub fn write_artifacts(meta: &RunMeta, ranks: &[RankObs], metrics: bool, trace: bool) -> String {
    let mut out = String::new();
    if metrics {
        let json = metrics_json(meta, ranks);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../METRICS_run.json");
        match std::fs::write(path, &json) {
            Ok(()) => {
                let _ = writeln!(out, "wrote {path}");
            }
            Err(e) => {
                let _ = writeln!(out, "could not write {path}: {e}");
            }
        }
    }
    if trace {
        let json = chrome_trace_json(ranks);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../trace.json");
        match std::fs::write(path, &json) {
            Ok(()) => {
                let _ = writeln!(
                    out,
                    "wrote {path} (open in https://ui.perfetto.dev or chrome://tracing)"
                );
            }
            Err(e) => {
                let _ = writeln!(out, "could not write {path}: {e}");
            }
        }
    }
    out
}

/// Finish the calling thread's recorder (if one was installed) and write
/// the requested artifacts as a single-rank run labelled `label`. Used by
/// the CLIs when `--metrics`/`--trace` accompany a serial command.
pub fn export_current_thread(label: &str, metrics: bool, trace: bool) -> String {
    match qmc_obs::finish() {
        Some(rank) => {
            let meta = RunMeta::new(label, "driver", "serial", 1);
            write_artifacts(&meta, std::slice::from_ref(&rank), metrics, trace)
        }
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_gathers_all_ranks_with_spans_and_counters() {
        let ranks = run_instrumented(3, &ObsConfig::new());
        assert_eq!(ranks.len(), RANKS);
        for (i, r) in ranks.iter().enumerate() {
            assert_eq!(r.rank, i as u64);
            assert!(!r.spans.is_empty(), "rank {i} recorded no spans");
            assert!(r.counter("tfim.proposed") > 0);
            let comm = r.comm.expect("comm stats attached");
            assert!(comm.bytes_sent > 0);
        }
    }
}
