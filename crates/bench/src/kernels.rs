//! `repro bench` — fixed-seed micro-benchmarks of the hot update kernels
//! with a machine-readable JSON artifact for regression tracking.
//!
//! Each kernel is timed over a fixed workload with a fixed RNG seed (the
//! work is deterministic; only the wall-clock varies), best-of-three. The
//! results are rendered as a table *and* written to `BENCH_kernels.json`
//! at the repository root so successive PRs can diff ns/op numbers
//! mechanically.
//!
//! The `tfim_serial_sweep_expref` entry re-implements the pre-table
//! Metropolis kernel (f64 neighbour sums + one `exp` per proposal — what
//! the seed revision shipped) on the same lattice, so the table-driven
//! speedup is measured in the same run rather than against a stale
//! number.

use qmc_comm::{run_threads, Communicator};
use qmc_lattice::Square;
use qmc_rng::{Buffered, Rng64, StreamFactory, Xoshiro256StarStar};
use qmc_sse::Sse;
use qmc_tfim::parallel::DistTfim;
use qmc_tfim::serial::SerialTfim;
use qmc_tfim::{StCouplings, TfimModel};
use qmc_worldline::{Worldline, WorldlineParams};
use std::fmt::Write as _;
use std::time::Instant;

/// One timed kernel.
struct Kernel {
    name: &'static str,
    /// Minimum nanoseconds per elementary operation over the repetitions
    /// (the classical "best of N": least scheduler noise, comparable to
    /// the historical single-number entries).
    ns_per_op: f64,
    /// Median nanoseconds per elementary operation — robust against a
    /// single lucky (or unlucky) repetition. **Guard ratios compare
    /// medians**, so one outlier repetition cannot flip a gate.
    ns_per_op_median: f64,
    /// Elementary operations per second (from the minimum).
    ops_per_s: f64,
    /// Total operations in the timed section.
    ops: u64,
}

/// Timing repetitions per kernel (after one untimed warmup).
const REPS: usize = 5;

/// Repetitions for the paired overhead guards (`obs_overhead`,
/// `trace_overhead`). Percent-level ratios need more chances at a
/// contention-free bare/instrumented pair than the plain kernels do.
const PAIR_REPS: usize = 9;

/// Time `f` (which performs `ops` elementary operations per invocation)
/// over [`REPS`] repetitions, recording both the minimum and the median
/// so downstream guard comparisons aren't single-sample noise.
fn time_kernel<F: FnMut()>(name: &'static str, ops: u64, mut f: F) -> Kernel {
    f(); // warmup (fills caches, faults pages, grows SSE cutoff, …)
    let mut times = [0.0f64; REPS];
    for t in times.iter_mut() {
        // lint: allow(wall-clock) — benchmark timing is the point
        let t0 = Instant::now();
        f();
        *t = t0.elapsed().as_secs_f64();
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let best = times[0];
    let median = times[REPS / 2];
    Kernel {
        name,
        ns_per_op: best * 1e9 / ops as f64,
        ns_per_op_median: median * 1e9 / ops as f64,
        ops_per_s: ops as f64 / best,
        ops,
    }
}

/// The reference (pre-optimization) serial TFIM Metropolis sweep: same
/// checkerboard schedule and RNG stream as
/// [`SerialTfim::metropolis_sweep`], but with f64 neighbour sums and one
/// `exp` per proposal evaluated in the loop.
fn exp_ref_sweep<R: Rng64>(m: &TfimModel, c: &StCouplings, spins: &mut [i8], rng: &mut R) {
    let idx = |x: usize, y: usize, t: usize| (t * m.ly + y) * m.lx + x;
    for color in 0..2usize {
        for t in 0..m.m {
            for y in 0..m.ly {
                for x in 0..m.lx {
                    if (x + y + t) % 2 != color {
                        continue;
                    }
                    let s = spins[idx(x, y, t)] as f64;
                    let mut spatial = spins[idx((x + 1) % m.lx, y, t)] as f64
                        + spins[idx((x + m.lx - 1) % m.lx, y, t)] as f64;
                    if m.ly > 1 {
                        spatial += spins[idx(x, (y + 1) % m.ly, t)] as f64
                            + spins[idx(x, (y + m.ly - 1) % m.ly, t)] as f64;
                    }
                    let temporal = spins[idx(x, y, (t + 1) % m.m)] as f64
                        + spins[idx(x, y, (t + m.m - 1) % m.m)] as f64;
                    let cost = 2.0 * s * (c.k_space * spatial + c.k_time * temporal);
                    if rng.metropolis((-cost).exp()) {
                        let i = idx(x, y, t);
                        spins[i] = -spins[i];
                    }
                }
            }
        }
    }
}

fn tfim_model() -> TfimModel {
    TfimModel {
        lx: 64,
        ly: 64,
        j: 1.0,
        h: 2.0,
        beta: 1.0,
        m: 8,
    }
}

/// Kernel timings + JSON artifact — `repro bench`.
pub fn bench_kernels(quick: bool) -> String {
    bench_kernels_checked(quick).0
}

/// [`bench_kernels`] plus the `packed_speedup_vs_scalar` guard verdict:
/// `false` when the replica-packed sweep missed its speedup target
/// (≥ 4x full, ≥ 2x relaxed under `--quick`). `repro bench
/// --assert-guards` turns that into a non-zero exit for CI.
pub fn bench_kernels_checked(quick: bool) -> (String, bool) {
    let scale = if quick { 10 } else { 1 };
    let mut kernels = Vec::new();

    // --- Serial TFIM Metropolis sweep, table-driven hot path. Draws come
    // through `Buffered`, the configuration the drivers use.
    {
        let model = tfim_model();
        let sweeps = 1500 / scale;
        let updates = (model.lx * model.ly * model.m * sweeps) as u64;
        let mut eng = SerialTfim::new(model);
        let mut rng = Buffered::new(Xoshiro256StarStar::new(12));
        kernels.push(time_kernel("tfim_serial_sweep", updates, || {
            for _ in 0..sweeps {
                eng.metropolis_sweep(&mut rng);
            }
        }));
    }

    // --- The same table-driven sweep with observability fully on (spans
    // recorded into the ring + metrics flushed per sweep). Paired
    // single-thread design like the trace-overhead guard below: each
    // repetition times the sweeps bare and then again with a recorder
    // installed, back to back, and the guard compares the *best* rep on
    // each side. Contention noise on a shared box is one-sided (it only
    // ever adds time), so best-of-N recovers the uncontended cost of
    // both variants, while the interleaving keeps slower drift
    // common-mode — independent medians drifted ±10%, 5x the 2% budget
    // being guarded.
    let obs_overhead;
    {
        let model = tfim_model();
        let sweeps = 1500 / scale;
        let updates = (model.lx * model.ly * model.m * sweeps) as u64;
        let mut eng = SerialTfim::new(model);
        let mut rng = Buffered::new(Xoshiro256StarStar::new(12));
        let mut bare_times = [0.0f64; PAIR_REPS];
        let mut obs_times = [0.0f64; PAIR_REPS];
        for _ in 0..sweeps {
            eng.metropolis_sweep(&mut rng); // bare warmup
        }
        qmc_obs::init(0, &qmc_obs::ObsConfig::new());
        for _ in 0..sweeps {
            eng.metropolis_sweep(&mut rng); // instrumented warmup
        }
        let _ = qmc_obs::finish();
        for rep in 0..PAIR_REPS {
            // lint: allow(wall-clock) — benchmark timing is the point
            let t0 = Instant::now();
            for _ in 0..sweeps {
                eng.metropolis_sweep(&mut rng);
            }
            bare_times[rep] = t0.elapsed().as_secs_f64();
            // Ring allocation happens here, outside the timed window.
            qmc_obs::init(0, &qmc_obs::ObsConfig::new());
            // lint: allow(wall-clock) — benchmark timing is the point
            let t1 = Instant::now();
            for _ in 0..sweeps {
                eng.metropolis_sweep(&mut rng);
            }
            obs_times[rep] = t1.elapsed().as_secs_f64();
            let _ = qmc_obs::finish();
        }
        bare_times.sort_by(|a, b| a.total_cmp(b));
        obs_times.sort_by(|a, b| a.total_cmp(b));
        obs_overhead = obs_times[0] / bare_times[0];
        kernels.push(Kernel {
            name: "tfim_serial_sweep_obs",
            ns_per_op: obs_times[0] * 1e9 / updates as f64,
            ns_per_op_median: obs_times[PAIR_REPS / 2] * 1e9 / updates as f64,
            ops_per_s: updates as f64 / obs_times[0],
            ops: updates,
        });
    }

    // --- The same table-driven sweep checkpointing every 100 sweeps
    // (engine + RNG into an atomic generation store). The write branch
    // is timed inside the run, so the overhead ratio
    // `total / (total - writes)` comes from a single timing window —
    // scheduler and thermal drift cancel instead of swamping the
    // percent-level signal. This paired ratio is the checkpoint
    // overhead guard (≤3%).
    let ckpt_overhead;
    {
        let model = tfim_model();
        let sweeps = 1500 / scale;
        let updates = (model.lx * model.ly * model.m * sweeps) as u64;
        let mut eng = SerialTfim::new(model);
        let mut rng = Buffered::new(Xoshiro256StarStar::new(12));
        let dir = std::env::temp_dir().join(format!("qmc-bench-ckpt-{}", std::process::id()));
        let store = qmc_ckpt::CkptStore::new(&dir, 2).expect("scratch checkpoint dir");
        let mut total = 0.0;
        let mut writes = 0.0;
        let mut best = f64::INFINITY;
        for round in 0..4 {
            // lint: allow(wall-clock) — benchmark timing is the point
            let t_run = Instant::now();
            let mut w = 0.0;
            for s in 0..sweeps {
                if s % 100 == 0 {
                    // lint: allow(wall-clock) — benchmark timing is the point
                    let t_w = Instant::now();
                    let mut file = qmc_ckpt::CkptFile::new();
                    let mut meta = qmc_ckpt::Encoder::new();
                    meta.u64(s as u64);
                    file.add("meta", meta.into_bytes());
                    file.add_state("engine", &eng);
                    file.add_state("rng", &rng);
                    let _ = store.write(s as u64, &file);
                    w += t_w.elapsed().as_secs_f64();
                }
                eng.metropolis_sweep(&mut rng);
            }
            let elapsed = t_run.elapsed().as_secs_f64();
            if round > 0 {
                // Round 0 is warmup (cold caches, first page faults).
                total += elapsed;
                writes += w;
                best = best.min(elapsed);
            }
        }
        ckpt_overhead = total / (total - writes);
        kernels.push(Kernel {
            name: "tfim_serial_sweep_ckpt",
            ns_per_op: best * 1e9 / updates as f64,
            // Single timing window (paired-ratio design): no separate
            // median sample exists, so it equals the best.
            ns_per_op_median: best * 1e9 / updates as f64,
            ops_per_s: updates as f64 / best,
            ops: updates,
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    // --- Incremental (delta) checkpoint size. Three identical same-seed
    // TFIM driver runs measure steady-state bytes per generation: one
    // writing a single generation (isolates the first full snapshot's
    // cost), one writing every generation full, one delta-chained (first
    // full, rest deltas). The workload is deliberately not scaled by
    // --quick: it is millisecond-scale, and the byte ratio is only
    // meaningful once the observable series has grown past the engine
    // state. Target: a steady-state delta ≤ 0.5x a full snapshot.
    let (ckpt_delta_ratio, ckpt_delta_bytes, ckpt_full_bytes);
    {
        let model = TfimModel {
            lx: 16,
            ly: 16,
            j: 1.0,
            h: 2.0,
            beta: 1.0,
            m: 8,
        };
        let (therm, sweeps) = (0usize, 600usize);
        let run = |every: usize, full_every: usize| -> u64 {
            let dir = std::env::temp_dir().join(format!(
                "qmc-bench-delta-{}-{every}-{full_every}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let store = qmc_ckpt::CkptStore::new(&dir, 2).expect("scratch checkpoint dir");
            let ck = crate::ckpt_driver::CkptCfg {
                store: &store,
                every,
                full_every,
                resume: false,
                stop: None,
            };
            let mut rng = Buffered::new(Xoshiro256StarStar::new(21));
            let _ = crate::ckpt_driver::run_serial_tfim_ckpt(
                model,
                &mut rng,
                therm,
                sweeps,
                1,
                Some(&ck),
                None,
            );
            let written = store.bytes_written();
            let _ = std::fs::remove_dir_all(&dir);
            written
        };
        let every = 5;
        let gens = sweeps.div_ceil(every);
        let first = run(sweeps + 1, 0); // a single full generation at sweep 0
        let full_total = run(every, 0); // every generation a full snapshot
        let delta_total = run(every, usize::MAX); // generation 0 full, rest deltas
        ckpt_full_bytes = (full_total - first) as f64 / (gens - 1) as f64;
        ckpt_delta_bytes = (delta_total - first) as f64 / (gens - 1) as f64;
        ckpt_delta_ratio = ckpt_delta_bytes / ckpt_full_bytes;
    }

    // --- The same sweep with the pre-table kernel (exp per proposal).
    {
        let model = tfim_model();
        let sweeps = 500 / scale;
        let updates = (model.lx * model.ly * model.m * sweeps) as u64;
        let c = model.couplings();
        let mut spins = vec![1i8; model.lx * model.ly * model.m];
        let mut rng = Xoshiro256StarStar::new(12);
        kernels.push(time_kernel("tfim_serial_sweep_expref", updates, || {
            for _ in 0..sweeps {
                exp_ref_sweep(&model, &c, &mut spins, &mut rng);
            }
        }));
    }

    // --- Multi-spin-coded sweeps (see DESIGN.md "Multi-spin coding").
    // Replica packing: 64 independent replicas of the same 64×64×8 model
    // advance in lockstep, one bitwise word update per site covering all
    // lanes. The elementary operation is still one site update, so ns/op
    // is directly comparable to `tfim_serial_sweep`.
    {
        let model = tfim_model();
        let lanes = 64usize;
        let sweeps = 50 / scale;
        let updates = (model.lx * model.ly * model.m * lanes * sweeps) as u64;
        let mut eng = qmc_tfim::packed::PackedReplicas::new(model, lanes);
        let mut rng = Xoshiro256StarStar::new(17);
        kernels.push(time_kernel("tfim_packed_replica_sweep", updates, || {
            for _ in 0..sweeps {
                eng.metropolis_sweep(&mut rng);
            }
        }));
    }

    // Spatial packing: a single replica with 64 consecutive x-sites per
    // word (the 64×64×8 bench lattice satisfies lx % 64 == 0); each word
    // update resolves the 32 checkerboard-active sites.
    {
        let model = tfim_model();
        let sweeps = 1500 / scale;
        let updates = (model.lx * model.ly * model.m * sweeps) as u64;
        let mut eng = qmc_tfim::packed::PackedSpatialTfim::new(model);
        let mut rng = Xoshiro256StarStar::new(18);
        kernels.push(time_kernel("tfim_packed_sweep", updates, || {
            for _ in 0..sweeps {
                eng.metropolis_sweep(&mut rng);
            }
        }));
    }

    // --- Distributed TFIM sweep + halo exchange on a 2×2 thread world.
    {
        let model = tfim_model();
        let sweeps = 300 / scale;
        let updates = (model.lx * model.ly * model.m * sweeps) as u64;
        kernels.push(time_kernel("tfim_parallel_sweep_halo", updates, || {
            run_threads(4, move |comm| {
                let mut eng = DistTfim::new(model, comm);
                let mut rng = StreamFactory::new(13).stream(comm.rank());
                eng.halo_exchange(comm);
                for _ in 0..sweeps {
                    eng.sweep(comm, &mut rng);
                }
            });
        }));
    }

    // --- Causal-tracing overhead, paired single-thread design: the
    // serial TFIM sweep plus a halo-like burst of 8 self-messages per
    // sweep through a `SerialComm` — each repetition times the loop bare
    // and then again wrapped in [`qmc_obs::TracingComm`] with the
    // recorder on (per-sweep span + a ring record and two clock reads
    // per message). The guard compares the *best* rep on each side:
    // contention noise only ever adds time, so best-of-N recovers the
    // uncontended cost of both variants while the bare/traced
    // interleaving keeps slower drift common-mode (multi-rank timing on
    // a shared box is noisier than the 2% budget).
    let trace_overhead;
    {
        let model = tfim_model();
        let sweeps = 300 / scale;
        let updates = (model.lx * model.ly * model.m * sweeps) as u64;
        let msgs_per_sweep = 8usize;
        let payload = vec![0u8; 4096];
        let mut bare_times = [0.0f64; PAIR_REPS];
        let mut traced_times = [0.0f64; PAIR_REPS];

        let mut eng = SerialTfim::new(model);
        let mut rng = Buffered::new(Xoshiro256StarStar::new(12));
        let mut comm = qmc_comm::SerialComm::new();
        let run_bare = |eng: &mut SerialTfim,
                        rng: &mut Buffered<Xoshiro256StarStar>,
                        comm: &mut qmc_comm::SerialComm| {
            for _ in 0..sweeps {
                eng.metropolis_sweep(rng);
                for _ in 0..msgs_per_sweep {
                    comm.send_bytes(0, 11, &payload);
                    let _ = comm.recv_bytes(0, 11);
                }
            }
        };
        run_bare(&mut eng, &mut rng, &mut comm); // warmup
        qmc_obs::init(0, &qmc_obs::ObsConfig::new());
        {
            // Traced warmup (fills the ring once so steady-state
            // overwrites, not first-touch, are what gets timed).
            let mut traced = qmc_obs::TracingComm::new(&mut comm);
            for _ in 0..sweeps {
                let _s = qmc_obs::span("bench.sweep");
                eng.metropolis_sweep(&mut rng);
                for _ in 0..msgs_per_sweep {
                    traced.send_bytes(0, 11, &payload);
                    let _ = traced.recv_bytes(0, 11);
                }
            }
        }
        for rep in 0..PAIR_REPS {
            // lint: allow(wall-clock) — benchmark timing is the point
            let t0 = Instant::now();
            run_bare(&mut eng, &mut rng, &mut comm);
            let bare = t0.elapsed().as_secs_f64();
            let mut traced = qmc_obs::TracingComm::new(&mut comm);
            // lint: allow(wall-clock) — benchmark timing is the point
            let t1 = Instant::now();
            for _ in 0..sweeps {
                let _s = qmc_obs::span("bench.sweep");
                eng.metropolis_sweep(&mut rng);
                for _ in 0..msgs_per_sweep {
                    traced.send_bytes(0, 11, &payload);
                    let _ = traced.recv_bytes(0, 11);
                }
            }
            let tr = t1.elapsed().as_secs_f64();
            bare_times[rep] = bare;
            traced_times[rep] = tr;
        }
        let _ = qmc_obs::finish();
        bare_times.sort_by(|a, b| a.total_cmp(b));
        traced_times.sort_by(|a, b| a.total_cmp(b));
        trace_overhead = traced_times[0] / bare_times[0];
        kernels.push(Kernel {
            name: "tfim_serial_sweep_selfmsg",
            ns_per_op: bare_times[0] * 1e9 / updates as f64,
            ns_per_op_median: bare_times[PAIR_REPS / 2] * 1e9 / updates as f64,
            ops_per_s: updates as f64 / bare_times[0],
            ops: updates,
        });
        kernels.push(Kernel {
            name: "tfim_serial_sweep_selfmsg_traced",
            ns_per_op: traced_times[0] * 1e9 / updates as f64,
            ns_per_op_median: traced_times[PAIR_REPS / 2] * 1e9 / updates as f64,
            ops_per_s: updates as f64 / traced_times[0],
            ops: updates,
        });
    }

    // --- Autocorrelation of the serial-TFIM demo observable: a
    // fixed-seed energy series through the offline binning analysis.
    // Reported, not guarded — τ_int tracks the sampling efficiency of
    // the kernel (how many sweeps one independent sample costs), and the
    // committed number anchors the online-vs-offline agreement test in
    // tests/observability.rs to the same machinery.
    let (tfim_energy_tau_int, tfim_energy_tau_converged, tau_samples);
    {
        let model = TfimModel {
            lx: 16,
            ly: 16,
            j: 1.0,
            h: 2.0,
            beta: 1.0,
            m: 8,
        };
        tau_samples = if quick { 256usize } else { 2048 };
        let mut eng = SerialTfim::new(model);
        let mut rng = Buffered::new(Xoshiro256StarStar::new(12));
        for _ in 0..64 {
            eng.metropolis_sweep(&mut rng);
        }
        let mut series = Vec::with_capacity(tau_samples);
        for _ in 0..tau_samples {
            eng.metropolis_sweep(&mut rng);
            series.push(eng.measure().energy_per_site);
        }
        let b = qmc_stats::BinningAnalysis::new(&series, 16);
        tfim_energy_tau_int = b.tau_int();
        tfim_energy_tau_converged = b.converged();
    }

    // --- World-line local-move sweep (table-driven corner moves).
    {
        let params = WorldlineParams {
            l: 64,
            jx: 1.0,
            jz: 1.0,
            beta: 2.0,
            m: 16,
        };
        let sweeps = 4000 / scale;
        // l·m corner proposals per sweep (plus l straight lines, not
        // counted: they are O(rows) each and amortized into the rate).
        let updates = (params.l * params.m * sweeps) as u64;
        let mut w = Worldline::new(params);
        let mut rng = Xoshiro256StarStar::new(14);
        kernels.push(time_kernel("worldline_sweep", updates, || {
            for _ in 0..sweeps {
                w.sweep(&mut rng);
            }
        }));
    }

    // --- SSE sweep (diagonal update with probability tables + loop).
    {
        let lat = Square::new(16, 16);
        let mut rng = Xoshiro256StarStar::new(15);
        let mut sse = Sse::new(&lat, 1.0, 2.0, &mut rng);
        // Thermalize so the cutoff has grown to its equilibrium length
        // before timing (run() adapts the cutoff during thermalization).
        let _ = sse.run(&mut rng, 500, 0);
        let sweeps = 1000 / scale;
        let updates = (sse.cutoff() * sweeps) as u64;
        kernels.push(time_kernel("sse_sweep", updates, || {
            for _ in 0..sweeps {
                sse.sweep(&mut rng);
            }
        }));
    }

    // --- RNG throughput: bulk refill vs per-call dispatch.
    {
        let reps = 20_000 / scale;
        let mut buf = vec![0u64; 4096];
        let mut rng = Xoshiro256StarStar::new(16);
        let draws = (buf.len() * reps) as u64;
        kernels.push(time_kernel("rng_xoshiro_fill_u64", draws, || {
            for _ in 0..reps {
                rng.fill_u64(&mut buf);
            }
        }));
        let mut rng = Xoshiro256StarStar::new(16);
        let mut acc = 0u64;
        kernels.push(time_kernel("rng_xoshiro_next_u64", draws, || {
            for _ in 0..reps * 4096 {
                acc = acc.wrapping_add(rng.next_u64());
            }
        }));
        std::hint::black_box((acc, &buf));
    }

    // Render the table + JSON artifact. Guard ratios compare *medians*
    // (see `time_kernel`): the historical min-of-N point estimates made
    // guard comparisons single-sample noise.
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Kernel benchmarks (fixed seeds, min/median of {REPS}{}):",
        if quick { ", --quick" } else { "" }
    );
    if quick {
        let _ = writeln!(
            out,
            "WARN: --quick shrinks workloads ~10x; timings are smoke-level and \
             BENCH_kernels.json is left untouched — do not use as a baseline"
        );
    }
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>12} {:>16} {:>14}",
        "kernel", "ns/op(min)", "ns/op(med)", "site-updates/s", "ops timed"
    );
    for k in &kernels {
        let _ = writeln!(
            out,
            "{:<28} {:>12.2} {:>12.2} {:>16.3e} {:>14}",
            k.name, k.ns_per_op, k.ns_per_op_median, k.ops_per_s, k.ops
        );
    }
    let table = kernels
        .iter()
        .find(|k| k.name == "tfim_serial_sweep")
        .expect("kernel present");
    let expref = kernels
        .iter()
        .find(|k| k.name == "tfim_serial_sweep_expref")
        .expect("kernel present");
    let speedup = expref.ns_per_op_median / table.ns_per_op_median;
    let _ = writeln!(
        out,
        "serial TFIM table-vs-exp speedup: {speedup:.2}x (target >= 1.5x)"
    );
    let packed = kernels
        .iter()
        .find(|k| k.name == "tfim_packed_replica_sweep")
        .expect("kernel present");
    let packed_speedup = table.ns_per_op_median / packed.ns_per_op_median;
    // Quick runs time a handful of sweeps — enough to smoke the guard at
    // a relaxed threshold, not to certify the full target.
    let packed_target = if quick { 2.0 } else { 4.0 };
    let packed_ok = packed_speedup >= packed_target;
    let _ = writeln!(
        out,
        "packed speedup vs scalar (replica-packed, median/median): {packed_speedup:.2}x \
         (target >= {packed_target:.1}x) [{}]",
        if packed_ok { "PASS" } else { "FAIL" }
    );
    let _ = writeln!(
        out,
        "obs overhead (spans+metrics on vs off, paired best-of-{PAIR_REPS}): {obs_overhead:.3}x \
         (target <= 1.02x) [{}]",
        if obs_overhead <= 1.02 { "PASS" } else { "WARN" }
    );
    let _ = writeln!(
        out,
        "trace overhead (TracingComm+spans vs bare, paired best-of-{PAIR_REPS}): {trace_overhead:.3}x \
         (target <= 1.02x) [{}]",
        if trace_overhead <= 1.02 {
            "PASS"
        } else {
            "WARN"
        }
    );
    let _ = writeln!(
        out,
        "serial TFIM energy tau_int (binning over {tau_samples} sweeps): \
         {tfim_energy_tau_int:.2} sweeps{}",
        if tfim_energy_tau_converged {
            ""
        } else {
            " (plateau NOT resolved — series too short)"
        }
    );
    let _ = writeln!(
        out,
        "ckpt overhead (every 100 sweeps vs off): {ckpt_overhead:.3}x (target <= 1.03x) [{}]",
        if ckpt_overhead <= 1.03 {
            "PASS"
        } else {
            "WARN"
        }
    );
    let _ = writeln!(
        out,
        "ckpt delta bytes (steady state, vs full snapshot): {ckpt_delta_bytes:.0} B vs \
         {ckpt_full_bytes:.0} B = {ckpt_delta_ratio:.3}x (target <= 0.5x) [{}]",
        if ckpt_delta_ratio <= 0.5 {
            "PASS"
        } else {
            "WARN"
        }
    );

    let mut json = String::from("{\n  \"schema\": \"qmc-bench-kernels/v2\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"tfim_serial_table_speedup_vs_exp\": {speedup:.3},"
    );
    let _ = writeln!(json, "  \"packed_speedup_vs_scalar\": {packed_speedup:.3},");
    let _ = writeln!(json, "  \"obs_overhead\": {obs_overhead:.4},");
    let _ = writeln!(json, "  \"trace_overhead\": {trace_overhead:.4},");
    let _ = writeln!(json, "  \"tfim_energy_tau_int\": {tfim_energy_tau_int:.3},");
    let _ = writeln!(
        json,
        "  \"tfim_energy_tau_converged\": {tfim_energy_tau_converged},"
    );
    let _ = writeln!(json, "  \"ckpt_overhead\": {ckpt_overhead:.4},");
    let _ = writeln!(json, "  \"ckpt_delta_bytes\": {ckpt_delta_bytes:.1},");
    let _ = writeln!(json, "  \"ckpt_full_bytes\": {ckpt_full_bytes:.1},");
    let _ = writeln!(json, "  \"ckpt_delta_ratio\": {ckpt_delta_ratio:.4},");
    json.push_str("  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"ns_per_op\": {:.3}, \"ns_per_op_median\": {:.3}, \
             \"site_updates_per_s\": {:.4e}, \"ops\": {}}}",
            k.name, k.ns_per_op, k.ns_per_op_median, k.ops_per_s, k.ops
        );
        json.push_str(if i + 1 == kernels.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");

    // Quick runs never overwrite the committed baseline artifact: the
    // gate's smoke guard would otherwise clobber full-run numbers on
    // every check.sh invocation.
    if quick {
        let _ = writeln!(out, "skipped BENCH_kernels.json (smoke run)");
    } else {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
        match std::fs::write(path, &json) {
            Ok(()) => {
                let _ = writeln!(out, "wrote {path}");
            }
            Err(e) => {
                let _ = writeln!(out, "could not write {path}: {e}");
            }
        }
    }
    (out, packed_ok)
}
