//! Physics figures F1–F5.

use qmc_core::table::{pm, Table};
use qmc_ed::freefermion;
use qmc_ed::lanczos::{lanczos_ground_energy, XxzSectorOp};
use qmc_ed::xxz::{full_spectrum, XxzParams};
use qmc_lattice::{Chain, Square};
use qmc_rng::Xoshiro256StarStar;
use qmc_stats::BinningAnalysis;
use qmc_tfim::serial::SerialTfim;
use qmc_tfim::TfimModel;
use qmc_worldline::{Worldline, WorldlineParams};

fn scale(quick: bool, full: usize) -> usize {
    if quick {
        full / 10
    } else {
        full
    }
}

/// Trotter number giving `Δτ ≤ target` (rounded up to even, ≥ 2).
///
/// Keeping `Δτ` *fixed* as β varies — rather than fixing `m` — is
/// essential for the local world-line dynamics: kink creation acceptance
/// scales as `sinh²(ΔτJx/2)`, so an unnecessarily fine `Δτ` at high
/// temperature freezes the simulation without reducing any error that
/// matters there.
pub fn trotter_m(beta: f64, target: f64) -> usize {
    let m = (beta / target).ceil() as usize;
    (m.max(2) + 1) & !1
}

/// F1: energy and specific heat vs T for the Heisenberg chain, world-line
/// QMC against exact diagonalization (L = 8) plus the L = 16 curve.
pub fn f1_heisenberg_chain_thermo(quick: bool) -> String {
    let sweeps = scale(quick, 30_000);
    let temps = [0.4, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0];
    let mut out = String::new();

    for l in [8usize, 16] {
        let spec = (l == 8).then(|| full_spectrum(&Chain::new(l), &XxzParams::heisenberg(1.0)));
        let mut t = Table::new(
            &format!("F1: Heisenberg chain L={l}, world-line QMC vs ED"),
            &["T", "E/N (QMC)", "E/N (ED)", "C/N (QMC)", "C/N (ED)"],
        );
        for &temp in &temps {
            let beta = 1.0 / temp;
            let m = trotter_m(beta, 0.125);
            let mut sim = Worldline::new(WorldlineParams {
                l,
                jx: 1.0,
                jz: 1.0,
                beta,
                m,
            });
            let mut rng = Xoshiro256StarStar::new(1000 + (temp * 100.0) as u64 + l as u64);
            let series = sim.run(&mut rng, sweeps / 2, sweeps);
            let be = BinningAnalysis::new(&series.energy, 16);
            let (c, c_err) = series.specific_heat();
            let (e_ed, c_ed) = spec
                .as_ref()
                .map(|s| {
                    (
                        format!("{:.5}", s.energy(beta) / l as f64),
                        format!("{:.5}", s.heat_capacity(beta) / l as f64),
                    )
                })
                .unwrap_or(("-".into(), "-".into()));
            t.row(&[
                format!("{temp:.2}"),
                pm(be.mean, be.error(), 5),
                e_ed,
                pm(c, c_err, 4),
                c_ed,
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// F2: Trotter-error extrapolation `E(Δτ) → Δτ → 0` at fixed `(L, T)`.
pub fn f2_trotter_extrapolation(quick: bool) -> String {
    let sweeps = scale(quick, 40_000);
    let (l, beta) = (8usize, 2.0);
    let spec = full_spectrum(&Chain::new(l), &XxzParams::heisenberg(1.0));
    let exact = spec.energy(beta) / l as f64;

    let mut t = Table::new(
        &format!("F2: Trotter extrapolation, Heisenberg chain L={l}, β={beta}"),
        &["m", "Δτ", "Δτ²", "E/N (QMC)", "E/N (ED, Δτ=0)"],
    );
    let mut pts: Vec<(f64, f64)> = Vec::new();
    for m in [4usize, 6, 8, 12, 16, 24] {
        let mut sim = Worldline::new(WorldlineParams {
            l,
            jx: 1.0,
            jz: 1.0,
            beta,
            m,
        });
        let mut rng = Xoshiro256StarStar::new(2000 + m as u64);
        let series = sim.run(&mut rng, sweeps / 2, sweeps);
        let be = BinningAnalysis::new(&series.energy, 16);
        let dtau = beta / m as f64;
        pts.push((dtau * dtau, be.mean));
        t.row(&[
            format!("{m}"),
            format!("{dtau:.4}"),
            format!("{:.5}", dtau * dtau),
            pm(be.mean, be.error(), 5),
            format!("{exact:.5}"),
        ]);
    }
    // Least-squares linear fit E = a + b·Δτ².
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;
    let mut out = t.render();
    out.push_str(&format!(
        "linear fit: E(Δτ²) = {intercept:.5} + {slope:.4}·Δτ²  (ED: {exact:.5}, \
         intercept deviation {:.2e})\n",
        (intercept - exact).abs()
    ));
    out
}

/// F3: uniform susceptibility vs T, XY chain, vs the exact free-fermion
/// solution (parity-projected).
pub fn f3_xy_susceptibility(quick: bool) -> String {
    // The XY energy estimator is dominated by rare kink events
    // (τ_int ~ hundreds of sweeps), so this experiment runs longer than
    // the others and keeps Δτ at 0.125 where kink dynamics is fastest
    // without visible Trotter bias (see F2's measured slope).
    let sweeps = scale(quick, 60_000);
    let temps = [0.5, 0.75, 1.0, 1.5, 2.0, 3.0];
    let mut out = String::new();
    for l in [16usize, 32] {
        let mut t = Table::new(
            &format!("F3: XY chain L={l}, χ/N vs free fermions"),
            &["T", "χ/N (QMC)", "χ/N (exact)", "E/N (QMC)", "E/N (exact)"],
        );
        for &temp in &temps {
            let beta = 1.0 / temp;
            let m = trotter_m(beta, 0.125);
            let mut sim = Worldline::new(WorldlineParams {
                l,
                jx: 1.0,
                jz: 0.0,
                beta,
                m,
            });
            let mut rng = Xoshiro256StarStar::new(3000 + (temp * 100.0) as u64 + l as u64);
            let series = sim.run(&mut rng, sweeps / 2, sweeps);
            let (chi, chi_err) = series.susceptibility();
            let be = BinningAnalysis::new(&series.energy, 16);
            let chi_exact = freefermion::xy_chain_susceptibility(l, 1.0, beta) / l as f64;
            let e_exact = freefermion::xy_chain_energy(l, 1.0, 0.0, beta) / l as f64;
            t.row(&[
                format!("{temp:.2}"),
                pm(chi, chi_err, 5),
                format!("{chi_exact:.5}"),
                pm(be.mean, be.error(), 5),
                format!("{e_exact:.5}"),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// F4: TFIM quantum-critical sweep — order parameter and `⟨σˣ⟩` across
/// `h/J`, sharpening with L.
pub fn f4_tfim_critical_sweep(quick: bool) -> String {
    let sweeps = scale(quick, 8_000);
    let fields = [0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.5, 2.0];
    let mut out = String::new();
    for l in [16usize, 32] {
        let mut t = Table::new(
            &format!("F4: 1-D TFIM L={l}, β=16 (ground-state regime)"),
            &[
                "h/J",
                "<|m|>",
                "U4",
                "<σx>",
                "E/N (QMC)",
                "E0/N (free fermion)",
            ],
        );
        for &h in &fields {
            let beta = 16.0;
            let m = 128;
            let mut eng = SerialTfim::new(TfimModel {
                lx: l,
                ly: 1,
                j: 1.0,
                h,
                beta,
                m,
            });
            let mut rng = Xoshiro256StarStar::new(4000 + (h * 100.0) as u64 + l as u64);
            let series = eng.run(&mut rng, sweeps / 4, sweeps, 2);
            let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            let e0 = freefermion::tfim_chain_ground_energy(l, 1.0, h) / l as f64;
            t.row(&[
                format!("{h:.2}"),
                format!("{:.4}", avg(&series.abs_m)),
                format!("{:.4}", series.binder_cumulant()),
                format!("{:.4}", avg(&series.sigma_x)),
                format!("{:.4}", avg(&series.energy)),
                format!("{e0:.4}"),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// F5: 2-D Heisenberg antiferromagnet via SSE — energy vs T with the 4×4
/// Lanczos ground state and the 8×8 lattice trend; staggered structure
/// factor growth.
pub fn f5_heisenberg_2d(quick: bool) -> String {
    let sweeps = scale(quick, 20_000);
    let temps = [2.0, 1.0, 0.67, 0.5, 0.33, 0.25];
    let mut out = String::new();

    let lat4 = Square::new(4, 4);
    let e0_4x4 = {
        let op = XxzSectorOp::new(&lat4, XxzParams::heisenberg(1.0), 8);
        lanczos_ground_energy(&op, 7, 300, 1e-10) / 16.0
    };

    for l in [4usize, 8] {
        let lat = Square::new(l, l);
        let mut t = Table::new(
            &format!("F5: 2-D Heisenberg {l}×{l}, SSE"),
            &["T", "E/N", "C/N", "S(π,π)/N", "χ/N"],
        );
        for &temp in &temps {
            let beta = 1.0 / temp;
            let mut rng = Xoshiro256StarStar::new(5000 + (temp * 100.0) as u64 + l as u64);
            let mut sse = qmc_sse::Sse::new(&lat, 1.0, beta, &mut rng);
            let series = sse.run(&mut rng, sweeps / 5, sweeps);
            let be = BinningAnalysis::new(&series.energy_samples(), 16);
            let (c, c_err) = series.specific_heat();
            let (chi, chi_err) = series.susceptibility();
            t.row(&[
                format!("{temp:.2}"),
                pm(be.mean, be.error(), 5),
                pm(c, c_err, 4),
                format!("{:.4}", series.staggered_structure_factor()),
                pm(chi, chi_err, 5),
            ]);
        }
        out.push_str(&t.render());
        if l == 4 {
            out.push_str(&format!(
                "4×4 Lanczos ground state: E0/N = {e0_4x4:.6} (SSE T→0 must approach this)\n"
            ));
        } else {
            out.push_str(
                "8×8 reference: bulk 2-D Heisenberg E0/N = −0.66944 (QMC literature); \
                 finite-size 8×8 value is slightly below\n",
            );
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trotter_m_is_even_and_fine_enough() {
        for beta in [0.25, 1.0, 4.0, 10.0] {
            let m = trotter_m(beta, 0.125);
            assert_eq!(m % 2, 0);
            assert!(beta / m as f64 <= 0.130, "Δτ too coarse at β={beta}");
            assert!(m >= 2);
        }
    }

    #[test]
    fn f2_quick_runs_and_extrapolates() {
        let out = f2_trotter_extrapolation(true);
        assert!(out.contains("linear fit"));
        assert!(out.contains("Δτ²"));
    }
}
