//! Machine-scaling tables T1–T3 on the simulated 1993 mesh multicomputer.

use qmc_comm::{job_seconds, run_model, CommStats, Communicator, MachineModel, ModelReport};
use qmc_core::table::Table;
use qmc_rng::StreamFactory;
use qmc_tfim::parallel::DistTfim;
use qmc_tfim::TfimModel;

/// Run `sweeps` distributed TFIM sweeps (plus one measurement) of `model`
/// on `p` simulated nodes; returns the per-rank reports.
fn run_job(model: TfimModel, p: usize, sweeps: usize, seed: u64) -> Vec<ModelReport<()>> {
    run_model(p, MachineModel::mesh_1993(p), move |comm| {
        let mut eng = DistTfim::new(model, comm);
        let mut rng = StreamFactory::new(seed).stream(comm.rank());
        eng.halo_exchange(comm);
        for _ in 0..sweeps {
            eng.sweep(comm, &mut rng);
        }
        eng.measure(comm);
    })
}

fn site_updates(model: &TfimModel, sweeps: usize) -> f64 {
    (model.lx * model.ly * model.m * sweeps) as f64
}

/// T1: strong scaling — fixed 256×256×8 spacetime lattice, P = 1…1024.
pub fn t1_strong_scaling(quick: bool) -> String {
    let model = TfimModel {
        lx: if quick { 128 } else { 256 },
        ly: if quick { 128 } else { 256 },
        j: 1.0,
        h: 2.0,
        beta: 1.0,
        m: 8,
    };
    let sweeps = 4;
    let ps: &[usize] = if quick {
        &[1, 4, 16, 64, 256]
    } else {
        &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
    };

    let mut t = Table::new(
        &format!(
            "T1: strong scaling, 2-D TFIM {}×{}×{} on the simulated 1993 mesh",
            model.lx, model.ly, model.m
        ),
        &["P", "t (model s)", "speedup", "efficiency", "Msite-upd/s"],
    );
    let mut t1_seconds = 0.0;
    for &p in ps {
        let reports = run_job(model, p, sweeps, 11);
        let secs = job_seconds(&reports);
        if p == 1 {
            t1_seconds = secs;
        }
        let speedup = t1_seconds / secs;
        let rate = site_updates(&model, sweeps) / secs / 1e6;
        t.row(&[
            format!("{p}"),
            format!("{secs:.4}"),
            format!("{speedup:.2}"),
            format!("{:.3}", speedup / p as f64),
            format!("{rate:.1}"),
        ]);
    }
    t.render()
}

/// T2: weak scaling — fixed 64×64×8 block per node.
pub fn t2_weak_scaling(quick: bool) -> String {
    let ps: &[usize] = if quick {
        &[1, 4, 16]
    } else {
        &[1, 4, 16, 64, 256, 1024]
    };
    let sweeps = 4;
    let block = 64usize;

    let mut t = Table::new(
        &format!("T2: weak scaling, {block}×{block}×8 spacetime block per node"),
        &[
            "P",
            "lattice",
            "t (model s)",
            "upd/s/node (M)",
            "total Mupd/s",
            "weak eff.",
        ],
    );
    let mut rate1 = 0.0;
    for &p in ps {
        let side = (p as f64).sqrt() as usize;
        assert_eq!(side * side, p, "weak scaling uses square node counts");
        let model = TfimModel {
            lx: block * side,
            ly: block * side,
            j: 1.0,
            h: 2.0,
            beta: 1.0,
            m: 8,
        };
        let reports = run_job(model, p, sweeps, 22);
        let secs = job_seconds(&reports);
        let per_node = site_updates(&model, sweeps) / secs / p as f64 / 1e6;
        if p == 1 {
            rate1 = per_node;
        }
        t.row(&[
            format!("{p}"),
            format!("{}×{}", model.lx, model.ly),
            format!("{secs:.4}"),
            format!("{per_node:.2}"),
            format!("{:.1}", per_node * p as f64),
            format!("{:.3}", per_node / rate1),
        ]);
    }
    t.render()
}

/// T3: communication-time fraction breakdown for the T1 workload.
pub fn t3_comm_fraction(quick: bool) -> String {
    let model = TfimModel {
        lx: if quick { 128 } else { 256 },
        ly: if quick { 128 } else { 256 },
        j: 1.0,
        h: 2.0,
        beta: 1.0,
        m: 8,
    };
    let ps: &[usize] = if quick {
        &[4, 16, 64]
    } else {
        &[4, 16, 64, 256, 1024]
    };
    let mut t = Table::new(
        &format!(
            "T3: communication fraction, 2-D TFIM {}×{}×{}",
            model.lx, model.ly, model.m
        ),
        &[
            "P",
            "compute s",
            "comm s",
            "comm %",
            "wait s",
            "msgs/rank",
            "bytes/rank",
            "max msg B",
        ],
    );
    for &p in ps {
        let reports = run_job(model, p, 4, 33);
        let n = reports.len() as f64;
        // Merge per-rank stats; comm_fraction() of the merged stats is the
        // job-wide communication share (sums, not averages of ratios).
        let merged = reports
            .iter()
            .fold(CommStats::default(), |acc, r| acc.merged(&r.stats));
        t.row(&[
            format!("{p}"),
            format!("{:.4}", merged.compute_seconds / n),
            format!("{:.4}", merged.comm_seconds / n),
            format!("{:.1}", 100.0 * merged.comm_fraction()),
            format!("{:.4}", merged.recv_wait_seconds / n),
            format!("{:.0}", merged.messages_sent as f64 / n),
            format!("{:.0}", merged.bytes_sent as f64 / n),
            format!("{}", merged.max_message_bytes),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_scaling_quick_speedup_monotone() {
        let out = t1_strong_scaling(true);
        assert!(out.contains("strong scaling"));
        // speedups parse out of column 3 and must increase
        let speedups: Vec<f64> = out
            .lines()
            .skip(3)
            .filter_map(|l| {
                let cells: Vec<&str> = l.split('|').collect();
                (cells.len() == 5).then(|| cells[2].trim().parse::<f64>().ok())?
            })
            .collect();
        assert!(speedups.len() >= 4);
        for w in speedups.windows(2) {
            assert!(w[1] > w[0], "speedup not monotone: {speedups:?}");
        }
    }

    #[test]
    fn comm_fraction_grows_with_p() {
        let out = t3_comm_fraction(true);
        let fractions: Vec<f64> = out
            .lines()
            .skip(3)
            .filter_map(|l| {
                let cells: Vec<&str> = l.split('|').collect();
                (cells.len() == 8).then(|| cells[3].trim().parse::<f64>().ok())?
            })
            .collect();
        assert_eq!(fractions.len(), 3);
        assert!(
            fractions[2] > fractions[0],
            "comm fraction should grow: {fractions:?}"
        );
    }
}
