//! `#[qmc_hot::hot]` — the marker attribute for steady-state kernel code.
//!
//! The attribute expands to exactly its input: it changes nothing about
//! the compiled program. Its value is that it is *machine-checkable
//! prose*: a function carrying the marker declares "this is a sweep-rate
//! kernel — no transcendentals, no heap allocation" and the workspace
//! linter (`qmc-lint`, in the `qmc-verify` crate) enforces that claim on
//! every run of `scripts/check.sh`. Table construction and other setup
//! code simply stays unannotated.
//!
//! Being a real attribute (rather than a comment convention) means typos
//! fail to compile, the marker renames cleanly, and rustdoc shows which
//! functions are under the kernel discipline.

use proc_macro::TokenStream;

/// Mark a function as a steady-state hot kernel.
///
/// No-op at compile time; audited by `qmc-lint` for transcendental calls
/// (`exp`/`ln`/`powf`/`sqrt`) and heap allocation (`Vec::new`,
/// `Box::new`, `collect`, `vec![]`, `to_vec`).
#[proc_macro_attribute]
pub fn hot(attr: TokenStream, item: TokenStream) -> TokenStream {
    assert!(
        attr.is_empty(),
        "#[qmc_hot::hot] takes no arguments (got `{attr}`)"
    );
    item
}
