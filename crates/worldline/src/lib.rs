//! Discrete-time world-line quantum Monte Carlo for spin-1/2 XXZ chains.
//!
//! This is the algorithm the massively parallel QMC codes of the early
//! 1990s ran: the Suzuki-Trotter decomposition maps the 1-D quantum chain
//! at inverse temperature β onto a 2-D classical system of *world lines*
//! on an `L × 2m` space-time lattice (`m` Trotter steps, `Δτ = β/m`),
//! with a checkerboard of "shaded" plaquettes carrying the two-site
//! imaginary-time propagator `exp(−Δτ h_bond)`.
//!
//! * [`weights`] — the exact two-site propagator matrix elements and their
//!   τ-derivatives (energy/heat-capacity estimators).
//! * [`engine`] — the configuration, the local plaquette-corner move and
//!   the temporal straight-line (magnetization-changing) move, both
//!   accepted via a *generic* weight-ratio evaluation over the affected
//!   shaded plaquettes (no hand-derived special cases to get wrong).
//! * [`estimators`] — energy, specific heat, uniform susceptibility and
//!   spin-spin correlations measured on the world-line configuration.
//!
//! # Known, documented restrictions (shared with the 1993-era codes)
//!
//! * The local move set conserves the *spatial winding number* of world
//!   lines; simulations sample the `W = 0` sector. The bias is
//!   exponentially small in `L` at fixed `βJ` and is invisible next to
//!   statistical errors for the lattice sizes and temperatures in the
//!   experiment suite (validated against ED in the tests).
//! * The sign-problem-free sublattice rotation (`Jx → −Jx` on bipartite
//!   lattices) is applied internally: all plaquette weights are ≥ 0 for
//!   both FM and AFM transverse coupling.
//! * A longitudinal field is not supported by this engine (the exact-
//!   diagonalization oracle covers field physics; the field enters QMC
//!   through the susceptibility estimator instead).
//!
//! The Trotter error is `O(Δτ²)`; experiment F2 demonstrates the
//! extrapolation `Δτ → 0` against the ED oracle.
//!
//! ```
//! use qmc_worldline::{Worldline, WorldlineParams};
//! use qmc_rng::Xoshiro256StarStar;
//!
//! let mut sim = Worldline::new(WorldlineParams {
//!     l: 8, jx: 1.0, jz: 1.0, beta: 1.0, m: 8,
//! });
//! let mut rng = Xoshiro256StarStar::new(7);
//! let series = sim.run(&mut rng, 200, 1_000);
//! let e = series.mean_energy();
//! assert!(e < 0.0 && e > -0.75, "Heisenberg chain energy bounds: {e}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod estimators;
pub mod generic;
pub mod weights;

pub use engine::{Worldline, WorldlineParams};
pub use estimators::{Measurement, TimeSeries};
pub use generic::{GenericParams, GenericWorldline};

#[cfg(test)]
mod integration_tests {
    use super::*;
    use qmc_ed::xxz::{full_spectrum, XxzParams};
    use qmc_lattice::Chain;
    use qmc_rng::Xoshiro256StarStar;
    use qmc_stats::BinningAnalysis;

    /// Run a worldline simulation and compare E/site and χ/site with ED.
    fn validate_against_ed(l: usize, jx: f64, jz: f64, beta: f64, m: usize, seed: u64) {
        let params = WorldlineParams { l, jx, jz, beta, m };
        let mut sim = Worldline::new(params);
        let mut rng = Xoshiro256StarStar::new(seed);
        let series = sim.run(&mut rng, 2000, 20_000);

        let lat = Chain::new(l);
        let spec = full_spectrum(&lat, &XxzParams { jx, jz, field: 0.0 });
        let e_exact = spec.energy(beta) / l as f64;
        let chi_exact = spec.susceptibility(beta) / l as f64;

        let be = BinningAnalysis::new(&series.energy, 16);
        let err = be.error().max(1e-4);
        // Allow 4σ plus the O(Δτ²) Trotter bias bound.
        let trotter = (beta / m as f64).powi(2) * (jx.abs() + jz.abs());
        assert!(
            (be.mean - e_exact).abs() < 4.0 * err + trotter,
            "L={l} β={beta} m={m}: E = {} ± {err} vs exact {e_exact} (trotter bound {trotter})",
            be.mean
        );

        let bchi = BinningAnalysis::new(&series.chi, 16);
        let chi_err = bchi.error().max(1e-4);
        assert!(
            (bchi.mean - chi_exact).abs() < 4.0 * chi_err + trotter,
            "L={l} β={beta} m={m}: χ = {} ± {chi_err} vs exact {chi_exact}",
            bchi.mean
        );
    }

    #[test]
    fn heisenberg_chain_l4_matches_ed() {
        validate_against_ed(4, 1.0, 1.0, 1.0, 16, 11);
    }

    #[test]
    fn heisenberg_chain_l8_matches_ed() {
        validate_against_ed(8, 1.0, 1.0, 1.0, 16, 22);
    }

    #[test]
    fn xy_chain_l8_matches_ed() {
        validate_against_ed(8, 1.0, 0.0, 1.0, 16, 33);
    }

    #[test]
    fn xxz_anisotropic_matches_ed() {
        validate_against_ed(6, 1.0, 0.5, 1.0, 16, 44);
    }

    #[test]
    fn lower_temperature_heisenberg_matches_ed() {
        validate_against_ed(8, 1.0, 1.0, 2.0, 32, 55);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn correlation_function_matches_ed() {
        let l = 8;
        let beta = 1.0;
        let m = 16;
        let mut sim = Worldline::new(WorldlineParams {
            l,
            jx: 1.0,
            jz: 1.0,
            beta,
            m,
        });
        let mut rng = Xoshiro256StarStar::new(66);
        let series = sim.run(&mut rng, 3_000, 25_000);
        let corr = series.correlations();

        let lat = Chain::new(l);
        let p = XxzParams::heisenberg(1.0);
        let trotter = (beta / m as f64).powi(2) * 2.0;
        for r in 0..=l / 2 {
            let exact = qmc_ed::xxz::szsz_correlation(&lat, &p, beta, 0, r);
            assert!(
                (corr[r] - exact).abs() < 0.01 + trotter,
                "C({r}) = {} vs exact {exact}",
                corr[r]
            );
        }
        // r = 0 is ⟨(Sᶻ)²⟩ = 1/4 exactly, configuration by configuration.
        assert!((corr[0] - 0.25).abs() < 1e-12);
    }
}
