//! The world-line configuration and its Monte Carlo moves.

use crate::weights::{classify, PlaqClass, PlaqWeights};
use qmc_rng::Rng64;

/// Simulation parameters for the world-line engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorldlineParams {
    /// Chain length (even, ≥ 4; periodic).
    pub l: usize,
    /// Transverse exchange `Jx` (sign immaterial on the bipartite chain).
    pub jx: f64,
    /// Longitudinal exchange `Jz`.
    pub jz: f64,
    /// Inverse temperature `β`.
    pub beta: f64,
    /// Trotter number `m` (`Δτ = β/m`; the lattice has `2m` spin rows).
    pub m: usize,
}

impl WorldlineParams {
    /// `Δτ = β/m`.
    pub fn dtau(&self) -> f64 {
        self.beta / self.m as f64
    }
}

/// A world-line configuration on the `L × 2m` space-time lattice plus the
/// update machinery.
///
/// Shaded (weight-carrying) cells sit at `(i, t)` with `i + t` even: bond
/// `(i, i+1)` is active during imaginary-time interval `t → t+1`. Every
/// site belongs to exactly one active bond per interval, so each spin is a
/// corner of exactly two shaded cells.
#[derive(Debug, Clone)]
pub struct Worldline {
    params: WorldlineParams,
    rows: usize,
    /// Row-major spins: `spins[t * l + i]`, `true` = ↑.
    spins: Vec<bool>,
    /// Spins changed since the last successful checkpoint snapshot
    /// (conservatively true on construction and after any accepted move
    /// or replica import; cleared only by
    /// [`qmc_ckpt::Checkpoint::mark_clean`]).
    spins_dirty: bool,
    weights: PlaqWeights,
    /// Precomputed corner-move acceptance ratios over all 2⁹ neighbourhood
    /// spin patterns (see [`local_move_key`]): the hot kernel is a single
    /// table load, no classify/divide per proposal.
    local_ratio: Box<[f64; 512]>,
    /// Scratch for [`Self::ratio_for_flips`] (reused; no per-move allocation).
    cells_scratch: Vec<(usize, usize)>,
    /// Scratch for straight-line flip lists (reused; no per-move allocation).
    flips_scratch: Vec<(usize, usize)>,
    /// Local-move acceptance counters (accepted, proposed-with-precondition).
    pub local_accepted: u64,
    /// Local proposals satisfying the flippable precondition.
    pub local_proposed: u64,
    /// Accepted straight-line (temporal winding) moves.
    pub straight_accepted: u64,
    /// Proposed straight-line moves.
    pub straight_proposed: u64,
}

/// Pack the nine spins a corner move's ratio depends on into a table key.
///
/// Under the move precondition (`s(i,t) = s(i,t+1) = a0`,
/// `s(j,·) = ¬a0`) the four affected shaded cells are determined by `a0`
/// plus the eight surrounding spins: the bottom row of the cell below
/// (`itd`, `jtd`), the top row of the cell above (`ituu`, `jtuu`), and the
/// left/right neighbour columns over the two move rows (`imt`, `imtu`,
/// `jpt`, `jptu`).
#[inline]
#[allow(clippy::too_many_arguments)]
fn local_move_key(
    a0: bool,
    itd: bool,
    jtd: bool,
    ituu: bool,
    jtuu: bool,
    imt: bool,
    imtu: bool,
    jpt: bool,
    jptu: bool,
) -> usize {
    (a0 as usize)
        | (itd as usize) << 1
        | (jtd as usize) << 2
        | (ituu as usize) << 3
        | (jtuu as usize) << 4
        | (imt as usize) << 5
        | (imtu as usize) << 6
        | (jpt as usize) << 7
        | (jptu as usize) << 8
}

/// Tabulate the corner-move ratio for every neighbourhood pattern by
/// evaluating the exact expression [`Worldline::ratio_local_fast`] uses
/// (same classify calls, same multiplication order — entries are
/// bit-identical to the on-the-fly computation). Patterns whose *current*
/// cells are forbidden can never be queried from a valid configuration;
/// they get ratio 0.
fn build_local_ratio_table(w: &PlaqWeights) -> Box<[f64; 512]> {
    let mut table = Box::new([0.0f64; 512]);
    for key in 0..512usize {
        let bit = |b: usize| (key >> b) & 1 == 1;
        let (a0, itd, jtd, ituu, jtuu, imt, imtu, jpt, jptu) = (
            bit(0),
            bit(1),
            bit(2),
            bit(3),
            bit(4),
            bit(5),
            bit(6),
            bit(7),
            bit(8),
        );
        let b0 = !a0;
        let c1_old = classify((itd, jtd), (a0, b0));
        let c1_new = classify((itd, jtd), (!a0, !b0));
        let c2_old = classify((a0, b0), (ituu, jtuu));
        let c2_new = classify((!a0, !b0), (ituu, jtuu));
        let c3_old = classify((imt, a0), (imtu, a0));
        let c3_new = classify((imt, !a0), (imtu, !a0));
        let c4_old = classify((b0, jpt), (b0, jptu));
        let c4_new = classify((!b0, jpt), (!b0, jptu));
        let denom = w.weight(c1_old) * w.weight(c2_old) * w.weight(c3_old) * w.weight(c4_old);
        table[key] = if denom > 0.0 {
            (w.weight(c1_new) * w.weight(c2_new) * w.weight(c3_new) * w.weight(c4_new)) / denom
        } else {
            0.0
        };
    }
    table
}

impl Worldline {
    /// Create a configuration in the Néel state (a valid, `M = 0`,
    /// zero-winding starting point).
    pub fn new(params: WorldlineParams) -> Self {
        assert!(
            params.l >= 4 && params.l.is_multiple_of(2),
            "world-line chain length must be even ≥ 4, got {}",
            params.l
        );
        // m ≥ 2 keeps the four shaded cells around any unshaded cell
        // distinct (at m = 1 the two temporal neighbours coincide, which
        // the specialized local-move kernel does not handle).
        assert!(params.m >= 2, "need at least two Trotter steps");
        assert!(params.beta > 0.0, "β must be positive");
        let rows = 2 * params.m;
        let mut spins = vec![false; rows * params.l];
        for t in 0..rows {
            for i in (0..params.l).step_by(2) {
                spins[t * params.l + i] = true;
            }
        }
        let weights = PlaqWeights::new(params.jx, params.jz, params.dtau());
        let local_ratio = build_local_ratio_table(&weights);
        Self {
            params,
            rows,
            spins,
            spins_dirty: true,
            weights,
            local_ratio,
            cells_scratch: Vec::with_capacity(4 * rows),
            flips_scratch: Vec::with_capacity(rows),
            local_accepted: 0,
            local_proposed: 0,
            straight_accepted: 0,
            straight_proposed: 0,
        }
    }

    /// Parameters.
    pub fn params(&self) -> &WorldlineParams {
        &self.params
    }

    /// Number of spin rows (`2m`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The plaquette weight table in use.
    pub fn weights(&self) -> &PlaqWeights {
        &self.weights
    }

    /// Spin at site `i`, row `t`.
    #[inline]
    pub fn spin(&self, i: usize, t: usize) -> bool {
        self.spins[t * self.params.l + i]
    }

    #[inline]
    fn flip(&mut self, i: usize, t: usize) {
        let idx = t * self.params.l + i;
        self.spins[idx] = !self.spins[idx];
    }

    #[inline]
    fn row_up(&self, t: usize) -> usize {
        if t + 1 == self.rows {
            0
        } else {
            t + 1
        }
    }

    /// Class of the shaded cell at `(i, t)` (caller guarantees `i + t`
    /// even).
    #[inline]
    pub fn cell_class(&self, i: usize, t: usize) -> PlaqClass {
        debug_assert!((i + t).is_multiple_of(2), "cell ({i},{t}) is not shaded");
        let l = self.params.l;
        let j = (i + 1) % l;
        let tu = self.row_up(t);
        classify(
            (self.spin(i, t), self.spin(j, t)),
            (self.spin(i, tu), self.spin(j, tu)),
        )
    }

    /// The shaded cell (left site index) containing site `i` during
    /// interval `t`.
    #[inline]
    fn cell_of_site(&self, i: usize, t: usize) -> usize {
        if (i + t).is_multiple_of(2) {
            i
        } else {
            (i + self.params.l - 1) % self.params.l
        }
    }

    /// Log-weight of the whole configuration (−∞ if invalid). Test and
    /// debugging aid.
    pub fn log_weight(&self) -> f64 {
        self.log_weight_with(&self.weights)
    }

    /// Log-weight of the configuration under an *arbitrary* plaquette
    /// weight table — the quantity parallel tempering needs to evaluate a
    /// configuration at a neighbouring temperature (same `l` and `m`,
    /// different `Δτ`).
    pub fn log_weight_with(&self, weights: &PlaqWeights) -> f64 {
        let mut s = 0.0;
        for t in 0..self.rows {
            let start = t % 2;
            for i in (start..self.params.l).step_by(2) {
                let w = weights.weight(self.cell_class(i, t));
                if w <= 0.0 {
                    return f64::NEG_INFINITY;
                }
                s += w.ln();
            }
        }
        s
    }

    /// Export the spin configuration as bytes (replica-exchange payload).
    pub fn export_spins(&self) -> Vec<u8> {
        self.spins.iter().map(|&s| s as u8).collect()
    }

    /// Import a spin configuration previously produced by
    /// [`Worldline::export_spins`] on an engine with identical `(l, m)`.
    pub fn import_spins(&mut self, bytes: &[u8]) {
        assert_eq!(
            bytes.len(),
            self.spins.len(),
            "configuration size mismatch (different l or m?)"
        );
        for (dst, &b) in self.spins.iter_mut().zip(bytes) {
            *dst = b != 0;
        }
        self.spins_dirty = true;
        debug_assert!(self.log_weight().is_finite(), "imported invalid config");
    }

    /// Weight ratio (new/old) for flipping the given `(site, row)` spins,
    /// computed generically over the affected shaded cells.
    fn ratio_for_flips(&mut self, flips: &[(usize, usize)]) -> f64 {
        // Collect affected shaded cells (interval t and t−1 per spin) into
        // the reusable scratch buffer — no steady-state allocation.
        let mut cells = std::mem::take(&mut self.cells_scratch);
        cells.clear();
        for &(i, t) in flips {
            let t_down = if t == 0 { self.rows - 1 } else { t - 1 };
            cells.push((self.cell_of_site(i, t), t));
            cells.push((self.cell_of_site(i, t_down), t_down));
        }
        cells.sort_unstable();
        cells.dedup();

        let mut old = 1.0;
        for &(c, t) in &cells {
            old *= self.weights.weight(self.cell_class(c, t));
        }
        debug_assert!(old > 0.0, "current configuration must be valid");

        for &(i, t) in flips {
            self.flip(i, t);
        }
        let mut new = 1.0;
        for &(c, t) in &cells {
            new *= self.weights.weight(self.cell_class(c, t));
        }
        for &(i, t) in flips {
            self.flip(i, t);
        }
        self.cells_scratch = cells;
        new / old
    }

    /// Table key for the corner move on unshaded cell `(i, t)`: pack the
    /// nine spins the ratio depends on (see [`local_move_key`]). Valid
    /// only when the move precondition holds.
    #[inline]
    fn local_key(&self, i: usize, t: usize) -> usize {
        let l = self.params.l;
        let j = (i + 1) % l;
        let tu = self.row_up(t);
        let td = if t == 0 { self.rows - 1 } else { t - 1 };
        let tuu = self.row_up(tu);
        let im = (i + l - 1) % l;
        let jp = (j + 1) % l;
        local_move_key(
            self.spin(i, t),
            self.spin(i, td),
            self.spin(j, td),
            self.spin(i, tuu),
            self.spin(j, tuu),
            self.spin(im, t),
            self.spin(im, tu),
            self.spin(jp, t),
            self.spin(jp, tu),
        )
    }

    /// Reference weight ratio for the local corner move on unshaded cell
    /// `(i, t)` — hand-enumerates the four affected shaded cells. The hot
    /// path now reads [`Self::local_ratio`] instead (built from exactly
    /// this expression); this stays as the test oracle for the table.
    #[cfg(test)]
    fn ratio_local_fast(&self, i: usize, t: usize) -> f64 {
        let l = self.params.l;
        let j = (i + 1) % l;
        let tu = self.row_up(t);
        let td = if t == 0 { self.rows - 1 } else { t - 1 };
        let tuu = self.row_up(tu);
        let im = (i + l - 1) % l;
        let jp = (j + 1) % l;
        let w = &self.weights;

        let s = |site: usize, row: usize| self.spin(site, row);
        let f = |site: usize, row: usize| !self.spin(site, row); // flipped view

        // Cell (i, td): rows td → t, both sites flipped on the top row.
        let c1_old = classify((s(i, td), s(j, td)), (s(i, t), s(j, t)));
        let c1_new = classify((s(i, td), s(j, td)), (f(i, t), f(j, t)));
        // Cell (i, tu): rows tu → tuu, both sites flipped on the bottom.
        let c2_old = classify((s(i, tu), s(j, tu)), (s(i, tuu), s(j, tuu)));
        let c2_new = classify((f(i, tu), f(j, tu)), (s(i, tuu), s(j, tuu)));
        // Cell (im, t): rows t → tu, site i flipped on both rows.
        let c3_old = classify((s(im, t), s(i, t)), (s(im, tu), s(i, tu)));
        let c3_new = classify((s(im, t), f(i, t)), (s(im, tu), f(i, tu)));
        // Cell (j, t): rows t → tu, site j flipped on both rows.
        let c4_old = classify((s(j, t), s(jp, t)), (s(j, tu), s(jp, tu)));
        let c4_new = classify((f(j, t), s(jp, t)), (f(j, tu), s(jp, tu)));

        (w.weight(c1_new) * w.weight(c2_new) * w.weight(c3_new) * w.weight(c4_new))
            / (w.weight(c1_old) * w.weight(c2_old) * w.weight(c3_old) * w.weight(c4_old))
    }

    /// One full sweep: every unshaded cell is offered a corner move, then
    /// `L` random straight-line attempts.
    #[qmc_hot::hot]
    pub fn sweep<R: Rng64>(&mut self, rng: &mut R) {
        let _span = qmc_obs::span("worldline.sweep");
        let before = (
            self.local_accepted,
            self.local_proposed,
            self.straight_accepted,
            self.straight_proposed,
        );
        let l = self.params.l;
        for t in 0..self.rows {
            // Unshaded cells in interval t: i + t odd.
            let start = (t + 1) % 2;
            for i in (start..l).step_by(2) {
                self.try_local(i, t, rng);
            }
        }
        for _ in 0..l {
            let i = rng.index(l);
            self.try_straight_line(i, rng);
        }
        // Only accepted moves mutate spins; proposal counts alone leave
        // the configuration (and its checkpoint section) untouched.
        if self.local_accepted != before.0 || self.straight_accepted != before.2 {
            self.spins_dirty = true;
        }
        // Mirror this sweep's counter deltas into the rank recorder (the
        // public fields stay authoritative; no-ops when metrics are off).
        if qmc_obs::metrics_enabled() {
            qmc_obs::counter_add("worldline.local_accepted", self.local_accepted - before.0);
            qmc_obs::counter_add("worldline.local_proposed", self.local_proposed - before.1);
            qmc_obs::counter_add(
                "worldline.straight_accepted",
                self.straight_accepted - before.2,
            );
            qmc_obs::counter_add(
                "worldline.straight_proposed",
                self.straight_proposed - before.3,
            );
        }
    }

    /// Attempt the corner move on the unshaded cell `(i, t)`.
    #[qmc_hot::hot]
    fn try_local<R: Rng64>(&mut self, i: usize, t: usize, rng: &mut R) {
        let l = self.params.l;
        let j = (i + 1) % l;
        let tu = self.row_up(t);
        // Precondition: a vertical world-line segment on exactly one side.
        let (a0, a1) = (self.spin(i, t), self.spin(i, tu));
        let (b0, b1) = (self.spin(j, t), self.spin(j, tu));
        if a0 != a1 || b0 != b1 || a0 == b0 {
            return;
        }
        self.local_proposed += 1;
        let ratio = self.local_ratio[self.local_key(i, t)];
        // lint: allow(hot-scalar-spin-loop) — reference plaquette kernel; ratios depend on 4-spin patterns
        if rng.metropolis(ratio) {
            for (s, r) in [(i, t), (i, tu), (j, t), (j, tu)] {
                self.flip(s, r);
            }
            self.local_accepted += 1;
        }
    }

    /// Attempt the straight-line move: flip site `i` on every row
    /// (changes total magnetization by ±1 world line).
    #[qmc_hot::hot]
    fn try_straight_line<R: Rng64>(&mut self, i: usize, rng: &mut R) {
        self.straight_proposed += 1;
        let mut flips = std::mem::take(&mut self.flips_scratch);
        flips.clear();
        flips.extend((0..self.rows).map(|t| (i, t)));
        let ratio = self.ratio_for_flips(&flips);
        // lint: allow(hot-scalar-spin-loop) — straight-line move flips a whole column per decision, not one spin
        if ratio > 0.0 && rng.metropolis(ratio) {
            for &(s, r) in &flips {
                self.flip(s, r);
            }
            self.straight_accepted += 1;
        }
        self.flips_scratch = flips;
    }

    /// Total magnetization `Σ (s − ½)` of row `t` (conserved across rows
    /// for valid configurations).
    pub fn row_magnetization(&self, t: usize) -> f64 {
        (0..self.params.l)
            .map(|i| if self.spin(i, t) { 0.5 } else { -0.5 })
            .sum()
    }

    /// Net world-line crossing number at the spatial seam (the bond
    /// `(L−1, 0)`); conserved by both move types — the simulation stays in
    /// the sector it starts in (0 for the Néel start).
    pub fn seam_crossing_number(&self) -> i64 {
        let l = self.params.l;
        let i = l - 1;
        let mut x = 0i64;
        for t in 0..self.rows {
            if !(i + t).is_multiple_of(2) {
                continue; // seam bond inactive in this interval
            }
            let tu = self.row_up(t);
            let bottom = (self.spin(i, t), self.spin(0, t));
            let top = (self.spin(i, tu), self.spin(0, tu));
            if classify(bottom, top) == PlaqClass::Flip {
                // ↑ moving l−1 → 0 counts +1, the reverse −1.
                x += if bottom.0 { 1 } else { -1 };
            }
        }
        x
    }

    /// Iterate shaded cells, yielding their classes (estimator support).
    pub fn for_each_cell<F: FnMut(PlaqClass)>(&self, mut f: F) {
        for t in 0..self.rows {
            let start = t % 2;
            for i in (start..self.params.l).step_by(2) {
                f(self.cell_class(i, t));
            }
        }
    }

    /// Run `therm` thermalization sweeps then `sweeps` measured sweeps,
    /// returning the measurement time series.
    pub fn run<R: Rng64>(
        &mut self,
        rng: &mut R,
        therm: usize,
        sweeps: usize,
    ) -> crate::estimators::TimeSeries {
        for _ in 0..therm {
            self.sweep(rng);
        }
        let mut series = crate::estimators::TimeSeries::new(self.params.l);
        series.set_beta(self.params.beta);
        for _ in 0..sweeps {
            self.sweep(rng);
            series.record(&crate::estimators::measure(self));
            series.record_correlations(self);
        }
        series
    }
}

impl qmc_ckpt::Checkpoint for Worldline {
    fn kind(&self) -> &'static str {
        "engine.worldline.chain"
    }

    fn save(&self, enc: &mut qmc_ckpt::Encoder) {
        enc.bools(&self.spins);
        enc.u64(self.local_accepted);
        enc.u64(self.local_proposed);
        enc.u64(self.straight_accepted);
        enc.u64(self.straight_proposed);
    }

    fn load(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
        let spins = dec.bools()?;
        if spins.len() != self.spins.len() {
            return Err(qmc_ckpt::CkptError::corrupt(format!(
                "worldline spins: engine has {} cells, checkpoint has {}",
                self.spins.len(),
                spins.len()
            )));
        }
        self.spins = spins;
        self.spins_dirty = true;
        self.local_accepted = dec.u64()?;
        self.local_proposed = dec.u64()?;
        self.straight_accepted = dec.u64()?;
        self.straight_proposed = dec.u64()?;
        if !self.log_weight().is_finite() {
            return Err(qmc_ckpt::CkptError::corrupt(
                "worldline checkpoint is not a valid configuration",
            ));
        }
        Ok(())
    }

    fn dirty_sections(&self) -> qmc_ckpt::DirtySections {
        let mut s = qmc_ckpt::DirtySections::new();
        s.push("spins", self.spins_dirty);
        // Proposal counters advance every sweep regardless of acceptance.
        s.push("counters", true);
        s
    }

    fn save_section(&self, name: &str, enc: &mut qmc_ckpt::Encoder) {
        match name {
            "spins" => enc.bools(&self.spins),
            "counters" => {
                enc.u64(self.local_accepted);
                enc.u64(self.local_proposed);
                enc.u64(self.straight_accepted);
                enc.u64(self.straight_proposed);
            }
            _ => panic!("engine.worldline.chain has no checkpoint section {name:?}"),
        }
    }

    fn load_section(
        &mut self,
        name: &str,
        dec: &mut qmc_ckpt::Decoder,
    ) -> Result<(), qmc_ckpt::CkptError> {
        match name {
            "spins" => {
                let spins = dec.bools()?;
                if spins.len() != self.spins.len() {
                    return Err(qmc_ckpt::CkptError::corrupt(format!(
                        "worldline spins: engine has {} cells, checkpoint has {}",
                        self.spins.len(),
                        spins.len()
                    )));
                }
                self.spins = spins;
                if !self.log_weight().is_finite() {
                    return Err(qmc_ckpt::CkptError::corrupt(
                        "worldline checkpoint is not a valid configuration",
                    ));
                }
                Ok(())
            }
            "counters" => {
                self.local_accepted = dec.u64()?;
                self.local_proposed = dec.u64()?;
                self.straight_accepted = dec.u64()?;
                self.straight_proposed = dec.u64()?;
                Ok(())
            }
            _ => Err(qmc_ckpt::CkptError::MissingSection {
                name: name.to_string(),
            }),
        }
    }

    fn mark_clean(&mut self) {
        self.spins_dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmc_rng::Xoshiro256StarStar;

    fn params(l: usize, m: usize, beta: f64) -> WorldlineParams {
        WorldlineParams {
            l,
            jx: 1.0,
            jz: 1.0,
            beta,
            m,
        }
    }

    #[test]
    fn neel_start_is_valid() {
        let w = Worldline::new(params(8, 4, 1.0));
        assert!(w.log_weight().is_finite());
        assert_eq!(w.row_magnetization(0), 0.0);
        assert_eq!(w.seam_crossing_number(), 0);
    }

    #[test]
    fn sweeps_preserve_validity_and_row_conservation() {
        let mut w = Worldline::new(params(8, 4, 1.0));
        let mut rng = Xoshiro256StarStar::new(1);
        for sweep in 0..200 {
            w.sweep(&mut rng);
            assert!(w.log_weight().is_finite(), "invalid after sweep {sweep}");
            let m0 = w.row_magnetization(0);
            for t in 1..w.rows() {
                assert_eq!(
                    w.row_magnetization(t),
                    m0,
                    "Sz not conserved across rows after sweep {sweep}"
                );
            }
        }
    }

    #[test]
    fn seam_crossing_number_invariant_under_sweeps() {
        let mut w = Worldline::new(params(6, 3, 1.5));
        let mut rng = Xoshiro256StarStar::new(2);
        for _ in 0..300 {
            w.sweep(&mut rng);
            assert_eq!(w.seam_crossing_number(), 0);
        }
    }

    #[test]
    fn moves_actually_accept() {
        let mut w = Worldline::new(params(8, 4, 1.0));
        let mut rng = Xoshiro256StarStar::new(3);
        for _ in 0..100 {
            w.sweep(&mut rng);
        }
        assert!(w.local_accepted > 0, "local moves never accepted");
        assert!(w.straight_accepted > 0, "straight moves never accepted");
    }

    #[test]
    fn magnetization_sectors_are_explored() {
        let mut w = Worldline::new(params(6, 2, 0.5));
        let mut rng = Xoshiro256StarStar::new(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            w.sweep(&mut rng);
            seen.insert((2.0 * w.row_magnetization(0)) as i64);
        }
        assert!(
            seen.len() >= 3,
            "straight-line moves should reach several M sectors: {seen:?}"
        );
    }

    #[test]
    fn detailed_balance_ratio_consistency() {
        // ratio(flips) * ratio(flips applied, then same flips) == 1.
        let mut w = Worldline::new(params(8, 4, 1.0));
        let mut rng = Xoshiro256StarStar::new(5);
        for _ in 0..20 {
            w.sweep(&mut rng);
        }
        // find a flippable unshaded cell
        'outer: for t in 0..w.rows() {
            let start = (t + 1) % 2;
            for i in (start..8).step_by(2) {
                let j = (i + 1) % 8;
                let tu = w.row_up(t);
                if w.spin(i, t) == w.spin(i, tu)
                    && w.spin(j, t) == w.spin(j, tu)
                    && w.spin(i, t) != w.spin(j, t)
                {
                    let flips = [(i, t), (i, tu), (j, t), (j, tu)];
                    let fwd = w.ratio_for_flips(&flips);
                    for (s, r) in flips {
                        w.flip(s, r);
                    }
                    let bwd = w.ratio_for_flips(&flips);
                    assert!((fwd * bwd - 1.0).abs() < 1e-12, "fwd {fwd} · bwd {bwd} ≠ 1");
                    break 'outer;
                }
            }
        }
    }

    #[test]
    fn ratio_matches_full_weight_recomputation() {
        // The incremental ratio must equal exp(ΔlogW) from full recompute.
        let mut w = Worldline::new(params(6, 3, 1.2));
        let mut rng = Xoshiro256StarStar::new(6);
        for _ in 0..10 {
            w.sweep(&mut rng);
        }
        let t = 1usize;
        let i = (t + 1) % 2; // unshaded cell at (i, t)
        let j = i + 1;
        let tu = w.row_up(t);
        if w.spin(i, t) == w.spin(i, tu)
            && w.spin(j, t) == w.spin(j, tu)
            && w.spin(i, t) != w.spin(j, t)
        {
            let before = w.log_weight();
            let flips = [(i, t), (i, tu), (j, t), (j, tu)];
            let ratio = w.ratio_for_flips(&flips);
            for (s, r) in flips {
                w.flip(s, r);
            }
            let after = w.log_weight();
            assert!(
                (ratio.ln() - (after - before)).abs() < 1e-10,
                "incremental {} vs full {}",
                ratio.ln(),
                after - before
            );
        }
    }

    #[test]
    #[should_panic(expected = "even ≥ 4")]
    fn rejects_small_chain() {
        Worldline::new(params(2, 2, 1.0));
    }

    #[test]
    #[should_panic(expected = "two Trotter steps")]
    fn rejects_single_trotter_step() {
        Worldline::new(params(8, 1, 1.0));
    }

    #[test]
    fn fast_local_ratio_equals_generic_ratio() {
        // Property check over many equilibrated configurations: the
        // specialized kernel and the generic recompute-everything path
        // must agree on every flippable unshaded cell.
        for seed in 0..5u64 {
            for (l, m) in [(4usize, 2usize), (6, 3), (8, 4), (8, 2)] {
                let mut w = Worldline::new(WorldlineParams {
                    l,
                    jx: 1.0,
                    jz: 0.7,
                    beta: 1.3,
                    m,
                });
                let mut rng = Xoshiro256StarStar::new(1000 + seed);
                for _ in 0..50 {
                    w.sweep(&mut rng);
                }
                for t in 0..w.rows() {
                    let start = (t + 1) % 2;
                    for i in (start..l).step_by(2) {
                        let j = (i + 1) % l;
                        let tu = w.row_up(t);
                        if w.spin(i, t) == w.spin(i, tu)
                            && w.spin(j, t) == w.spin(j, tu)
                            && w.spin(i, t) != w.spin(j, t)
                        {
                            let fast = w.ratio_local_fast(i, t);
                            let table = w.local_ratio[w.local_key(i, t)];
                            assert_eq!(
                                table.to_bits(),
                                fast.to_bits(),
                                "l={l} m={m} cell ({i},{t}): table {table} vs fast {fast}"
                            );
                            let generic = w.ratio_for_flips(&[(i, t), (i, tu), (j, t), (j, tu)]);
                            assert!(
                                (fast - generic).abs() < 1e-12 * generic.max(1.0),
                                "l={l} m={m} cell ({i},{t}): fast {fast} vs generic {generic}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn local_acceptance_grows_with_dtau() {
        // Corner moves on kink-free segments create two kinks, with
        // acceptance ~ sinh²(ΔτJx/2): the rate must rise with Δτ.
        let rate = |m: usize, beta: f64, seed: u64| {
            let mut w = Worldline::new(params(8, m, beta));
            let mut rng = Xoshiro256StarStar::new(seed);
            for _ in 0..400 {
                w.sweep(&mut rng);
            }
            w.local_accepted as f64 / w.local_proposed.max(1) as f64
        };
        let coarse = rate(2, 4.0, 7); // Δτ = 2
        let fine = rate(32, 4.0, 8); // Δτ = 0.125
                                     // (in equilibrium many proposals shuffle existing kinks with O(1)
                                     // acceptance, so the dependence is softer than the bare sinh²)
        assert!(coarse > 1.5 * fine, "coarse {coarse} vs fine {fine}");
        assert!(
            coarse > 0.05,
            "coarse-Δτ acceptance unexpectedly low: {coarse}"
        );
    }
}
