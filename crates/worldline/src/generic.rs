//! World-line QMC on *arbitrary* colored lattices — in particular the
//! 2-D square lattice, the workload the SC'93-class machines actually
//! ran.
//!
//! The chain engine ([`crate::engine::Worldline`]) hard-codes the 1-D
//! even/odd checkerboard. Here the Suzuki-Trotter breakup uses the
//! lattice's full bond coloring: with `P` non-empty colors,
//!
//! `Z = Tr [ e^{−Δτ H_{c₁}} e^{−Δτ H_{c₂}} … e^{−Δτ H_{c_P}} ]^m`,
//!
//! giving a space-time lattice of `m·P` spin rows. Every color class is a
//! perfect matching (each site in exactly one bond), so during interval
//! `t` each site belongs to exactly one propagator cell — the same cell
//! algebra as 1-D, just with `P` interleaved matchings (P = 2 for chains,
//! P = 4 for the square lattice).
//!
//! Moves:
//!
//! * **corner move** — for a bond `b` inactive during interval `t`, flip
//!   both of `b`'s spins on rows `t` and `t+1`: a world-line segment hops
//!   across `b`. For P = 2 this is exactly the 1-D unshaded-plaquette
//!   move; offering it at every inactive interval (not merely as one
//!   whole-window jump) is essential for ergodicity in d ≥ 2 — see the
//!   note on `try_corner`.
//! * **straight-line move** — flip one site's full imaginary-time column
//!   (changes total magnetization).
//!
//! Acceptance uses the same generic collect-affected-cells weight ratio
//! as the 1-D engine: no hand-derived case analysis. Observables: energy
//! (τ-derivative estimator), uniform χ, staggered structure factor.
//!
//! The restriction to the zero spatial-winding sector and the `O(Δτ²)`
//! Trotter error carry over from the 1-D engine (see crate docs); both
//! are quantified against the SSE and Lanczos oracles in the tests.

use crate::weights::{classify, PlaqWeights};
use qmc_lattice::{Bond, Lattice};
use qmc_rng::Rng64;

/// Parameters of a generic world-line run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenericParams {
    /// Transverse exchange (sign immaterial on bipartite lattices).
    pub jx: f64,
    /// Longitudinal exchange.
    pub jz: f64,
    /// Inverse temperature.
    pub beta: f64,
    /// Trotter steps `m` (`Δτ = β/m`); each step applies every non-empty
    /// color once.
    pub m: usize,
}

/// World-line configuration on `lattice` with the full color breakup.
#[derive(Debug, Clone)]
pub struct GenericWorldline<L: Lattice> {
    lattice: L,
    params: GenericParams,
    weights: PlaqWeights,
    /// Colors that actually contain bonds, in ascending order.
    active_colors: Vec<u8>,
    /// Rows = m · active_colors.len().
    rows: usize,
    /// `site_bond[ci][site]` = index into `lattice.bonds()` of the
    /// color-`ci` bond containing `site`.
    site_bond: Vec<Vec<u32>>,
    /// Spins, row-major: `spins[row * n_sites + site]`.
    spins: Vec<bool>,
    /// Ring plaquettes with their window-set id.
    plaquettes: Vec<([u32; 4], u8)>,
    /// Distinct ring-window lists `(first_row, length)`, one per
    /// plaquette color pair.
    window_sets: Vec<Vec<(usize, usize)>>,
    /// Cell weight by 4-bit corner-spin pattern (`a0 | b0<<1 | a1<<2 |
    /// b1<<3`): folds classify + class match into one table load. Entries
    /// are exactly `weights.weight(classify(..))` for each pattern.
    cell_w: [f64; 16],
    /// Scratch for [`Self::ratio_for_flips`] (reused; no per-move
    /// allocation).
    cells_scratch: Vec<(u32, usize)>,
    /// Scratch for move flip lists (reused; no per-move allocation).
    flips_scratch: Vec<(usize, usize)>,
    /// Accepted bond-window moves.
    pub window_accepted: u64,
    /// Proposed bond-window moves passing the flippable precondition.
    pub window_proposed: u64,
    /// Accepted ring moves.
    pub ring_accepted: u64,
    /// Proposed ring moves.
    pub ring_proposed: u64,
    /// Accepted straight-line moves.
    pub straight_accepted: u64,
    /// Proposed straight-line moves.
    pub straight_proposed: u64,
    /// Spins changed since the last successful checkpoint snapshot
    /// (conservatively true on construction and after any accepted move;
    /// cleared only by [`qmc_ckpt::Checkpoint::mark_clean`]).
    spins_dirty: bool,
}

impl<L: Lattice> GenericWorldline<L> {
    /// Build the engine, starting from the Néel state.
    pub fn new(lattice: L, params: GenericParams) -> Self {
        assert!(params.m >= 2, "need at least two Trotter steps");
        assert!(params.beta > 0.0, "β must be positive");
        let n = lattice.num_sites();
        let active_colors: Vec<u8> = (0..lattice.num_colors() as u8)
            .filter(|&c| !lattice.bonds_of_color(c).is_empty())
            .collect();
        assert!(
            active_colors.len() >= 2,
            "need at least two non-empty colors for a valid breakup"
        );

        // Per active color, the matching must cover every site exactly
        // once (guaranteed by the lattice types, verified here).
        let bonds = lattice.bonds();
        let mut site_bond = Vec::with_capacity(active_colors.len());
        for &c in &active_colors {
            let mut cover = vec![u32::MAX; n];
            for (global_idx, b) in bonds.iter().enumerate() {
                if b.color != c {
                    continue;
                }
                for s in [b.a as usize, b.b as usize] {
                    assert_eq!(cover[s], u32::MAX, "color {c} covers site {s} twice");
                    cover[s] = global_idx as u32;
                }
            }
            assert!(
                cover.iter().all(|&v| v != u32::MAX),
                "color {c} is not a perfect matching"
            );
            site_bond.push(cover);
        }

        let rows = params.m * active_colors.len();
        let mut spins = vec![false; rows * n];
        for row in 0..rows {
            for site in 0..n {
                spins[row * n + site] = lattice.sublattice(site) == 0;
            }
        }
        let weights = PlaqWeights::new(params.jx, params.jz, params.beta / params.m as f64);

        // Ring plaquettes: classify by the (unordered) pair of bond
        // colors around the ring and precompute the window list per pair.
        let color_of_pair = |a: u32, b: u32| -> u8 {
            bonds
                .iter()
                .find(|bd| (bd.a, bd.b) == (a, b) || (bd.a, bd.b) == (b, a))
                .unwrap_or_else(|| panic!("plaquette edge ({a},{b}) is not a lattice bond"))
                .color
        };
        let color_index = |c: u8| -> usize {
            active_colors
                .iter()
                .position(|&ac| ac == c)
                .expect("plaquette color must be active")
        };
        let mut window_sets: Vec<Vec<(usize, usize)>> = Vec::new();
        let mut pair_ids: Vec<(u8, u8)> = Vec::new();
        let mut plaquettes = Vec::new();
        for plaq in lattice.ring_plaquettes() {
            let ca = color_of_pair(plaq[0], plaq[1]);
            let cb = color_of_pair(plaq[1], plaq[2]);
            let key = (ca.min(cb), ca.max(cb));
            let set_id = match pair_ids.iter().position(|&k| k == key) {
                Some(id) => id,
                None => {
                    // Boundary intervals: activations of either color.
                    let (cia, cib) = (color_index(key.0), color_index(key.1));
                    let boundaries: Vec<usize> = (0..rows)
                        .filter(|&t| {
                            let ci = t % active_colors.len();
                            ci == cia || ci == cib
                        })
                        .collect();
                    let nb = boundaries.len();
                    let windows = (0..nb)
                        .map(|k| {
                            let t_a = boundaries[k];
                            let t_b = boundaries[(k + 1) % nb];
                            let len = (t_b + rows - t_a) % rows;
                            let len = if len == 0 { rows } else { len };
                            ((t_a + 1) % rows, len)
                        })
                        .collect();
                    pair_ids.push(key);
                    window_sets.push(windows);
                    pair_ids.len() - 1
                }
            };
            plaquettes.push((plaq, set_id as u8));
        }

        let mut cell_w = [0.0f64; 16];
        for (idx, w) in cell_w.iter_mut().enumerate() {
            let bit = |b: usize| (idx >> b) & 1 == 1;
            *w = weights.weight(classify((bit(0), bit(1)), (bit(2), bit(3))));
        }

        Self {
            lattice,
            params,
            weights,
            active_colors,
            rows,
            site_bond,
            spins,
            plaquettes,
            window_sets,
            cell_w,
            cells_scratch: Vec::new(),
            flips_scratch: Vec::new(),
            window_accepted: 0,
            window_proposed: 0,
            ring_accepted: 0,
            ring_proposed: 0,
            straight_accepted: 0,
            straight_proposed: 0,
            spins_dirty: true,
        }
    }

    /// The underlying lattice.
    pub fn lattice(&self) -> &L {
        &self.lattice
    }

    /// Simulation parameters.
    pub fn params(&self) -> &GenericParams {
        &self.params
    }

    /// Number of spin rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of intervals per Trotter step (= non-empty colors).
    pub fn colors_per_step(&self) -> usize {
        self.active_colors.len()
    }

    /// Spin at `(site, row)`.
    #[inline]
    pub fn spin(&self, site: usize, row: usize) -> bool {
        self.spins[row * self.lattice.num_sites() + site]
    }

    #[inline]
    fn flip(&mut self, site: usize, row: usize) {
        let idx = row * self.lattice.num_sites() + site;
        self.spins[idx] = !self.spins[idx];
    }

    #[inline]
    fn row_up(&self, row: usize) -> usize {
        if row + 1 == self.rows {
            0
        } else {
            row + 1
        }
    }

    /// Color index active during interval `t` (row `t` → `t+1`).
    #[inline]
    fn color_index_of_interval(&self, t: usize) -> usize {
        t % self.active_colors.len()
    }

    /// Weight of the cell of bond `b` at interval `t` — a single load
    /// from the precomputed 16-entry pattern table.
    #[inline]
    fn cell_weight(&self, b: &Bond, t: usize) -> f64 {
        let tu = self.row_up(t);
        let idx = (self.spin(b.a as usize, t) as usize)
            | (self.spin(b.b as usize, t) as usize) << 1
            | (self.spin(b.a as usize, tu) as usize) << 2
            | (self.spin(b.b as usize, tu) as usize) << 3;
        self.cell_w[idx]
    }

    /// Log-weight of the whole configuration (−∞ if invalid).
    pub fn log_weight(&self) -> f64 {
        let mut s = 0.0;
        for t in 0..self.rows {
            let ci = self.color_index_of_interval(t);
            let color = self.active_colors[ci];
            for b in self.lattice.bonds_of_color(color) {
                let w = self.cell_weight(b, t);
                if w <= 0.0 {
                    return f64::NEG_INFINITY;
                }
                s += w.ln();
            }
        }
        s
    }

    /// Generic weight ratio for flipping the given `(site, row)` spins.
    fn ratio_for_flips(&mut self, flips: &[(usize, usize)]) -> f64 {
        let mut cells = std::mem::take(&mut self.cells_scratch);
        cells.clear();
        for &(site, row) in flips {
            let below = if row == 0 { self.rows - 1 } else { row - 1 };
            for t in [row, below] {
                let ci = self.color_index_of_interval(t);
                cells.push((self.site_bond[ci][site], t));
            }
        }
        cells.sort_unstable();
        cells.dedup();

        let bonds = self.lattice.bonds();
        let mut old = 1.0;
        for &(bidx, t) in &cells {
            old *= self.cell_weight(&bonds[bidx as usize], t);
        }
        debug_assert!(old > 0.0, "current configuration must be valid");

        for &(s, r) in flips {
            self.flip(s, r);
        }
        let bonds = self.lattice.bonds();
        let mut new = 1.0;
        for &(bidx, t) in &cells {
            new *= self.cell_weight(&bonds[bidx as usize], t);
        }
        for &(s, r) in flips {
            self.flip(s, r);
        }
        self.cells_scratch = cells;
        new / old
    }

    /// Attempt the bond-window move: flip both of bond `b`'s site columns
    /// across the `P` rows strictly between two consecutive activations
    /// of `b` (a world-line segment hops across the bond). For P = 2 this
    /// is exactly the 1-D unshaded-plaquette corner move.
    ///
    /// Sᶻ conservation requires the flipped row range to be bounded by
    /// activations of `b` itself (any shorter flip breaks a cell of a
    /// different color that contains only one of the two sites), and the
    /// occupations must be constant across the window.
    #[qmc_hot::hot]
    fn try_window<R: Rng64>(&mut self, bond_idx: usize, t_act: usize, rng: &mut R) {
        let p = self.active_colors.len();
        let b = self.lattice.bonds()[bond_idx];
        let (i, j) = (b.a as usize, b.b as usize);
        let first = self.row_up(t_act);
        let si = self.spin(i, first);
        let sj = self.spin(j, first);
        if si == sj {
            return;
        }
        let mut row = first;
        for _ in 1..p {
            row = self.row_up(row);
            if self.spin(i, row) != si || self.spin(j, row) != sj {
                return;
            }
        }
        self.window_proposed += 1;
        let mut flips = std::mem::take(&mut self.flips_scratch);
        flips.clear();
        let mut row = first;
        for _ in 0..p {
            flips.push((i, row));
            flips.push((j, row));
            row = self.row_up(row);
        }
        let ratio = self.ratio_for_flips(&flips);
        // lint: allow(hot-scalar-spin-loop) — reference plaquette kernel; ratios depend on 4-spin patterns
        if rng.metropolis(ratio) {
            for &(s, r) in &flips {
                self.flip(s, r);
            }
            self.window_accepted += 1;
        }
        self.flips_scratch = flips;
    }

    /// Attempt the ring move on spatial plaquette `(i, j, k, l)`: flip
    /// all four site columns over the cyclic row range `r1..r2`.
    ///
    /// Validity requires the two boundary intervals (`r1 − 1` and
    /// `r2 − 1`) to be activations of one of the plaquette's own bond
    /// colors — there the affected cells are plaquette bonds with *both*
    /// sites flipped on the same row, so conservation holds. Interior
    /// intervals of the plaquette colors are likewise safe; interior
    /// intervals of outside colors need constant occupations (the generic
    /// ratio returns 0 otherwise and the move is rejected).
    ///
    /// These moves toggle the hop parity of the four plaquette bonds —
    /// the ring-exchange world-line sector that bond-window moves alone
    /// can never reach in d ≥ 2 (omitting them biases the 4×4 Heisenberg
    /// energy by ≈ 10%, reproducibly).
    #[qmc_hot::hot]
    fn try_ring<R: Rng64>(&mut self, plaq: [u32; 4], r1: usize, len: usize, rng: &mut R) {
        self.ring_proposed += 1;
        let mut flips = std::mem::take(&mut self.flips_scratch);
        flips.clear();
        let mut row = r1;
        for _ in 0..len {
            for &s in &plaq {
                flips.push((s as usize, row));
            }
            row = self.row_up(row);
        }
        let ratio = self.ratio_for_flips(&flips);
        // lint: allow(hot-scalar-spin-loop) — loop move: one decision per grown cluster, not per spin
        if ratio > 0.0 && rng.metropolis(ratio) {
            for &(s, r) in &flips {
                self.flip(s, r);
            }
            self.ring_accepted += 1;
        }
        self.flips_scratch = flips;
    }

    /// Attempt the straight-line move on `site` (flips its whole column).
    #[qmc_hot::hot]
    fn try_straight_line<R: Rng64>(&mut self, site: usize, rng: &mut R) {
        self.straight_proposed += 1;
        let mut flips = std::mem::take(&mut self.flips_scratch);
        flips.clear();
        flips.extend((0..self.rows).map(|r| (site, r)));
        let ratio = self.ratio_for_flips(&flips);
        // lint: allow(hot-scalar-spin-loop) — temporal column flip: one decision covers all rows of a site
        if ratio > 0.0 && rng.metropolis(ratio) {
            for &(s, r) in &flips {
                self.flip(s, r);
            }
            self.straight_accepted += 1;
        }
        self.flips_scratch = flips;
    }

    /// One sweep: every (bond, activation) window move, every
    /// (plaquette, boundary pair) ring move, plus `n_sites` random
    /// straight-line attempts.
    #[qmc_hot::hot]
    pub fn sweep<R: Rng64>(&mut self, rng: &mut R) {
        let _span = qmc_obs::span("generic_worldline.sweep");
        let before = (self.straight_accepted, self.straight_proposed);
        let accepted_before = (
            self.window_accepted,
            self.ring_accepted,
            self.straight_accepted,
        );
        // Bond-window moves.
        for t in 0..self.rows {
            let ci = self.color_index_of_interval(t);
            let color = self.active_colors[ci];
            let n_bonds = self.lattice.bonds().len();
            for bidx in 0..n_bonds {
                if self.lattice.bonds()[bidx].color == color {
                    self.try_window(bidx, t, rng);
                }
            }
        }
        // Ring moves between consecutive plaquette-color activations
        // (window list temporarily moved out — no per-sweep clone).
        for wsi in 0..self.window_sets.len() {
            let windows = std::mem::take(&mut self.window_sets[wsi]);
            for pi in 0..self.plaquettes.len() {
                let (plaq, set_id) = self.plaquettes[pi];
                if set_id as usize != wsi {
                    continue;
                }
                for &(r1, len) in &windows {
                    self.try_ring(plaq, r1, len, rng);
                }
            }
            self.window_sets[wsi] = windows;
        }
        // Magnetization-sector moves.
        for _ in 0..self.lattice.num_sites() {
            let site = rng.index(self.lattice.num_sites());
            self.try_straight_line(site, rng);
        }
        // Only accepted moves mutate spins; proposal counts alone leave
        // the configuration (and its checkpoint section) untouched.
        if accepted_before
            != (
                self.window_accepted,
                self.ring_accepted,
                self.straight_accepted,
            )
        {
            self.spins_dirty = true;
        }
        // Mirror this sweep's counter deltas into the rank recorder (the
        // public fields stay authoritative; no-ops when metrics are off).
        if qmc_obs::metrics_enabled() {
            qmc_obs::counter_add(
                "generic_worldline.straight_accepted",
                self.straight_accepted - before.0,
            );
            qmc_obs::counter_add(
                "generic_worldline.straight_proposed",
                self.straight_proposed - before.1,
            );
        }
    }

    /// Total magnetization of row `t` (conserved across rows).
    pub fn row_magnetization(&self, t: usize) -> f64 {
        (0..self.lattice.num_sites())
            .map(|s| if self.spin(s, t) { 0.5 } else { -0.5 })
            .sum()
    }

    /// Measure energy per site, total M, and staggered magnetization.
    pub fn measure(&self) -> crate::estimators::Measurement {
        let m = self.params.m as f64;
        let n = self.lattice.num_sites();
        let mut eps = 0.0;
        let mut deps = 0.0;
        for t in 0..self.rows {
            let ci = self.color_index_of_interval(t);
            let color = self.active_colors[ci];
            for b in self.lattice.bonds_of_color(color) {
                let tu = self.row_up(t);
                let class = classify(
                    (self.spin(b.a as usize, t), self.spin(b.b as usize, t)),
                    (self.spin(b.a as usize, tu), self.spin(b.b as usize, tu)),
                );
                eps += self.weights.energy(class);
                deps += self.weights.denergy(class);
            }
        }
        let mut mag = 0.0;
        let mut stag = 0.0;
        for s in 0..n {
            let sz = if self.spin(s, 0) { 0.5 } else { -0.5 };
            mag += sz;
            stag += if self.lattice.sublattice(s) == 0 {
                sz
            } else {
                -sz
            };
        }
        crate::estimators::Measurement {
            energy_per_site: eps / m / n as f64,
            denergy_per_site: deps / (m * m) / n as f64,
            magnetization: mag,
            staggered: stag,
        }
    }

    /// Thermalize then record a [`crate::estimators::TimeSeries`] (the
    /// `l` field holds `n_sites`).
    pub fn run<R: Rng64>(
        &mut self,
        rng: &mut R,
        therm: usize,
        sweeps: usize,
    ) -> crate::estimators::TimeSeries {
        for _ in 0..therm {
            self.sweep(rng);
        }
        let mut series = crate::estimators::TimeSeries::new(self.lattice.num_sites());
        series.set_beta(self.params.beta);
        for _ in 0..sweeps {
            self.sweep(rng);
            series.record(&self.measure());
        }
        series
    }
}

impl<L: Lattice> qmc_ckpt::Checkpoint for GenericWorldline<L> {
    fn kind(&self) -> &'static str {
        "engine.worldline.generic"
    }

    fn save(&self, enc: &mut qmc_ckpt::Encoder) {
        enc.bools(&self.spins);
        enc.u64(self.window_accepted);
        enc.u64(self.window_proposed);
        enc.u64(self.ring_accepted);
        enc.u64(self.ring_proposed);
        enc.u64(self.straight_accepted);
        enc.u64(self.straight_proposed);
    }

    fn load(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
        let spins = dec.bools()?;
        if spins.len() != self.spins.len() {
            return Err(qmc_ckpt::CkptError::corrupt(format!(
                "generic worldline spins: engine has {} cells, checkpoint has {}",
                self.spins.len(),
                spins.len()
            )));
        }
        self.spins = spins;
        self.spins_dirty = true;
        self.window_accepted = dec.u64()?;
        self.window_proposed = dec.u64()?;
        self.ring_accepted = dec.u64()?;
        self.ring_proposed = dec.u64()?;
        self.straight_accepted = dec.u64()?;
        self.straight_proposed = dec.u64()?;
        if !self.log_weight().is_finite() {
            return Err(qmc_ckpt::CkptError::corrupt(
                "generic worldline checkpoint is not a valid configuration",
            ));
        }
        Ok(())
    }

    fn dirty_sections(&self) -> qmc_ckpt::DirtySections {
        let mut s = qmc_ckpt::DirtySections::new();
        s.push("spins", self.spins_dirty);
        // Proposal counters advance every sweep regardless of acceptance.
        s.push("counters", true);
        s
    }

    fn save_section(&self, name: &str, enc: &mut qmc_ckpt::Encoder) {
        match name {
            "spins" => enc.bools(&self.spins),
            "counters" => {
                enc.u64(self.window_accepted);
                enc.u64(self.window_proposed);
                enc.u64(self.ring_accepted);
                enc.u64(self.ring_proposed);
                enc.u64(self.straight_accepted);
                enc.u64(self.straight_proposed);
            }
            _ => panic!("engine.worldline.generic has no checkpoint section {name:?}"),
        }
    }

    fn load_section(
        &mut self,
        name: &str,
        dec: &mut qmc_ckpt::Decoder,
    ) -> Result<(), qmc_ckpt::CkptError> {
        match name {
            "spins" => {
                let spins = dec.bools()?;
                if spins.len() != self.spins.len() {
                    return Err(qmc_ckpt::CkptError::corrupt(format!(
                        "generic worldline spins: engine has {} cells, checkpoint has {}",
                        self.spins.len(),
                        spins.len()
                    )));
                }
                self.spins = spins;
                if !self.log_weight().is_finite() {
                    return Err(qmc_ckpt::CkptError::corrupt(
                        "generic worldline checkpoint is not a valid configuration",
                    ));
                }
                Ok(())
            }
            "counters" => {
                self.window_accepted = dec.u64()?;
                self.window_proposed = dec.u64()?;
                self.ring_accepted = dec.u64()?;
                self.ring_proposed = dec.u64()?;
                self.straight_accepted = dec.u64()?;
                self.straight_proposed = dec.u64()?;
                Ok(())
            }
            _ => Err(qmc_ckpt::CkptError::MissingSection {
                name: name.to_string(),
            }),
        }
    }

    fn mark_clean(&mut self) {
        self.spins_dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmc_ed::lanczos::{lanczos_ground_energy, XxzSectorOp};
    use qmc_ed::xxz::{full_spectrum, XxzParams};
    use qmc_lattice::{Chain, Square};
    use qmc_rng::Xoshiro256StarStar;
    use qmc_stats::BinningAnalysis;

    fn heis(beta: f64, m: usize) -> GenericParams {
        GenericParams {
            jx: 1.0,
            jz: 1.0,
            beta,
            m,
        }
    }

    #[test]
    fn neel_start_valid_on_chain_and_square() {
        let c = GenericWorldline::new(Chain::new(8), heis(1.0, 4));
        assert!(c.log_weight().is_finite());
        assert_eq!(c.colors_per_step(), 2);
        assert_eq!(c.rows(), 8);

        let s = GenericWorldline::new(Square::new(4, 4), heis(1.0, 4));
        assert!(s.log_weight().is_finite());
        assert_eq!(s.colors_per_step(), 4);
        assert_eq!(s.rows(), 16);
    }

    #[test]
    fn sweeps_preserve_validity_and_conservation_2d() {
        let mut w = GenericWorldline::new(Square::new(4, 4), heis(1.0, 3));
        let mut rng = Xoshiro256StarStar::new(1);
        for sweep in 0..60 {
            w.sweep(&mut rng);
            assert!(w.log_weight().is_finite(), "invalid after sweep {sweep}");
            let m0 = w.row_magnetization(0);
            for t in 1..w.rows() {
                assert_eq!(w.row_magnetization(t), m0, "Sz broken at sweep {sweep}");
            }
        }
        assert!(w.window_accepted > 0);
        assert!(w.straight_accepted > 0);
    }

    #[test]
    fn chain_reduces_to_dedicated_1d_engine() {
        // Same Hamiltonian, same Δτ: the generic engine on a chain and
        // the specialized 1-D engine must agree within errors.
        let beta = 1.0;
        let m = 8;
        let mut generic = GenericWorldline::new(Chain::new(8), heis(beta, m));
        let mut rng = Xoshiro256StarStar::new(2);
        let gs = generic.run(&mut rng, 2_000, 20_000);

        let mut dedicated = crate::Worldline::new(crate::WorldlineParams {
            l: 8,
            jx: 1.0,
            jz: 1.0,
            beta,
            m,
        });
        let mut rng2 = Xoshiro256StarStar::new(3);
        let ds = dedicated.run(&mut rng2, 2_000, 20_000);

        let bg = BinningAnalysis::new(&gs.energy, 16);
        let bd = BinningAnalysis::new(&ds.energy, 16);
        let err = (bg.error().powi(2) + bd.error().powi(2)).sqrt().max(5e-4);
        assert!(
            (bg.mean - bd.mean).abs() < 5.0 * err,
            "generic {} ± {} vs dedicated {} ± {}",
            bg.mean,
            bg.error(),
            bd.mean,
            bd.error()
        );
    }

    #[test]
    fn chain_matches_ed() {
        let beta = 1.0;
        let m = 8;
        let mut w = GenericWorldline::new(Chain::new(8), heis(beta, m));
        let mut rng = Xoshiro256StarStar::new(4);
        let series = w.run(&mut rng, 2_000, 20_000);
        let spec = full_spectrum(&Chain::new(8), &XxzParams::heisenberg(1.0));
        let exact = spec.energy(beta) / 8.0;
        let b = BinningAnalysis::new(&series.energy, 16);
        let trotter = (beta / m as f64).powi(2) * 2.0;
        assert!(
            (b.mean - exact).abs() < 4.0 * b.error().max(3e-4) + trotter,
            "E {} ± {} vs ED {exact}",
            b.mean,
            b.error()
        );
    }

    #[test]
    fn square_8x8_matches_sse_at_beta_one() {
        // SSE is Trotter-error-free and winding-unrestricted. At L = 8
        // the world-line engine's zero-winding restriction is negligible,
        // so the two must agree within errors + the O(Δτ²) bound.
        let beta = 1.0;
        let m = 8;
        let mut w = GenericWorldline::new(Square::new(8, 8), heis(beta, m));
        let mut rng = Xoshiro256StarStar::new(5);
        let series = w.run(&mut rng, 5_000, 20_000);
        let bw = BinningAnalysis::new(&series.energy, 16);

        let lat2 = Square::new(8, 8);
        let mut rng2 = Xoshiro256StarStar::new(6);
        let mut sse = qmc_sse::Sse::new(&lat2, 1.0, beta, &mut rng2);
        let ss = sse.run(&mut rng2, 3_000, 25_000);
        let bs = BinningAnalysis::new(&ss.energy_samples(), 16);

        let err = (bw.error().powi(2) + bs.error().powi(2)).sqrt().max(5e-4);
        let trotter = (beta / m as f64).powi(2) * 1.0;
        assert!(
            (bw.mean - bs.mean).abs() < 4.0 * err + trotter,
            "worldline {} ± {} vs SSE {} ± {}",
            bw.mean,
            bw.error(),
            bs.mean,
            bs.error()
        );
    }

    #[test]
    fn square_4x4_winding_bias_is_characterized() {
        // On a circumference-4 lattice the zero-winding restriction of
        // local world-line moves is *visible*: the engine should sit a
        // small, stable amount above the winding-complete SSE answer.
        // This test pins the effect (it documents a real limitation of
        // the 1993-era algorithm rather than hiding it in tolerances).
        let beta = 1.0;
        let mut w = GenericWorldline::new(Square::new(4, 4), heis(beta, 8));
        let mut rng = Xoshiro256StarStar::new(7);
        let series = w.run(&mut rng, 5_000, 30_000);
        let bw = BinningAnalysis::new(&series.energy, 16);

        let lat2 = Square::new(4, 4);
        let mut rng2 = Xoshiro256StarStar::new(8);
        let mut sse = qmc_sse::Sse::new(&lat2, 1.0, beta, &mut rng2);
        let ss = sse.run(&mut rng2, 3_000, 30_000);
        let bs = BinningAnalysis::new(&ss.energy_samples(), 16);

        let gap = bw.mean - bs.mean; // worldline above (less negative)
        assert!(
            gap > 0.005 && gap < 0.05,
            "winding bias out of characterized band: WL {} vs SSE {} (gap {gap})",
            bw.mean,
            bs.mean
        );
    }

    #[test]
    fn ring_moves_are_essential_in_2d() {
        // Without ring moves the per-bond hop parity is conserved and the
        // ring-exchange sector is unreachable: the energy freezes ~0.02
        // above the correct value. Verify the ring moves actually fire
        // and shift the energy downward.
        let beta = 1.0;
        let mut with_rings = GenericWorldline::new(Square::new(4, 4), heis(beta, 6));
        let mut rng = Xoshiro256StarStar::new(9);
        let series = with_rings.run(&mut rng, 3_000, 15_000);
        assert!(with_rings.ring_accepted > 0, "ring moves never accepted");
        let b = BinningAnalysis::new(&series.energy, 16);
        // The no-ring engine converges to ≈ −0.382 at m=6 (measured);
        // with rings the answer must be clearly below that plateau.
        assert!(
            b.mean < -0.390,
            "E {} ± {} — ring sector apparently not sampled",
            b.mean,
            b.error()
        );
    }

    #[test]
    fn square_4x4_low_t_approaches_lanczos() {
        let beta = 4.0;
        let m = 32;
        let lat = Square::new(4, 4);
        let mut w = GenericWorldline::new(lat, heis(beta, m));
        let mut rng = Xoshiro256StarStar::new(10);
        let series = w.run(&mut rng, 4_000, 15_000);
        let b = BinningAnalysis::new(&series.energy, 16);

        let lat2 = Square::new(4, 4);
        let op = XxzSectorOp::new(&lat2, XxzParams::heisenberg(1.0), 8);
        let e0 = lanczos_ground_energy(&op, 9, 300, 1e-10) / 16.0;
        // Thermal correction at βJ = 4 is ≈ +0.018 and the winding bias
        // adds a further small positive shift; the estimate must land
        // just above the ground state, never below it.
        assert!(
            b.mean > e0 - 0.005 && b.mean < e0 + 0.06,
            "E {} ± {} vs E0 {e0}",
            b.mean,
            b.error()
        );
    }

    #[test]
    fn trotter_bias_monotone_in_m_2d() {
        // The discrete-Trotter energy approaches the Δτ → 0 limit from
        // below (measured slope is negative, as in 1-D/F2): coarser m is
        // more negative.
        let beta = 1.0;
        let run_m = |m: usize, seed: u64| {
            let mut w = GenericWorldline::new(Square::new(4, 4), heis(beta, m));
            let mut rng = Xoshiro256StarStar::new(seed);
            let s = w.run(&mut rng, 3_000, 20_000);
            BinningAnalysis::new(&s.energy, 16).mean
        };
        let coarse = run_m(3, 11);
        let fine = run_m(12, 12);
        assert!(
            coarse < fine - 0.005,
            "expected E(m=3) {coarse} clearly below E(m=12) {fine}"
        );
    }

    #[test]
    fn ratio_consistency_with_full_recomputation_2d() {
        let mut w = GenericWorldline::new(Square::new(4, 4), heis(1.2, 3));
        let mut rng = Xoshiro256StarStar::new(11);
        for _ in 0..20 {
            w.sweep(&mut rng);
        }
        // straight-line ratio vs full log-weight difference
        let before = w.log_weight();
        let flips: Vec<(usize, usize)> = (0..w.rows()).map(|r| (5usize, r)).collect();
        let ratio = w.ratio_for_flips(&flips);
        if ratio > 0.0 {
            for &(s, r) in &flips {
                w.flip(s, r);
            }
            let after = w.log_weight();
            assert!(
                (ratio.ln() - (after - before)).abs() < 1e-9,
                "incremental {} vs full {}",
                ratio.ln(),
                after - before
            );
        }
    }

    #[test]
    #[should_panic(expected = "two Trotter steps")]
    fn rejects_single_step() {
        GenericWorldline::new(Chain::new(4), heis(1.0, 1));
    }

    #[test]
    fn cell_weight_table_matches_classify_exhaustively() {
        // The 16-entry pattern table must agree bit-for-bit with the
        // classify + weight-match path over every corner-spin pattern.
        let w = GenericWorldline::new(Square::new(4, 4), heis(1.3, 3));
        for idx in 0..16usize {
            let bit = |b: usize| (idx >> b) & 1 == 1;
            let direct = w
                .weights
                .weight(classify((bit(0), bit(1)), (bit(2), bit(3))));
            assert_eq!(
                w.cell_w[idx].to_bits(),
                direct.to_bits(),
                "pattern {idx:04b}: table {} vs direct {direct}",
                w.cell_w[idx]
            );
        }
    }
}
