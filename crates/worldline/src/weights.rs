//! The two-site imaginary-time propagator and its τ-derivatives.
//!
//! For a bond Hamiltonian `h = Jx (SˣSˣ + SʸSʸ) + Jz SᶻSᶻ` the propagator
//! `exp(−Δτ h)` in the basis {↑↑, ↑↓, ↓↑, ↓↓} is
//!
//! ```text
//!   e^{−ΔτJz/4}                                   on ↑↑→↑↑, ↓↓→↓↓
//!   e^{+ΔτJz/4} cosh(ΔτJx/2)                      on ↑↓→↑↓, ↓↑→↓↑
//!   −e^{+ΔτJz/4} sinh(ΔτJx/2)                     on ↑↓→↓↑, ↓↑→↑↓
//! ```
//!
//! On a bipartite lattice the sublattice rotation `S± → −S±` on one
//! sublattice flips the sign of `Jx`, i.e. `sinh(ΔτJx/2) → |sinh|`; the
//! Monte Carlo therefore uses `|Jx|` and all weights are non-negative.
//! (For an FM transverse coupling no rotation is needed; either way the
//! *magnitudes* below are the sampling weights and diagonal observables
//! are unaffected.)

/// Plaquette transition classes (the only Sᶻ-conserving ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaqClass {
    /// Parallel spins propagating straight: ↑↑→↑↑ or ↓↓→↓↓.
    DiagonalParallel,
    /// Antiparallel spins propagating straight: ↑↓→↑↓ or ↓↑→↓↑.
    DiagonalAnti,
    /// Antiparallel spins exchanging: ↑↓→↓↑ or ↓↑→↑↓.
    Flip,
    /// Anything that violates plaquette Sᶻ conservation (weight 0).
    Forbidden,
}

/// Classify a plaquette from its four corner spins (`false` = ↓).
#[inline]
pub fn classify(bottom: (bool, bool), top: (bool, bool)) -> PlaqClass {
    let bsum = bottom.0 as u8 + bottom.1 as u8;
    let tsum = top.0 as u8 + top.1 as u8;
    if bsum != tsum {
        return PlaqClass::Forbidden;
    }
    if bottom == top {
        if bottom.0 == bottom.1 {
            PlaqClass::DiagonalParallel
        } else {
            PlaqClass::DiagonalAnti
        }
    } else if bottom.0 != bottom.1 {
        PlaqClass::Flip
    } else {
        PlaqClass::Forbidden
    }
}

/// Precomputed plaquette weights and estimator coefficients for one
/// `(Jx, Jz, Δτ)`.
#[derive(Debug, Clone, Copy)]
pub struct PlaqWeights {
    /// `Δτ`.
    pub dtau: f64,
    /// Weight of [`PlaqClass::DiagonalParallel`].
    pub w_parallel: f64,
    /// Weight of [`PlaqClass::DiagonalAnti`].
    pub w_anti: f64,
    /// Weight of [`PlaqClass::Flip`] (magnitude after sublattice rotation).
    pub w_flip: f64,
    /// Energy coefficient `−∂ ln w/∂Δτ` per class.
    pub e_parallel: f64,
    /// Energy coefficient of the anti-parallel diagonal class.
    pub e_anti: f64,
    /// Energy coefficient of the flip class.
    pub e_flip: f64,
    /// `∂e/∂Δτ` per class (heat-capacity correction term).
    pub de_parallel: f64,
    /// `∂e/∂Δτ` for the anti-parallel diagonal class.
    pub de_anti: f64,
    /// `∂e/∂Δτ` for the flip class.
    pub de_flip: f64,
}

impl PlaqWeights {
    /// Compute the table for couplings `(jx, jz)` and imaginary-time step
    /// `dtau`.
    pub fn new(jx: f64, jz: f64, dtau: f64) -> Self {
        assert!(dtau > 0.0, "Δτ must be positive");
        let jx = jx.abs(); // sublattice rotation (see module docs)
        let k = dtau * jx / 2.0;
        let gz = dtau * jz / 4.0;
        let (ch, sh) = (k.cosh(), k.sinh());
        // Energies: e = −∂ln w/∂Δτ.
        //  parallel: w = e^{−gz}             → e = Jz/4
        //  anti:     w = e^{+gz} cosh k      → e = −Jz/4 − (Jx/2) tanh k
        //  flip:     w = e^{+gz} sinh k      → e = −Jz/4 − (Jx/2) coth k
        let e_parallel = jz / 4.0;
        let e_anti = -jz / 4.0 - (jx / 2.0) * (sh / ch);
        let e_flip = -jz / 4.0 - (jx / 2.0) * (ch / sh.max(1e-300));
        // Derivatives ∂e/∂Δτ:
        //  parallel: 0
        //  anti: −(Jx/2)² sech² k
        //  flip: +(Jx/2)² csch² k
        let de_parallel = 0.0;
        let de_anti = -(jx / 2.0).powi(2) / (ch * ch);
        let de_flip = (jx / 2.0).powi(2) / (sh * sh).max(1e-300);
        Self {
            dtau,
            w_parallel: (-gz).exp(),
            w_anti: gz.exp() * ch,
            w_flip: gz.exp() * sh,
            e_parallel,
            e_anti,
            e_flip,
            de_parallel,
            de_anti,
            de_flip,
        }
    }

    /// Sampling weight of a class.
    #[inline]
    pub fn weight(&self, class: PlaqClass) -> f64 {
        match class {
            PlaqClass::DiagonalParallel => self.w_parallel,
            PlaqClass::DiagonalAnti => self.w_anti,
            PlaqClass::Flip => self.w_flip,
            PlaqClass::Forbidden => 0.0,
        }
    }

    /// Energy estimator coefficient `−∂ ln w/∂Δτ` of a class.
    #[inline]
    pub fn energy(&self, class: PlaqClass) -> f64 {
        match class {
            PlaqClass::DiagonalParallel => self.e_parallel,
            PlaqClass::DiagonalAnti => self.e_anti,
            PlaqClass::Flip => self.e_flip,
            PlaqClass::Forbidden => f64::NAN,
        }
    }

    /// `∂e/∂Δτ` of a class (enters the specific-heat estimator).
    #[inline]
    pub fn denergy(&self, class: PlaqClass) -> f64 {
        match class {
            PlaqClass::DiagonalParallel => self.de_parallel,
            PlaqClass::DiagonalAnti => self.de_anti,
            PlaqClass::Flip => self.de_flip,
            PlaqClass::Forbidden => f64::NAN,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_all_sixteen_transitions() {
        use PlaqClass::*;
        let t = true;
        let f = false;
        assert_eq!(classify((t, t), (t, t)), DiagonalParallel);
        assert_eq!(classify((f, f), (f, f)), DiagonalParallel);
        assert_eq!(classify((t, f), (t, f)), DiagonalAnti);
        assert_eq!(classify((f, t), (f, t)), DiagonalAnti);
        assert_eq!(classify((t, f), (f, t)), Flip);
        assert_eq!(classify((f, t), (t, f)), Flip);
        // Sz-violating examples
        assert_eq!(classify((t, t), (t, f)), Forbidden);
        assert_eq!(classify((f, f), (t, f)), Forbidden);
        assert_eq!(classify((t, t), (f, f)), Forbidden);
        assert_eq!(classify((t, f), (t, t)), Forbidden);
    }

    #[test]
    fn weights_match_matrix_exponential_2x2() {
        // Directly exponentiate the central 2×2 block
        // [[−Jz/4, Jx/2], [Jx/2, −Jz/4]] and compare.
        let (jx, jz, dtau) = (1.3, 0.8, 0.07);
        let w = PlaqWeights::new(jx, jz, dtau);
        // exp(−Δτ h) central block: e^{ΔτJz/4}[[cosh, −sinh],[−sinh, cosh]]
        let k = dtau * jx / 2.0;
        let expect_anti = (dtau * jz / 4.0).exp() * k.cosh();
        let expect_flip = (dtau * jz / 4.0).exp() * k.sinh();
        assert!((w.w_anti - expect_anti).abs() < 1e-14);
        assert!((w.w_flip - expect_flip).abs() < 1e-14);
        assert!((w.w_parallel - (-dtau * jz / 4.0).exp()).abs() < 1e-14);
    }

    #[test]
    fn trace_of_propagator_matches_two_site_partition_function() {
        // Tr exp(−Δτ h) over the 4-dim two-site space must equal
        // 2 w_parallel + 2 w_anti (flip terms are off-diagonal).
        // Two-site XXZ eigenvalues: Jz/4 (×2 — the parallel states are
        // eigenstates), −Jz/4 ± Jx/2.
        let (jx, jz, b) = (0.9, 1.1, 0.23);
        let w = PlaqWeights::new(jx, jz, b);
        let direct = 2.0 * (-b * jz / 4.0).exp()
            + (-b * (-jz / 4.0 + jx / 2.0)).exp()
            + (-b * (-jz / 4.0 - jx / 2.0)).exp();
        let from_weights = 2.0 * w.w_parallel + 2.0 * w.w_anti;
        assert!((direct - from_weights).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn energy_coefficients_match_numerical_derivative() {
        let (jx, jz) = (1.0, 0.6);
        let dtau = 0.1;
        let d = 1e-6;
        let wp = PlaqWeights::new(jx, jz, dtau + d);
        let wm = PlaqWeights::new(jx, jz, dtau - d);
        let w0 = PlaqWeights::new(jx, jz, dtau);
        let cases: [(fn(&PlaqWeights) -> f64, f64); 3] = [
            (|w| w.w_parallel, w0.e_parallel),
            (|w| w.w_anti, w0.e_anti),
            (|w| w.w_flip, w0.e_flip),
        ];
        for (sel, e) in cases {
            let num = -(sel(&wp).ln() - sel(&wm).ln()) / (2.0 * d);
            assert!((num - e).abs() < 1e-6, "numeric {num} vs analytic {e}");
        }
    }

    #[test]
    fn denergy_matches_numerical_derivative() {
        let (jx, jz) = (1.0, 0.6);
        let dtau = 0.1;
        let d = 1e-6;
        let wp = PlaqWeights::new(jx, jz, dtau + d);
        let wm = PlaqWeights::new(jx, jz, dtau - d);
        let w0 = PlaqWeights::new(jx, jz, dtau);
        let checks = [
            ((wp.e_anti - wm.e_anti) / (2.0 * d), w0.de_anti),
            ((wp.e_flip - wm.e_flip) / (2.0 * d), w0.de_flip),
        ];
        for (num, ana) in checks {
            assert!((num - ana).abs() < 1e-5, "numeric {num} vs analytic {ana}");
        }
    }

    #[test]
    fn afm_and_fm_transverse_weights_identical() {
        // Sublattice rotation: |Jx| is what matters.
        let a = PlaqWeights::new(1.0, 0.5, 0.1);
        let b = PlaqWeights::new(-1.0, 0.5, 0.1);
        assert_eq!(a.w_flip, b.w_flip);
        assert_eq!(a.w_anti, b.w_anti);
    }

    #[test]
    fn all_weights_nonnegative() {
        for &(jx, jz) in &[(1.0, 1.0), (-1.0, 1.0), (1.0, -1.0), (0.5, 0.0)] {
            let w = PlaqWeights::new(jx, jz, 0.05);
            assert!(w.w_parallel > 0.0);
            assert!(w.w_anti > 0.0);
            assert!(w.w_flip >= 0.0);
            assert_eq!(w.weight(PlaqClass::Forbidden), 0.0);
        }
    }
}
