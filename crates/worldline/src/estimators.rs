//! Observable estimators on world-line configurations.
//!
//! The energy estimator is the standard τ-derivative of the log weight:
//! `E = ⟨ε⟩` with `ε = (1/m) Σ_cells e(class)`, and the specific heat
//! needs the well-known correction term
//! `C = β² [⟨ε²⟩ − ⟨ε⟩² − ⟨∂ε/∂β⟩]` because `ε` itself depends on β.

use crate::engine::Worldline;
use qmc_stats::jackknife_pair;

/// One sweep's measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Energy per site, `ε/L`.
    pub energy_per_site: f64,
    /// `∂ε/∂β` per site (specific-heat correction).
    pub denergy_per_site: f64,
    /// Total magnetization `M = Σ Sᶻ` (row 0; conserved across rows).
    pub magnetization: f64,
    /// Staggered magnetization `Σ (−1)^i Sᶻ_i` of row 0.
    pub staggered: f64,
}

/// Measure the current configuration.
pub fn measure(w: &Worldline) -> Measurement {
    let p = *w.params();
    let m = p.m as f64;
    let wt = *w.weights();
    let mut eps = 0.0;
    let mut deps = 0.0;
    w.for_each_cell(|class| {
        eps += wt.energy(class);
        deps += wt.denergy(class);
    });
    // ε = (1/m) Σ e_cell ; ∂ε/∂β = (1/m²) Σ ∂e/∂Δτ (since Δτ = β/m).
    let energy = eps / m / p.l as f64;
    let denergy = deps / (m * m) / p.l as f64;

    let mut mag = 0.0;
    let mut stag = 0.0;
    for i in 0..p.l {
        let s = if w.spin(i, 0) { 0.5 } else { -0.5 };
        mag += s;
        stag += if i % 2 == 0 { s } else { -s };
    }

    Measurement {
        energy_per_site: energy,
        denergy_per_site: denergy,
        magnetization: mag,
        staggered: stag,
    }
}

/// Time series of measurements plus accumulated spin correlations.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    /// Chain length (for normalization).
    pub l: usize,
    /// Inverse temperature copied at recording time (set by the engine's
    /// `run`; 0 until the first record).
    beta: f64,
    /// Energy per site, one entry per sweep.
    pub energy: Vec<f64>,
    /// `∂ε/∂β` per site.
    pub denergy: Vec<f64>,
    /// Total magnetization.
    pub magnetization: Vec<f64>,
    /// Staggered magnetization of row 0.
    pub staggered: Vec<f64>,
    /// Susceptibility samples `β M² / L` (use [`TimeSeries::susceptibility`]
    /// for the mean-subtracted estimate).
    pub chi: Vec<f64>,
    /// Accumulated `⟨Sᶻ_i Sᶻ_{i+r}⟩` sums, index r ∈ 0..=L/2.
    corr_sum: Vec<f64>,
    /// Number of correlation samples accumulated.
    corr_count: u64,
    /// Rows captured by the last successful snapshot: completed row
    /// chunks below this mark are immutable and checkpoint as clean.
    clean_rows: usize,
}

impl TimeSeries {
    /// Empty series for a chain of length `l`.
    pub fn new(l: usize) -> Self {
        Self {
            l,
            beta: 0.0,
            energy: Vec::new(),
            denergy: Vec::new(),
            magnetization: Vec::new(),
            staggered: Vec::new(),
            chi: Vec::new(),
            corr_sum: vec![0.0; l / 2 + 1],
            corr_count: 0,
            clean_rows: 0,
        }
    }

    /// Accumulate the equal-time spin correlation `⟨Sᶻ_i Sᶻ_{i+r}⟩`
    /// averaged over all sites and imaginary-time rows of the current
    /// configuration.
    pub fn record_correlations(&mut self, w: &Worldline) {
        let l = self.l;
        let rows = w.rows();
        for (r, slot) in self.corr_sum.iter_mut().enumerate() {
            let mut acc = 0.0;
            for t in 0..rows {
                for i in 0..l {
                    let a = if w.spin(i, t) { 0.5 } else { -0.5 };
                    let b = if w.spin((i + r) % l, t) { 0.5 } else { -0.5 };
                    acc += a * b;
                }
            }
            *slot += acc / (l * rows) as f64;
        }
        self.corr_count += 1;
    }

    /// Mean equal-time correlation function `C(r)`, r ∈ 0..=L/2.
    pub fn correlations(&self) -> Vec<f64> {
        if self.corr_count == 0 {
            return vec![0.0; self.corr_sum.len()];
        }
        self.corr_sum
            .iter()
            .map(|s| s / self.corr_count as f64)
            .collect()
    }

    /// Record one measurement (β is needed for χ samples; stored from the
    /// first caller context via [`TimeSeries::set_beta`]).
    pub fn record(&mut self, m: &Measurement) {
        self.energy.push(m.energy_per_site);
        self.denergy.push(m.denergy_per_site);
        self.magnetization.push(m.magnetization);
        self.staggered.push(m.staggered);
        self.chi
            .push(self.beta * m.magnetization * m.magnetization / self.l as f64);
    }

    /// Set β for χ normalization (the engine calls this).
    pub fn set_beta(&mut self, beta: f64) {
        self.beta = beta;
    }

    /// Number of recorded sweeps.
    pub fn len(&self) -> usize {
        self.energy.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.energy.is_empty()
    }

    /// Mean energy per site.
    pub fn mean_energy(&self) -> f64 {
        mean(&self.energy)
    }

    /// Uniform susceptibility per site,
    /// `χ = β(⟨M²⟩ − ⟨M⟩²)/L`, with a jackknife error.
    pub fn susceptibility(&self) -> (f64, f64) {
        let m2: Vec<f64> = self.magnetization.iter().map(|m| m * m).collect();
        let beta = self.beta;
        let l = self.l as f64;
        let est = jackknife_pair(
            &m2,
            &self.magnetization,
            32.min(self.len() / 2).max(2),
            |a, b| beta * (a - b * b) / l,
        );
        (est.value, est.error)
    }

    /// Specific heat per site:
    /// `C = β²[⟨ε²⟩ − ⟨ε⟩² − ⟨∂ε/∂β⟩]·L` … per site this is
    /// `β² L (⟨e²⟩ − ⟨e⟩²) − β²⟨∂e/∂β⟩` with `e = ε/L`.
    pub fn specific_heat(&self) -> (f64, f64) {
        let beta = self.beta;
        let l = self.l as f64;
        let e2: Vec<f64> = self.energy.iter().map(|e| e * e).collect();
        let fluct = jackknife_pair(&e2, &self.energy, 32.min(self.len() / 2).max(2), |a, b| {
            beta * beta * l * (a - b * b)
        });
        let de_mean = mean(&self.denergy);
        (fluct.value - beta * beta * de_mean, fluct.error)
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

impl qmc_ckpt::Checkpoint for TimeSeries {
    fn kind(&self) -> &'static str {
        "series.worldline"
    }

    fn save(&self, enc: &mut qmc_ckpt::Encoder) {
        enc.u64(self.l as u64);
        enc.f64(self.beta);
        enc.f64s(&self.energy);
        enc.f64s(&self.denergy);
        enc.f64s(&self.magnetization);
        enc.f64s(&self.staggered);
        enc.f64s(&self.chi);
        enc.f64s(&self.corr_sum);
        enc.u64(self.corr_count);
    }

    fn load(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
        let l = dec.u64()? as usize;
        if l != self.l {
            return Err(qmc_ckpt::CkptError::corrupt(format!(
                "worldline series is for l={}, checkpoint has l={l}",
                self.l
            )));
        }
        self.beta = dec.f64()?;
        self.energy = dec.f64s()?;
        self.denergy = dec.f64s()?;
        self.magnetization = dec.f64s()?;
        self.staggered = dec.f64s()?;
        self.chi = dec.f64s()?;
        let corr_sum = dec.f64s()?;
        if corr_sum.len() != self.corr_sum.len() {
            return Err(qmc_ckpt::CkptError::corrupt(
                "worldline series correlation table has the wrong length",
            ));
        }
        self.corr_sum = corr_sum;
        self.corr_count = dec.u64()?;
        let n = self.energy.len();
        if [
            self.denergy.len(),
            self.magnetization.len(),
            self.staggered.len(),
            self.chi.len(),
        ]
        .iter()
        .any(|&len| len != n)
        {
            return Err(qmc_ckpt::CkptError::corrupt(
                "worldline series columns have unequal lengths",
            ));
        }
        self.clean_rows = 0;
        Ok(())
    }

    fn dirty_sections(&self) -> qmc_ckpt::DirtySections {
        use qmc_ckpt::chunk;
        let mut s = qmc_ckpt::DirtySections::new();
        for k in 0..chunk::count(self.len()) {
            s.push(chunk::name(k), chunk::is_dirty(k, self.clean_rows));
        }
        // Head last: it carries β, the correlation accumulators (which
        // change every sweep) and the total row count, so restoring it
        // validates that every chunk before it arrived intact.
        s.push("head", true);
        s
    }

    fn save_section(&self, name: &str, enc: &mut qmc_ckpt::Encoder) {
        use qmc_ckpt::chunk;
        if name == "head" {
            enc.u64(self.l as u64);
            enc.f64(self.beta);
            enc.f64s(&self.corr_sum);
            enc.u64(self.corr_count);
            enc.u64(self.len() as u64);
            return;
        }
        let k = chunk::parse(name)
            .unwrap_or_else(|| panic!("series.worldline has no checkpoint section {name:?}"));
        enc.u64(k as u64);
        let r = chunk::range(k, self.len());
        enc.f64s(&self.energy[r.clone()]);
        enc.f64s(&self.denergy[r.clone()]);
        enc.f64s(&self.magnetization[r.clone()]);
        enc.f64s(&self.staggered[r.clone()]);
        enc.f64s(&self.chi[r]);
    }

    fn load_section(
        &mut self,
        name: &str,
        dec: &mut qmc_ckpt::Decoder,
    ) -> Result<(), qmc_ckpt::CkptError> {
        use qmc_ckpt::chunk;
        if name == "head" {
            let l = dec.u64()? as usize;
            if l != self.l {
                return Err(qmc_ckpt::CkptError::corrupt(format!(
                    "worldline series is for l={}, checkpoint has l={l}",
                    self.l
                )));
            }
            self.beta = dec.f64()?;
            let corr_sum = dec.f64s()?;
            if corr_sum.len() != self.corr_sum.len() {
                return Err(qmc_ckpt::CkptError::corrupt(
                    "worldline series correlation table has the wrong length",
                ));
            }
            self.corr_sum = corr_sum;
            self.corr_count = dec.u64()?;
            let n = dec.u64()? as usize;
            if n != self.len() {
                return Err(qmc_ckpt::CkptError::corrupt(format!(
                    "worldline series head claims {n} rows, chunks supplied {}",
                    self.len()
                )));
            }
            return Ok(());
        }
        let Some(k) = chunk::parse(name) else {
            return Err(qmc_ckpt::CkptError::MissingSection {
                name: name.to_string(),
            });
        };
        let stored = dec.u64()? as usize;
        if stored != k {
            return Err(qmc_ckpt::CkptError::corrupt(format!(
                "worldline series chunk {k} carries index {stored}"
            )));
        }
        if k == 0 {
            self.energy.clear();
            self.denergy.clear();
            self.magnetization.clear();
            self.staggered.clear();
            self.chi.clear();
            self.clean_rows = 0;
        }
        if self.len() != k * chunk::ROWS {
            return Err(qmc_ckpt::CkptError::corrupt(format!(
                "worldline series chunk {k} arrived at row {}",
                self.len()
            )));
        }
        let energy = dec.f64s()?;
        let denergy = dec.f64s()?;
        let magnetization = dec.f64s()?;
        let staggered = dec.f64s()?;
        let chi = dec.f64s()?;
        let n = energy.len();
        if n == 0
            || n > chunk::ROWS
            || denergy.len() != n
            || magnetization.len() != n
            || staggered.len() != n
            || chi.len() != n
        {
            return Err(qmc_ckpt::CkptError::corrupt(format!(
                "worldline series chunk {k} has malformed columns"
            )));
        }
        self.energy.extend_from_slice(&energy);
        self.denergy.extend_from_slice(&denergy);
        self.magnetization.extend_from_slice(&magnetization);
        self.staggered.extend_from_slice(&staggered);
        self.chi.extend_from_slice(&chi);
        Ok(())
    }

    fn mark_clean(&mut self) {
        self.clean_rows = self.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::WorldlineParams;
    use crate::weights::{classify, PlaqWeights};
    use qmc_rng::Xoshiro256StarStar;
    use qmc_stats::BinningAnalysis;

    /// Brute-force reference: enumerate every valid zero-seam-crossing
    /// configuration of a small space-time lattice and compute the exact
    /// *discrete-Trotter* expectation values the sampler should reproduce
    /// (this isolates sampler correctness from Trotter error).
    fn enumerate_reference(p: WorldlineParams) -> (f64, f64) {
        let rows = 2 * p.m;
        let l = p.l;
        let wt = PlaqWeights::new(p.jx, p.jz, p.dtau());
        let states = 1usize << l;
        let mut z = 0.0;
        let mut e_acc = 0.0;
        let mut chi_acc = 0.0;

        // Iterate over all row-state tuples via an odometer.
        let mut cfg = vec![0usize; rows];
        loop {
            // weight & validity
            let spin = |row: usize, i: usize| cfg[row] >> i & 1 == 1;
            let mut w = 1.0;
            let mut eps = 0.0;
            let mut seam = 0i64;
            'weight: {
                for t in 0..rows {
                    let tu = (t + 1) % rows;
                    let start = t % 2;
                    for i in (start..l).step_by(2) {
                        let j = (i + 1) % l;
                        let class = classify((spin(t, i), spin(t, j)), (spin(tu, i), spin(tu, j)));
                        let cw = wt.weight(class);
                        if cw <= 0.0 {
                            w = 0.0;
                            break 'weight;
                        }
                        w *= cw;
                        eps += wt.energy(class);
                        if i == l - 1 && class == crate::weights::PlaqClass::Flip {
                            seam += if spin(t, i) { 1 } else { -1 };
                        }
                    }
                }
            }
            if w > 0.0 && seam == 0 {
                z += w;
                e_acc += w * eps / p.m as f64 / l as f64;
                let m: f64 = (0..l).map(|i| if spin(0, i) { 0.5 } else { -0.5 }).sum();
                chi_acc += w * p.beta * m * m / l as f64;
            }
            // odometer increment
            let mut r = 0;
            loop {
                cfg[r] += 1;
                if cfg[r] < states {
                    break;
                }
                cfg[r] = 0;
                r += 1;
                if r == rows {
                    return (e_acc / z, chi_acc / z);
                }
            }
        }
    }

    #[test]
    fn sampler_reproduces_exact_discrete_trotter_values() {
        // L=4, m=2 (4 rows of 16 states → 65 536 configs): the QMC answer
        // must match the brute-force enumeration of its *own* discrete
        // distribution, winding sector included.
        let p = WorldlineParams {
            l: 4,
            jx: 1.0,
            jz: 1.0,
            beta: 1.0,
            m: 2,
        };
        let (e_exact, chi_exact) = enumerate_reference(p);
        let mut w = crate::engine::Worldline::new(p);
        let mut rng = Xoshiro256StarStar::new(314);
        let series = w.run(&mut rng, 2_000, 60_000);
        let be = BinningAnalysis::new(&series.energy, 16);
        assert!(
            (be.mean - e_exact).abs() < 5.0 * be.error().max(5e-4),
            "E {} ± {} vs exact discrete {}",
            be.mean,
            be.error(),
            e_exact
        );
        let bchi = BinningAnalysis::new(&series.chi, 16);
        assert!(
            (bchi.mean - chi_exact).abs() < 5.0 * bchi.error().max(5e-4),
            "χ {} ± {} vs exact discrete {}",
            bchi.mean,
            bchi.error(),
            chi_exact
        );
    }

    #[test]
    fn sampler_exactness_xy_model() {
        let p = WorldlineParams {
            l: 4,
            jx: 1.0,
            jz: 0.0,
            beta: 0.8,
            m: 2,
        };
        let (e_exact, _) = enumerate_reference(p);
        let mut w = crate::engine::Worldline::new(p);
        let mut rng = Xoshiro256StarStar::new(2718);
        let series = w.run(&mut rng, 2_000, 60_000);
        let be = BinningAnalysis::new(&series.energy, 16);
        assert!(
            (be.mean - e_exact).abs() < 5.0 * be.error().max(5e-4),
            "E {} ± {} vs exact discrete {}",
            be.mean,
            be.error(),
            e_exact
        );
    }

    #[test]
    fn ferromagnetic_ising_limit_ground_state_energy() {
        // jx→0 (tiny), jz=−1 (FM), low T: world lines freeze into the
        // aligned state; E/site → jz/4 = −0.25.
        let p = WorldlineParams {
            l: 6,
            jx: 1e-6,
            jz: -1.0,
            beta: 8.0,
            m: 16,
        };
        let mut w = crate::engine::Worldline::new(p);
        let mut rng = Xoshiro256StarStar::new(10);
        let series = w.run(&mut rng, 3000, 3000);
        assert!(
            (series.mean_energy() + 0.25).abs() < 0.02,
            "E = {}",
            series.mean_energy()
        );
    }

    #[test]
    fn timeseries_bookkeeping() {
        let mut ts = TimeSeries::new(4);
        assert!(ts.is_empty());
        ts.set_beta(2.0);
        ts.record(&Measurement {
            energy_per_site: -0.3,
            denergy_per_site: 0.0,
            magnetization: 1.0,
            staggered: 0.0,
        });
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.energy[0], -0.3);
        // χ sample = β M²/L = 2·1/4
        assert!((ts.chi[0] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn susceptibility_subtracts_mean_magnetization() {
        let mut ts = TimeSeries::new(2);
        ts.set_beta(1.0);
        // Alternate M = ±1: ⟨M⟩ = 0, ⟨M²⟩ = 1 → χ = 1/2.
        for k in 0..64 {
            ts.record(&Measurement {
                energy_per_site: 0.0,
                denergy_per_site: 0.0,
                magnetization: if k % 2 == 0 { 1.0 } else { -1.0 },
                staggered: 0.0,
            });
        }
        let (chi, _) = ts.susceptibility();
        assert!((chi - 0.5).abs() < 1e-12, "chi = {chi}");
    }
}
