//! Replica-exchange Monte Carlo (parallel tempering) over the world-line
//! engine.
//!
//! `I` replicas at inverse temperatures `β_1 < … < β_I` (all sharing the
//! same `l` and Trotter number `m`) run independent world-line updates;
//! periodically, neighbouring pairs propose to *swap configurations* with
//!
//! `P = min(1, exp[lwₖ(X_{k+1}) + lw_{k+1}(Xₖ) − lwₖ(Xₖ) − lw_{k+1}(X_{k+1})])`.
//!
//! Swapping configurations (rather than temperatures) keeps each
//! replica's measurement temperature fixed — convenient for both the
//! serial ladder and the one-replica-per-rank parallel driver, where rank
//! ↔ β never changes and only configuration payloads travel.

use qmc_comm::{util, Communicator, ReduceOp};
use qmc_rng::{Rng64, SplitMix64};
use qmc_worldline::weights::PlaqWeights;
use qmc_worldline::{Worldline, WorldlineParams};

/// Exchange statistics of a tempering run.
#[derive(Debug, Clone, Default)]
pub struct PtStats {
    /// Per-pair accepted swaps (pair k = temperatures k, k+1).
    pub accepted: Vec<u64>,
    /// Per-pair attempted swaps.
    pub attempted: Vec<u64>,
    /// Completed walker round trips (slot 0 → top slot → slot 0).
    pub round_trips: u64,
}

impl PtStats {
    /// Acceptance rate of pair `k` (0 when never attempted).
    pub fn rate(&self, k: usize) -> f64 {
        if self.attempted[k] == 0 {
            0.0
        } else {
            self.accepted[k] as f64 / self.attempted[k] as f64
        }
    }
}

/// Serial parallel-tempering ladder.
pub struct PtLadder {
    replicas: Vec<Worldline>,
    betas: Vec<f64>,
    stats: PtStats,
    /// Walker identity currently occupying each slot.
    walker_at: Vec<usize>,
    /// Last extreme slot each walker touched: 0 = bottom, 1 = top,
    /// 2 = none yet. A trip bottom→top→bottom increments `round_trips`.
    walker_phase: Vec<u8>,
}

impl PtLadder {
    /// Build a ladder; `betas` must be strictly increasing.
    pub fn new(l: usize, jx: f64, jz: f64, m: usize, betas: Vec<f64>) -> Self {
        assert!(betas.len() >= 2, "need at least two temperatures");
        assert!(
            betas.windows(2).all(|w| w[0] < w[1]),
            "β ladder must be strictly increasing"
        );
        let replicas = betas
            .iter()
            .map(|&beta| Worldline::new(WorldlineParams { l, jx, jz, beta, m }))
            .collect();
        let n = betas.len();
        Self {
            replicas,
            stats: PtStats {
                accepted: vec![0; n - 1],
                attempted: vec![0; n - 1],
                round_trips: 0,
            },
            walker_at: (0..n).collect(),
            walker_phase: vec![2; n],
            betas,
        }
    }

    /// The temperature ladder.
    pub fn betas(&self) -> &[f64] {
        &self.betas
    }

    /// Immutable access to replica `k` (slot order = β order).
    pub fn replica(&self, k: usize) -> &Worldline {
        &self.replicas[k]
    }

    /// One update sweep on every replica.
    pub fn sweep<R: Rng64>(&mut self, rng: &mut R) {
        let _span = qmc_obs::span("pt.sweep");
        for r in &mut self.replicas {
            r.sweep(rng);
        }
    }

    /// One exchange phase: pairs `(k, k+1)` with `k ≡ phase (mod 2)`.
    pub fn exchange<R: Rng64>(&mut self, rng: &mut R, phase: usize) {
        let _span = qmc_obs::span("pt.exchange");
        let before: u64 = self.stats.accepted.iter().sum();
        let before_att: u64 = self.stats.attempted.iter().sum();
        let n = self.replicas.len();
        let mut k = phase % 2;
        while k + 1 < n {
            self.stats.attempted[k] += 1;
            let (lo, hi) = self.replicas.split_at_mut(k + 1);
            let a = &mut lo[k];
            let b = &mut hi[0];
            let wa = *a.weights();
            let wb = *b.weights();
            let log_ratio =
                a.log_weight_with(&wb) + b.log_weight_with(&wa) - a.log_weight() - b.log_weight();
            if rng.metropolis(log_ratio.exp()) {
                self.stats.accepted[k] += 1;
                let sa = a.export_spins();
                let sb = b.export_spins();
                a.import_spins(&sb);
                b.import_spins(&sa);
                self.walker_at.swap(k, k + 1);
            }
            k += 2;
        }
        self.update_round_trips();
        if qmc_obs::metrics_enabled() {
            let acc: u64 = self.stats.accepted.iter().sum();
            let att: u64 = self.stats.attempted.iter().sum();
            qmc_obs::counter_add("pt.swaps_accepted", acc - before);
            qmc_obs::counter_add("pt.swaps_attempted", att - before_att);
        }
    }

    fn update_round_trips(&mut self) {
        let top = self.replicas.len() - 1;
        let bottom_walker = self.walker_at[0];
        let top_walker = self.walker_at[top];
        if self.walker_phase[top_walker] == 0 {
            // was last at the bottom, has now reached the top
            self.walker_phase[top_walker] = 1;
        } else if self.walker_phase[top_walker] == 2 {
            self.walker_phase[top_walker] = 1;
        }
        if self.walker_phase[bottom_walker] == 1 {
            self.walker_phase[bottom_walker] = 0;
            self.stats.round_trips += 1;
        } else if self.walker_phase[bottom_walker] == 2 {
            self.walker_phase[bottom_walker] = 0;
        }
    }

    /// Run with `exchange_every` sweeps between exchange phases; returns
    /// per-slot energy series (per site).
    pub fn run<R: Rng64>(
        &mut self,
        rng: &mut R,
        therm: usize,
        sweeps: usize,
        exchange_every: usize,
    ) -> Vec<Vec<f64>> {
        assert!(exchange_every >= 1);
        let mut phase = 0;
        for s in 0..therm {
            self.sweep(rng);
            if s % exchange_every == 0 {
                self.exchange(rng, phase);
                phase ^= 1;
            }
        }
        let mut energies: Vec<Vec<f64>> = vec![Vec::with_capacity(sweeps); self.replicas.len()];
        for s in 0..sweeps {
            self.sweep(rng);
            if s % exchange_every == 0 {
                self.exchange(rng, phase);
                phase ^= 1;
            }
            for (k, r) in self.replicas.iter().enumerate() {
                let e = qmc_worldline::estimators::measure(r).energy_per_site;
                if k == 0 {
                    qmc_obs::health_record("energy", e);
                }
                energies[k].push(e);
            }
        }
        energies
    }

    /// Exchange statistics.
    pub fn stats(&self) -> &PtStats {
        &self.stats
    }
}

/// Configuration of a distributed parallel-tempering run.
#[derive(Debug, Clone)]
pub struct PtConfig {
    /// Chain length.
    pub l: usize,
    /// Transverse exchange.
    pub jx: f64,
    /// Longitudinal exchange.
    pub jz: f64,
    /// Trotter number (shared by all replicas).
    pub m: usize,
    /// Strictly increasing temperature ladder; one rank per entry.
    pub betas: Vec<f64>,
    /// Thermalization sweeps.
    pub therm: usize,
    /// Measured sweeps.
    pub sweeps: usize,
    /// Sweeps between exchange phases.
    pub exchange_every: usize,
    /// Common-random-number seed for swap decisions (must match on every
    /// rank; independent of the per-rank sampling RNG).
    pub seed: u64,
}

/// Distributed parallel tempering: rank `k` owns the replica at
/// `betas[k]` (one rank per temperature, `comm.size() == betas.len()`).
///
/// Swap decisions use common random numbers derived from
/// `(seed, step, pair)`, so both partners reach the same verdict without
/// an extra message; accepted swaps exchange configuration payloads.
/// Returns `(my_energy_series, pair_acceptance_rates)`; the acceptance
/// vector is allreduced so every rank sees all pairs.
pub fn run_pt_parallel<C: Communicator, R: Rng64>(
    comm: &mut C,
    cfg: &PtConfig,
    rng: &mut R,
) -> (Vec<f64>, Vec<f64>) {
    let PtConfig {
        l,
        jx,
        jz,
        m,
        ref betas,
        therm,
        sweeps,
        exchange_every,
        seed,
    } = *cfg;
    assert_eq!(
        comm.size(),
        betas.len(),
        "one rank per temperature required"
    );
    assert!(betas.windows(2).all(|w| w[0] < w[1]));
    let me = comm.rank();
    let mut replica = Worldline::new(WorldlineParams {
        l,
        jx,
        jz,
        beta: betas[me],
        m,
    });
    let neighbor_weights: Vec<PlaqWeights> = betas
        .iter()
        .map(|&b| PlaqWeights::new(jx, jz, b / m as f64))
        .collect();

    let mut accepted = vec![0.0f64; betas.len() - 1];
    let mut attempted = vec![0.0f64; betas.len() - 1];
    let mut energies = Vec::with_capacity(sweeps);
    let mut step = 0u64;

    let do_phase = |replica: &mut Worldline,
                    comm: &mut C,
                    step: u64,
                    accepted: &mut [f64],
                    attempted: &mut [f64]| {
        let _span = qmc_obs::span("pt.exchange");
        let phase = (step % 2) as usize;
        // The pair for me: partner above if my index parity == phase,
        // else partner below (if any).
        let pair_k = if me % 2 == phase {
            me // pair (me, me+1)
        } else {
            me.wrapping_sub(1) // pair (me−1, me)
        };
        if pair_k == usize::MAX || pair_k + 1 >= betas.len() {
            return;
        }
        let partner = if pair_k == me { me + 1 } else { me - 1 };
        // Exchange the two cross log-weights.
        let lw_own = replica.log_weight();
        let lw_cross = replica.log_weight_with(&neighbor_weights[partner]);
        let payload = util::f64s_to_bytes(&[lw_own, lw_cross]);
        let other = util::bytes_to_f64s(&comm.sendrecv_bytes(partner, 7, &payload, partner, 7));
        let (lw_partner_own, lw_partner_cross) = (other[0], other[1]);
        let log_ratio = lw_cross + lw_partner_cross - lw_own - lw_partner_own;
        // Common random number: both sides derive the same coin.
        let coin = SplitMix64::new(
            seed ^ step.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (pair_k as u64) << 32,
        )
        .next_f64_of();
        if me == pair_k {
            attempted[pair_k] += 1.0;
            qmc_obs::counter_add("pt.swaps_attempted", 1);
        }
        if coin < log_ratio.exp() {
            if me == pair_k {
                accepted[pair_k] += 1.0;
                qmc_obs::counter_add("pt.swaps_accepted", 1);
            }
            let mine = replica.export_spins();
            let theirs = comm.sendrecv_bytes(partner, 8, &mine, partner, 8);
            replica.import_spins(&theirs);
        }
    };

    // A run-level span bounds the whole loop so per-rank attribution
    // (compute = span time minus in-span comm) covers loop bookkeeping
    // and the gaps between per-step guards; `pt.step` nests inside it
    // for trace granularity.
    let run_span = qmc_obs::span("pt.run");
    for s in 0..therm + sweeps {
        let _step = qmc_obs::span("pt.step");
        replica.sweep(rng);
        if s % exchange_every == 0 {
            do_phase(&mut replica, comm, step, &mut accepted, &mut attempted);
            step += 1;
        }
        if s >= therm {
            let e = qmc_worldline::estimators::measure(&replica).energy_per_site;
            qmc_obs::health_record("energy", e);
            energies.push(e);
        }
    }
    drop(run_span);

    let acc = comm.allreduce_f64(&accepted, ReduceOp::Sum);
    let att = comm.allreduce_f64(&attempted, ReduceOp::Sum);
    let rates = acc
        .iter()
        .zip(&att)
        .map(|(a, t)| if *t > 0.0 { a / t } else { 0.0 })
        .collect();
    (energies, rates)
}

impl qmc_ckpt::Checkpoint for PtLadder {
    fn kind(&self) -> &'static str {
        "pt.ladder"
    }

    fn save(&self, enc: &mut qmc_ckpt::Encoder) {
        enc.u64(self.replicas.len() as u64);
        for r in &self.replicas {
            enc.state(r);
        }
        enc.u64s(&self.stats.accepted);
        enc.u64s(&self.stats.attempted);
        enc.u64(self.stats.round_trips);
        let walkers: Vec<u64> = self.walker_at.iter().map(|&w| w as u64).collect();
        enc.u64s(&walkers);
        enc.bytes(&self.walker_phase);
    }

    fn load(&mut self, dec: &mut qmc_ckpt::Decoder) -> Result<(), qmc_ckpt::CkptError> {
        let n = dec.u64()? as usize;
        if n != self.replicas.len() {
            return Err(qmc_ckpt::CkptError::corrupt(format!(
                "pt ladder has {} replicas, checkpoint has {n}",
                self.replicas.len()
            )));
        }
        for r in &mut self.replicas {
            dec.load_state(r)?;
        }
        let accepted = dec.u64s()?;
        let attempted = dec.u64s()?;
        if accepted.len() != n - 1 || attempted.len() != n - 1 {
            return Err(qmc_ckpt::CkptError::corrupt(
                "pt ladder pair statistics have the wrong length",
            ));
        }
        self.stats.accepted = accepted;
        self.stats.attempted = attempted;
        self.stats.round_trips = dec.u64()?;
        let walkers = dec.u64s()?;
        let phases = dec.bytes()?;
        if walkers.len() != n || phases.len() != n {
            return Err(qmc_ckpt::CkptError::corrupt(
                "pt ladder walker bookkeeping has the wrong length",
            ));
        }
        if walkers.iter().any(|&w| w as usize >= n) || phases.iter().any(|&p| p > 2) {
            return Err(qmc_ckpt::CkptError::corrupt(
                "pt ladder walker bookkeeping out of range",
            ));
        }
        self.walker_at = walkers.iter().map(|&w| w as usize).collect();
        self.walker_phase = phases.to_vec();
        Ok(())
    }
}

/// Checkpoint policy for [`run_pt_parallel_ckpt`].
pub struct PtCheckpointing<'a> {
    /// Generation store; every rank must name the same directory (the
    /// writes themselves are coordinated through rank 0).
    pub store: &'a qmc_ckpt::CkptStore,
    /// Write a coordinated checkpoint every `every` sweeps (before the
    /// sweep runs, so generation `g` is the state entering sweep `g`).
    pub every: usize,
    /// Write every `full_every`-th generation as a full snapshot; the
    /// ones in between are deltas against the last full generation.
    /// `0` disables deltas — every generation is a full snapshot.
    pub full_every: usize,
    /// Resume from the newest valid generation before sweeping.
    pub resume: bool,
    /// Graceful-drain flag. Must be `Some` on every rank or `None` on
    /// every rank (the drain decision is a collective): rank 0 reads the
    /// flag at each sweep boundary and broadcasts the verdict, so all
    /// ranks write one final coordinated full checkpoint and exit
    /// together. Resuming afterwards continues the identical trajectory
    /// bit for bit; checking only rank 0's flag keeps the ranks from
    /// desynchronizing on a racy read.
    pub stop: Option<&'a std::sync::atomic::AtomicBool>,
    /// β ladder of the run that wrote the checkpoints this run resumes
    /// from, when the ladder was resized to fit a changed world
    /// (elastic shrink or re-grow). `None` — the common case — means
    /// the ladder never changed and a world-size mismatch degrades to a
    /// fresh start as before. With `Some(old_betas)`, a mismatched
    /// checkpoint is *remapped*: each new rank is rehydrated from the
    /// old rank that simulated the same β (bit equality), βs with no
    /// old counterpart join fresh at the resumed sweep boundary, and
    /// pair statistics migrate only where both ends of the pair kept
    /// their βs (all other pairs restart at zero attempts).
    pub elastic_from: Option<&'a [f64]>,
}

/// [`run_pt_parallel`] with coordinated checkpoint/restore and a
/// per-sweep hook.
///
/// The sweep/exchange/measure sequence — and therefore every random draw
/// on every rank — is identical to [`run_pt_parallel`]; a run with
/// `ck = None` returns bit-identical results (pinned by the checkpoint
/// integration tests). Checkpoints are written *before* the sweep whose
/// index they carry, so resuming generation `g` replays sweeps `g..` and
/// lands on the same trajectory. `on_sweep` runs after the checkpoint
/// write at the top of every iteration: it is the injection point for
/// [`qmc_comm::FaultyComm::tick_sweep`]-style rank kills.
pub fn run_pt_parallel_ckpt<C, R, F>(
    comm: &mut C,
    cfg: &PtConfig,
    rng: &mut R,
    ck: Option<&PtCheckpointing<'_>>,
    mut on_sweep: F,
) -> (Vec<f64>, Vec<f64>)
where
    C: Communicator,
    R: Rng64 + qmc_ckpt::Checkpoint,
    F: FnMut(&mut C, usize),
{
    let PtConfig {
        l,
        jx,
        jz,
        m,
        ref betas,
        therm,
        sweeps,
        exchange_every,
        seed,
    } = *cfg;
    assert_eq!(
        comm.size(),
        betas.len(),
        "one rank per temperature required"
    );
    assert!(betas.windows(2).all(|w| w[0] < w[1]));
    let me = comm.rank();
    let mut replica = Worldline::new(WorldlineParams {
        l,
        jx,
        jz,
        beta: betas[me],
        m,
    });
    let neighbor_weights: Vec<PlaqWeights> = betas
        .iter()
        .map(|&b| PlaqWeights::new(jx, jz, b / m as f64))
        .collect();

    let mut accepted = vec![0.0f64; betas.len() - 1];
    let mut attempted = vec![0.0f64; betas.len() - 1];
    let mut energies = Vec::with_capacity(sweeps);
    let mut step = 0u64;
    let mut start = 0usize;

    if let Some(ck) = ck {
        if ck.resume {
            use qmc_ckpt::coord::ElasticRestore;
            let restored = match ck.elastic_from {
                None => match qmc_ckpt::coord::restore_coordinated(comm, ck.store) {
                    Some((generation, file)) => ElasticRestore::Resumed(generation, file),
                    None => ElasticRestore::Fresh,
                },
                Some(old_betas) => {
                    let old: Vec<f64> = old_betas.to_vec();
                    let new: Vec<f64> = betas.clone();
                    qmc_ckpt::coord::restore_coordinated_remapped(
                        comm,
                        ck.store,
                        move |old_world| {
                            // Only a checkpoint from the declared pre-resize
                            // ladder is remappable; anything else degrades.
                            (old_world == old.len()).then(|| {
                                new.iter()
                                    .map(|b| old.iter().position(|ob| ob.to_bits() == b.to_bits()))
                                    .collect()
                            })
                        },
                    )
                }
            };
            match restored {
                ElasticRestore::Fresh => {}
                ElasticRestore::Joined(generation) => {
                    // A re-grown rank has no old state: it joins the
                    // resumed world at the checkpoint boundary with a
                    // fresh replica/rng and empty accumulators. The
                    // exchange-step counter is reconstructed from the
                    // sweep index (one phase per `exchange_every`
                    // boundary in [0, generation)), so its parity stays
                    // in lockstep with the survivors' restored counters.
                    start = generation as usize;
                    step = (generation).div_ceil(exchange_every as u64);
                }
                ElasticRestore::Resumed(generation, file) => {
                    let meta = file
                        .require("meta")
                        .unwrap_or_else(|e| panic!("rank {me}: resume failed: {e}"));
                    let mut dec = qmc_ckpt::Decoder::new(meta);
                    let s0 = dec
                        .u64()
                        .unwrap_or_else(|e| panic!("rank {me}: resume failed: {e}"))
                        as usize;
                    let step0 = dec
                        .u64()
                        .unwrap_or_else(|e| panic!("rank {me}: resume failed: {e}"));
                    if file.get("replica").is_some() {
                        // Legacy monolithic layout: restore, but leave the
                        // state dirty so the next delta write degrades to a
                        // full snapshot (this file carries no sectioned
                        // names a delta could reference).
                        file.restore("replica", &mut replica)
                            .unwrap_or_else(|e| panic!("rank {me}: resume failed: {e}"));
                        file.restore("rng", rng)
                            .unwrap_or_else(|e| panic!("rank {me}: resume failed: {e}"));
                    } else {
                        qmc_ckpt::restore_sections(&file, "replica", &mut replica)
                            .unwrap_or_else(|e| panic!("rank {me}: resume failed: {e}"));
                        qmc_ckpt::restore_sections(&file, "rng", rng)
                            .unwrap_or_else(|e| panic!("rank {me}: resume failed: {e}"));
                    }
                    let stats = file
                        .require("stats")
                        .unwrap_or_else(|e| panic!("rank {me}: resume failed: {e}"));
                    let mut dec = qmc_ckpt::Decoder::new(stats);
                    let acc = dec
                        .f64s()
                        .unwrap_or_else(|e| panic!("rank {me}: resume failed: {e}"));
                    let att = dec
                        .f64s()
                        .unwrap_or_else(|e| panic!("rank {me}: resume failed: {e}"));
                    energies = dec
                        .f64s()
                        .unwrap_or_else(|e| panic!("rank {me}: resume failed: {e}"));
                    if acc.len() == betas.len() - 1 {
                        accepted = acc;
                        attempted = att;
                    } else if let Some(old_betas) = ck.elastic_from {
                        // Checkpoint from the pre-resize ladder: migrate
                        // pair accumulators where both ends of the pair
                        // survived adjacently; every other pair is new
                        // and restarts at zero attempts.
                        for k in 0..betas.len() - 1 {
                            let p = old_betas.windows(2).position(|w| {
                                w[0].to_bits() == betas[k].to_bits()
                                    && w[1].to_bits() == betas[k + 1].to_bits()
                            });
                            if let Some(p) = p {
                                accepted[k] = acc.get(p).copied().unwrap_or(0.0);
                                attempted[k] = att.get(p).copied().unwrap_or(0.0);
                            }
                        }
                    } else {
                        panic!(
                            "rank {me}: resume failed: pair statistics have length {} for a \
                             {}-rung ladder",
                            acc.len(),
                            betas.len()
                        );
                    }
                    assert_eq!(
                        generation, s0 as u64,
                        "checkpoint generation must equal its sweep index"
                    );
                    step = step0;
                    start = s0;
                }
            }
        }
    }

    let do_phase = |replica: &mut Worldline,
                    comm: &mut C,
                    step: u64,
                    accepted: &mut [f64],
                    attempted: &mut [f64]| {
        let _span = qmc_obs::span("pt.exchange");
        let phase = (step % 2) as usize;
        let pair_k = if me % 2 == phase {
            me // pair (me, me+1)
        } else {
            me.wrapping_sub(1) // pair (me−1, me)
        };
        if pair_k == usize::MAX || pair_k + 1 >= betas.len() {
            return;
        }
        let partner = if pair_k == me { me + 1 } else { me - 1 };
        let lw_own = replica.log_weight();
        let lw_cross = replica.log_weight_with(&neighbor_weights[partner]);
        let payload = util::f64s_to_bytes(&[lw_own, lw_cross]);
        let other = util::bytes_to_f64s(&comm.sendrecv_bytes(partner, 7, &payload, partner, 7));
        let (lw_partner_own, lw_partner_cross) = (other[0], other[1]);
        let log_ratio = lw_cross + lw_partner_cross - lw_own - lw_partner_own;
        let coin = SplitMix64::new(
            seed ^ step.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (pair_k as u64) << 32,
        )
        .next_f64_of();
        if me == pair_k {
            attempted[pair_k] += 1.0;
            qmc_obs::counter_add("pt.swaps_attempted", 1);
        }
        if coin < log_ratio.exp() {
            if me == pair_k {
                accepted[pair_k] += 1.0;
                qmc_obs::counter_add("pt.swaps_accepted", 1);
            }
            let mine = replica.export_spins();
            let theirs = comm.sendrecv_bytes(partner, 8, &mine, partner, 8);
            replica.import_spins(&theirs);
        }
    };

    // Run-level span: see run_pt_parallel — bounds attribution over the
    // whole loop, with `pt.step` nested inside for trace granularity.
    let run_span = qmc_obs::span("pt.run");
    for s in start..therm + sweeps {
        let _step_span = qmc_obs::span("pt.step");
        // Drain check (collective): rank 0 reads the stop flag, every
        // rank hears the same verdict, so the final coordinated write
        // below sees all ranks or none. No RNG draws are involved, so a
        // run with the flag never raised stays bit-identical.
        let draining = if ck.is_some_and(|c| c.stop.is_some()) {
            let mine = if me == 0 {
                let raised = ck
                    .and_then(|c| c.stop)
                    .is_some_and(|f| f.load(std::sync::atomic::Ordering::SeqCst));
                vec![raised as u8]
            } else {
                Vec::new()
            };
            comm.broadcast_bytes(0, mine)[0] != 0
        } else {
            false
        };
        if let Some(ck) = ck {
            if draining || s % ck.every == 0 {
                let gen_index = s / ck.every;
                // A drain can land between cadence boundaries where the
                // generation-index arithmetic is meaningless — draining
                // always writes a full snapshot.
                let want_full = draining || ck.full_every == 0 || gen_index % ck.full_every == 0;
                let (_, committed) = qmc_ckpt::coord::write_coordinated_sections(
                    comm,
                    ck.store,
                    s as u64,
                    want_full,
                    |delta| {
                        let mut meta = qmc_ckpt::Encoder::new();
                        meta.u64(s as u64);
                        meta.u64(step);
                        let mut plan = vec![(
                            "meta".to_string(),
                            qmc_ckpt::SectionPlan::Payload(meta.into_bytes()),
                        )];
                        qmc_ckpt::plan_sections(&mut plan, "replica", &replica, delta);
                        qmc_ckpt::plan_sections(&mut plan, "rng", rng, delta);
                        let mut st = qmc_ckpt::Encoder::new();
                        st.f64s(&accepted);
                        st.f64s(&attempted);
                        st.f64s(&energies);
                        plan.push((
                            "stats".to_string(),
                            qmc_ckpt::SectionPlan::Payload(st.into_bytes()),
                        ));
                        plan
                    },
                );
                // Every rank saw the same commit ack, so either all mark
                // their state clean or none do — a rank that wrongly
                // believed "clean" would ship stale base references into
                // the next delta.
                if committed {
                    qmc_ckpt::Checkpoint::mark_clean(&mut replica);
                    qmc_ckpt::Checkpoint::mark_clean(rng);
                }
            }
        }
        if draining {
            // Checkpoint written; exit before the sweep it names runs.
            // The partial energy series (`energies.len() < sweeps`) is
            // how callers recognize a drained run.
            break;
        }
        on_sweep(comm, s);
        replica.sweep(rng);
        if s % exchange_every == 0 {
            do_phase(&mut replica, comm, step, &mut accepted, &mut attempted);
            step += 1;
        }
        if s >= therm {
            let e = qmc_worldline::estimators::measure(&replica).energy_per_site;
            qmc_obs::health_record("energy", e);
            energies.push(e);
        }
    }
    drop(run_span);

    let acc = comm.allreduce_f64(&accepted, ReduceOp::Sum);
    let att = comm.allreduce_f64(&attempted, ReduceOp::Sum);
    let rates = acc
        .iter()
        .zip(&att)
        .map(|(a, t)| if *t > 0.0 { a / t } else { 0.0 })
        .collect();
    (energies, rates)
}

/// Helper trait bridging SplitMix to a one-shot uniform draw.
trait OneShot {
    fn next_f64_of(self) -> f64;
}

impl OneShot for SplitMix64 {
    fn next_f64_of(mut self) -> f64 {
        self.next_f64()
    }
}

/// Build a geometric β ladder from `beta_min` to `beta_max` with `n`
/// rungs — the textbook starting point for reasonable exchange rates.
pub fn geometric_ladder(beta_min: f64, beta_max: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2 && beta_min > 0.0 && beta_max > beta_min);
    let ratio = (beta_max / beta_min).powf(1.0 / (n - 1) as f64);
    (0..n).map(|k| beta_min * ratio.powi(k as i32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmc_ed::xxz::{full_spectrum, XxzParams};
    use qmc_lattice::Chain;
    use qmc_rng::Xoshiro256StarStar;
    use qmc_stats::BinningAnalysis;

    #[test]
    fn geometric_ladder_properties() {
        let l = geometric_ladder(0.5, 4.0, 4);
        assert_eq!(l.len(), 4);
        assert!((l[0] - 0.5).abs() < 1e-12);
        assert!((l[3] - 4.0).abs() < 1e-9);
        let r1 = l[1] / l[0];
        let r2 = l[2] / l[1];
        assert!((r1 - r2).abs() < 1e-9, "ratios must be constant");
    }

    #[test]
    fn ladder_energies_match_ed_at_every_temperature() {
        let betas = vec![0.5, 0.75, 1.0, 1.5];
        let mut ladder = PtLadder::new(8, 1.0, 1.0, 16, betas.clone());
        let mut rng = Xoshiro256StarStar::new(3);
        let energies = ladder.run(&mut rng, 1500, 12_000, 2);

        let lat = Chain::new(8);
        let spec = full_spectrum(&lat, &XxzParams::heisenberg(1.0));
        for (k, beta) in betas.iter().enumerate() {
            let exact = spec.energy(*beta) / 8.0;
            let b = BinningAnalysis::new(&energies[k], 16);
            let trotter = (beta / 16.0).powi(2) * 2.0;
            assert!(
                (b.mean - exact).abs() < 5.0 * b.error().max(3e-4) + trotter,
                "β={beta}: {} ± {} vs {exact}",
                b.mean,
                b.error()
            );
        }
    }

    #[test]
    fn exchanges_are_accepted_at_reasonable_rates() {
        let mut ladder = PtLadder::new(8, 1.0, 1.0, 16, geometric_ladder(0.5, 2.0, 4));
        let mut rng = Xoshiro256StarStar::new(4);
        ladder.run(&mut rng, 500, 5000, 2);
        for k in 0..3 {
            let rate = ladder.stats().rate(k);
            assert!(
                rate > 0.05 && rate < 1.0,
                "pair {k}: acceptance {rate} out of range"
            );
        }
    }

    #[test]
    fn round_trips_occur() {
        let mut ladder = PtLadder::new(4, 1.0, 1.0, 8, geometric_ladder(0.4, 1.2, 3));
        let mut rng = Xoshiro256StarStar::new(5);
        ladder.run(&mut rng, 500, 20_000, 1);
        assert!(
            ladder.stats().round_trips > 0,
            "no walker completed a round trip"
        );
    }

    #[test]
    fn exchange_preserves_configuration_validity() {
        let mut ladder = PtLadder::new(6, 1.0, 1.0, 8, geometric_ladder(0.5, 2.0, 4));
        let mut rng = Xoshiro256StarStar::new(6);
        for s in 0..200 {
            ladder.sweep(&mut rng);
            ladder.exchange(&mut rng, s % 2);
            for k in 0..4 {
                assert!(
                    ladder.replica(k).log_weight().is_finite(),
                    "slot {k} invalid after exchange {s}"
                );
            }
        }
    }

    #[test]
    fn parallel_pt_matches_ed() {
        let betas = vec![0.5, 1.0, 1.5, 2.0];
        let betas2 = betas.clone();
        let results = qmc_comm::run_threads(4, move |comm| {
            let mut rng = qmc_rng::StreamFactory::new(17).stream(comm.rank());
            let cfg = PtConfig {
                l: 8,
                jx: 1.0,
                jz: 1.0,
                m: 16,
                betas: betas2.clone(),
                therm: 1000,
                sweeps: 10_000,
                exchange_every: 2,
                seed: 99,
            };
            run_pt_parallel(comm, &cfg, &mut rng)
        });
        let lat = Chain::new(8);
        let spec = full_spectrum(&lat, &XxzParams::heisenberg(1.0));
        for (rank, beta) in betas.iter().enumerate() {
            let exact = spec.energy(*beta) / 8.0;
            let b = BinningAnalysis::new(&results[rank].0, 16);
            let trotter = (beta / 16.0).powi(2) * 2.0;
            assert!(
                (b.mean - exact).abs() < 5.0 * b.error().max(3e-4) + trotter,
                "rank {rank} β={beta}: {} ± {} vs {exact}",
                b.mean,
                b.error()
            );
        }
        // acceptance rates identical on all ranks, nonzero somewhere
        assert_eq!(results[0].1, results[1].1);
        assert!(results[0].1.iter().any(|&r| r > 0.0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_ladder() {
        PtLadder::new(4, 1.0, 1.0, 8, vec![1.0, 0.5]);
    }
}
