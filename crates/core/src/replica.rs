//! Replica-level parallelism: independent simulation points over ranks.

use qmc_comm::Communicator;

/// Assignment of `n_points` independent simulation points to `n_ranks`
/// ranks (block distribution, earlier ranks take the remainder).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaPlan {
    /// Total number of points.
    pub n_points: usize,
    /// Number of ranks.
    pub n_ranks: usize,
}

impl ReplicaPlan {
    /// Build a plan.
    pub fn new(n_points: usize, n_ranks: usize) -> Self {
        assert!(n_ranks >= 1);
        Self { n_points, n_ranks }
    }

    /// The half-open range of point indices owned by `rank`.
    pub fn points_of(&self, rank: usize) -> std::ops::Range<usize> {
        let base = self.n_points / self.n_ranks;
        let extra = self.n_points % self.n_ranks;
        let start = rank * base + rank.min(extra);
        let len = base + usize::from(rank < extra);
        start..start + len
    }

    /// The rank owning point `idx`.
    pub fn owner_of(&self, idx: usize) -> usize {
        assert!(idx < self.n_points);
        for r in 0..self.n_ranks {
            if self.points_of(r).contains(&idx) {
                return r;
            }
        }
        unreachable!("plan covers all points")
    }
}

/// Run `n_points` independent simulations distributed over the
/// communicator's ranks and gather every point's result (as `f64`
/// vectors) on rank 0, in point order.
///
/// `f(point_index)` runs on the owning rank and returns that point's
/// observable vector; all vectors must have equal length.
pub fn run_replicas<C, F>(comm: &mut C, n_points: usize, mut f: F) -> Option<Vec<Vec<f64>>>
where
    C: Communicator,
    F: FnMut(usize) -> Vec<f64>,
{
    let plan = ReplicaPlan::new(n_points, comm.size());
    let mine: Vec<(usize, Vec<f64>)> = plan
        .points_of(comm.rank())
        .map(|idx| (idx, f(idx)))
        .collect();

    // Flatten my results as [idx, len, data…] triples for the gather.
    let mut payload = Vec::new();
    for (idx, data) in &mine {
        payload.push(*idx as f64);
        payload.push(data.len() as f64);
        payload.extend_from_slice(data);
    }
    let gathered = comm.gather_f64s(0, &payload)?;

    let mut out: Vec<Option<Vec<f64>>> = vec![None; n_points];
    for rank_payload in gathered {
        let mut cursor = 0usize;
        while cursor < rank_payload.len() {
            let idx = rank_payload[cursor] as usize;
            let len = rank_payload[cursor + 1] as usize;
            cursor += 2;
            out[idx] = Some(rank_payload[cursor..cursor + len].to_vec());
            cursor += len;
        }
    }
    Some(
        out.into_iter()
            .enumerate()
            .map(|(i, v)| v.unwrap_or_else(|| panic!("point {i} missing from gather")))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmc_comm::{run_threads, SerialComm};

    #[test]
    fn plan_covers_all_points_without_overlap() {
        for (points, ranks) in [(10, 3), (7, 7), (5, 8), (0, 4), (16, 4)] {
            let plan = ReplicaPlan::new(points, ranks);
            let mut seen = vec![false; points];
            for r in 0..ranks {
                for idx in plan.points_of(r) {
                    assert!(!seen[idx], "point {idx} assigned twice");
                    seen[idx] = true;
                    assert_eq!(plan.owner_of(idx), r);
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn plan_is_balanced() {
        let plan = ReplicaPlan::new(10, 3);
        let sizes: Vec<usize> = (0..3).map(|r| plan.points_of(r).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn serial_run_collects_everything() {
        let mut comm = SerialComm::new();
        let results = run_replicas(&mut comm, 5, |i| vec![i as f64, 2.0 * i as f64]).unwrap();
        assert_eq!(results.len(), 5);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r, &vec![i as f64, 2.0 * i as f64]);
        }
    }

    #[test]
    fn threaded_run_gathers_in_point_order() {
        let all = run_threads(3, |comm| run_replicas(comm, 8, |i| vec![(i * i) as f64]));
        // rank 0 gets the full table, others None
        let table = all[0].as_ref().expect("rank 0 has results");
        assert_eq!(table.len(), 8);
        for (i, row) in table.iter().enumerate() {
            assert_eq!(row[0], (i * i) as f64);
        }
        assert!(all[1].is_none());
        assert!(all[2].is_none());
    }

    #[test]
    fn more_ranks_than_points() {
        let all = run_threads(4, |comm| run_replicas(comm, 2, |i| vec![i as f64]));
        let table = all[0].as_ref().unwrap();
        assert_eq!(table.len(), 2);
    }
}
