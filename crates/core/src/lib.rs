//! High-level drivers: replica parallelism, parallel tempering, and
//! result tabulation.
//!
//! The engines (`qmc-worldline`, `qmc-tfim`, `qmc-sse`) know how to sample
//! one `(model, β)` point. A massively parallel production run combines
//! two levels of parallelism, exactly as the SC'93-class codes did:
//!
//! * **Replica level** ([`replica`]) — independent `(β, Δτ, seed)` points
//!   are embarrassingly parallel; ranks split the point list and results
//!   are gathered at rank 0.
//! * **Domain level** — within a point, the TFIM engine decomposes the
//!   lattice itself (see `qmc_tfim::parallel`).
//!
//! [`pt`] adds replica-*exchange* (parallel tempering) on top of the
//! world-line engine: neighbouring inverse temperatures swap
//! configurations with the Metropolis probability
//! `min(1, exp[ΔlogW])`, implemented both serially (a ladder in one
//! process) and across ranks (one replica per rank, common-random-number
//! pair decisions, configuration payloads exchanged point-to-point).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pt;
pub mod replica;
pub mod table;

pub use pt::{PtConfig, PtLadder, PtStats};
pub use replica::{run_replicas, ReplicaPlan};
