//! Plain-text result tables (the `repro` harness prints these).

/// A simple right-aligned text table with a title and column headers.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row of preformatted cells (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width does not match header count"
        );
        self.rows.push(cells.to_vec());
    }

    /// Convenience: format a row of `f64`s with `prec` decimals.
    pub fn row_f64(&mut self, cells: &[f64], prec: usize) {
        let formatted: Vec<String> = cells.iter().map(|v| format!("{v:.prec$}")).collect();
        self.row(&formatted);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let line: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!(" {c:>w$} "))
                .collect::<Vec<_>>()
                .join("|")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&line);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format `value ± error` compactly.
pub fn pm(value: f64, error: f64, prec: usize) -> String {
    format!("{value:.prec$}({error:.prec$})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo", &["beta", "E"]);
        t.row_f64(&[0.5, -0.25], 3);
        t.row_f64(&[10.0, -0.456], 3);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("beta"));
        assert!(s.contains("-0.456"));
        // all lines after the separator have equal length
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".to_string()]);
    }

    #[test]
    fn pm_formatting() {
        assert_eq!(pm(1.2345, 0.0021, 3), "1.234(0.002)");
    }
}
