//! End-to-end server ↔ client exercises over real sockets: submit,
//! stream, kill-and-requeue, tenant isolation, quota, drain.

use qmc_serve::{
    run_job, Client, JobKind, JobObservables, JobSpec, KillSpec, Outcome, RunCtl, ServeConfig,
    Server, TenantQuota,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(label: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("qmc-serve-it-{}-{label}-{n}", std::process::id()))
}

fn tfim_spec(tenant: &str, name: &str, seed: u64) -> JobSpec {
    JobSpec {
        tenant: tenant.into(),
        name: name.into(),
        kind: JobKind::Tfim {
            lx: 4,
            ly: 1,
            j: 1.0,
            h: 2.0,
            m: 4,
            wolff: 1,
        },
        betas: vec![1.0],
        therm: 5,
        sweeps: 15,
        seed,
        priority: 0,
        ckpt_every: 4,
    }
}

fn reference(spec: &JobSpec) -> JobObservables {
    match run_job(spec, RunCtl::default()) {
        Outcome::Done { obs, .. } => obs,
        other => panic!("reference run must complete, got {other:?}"),
    }
}

#[test]
fn submit_await_drain_round_trip_matches_direct_run() {
    let cfg = ServeConfig {
        workers: 2,
        ckpt_root: scratch("rt"),
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, "127.0.0.1:0").expect("server start");
    let addr = server.addr();

    let mut alice = Client::connect(addr, "alice").expect("alice connects");
    let mut bob = Client::connect(addr, "bob").expect("bob connects");

    let sa = tfim_spec("alice", "job-a", 11);
    let sb = tfim_spec("bob", "job-b", 77);
    let ja = alice.submit(&sa).expect("alice submit");
    let jb = bob.submit(&sb).expect("bob submit");
    assert_ne!(ja, jb);

    let mut snaps = 0usize;
    let (obs_a, attempts_a) = alice
        .await_result(ja, |_, _, _, _| snaps += 1)
        .expect("alice result");
    let (obs_b, attempts_b) = bob.await_result(jb, |_, _, _, _| {}).expect("bob result");
    assert_eq!(attempts_a, 1);
    assert_eq!(attempts_b, 1);
    assert!(snaps > 0, "snapshots must stream during the run");

    // Served results are bit-identical to a direct local run.
    assert!(obs_a.bits_eq(&reference(&sa)));
    assert!(obs_b.bits_eq(&reference(&sb)));

    // Tenant metric isolation over the wire: alice's view has no bob
    // counters and vice versa.
    let (alice_counters, _) = alice.stats("alice").expect("alice stats");
    assert!(alice_counters
        .iter()
        .any(|(k, _)| k == "tenant.alice.jobs_completed"));
    assert!(!alice_counters
        .iter()
        .any(|(k, _)| k.contains("tenant.bob.")));
    let (bob_counters, _) = bob.stats("bob").expect("bob stats");
    assert!(!bob_counters
        .iter()
        .any(|(k, _)| k.contains("tenant.alice.")));

    // The filter is pinned to the session's handshaken tenant: bob
    // asking for alice's namespace (or the global "" view) still gets
    // only his own counters.
    for nosy in ["alice", ""] {
        let (counters, health) = bob.stats(nosy).expect("stats reply");
        assert!(
            !counters.iter().any(|(k, _)| k.contains("tenant.alice.")),
            "bob read alice's counters via filter {nosy:?}"
        );
        assert!(health.iter().all(|h| !h.name.contains("alice")));
    }

    // Drain is an operator action: a tenant session is refused, the
    // admin session is honored.
    let err = alice.drain().expect_err("tenant drain must be refused");
    assert!(err.to_string().contains("admin"), "got: {err}");
    let mut admin = Client::connect(addr, "admin").expect("admin connects");
    let (global, _) = admin.stats("").expect("admin global stats");
    assert!(global.iter().any(|(k, _)| k.contains("tenant.alice.")));
    assert!(global.iter().any(|(k, _)| k.contains("tenant.bob.")));
    admin.drain().expect("drain ack");
    let obs = server.join();
    assert_eq!(obs.counter("serve.jobs_completed"), 2);
    assert_eq!(obs.counter("serve.requeues"), 0);
}

#[test]
fn killed_worker_requeues_and_resumes_bit_identical() {
    let cfg = ServeConfig {
        workers: 1,
        ckpt_root: scratch("kill"),
        // Job id 0's first attempt dies at sweep 9 (mid-run, past a
        // checkpoint boundary).
        kills: vec![KillSpec {
            job: 0,
            at_sweep: 9,
        }],
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, "127.0.0.1:0").expect("server start");
    let mut client = Client::connect(server.addr(), "carol").expect("connect");

    let spec = tfim_spec("carol", "survivor", 41);
    let id = client.submit(&spec).expect("submit");
    assert_eq!(id, 0);

    let (obs, attempts) = client.await_result(id, |_, _, _, _| {}).expect("result");
    assert_eq!(attempts, 2, "first attempt must die and be requeued");
    assert!(
        obs.bits_eq(&reference(&spec)),
        "resumed run must be bit-identical to an uninterrupted one"
    );

    let mut admin = Client::connect(server.addr(), "admin").expect("admin connects");
    admin.drain().expect("drain ack");
    let counters = server.join();
    assert_eq!(counters.counter("serve.worker_kills"), 1);
    assert_eq!(counters.counter("serve.requeues"), 1);
    assert_eq!(counters.counter("serve.jobs_completed"), 1);
}

#[test]
fn quota_rejections_come_back_over_the_wire() {
    let cfg = ServeConfig {
        workers: 1,
        ckpt_root: scratch("quota"),
        quota: TenantQuota { max_active: 2 },
        // Park the worker so submissions stay active.
        kills: Vec::new(),
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, "127.0.0.1:0").expect("server start");
    let mut client = Client::connect(server.addr(), "dora").expect("connect");

    let mut big = tfim_spec("dora", "j0", 1);
    big.sweeps = 4000; // long enough to still be active while we spam
    client.submit(&big).expect("first fits");
    let mut j1 = tfim_spec("dora", "j1", 2);
    j1.sweeps = 4000;
    client.submit(&j1).expect("second fits");
    let err = client
        .submit(&tfim_spec("dora", "j2", 3))
        .expect_err("third must exceed the quota");
    assert!(err.to_string().contains("quota"), "got: {err}");

    // Invalid specs are rejected with the validation reason.
    let mut bad = tfim_spec("dora", "bad", 4);
    bad.betas = vec![-1.0];
    let err = client.submit(&bad).expect_err("negative beta");
    assert!(err.to_string().contains("beta"), "got: {err}");

    let mut admin = Client::connect(server.addr(), "admin").expect("admin connects");
    admin.drain().expect("drain ack");
    server.join();
}

/// Two live jobs must never share a checkpoint namespace: the sanitized
/// directory key is enforced at admission, and a completed job's
/// namespace is released (its checkpoint directory removed) so the name
/// can be reused from a clean store.
#[test]
fn live_namespace_collisions_are_rejected_and_done_jobs_release_disk() {
    let root = scratch("ns");
    let cfg = ServeConfig {
        workers: 1,
        ckpt_root: root.clone(),
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, "127.0.0.1:0").expect("server start");
    let mut client = Client::connect(server.addr(), "erin").expect("connect");

    let mut long = tfim_spec("erin", "job a", 5);
    long.sweeps = 4000; // stays live while we probe the collision
    let id = client.submit(&long).expect("first name fits");
    // "job_a" sanitizes to the same checkpoint directory as "job a".
    let err = client
        .submit(&tfim_spec("erin", "job_a", 6))
        .expect_err("colliding namespace while live");
    assert!(err.to_string().contains("collides"), "got: {err}");

    let (_, attempts) = client.await_result(id, |_, _, _, _| {}).expect("result");
    assert_eq!(attempts, 1);
    // Done: the namespace directory is gone and the name is free again.
    assert!(
        !root.join("erin").join("job_a").exists(),
        "completed job's checkpoint namespace must be removed"
    );
    let id2 = client
        .submit(&tfim_spec("erin", "job_a", 6))
        .expect("name is free after completion");
    client.await_result(id2, |_, _, _, _| {}).expect("reran");

    let mut admin = Client::connect(server.addr(), "admin").expect("admin connects");
    admin.drain().expect("drain ack");
    server.join();
}

#[test]
fn evicted_results_return_a_clean_error() {
    let cfg = ServeConfig {
        workers: 1,
        ckpt_root: scratch("ttl"),
        // Results expire on the tick after they land.
        ttl: Some(std::time::Duration::ZERO),
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, "127.0.0.1:0").expect("server start");
    let mut client = Client::connect(server.addr(), "fay").expect("connect");

    let id = client
        .submit(&tfim_spec("fay", "short", 11))
        .expect("submit");

    // The job finishes, then the worker's next retention sweep evicts
    // the record. Poll until Await flips from a result to the eviction
    // error; a successful Await just means the sweep hasn't run yet.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30); // lint: allow(wall-clock) — test polls a retention sweep
    let detail = loop {
        match client.await_result(id, |_, _, _, _| {}) {
            Ok(_) => {
                assert!(
                    std::time::Instant::now() < deadline, // lint: allow(wall-clock) — test polls a retention sweep
                    "record was never evicted"
                );
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            Err(err) => break err.to_string(),
        }
    };
    assert!(
        detail.contains("evicted") && detail.contains("TTL"),
        "eviction error must say so, got: {detail}"
    );

    // An id that never existed is reported as unknown, not evicted.
    let unknown = client
        .await_result(9_999, |_, _, _, _| {})
        .expect_err("unknown id");
    assert!(
        unknown.to_string().contains("unknown job"),
        "got: {unknown}"
    );

    let mut admin = Client::connect(server.addr(), "admin").expect("admin connects");
    admin.drain().expect("drain ack");
    server.join();
}
