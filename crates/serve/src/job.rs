//! Job specifications and observables: what a tenant submits and what
//! the server streams back.

use qmc_ckpt::{CkptError, Decoder, Encoder};

/// What kind of simulation a job runs, with its engine parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum JobKind {
    /// Single-temperature transverse-field Ising on a 2-D lattice,
    /// driven by the serial Metropolis+Wolff engine (one β).
    Tfim {
        /// Lattice extent in x (≥ 4, engine constraint).
        lx: usize,
        /// Lattice extent in y.
        ly: usize,
        /// Ising coupling.
        j: f64,
        /// Transverse field.
        h: f64,
        /// Trotter slices.
        m: usize,
        /// Wolff cluster updates per sweep.
        wolff: usize,
    },
    /// Parallel-tempering XXZ world-line ladder: one ThreadWorld rank
    /// per β in the schedule (≥ 2 temperatures).
    PtXxz {
        /// Chain length.
        l: usize,
        /// XY coupling.
        jx: f64,
        /// Z coupling.
        jz: f64,
        /// Trotter slices.
        m: usize,
        /// Replica-exchange cadence in sweeps.
        exchange_every: usize,
    },
}

impl JobKind {
    fn tag(&self) -> u8 {
        match self {
            JobKind::Tfim { .. } => 1,
            JobKind::PtXxz { .. } => 2,
        }
    }

    /// How many worker ranks this kind needs for the given β schedule.
    pub fn ranks(&self, betas: &[f64]) -> usize {
        match self {
            JobKind::Tfim { .. } => 1,
            JobKind::PtXxz { .. } => betas.len(),
        }
    }
}

/// A complete job request: tenant, engine, β schedule, sweep budget.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Tenant this job bills to; quotas and metrics namespace by it.
    pub tenant: String,
    /// Job name, unique per tenant (also the checkpoint namespace).
    pub name: String,
    /// Engine and parameters.
    pub kind: JobKind,
    /// Inverse-temperature schedule (one β for serial kinds, the full
    /// ladder for parallel tempering).
    pub betas: Vec<f64>,
    /// Thermalization sweeps (unmeasured).
    pub therm: u32,
    /// Measured sweeps.
    pub sweeps: u32,
    /// RNG seed.
    pub seed: u64,
    /// Scheduling priority: higher runs first among queued jobs.
    pub priority: u8,
    /// Checkpoint cadence in sweeps (0 = server default).
    pub ckpt_every: u32,
}

/// Largest admissible β ladder: one ThreadWorld rank (an OS thread) per
/// β for parallel tempering, so this bounds the threads one quota slot
/// can demand. The 1 MiB frame cap alone would still admit ~130k betas.
pub const MAX_BETAS: usize = 64;
/// Largest admissible lattice extent per dimension (serial TFIM) —
/// bounds per-job memory at admission, not just frame size.
pub const MAX_EXTENT: usize = 256;
/// Largest admissible PT chain length.
pub const MAX_CHAIN: usize = 4096;
/// Largest admissible Trotter slice count.
pub const MAX_SLICES: usize = 1024;
/// Largest admissible Wolff-updates-per-sweep multiplier.
pub const MAX_WOLFF: usize = 1024;

impl JobSpec {
    /// Validate the spec against engine constraints *and* per-job
    /// resource caps (a single quota-compliant submission must not be
    /// able to exhaust server threads or memory); returns a
    /// human-readable reason on rejection.
    pub fn validate(&self) -> Result<(), String> {
        if self.tenant.is_empty() || self.tenant.len() > 64 {
            return Err("tenant name must be 1..=64 bytes".into());
        }
        if self.name.is_empty() || self.name.len() > 128 {
            return Err("job name must be 1..=128 bytes".into());
        }
        if self.sweeps == 0 {
            return Err("sweep budget must be positive".into());
        }
        if self.betas.len() > MAX_BETAS {
            return Err(format!(
                "beta schedule too long ({} betas, limit {MAX_BETAS})",
                self.betas.len()
            ));
        }
        if self.betas.iter().any(|b| !b.is_finite() || *b <= 0.0) {
            return Err("every beta must be finite and positive".into());
        }
        match &self.kind {
            JobKind::Tfim {
                lx, ly, m, wolff, ..
            } => {
                if self.betas.len() != 1 {
                    return Err("serial TFIM jobs take exactly one beta".into());
                }
                // Mirror TfimModel::validated so a bad spec is rejected
                // at admission instead of panicking a worker.
                if *lx < 4 || *lx % 2 != 0 {
                    return Err("TFIM lattice needs even lx >= 4".into());
                }
                if !(*ly == 1 || (*ly >= 4 && *ly % 2 == 0)) {
                    return Err("TFIM ly must be 1 (chain) or even >= 4".into());
                }
                if *m < 2 || *m % 2 != 0 {
                    return Err("TFIM Trotter slices m must be even >= 2".into());
                }
                if *lx > MAX_EXTENT || *ly > MAX_EXTENT {
                    return Err(format!("TFIM lattice extent limit is {MAX_EXTENT}"));
                }
                if *m > MAX_SLICES {
                    return Err(format!("TFIM Trotter slice limit is {MAX_SLICES}"));
                }
                if *wolff > MAX_WOLFF {
                    return Err(format!("TFIM wolff-per-sweep limit is {MAX_WOLFF}"));
                }
            }
            JobKind::PtXxz {
                l,
                m,
                exchange_every,
                ..
            } => {
                if self.betas.len() < 2 {
                    return Err("parallel tempering needs at least two betas".into());
                }
                if !self.betas.windows(2).all(|w| w[0] < w[1]) {
                    return Err("the beta ladder must be strictly increasing".into());
                }
                if *l == 0 || *m == 0 || *exchange_every == 0 {
                    return Err("PT XXZ needs l >= 1, m >= 1, exchange_every >= 1".into());
                }
                if *l > MAX_CHAIN {
                    return Err(format!("PT XXZ chain length limit is {MAX_CHAIN}"));
                }
                if *m > MAX_SLICES {
                    return Err(format!("PT XXZ Trotter slice limit is {MAX_SLICES}"));
                }
            }
        }
        Ok(())
    }

    /// Checkpoint namespace for this job (`tenant/name`, sanitized by
    /// the store).
    pub fn namespace(&self) -> String {
        format!("{}/{}", self.tenant, self.name)
    }

    pub(crate) fn encode(&self, enc: &mut Encoder) {
        enc.str(&self.tenant);
        enc.str(&self.name);
        enc.u8(self.kind.tag());
        match &self.kind {
            JobKind::Tfim {
                lx,
                ly,
                j,
                h,
                m,
                wolff,
            } => {
                enc.u64(*lx as u64);
                enc.u64(*ly as u64);
                enc.f64(*j);
                enc.f64(*h);
                enc.u64(*m as u64);
                enc.u64(*wolff as u64);
            }
            JobKind::PtXxz {
                l,
                jx,
                jz,
                m,
                exchange_every,
            } => {
                enc.u64(*l as u64);
                enc.f64(*jx);
                enc.f64(*jz);
                enc.u64(*m as u64);
                enc.u64(*exchange_every as u64);
            }
        }
        enc.f64s(&self.betas);
        enc.u32(self.therm);
        enc.u32(self.sweeps);
        enc.u64(self.seed);
        enc.u8(self.priority);
        enc.u32(self.ckpt_every);
    }

    pub(crate) fn decode(dec: &mut Decoder<'_>) -> Result<JobSpec, CkptError> {
        let tenant = dec.str()?;
        let name = dec.str()?;
        let kind = match dec.u8()? {
            1 => JobKind::Tfim {
                lx: dec.u64()? as usize,
                ly: dec.u64()? as usize,
                j: dec.f64()?,
                h: dec.f64()?,
                m: dec.u64()? as usize,
                wolff: dec.u64()? as usize,
            },
            2 => JobKind::PtXxz {
                l: dec.u64()? as usize,
                jx: dec.f64()?,
                jz: dec.f64()?,
                m: dec.u64()? as usize,
                exchange_every: dec.u64()? as usize,
            },
            t => return Err(CkptError::corrupt(format!("unknown job kind tag {t}"))),
        };
        Ok(JobSpec {
            tenant,
            name,
            kind,
            betas: dec.f64s()?,
            therm: dec.u32()?,
            sweeps: dec.u32()?,
            seed: dec.u64()?,
            priority: dec.u8()?,
            ckpt_every: dec.u32()?,
        })
    }
}

/// The observable series a finished job returns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JobObservables {
    /// Per-replica energy series (one inner vec per β; serial kinds have
    /// exactly one).
    pub energy: Vec<Vec<f64>>,
    /// Engine-specific extras: |m| series for serial TFIM, per-pair
    /// swap acceptance rates for parallel tempering.
    pub extra: Vec<Vec<f64>>,
}

impl JobObservables {
    /// Bitwise equality — the fault-tolerance contract is *bit*-identity
    /// of every f64, not approximate agreement.
    pub fn bits_eq(&self, other: &JobObservables) -> bool {
        let key = |o: &JobObservables| -> Vec<Vec<u64>> {
            o.energy
                .iter()
                .chain(o.extra.iter())
                .map(|v| v.iter().map(|x| x.to_bits()).collect())
                .collect()
        };
        key(self) == key(other)
    }

    pub(crate) fn encode(&self, enc: &mut Encoder) {
        let put = |enc: &mut Encoder, series: &[Vec<f64>]| {
            enc.u32(series.len() as u32);
            for v in series {
                enc.f64s(v);
            }
        };
        put(enc, &self.energy);
        put(enc, &self.extra);
    }

    pub(crate) fn decode(dec: &mut Decoder<'_>) -> Result<JobObservables, CkptError> {
        let get = |dec: &mut Decoder<'_>| -> Result<Vec<Vec<f64>>, CkptError> {
            let n = dec.u32()? as usize;
            if n > 4096 {
                return Err(CkptError::corrupt("implausible series count"));
            }
            (0..n).map(|_| dec.f64s()).collect()
        };
        Ok(JobObservables {
            energy: get(dec)?,
            extra: get(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn tfim_spec() -> JobSpec {
        JobSpec {
            tenant: "alice".into(),
            name: "job-1".into(),
            kind: JobKind::Tfim {
                lx: 4,
                ly: 1,
                j: 1.0,
                h: 2.0,
                m: 4,
                wolff: 1,
            },
            betas: vec![1.0],
            therm: 4,
            sweeps: 16,
            seed: 7,
            priority: 3,
            ckpt_every: 5,
        }
    }

    #[test]
    fn spec_round_trips() {
        for spec in [
            tfim_spec(),
            JobSpec {
                tenant: "bob".into(),
                name: "ladder".into(),
                kind: JobKind::PtXxz {
                    l: 8,
                    jx: 1.0,
                    jz: 0.5,
                    m: 8,
                    exchange_every: 2,
                },
                betas: vec![0.5, 1.0, 1.5, 2.0],
                therm: 10,
                sweeps: 20,
                seed: 99,
                priority: 0,
                ckpt_every: 0,
            },
        ] {
            let mut enc = Encoder::new();
            spec.encode(&mut enc);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            let back = JobSpec::decode(&mut dec).unwrap();
            dec.expect_empty().unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut s = tfim_spec();
        s.betas = vec![1.0, 2.0];
        assert!(s.validate().is_err(), "two betas on a serial job");
        let mut s = tfim_spec();
        s.tenant.clear();
        assert!(s.validate().is_err(), "empty tenant");
        let mut s = tfim_spec();
        s.sweeps = 0;
        assert!(s.validate().is_err(), "zero sweeps");
        let mut s = tfim_spec();
        s.betas = vec![f64::NAN];
        assert!(s.validate().is_err(), "NaN beta");
        assert!(tfim_spec().validate().is_ok());
    }

    /// A single quota-compliant submission must not be able to exhaust
    /// worker threads or memory: every resource dimension is capped at
    /// admission, well below what the 1 MiB frame cap alone would admit.
    #[test]
    fn validation_caps_per_job_resources() {
        let pt = |betas: Vec<f64>, l: usize, m: usize| JobSpec {
            tenant: "t".into(),
            name: "big".into(),
            kind: JobKind::PtXxz {
                l,
                jx: 1.0,
                jz: 1.0,
                m,
                exchange_every: 2,
            },
            betas,
            therm: 1,
            sweeps: 1,
            seed: 1,
            priority: 0,
            ckpt_every: 0,
        };
        let ladder = |n: usize| (1..=n).map(|i| i as f64).collect::<Vec<_>>();
        assert!(pt(ladder(MAX_BETAS), 8, 8).validate().is_ok());
        let err = pt(ladder(MAX_BETAS + 1), 8, 8).validate().unwrap_err();
        assert!(err.contains("beta schedule"), "{err}");
        let err = pt(ladder(4), MAX_CHAIN + 1, 8).validate().unwrap_err();
        assert!(err.contains("chain length"), "{err}");
        let err = pt(ladder(4), 8, MAX_SLICES + 2).validate().unwrap_err();
        assert!(err.contains("slice"), "{err}");

        let mut s = tfim_spec();
        if let JobKind::Tfim { lx, .. } = &mut s.kind {
            *lx = MAX_EXTENT + 2;
        }
        assert!(s.validate().unwrap_err().contains("extent"));
        let mut s = tfim_spec();
        if let JobKind::Tfim { m, .. } = &mut s.kind {
            *m = MAX_SLICES + 2;
        }
        assert!(s.validate().unwrap_err().contains("slice"));
        let mut s = tfim_spec();
        if let JobKind::Tfim { wolff, .. } = &mut s.kind {
            *wolff = MAX_WOLFF + 1;
        }
        assert!(s.validate().unwrap_err().contains("wolff"));
    }

    #[test]
    fn observables_round_trip_and_bit_compare() {
        let obs = JobObservables {
            energy: vec![vec![1.5, -2.25], vec![0.0, f64::MIN_POSITIVE]],
            extra: vec![vec![0.25]],
        };
        let mut enc = Encoder::new();
        obs.encode(&mut enc);
        let bytes = enc.into_bytes();
        let back = JobObservables::decode(&mut Decoder::new(&bytes)).unwrap();
        assert!(back.bits_eq(&obs));
        let mut tweaked = obs.clone();
        tweaked.energy[0][0] = 1.5 + f64::EPSILON;
        assert!(!tweaked.bits_eq(&obs));
    }
}
