//! qmc-serve: a multi-tenant simulation job server.
//!
//! Turns the library's engines into a long-running service: clients
//! submit jobs (model, lattice, β schedule, sweep budget, priority)
//! over a versioned length-prefixed TCP protocol; a scheduler
//! dispatches them across a worker pool with per-tenant quotas;
//! workers checkpoint in-flight jobs through namespaced [`qmc_ckpt`]
//! stores, so a worker death requeues the job and the next attempt
//! resumes from the latest generation — bit-identical to an
//! uninterrupted run, with zero lost jobs.
//!
//! Layers (each unit-tested in isolation):
//! * [`job`] — job specifications and result payloads;
//! * [`wire`] — the `qmc-serve/v1` message protocol, framed by
//!   [`qmc_comm::tcp`] (magic + length + CRC-32 per frame);
//! * [`run`] — one job attempt: restore, sweep, checkpoint, stream
//!   snapshots; honors injected kills and drain flags;
//! * [`sched`] — admission, priority dispatch, requeue, tenant metrics;
//! * [`server`] / [`client`] — the threaded server and its client API.
//!
//! Everything is std-only, like the rest of the workspace: frames are
//! CRC-checked by hand, timeouts come from socket options (no wall
//! clock reads outside qmc-obs), and concurrency is scoped threads,
//! mutexes, and condvars.

pub mod client;
pub mod job;
pub mod run;
pub mod sched;
pub mod server;
pub mod wire;

pub use client::Client;
pub use job::{JobKind, JobObservables, JobSpec};
pub use run::{run_job, Outcome, RunCtl};
pub use sched::{JobState, KillSpec, Sched, TenantQuota};
pub use server::{ServeConfig, Server};

use qmc_ckpt::CkptError;
use qmc_comm::tcp::FrameError;
use std::fmt;

/// A stats view: sorted `(counter name, value)` pairs plus per-tenant
/// convergence health snapshots.
pub type TenantStats = (Vec<(String, u64)>, Vec<qmc_obs::HealthSnapshot>);

/// Client-visible failures.
#[derive(Debug)]
pub enum ServeError {
    /// Transport-level framing failure (connection unusable).
    Frame(FrameError),
    /// Payload decode failure (schema mismatch, truncation, corruption).
    Codec(CkptError),
    /// The server refused the request (quota, validation, unknown job).
    Rejected(String),
    /// The peer answered with something the protocol does not allow
    /// here.
    Protocol(String),
    /// The server is draining and will not finish this request.
    Draining,
    /// Raw I/O failure outside the framing layer.
    Io(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Frame(e) => write!(f, "frame error: {e}"),
            ServeError::Codec(e) => write!(f, "codec error: {e}"),
            ServeError::Rejected(reason) => write!(f, "rejected: {reason}"),
            ServeError::Protocol(detail) => write!(f, "protocol violation: {detail}"),
            ServeError::Draining => write!(f, "server is draining"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<FrameError> for ServeError {
    fn from(e: FrameError) -> Self {
        ServeError::Frame(e)
    }
}

impl From<CkptError> for ServeError {
    fn from(e: CkptError) -> Self {
        ServeError::Codec(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}
