//! Client API for the job server: submit jobs, stream snapshots, read
//! tenant-scoped stats, request a drain.

use crate::job::{JobObservables, JobSpec};
use crate::wire::{Msg, PROTO_VERSION};
use crate::{ServeError, TenantStats};
use qmc_comm::tcp::FrameConn;
use std::net::ToSocketAddrs;

/// A connected, handshaken client for one tenant.
pub struct Client {
    conn: FrameConn,
    tenant: String,
}

impl Client {
    /// Connect and complete the Hello/HelloAck handshake.
    pub fn connect(addr: impl ToSocketAddrs, tenant: &str) -> Result<Client, ServeError> {
        let mut conn = FrameConn::connect(addr)?;
        conn.send(
            &Msg::Hello {
                proto: PROTO_VERSION,
                tenant: tenant.to_string(),
            }
            .encode(),
        )?;
        match Msg::decode(&conn.recv()?)? {
            Msg::HelloAck { proto } if proto == PROTO_VERSION => Ok(Client {
                conn,
                tenant: tenant.to_string(),
            }),
            Msg::Error { detail } => Err(ServeError::Rejected(detail)),
            other => Err(ServeError::Protocol(format!(
                "expected HelloAck, got {other:?}"
            ))),
        }
    }

    /// The tenant this connection authenticated as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Submit a job; returns the server-assigned job id.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64, ServeError> {
        self.conn
            .send(&Msg::Submit { spec: spec.clone() }.encode())?;
        match Msg::decode(&self.conn.recv()?)? {
            Msg::Accepted { job } => Ok(job),
            Msg::Rejected { reason } => Err(ServeError::Rejected(reason)),
            Msg::Error { detail } => Err(ServeError::Rejected(detail)),
            other => Err(ServeError::Protocol(format!(
                "expected Accepted/Rejected, got {other:?}"
            ))),
        }
    }

    /// Block until `job` finishes, feeding every progress snapshot to
    /// `on_snapshot(sweep, total, mean_energy, attempt)`. Returns the
    /// final observables and the attempt count (>1 means the job
    /// survived at least one worker death).
    pub fn await_result(
        &mut self,
        job: u64,
        mut on_snapshot: impl FnMut(u64, u64, f64, u32),
    ) -> Result<(JobObservables, u32), ServeError> {
        let mut after = 0u64;
        self.conn.send(&Msg::Await { job, after }.encode())?;
        loop {
            match Msg::decode(&self.conn.recv()?)? {
                Msg::Snapshot {
                    job: j,
                    seq,
                    sweep,
                    total,
                    mean_energy,
                    attempt,
                } if j == job => {
                    after = after.max(seq);
                    on_snapshot(sweep, total, mean_energy, attempt);
                }
                Msg::Result {
                    job: j,
                    obs,
                    attempts,
                } if j == job => return Ok((obs, attempts)),
                Msg::Draining => return Err(ServeError::Draining),
                Msg::Error { detail } => return Err(ServeError::Rejected(detail)),
                other => {
                    return Err(ServeError::Protocol(format!(
                        "unexpected {other:?} while awaiting job {job}"
                    )))
                }
            }
        }
    }

    /// Server counters and health snapshots. The server scopes the view
    /// to this session's handshaken tenant regardless of `tenant`;
    /// only admin sessions may pass another tenant's name, or `""` for
    /// the global (unfiltered) view.
    pub fn stats(&mut self, tenant: &str) -> Result<TenantStats, ServeError> {
        self.conn.send(
            &Msg::Stats {
                tenant: tenant.to_string(),
            }
            .encode(),
        )?;
        match Msg::decode(&self.conn.recv()?)? {
            Msg::StatsReply { counters, health } => Ok((counters, health)),
            Msg::Error { detail } => Err(ServeError::Rejected(detail)),
            other => Err(ServeError::Protocol(format!(
                "expected StatsReply, got {other:?}"
            ))),
        }
    }

    /// Ask the server to drain: stop admitting, checkpoint in-flight
    /// jobs, shut down. Only sessions handshaken as the server's admin
    /// tenant may drain; the server acknowledges then hangs up.
    pub fn drain(&mut self) -> Result<(), ServeError> {
        self.conn.send(&Msg::Drain.encode())?;
        match Msg::decode(&self.conn.recv()?)? {
            Msg::Draining => Ok(()),
            Msg::Error { detail } => Err(ServeError::Rejected(detail)),
            other => Err(ServeError::Protocol(format!(
                "expected Draining, got {other:?}"
            ))),
        }
    }
}
