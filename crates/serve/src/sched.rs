//! Scheduler state machine: admission (validation + tenant quota),
//! priority dispatch, requeue-on-kill, and per-tenant metrics.
//!
//! This module is pure bookkeeping — no sockets, no threads — so every
//! transition is unit-testable. The server wraps one [`Sched`] in a
//! mutex and drives it from the acceptor, the connection handlers, and
//! the worker pool.

use crate::job::{JobObservables, JobSpec};
use qmc_obs::{HealthMonitor, HealthSnapshot, RankObs, Registry};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Per-tenant admission limits.
#[derive(Debug, Clone, Copy)]
pub struct TenantQuota {
    /// Maximum unfinished (queued + running) jobs a tenant may hold;
    /// submissions beyond it are rejected, which is what keeps every
    /// server-side queue bounded against a hostile client.
    pub max_active: usize,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota { max_active: 64 }
    }
}

/// A deterministic injected worker death: the `index`-th accepted job
/// dies at `at_sweep` on its first attempt.
#[derive(Debug, Clone, Copy)]
pub struct KillSpec {
    /// Submission-order job id (ids are assigned sequentially).
    pub job: u64,
    /// Sweep boundary of the death.
    pub at_sweep: u64,
}

/// Lifecycle of an accepted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a worker (also the state after a requeue).
    Queued,
    /// A worker is sweeping it.
    Running,
    /// Finished; result retained for `Await`.
    Done,
    /// Checkpointed and parked by a server drain.
    Paused,
    /// An attempt died in a way a retry cannot fix (restore error,
    /// worker panic); the reason is retained for `Await`.
    Failed,
}

/// One progress snapshot retained for streaming.
#[derive(Debug, Clone, Copy)]
pub struct SnapRec {
    /// Monotonic per-job sequence number (1-based).
    pub seq: u64,
    /// Sweeps completed.
    pub sweep: u64,
    /// Total sweep budget.
    pub total: u64,
    /// Running mean energy (NaN before measurement starts).
    pub mean_energy: f64,
    /// Attempt that produced it (> 1 after a requeue).
    pub attempt: u32,
}

/// Everything the server tracks about one accepted job.
#[derive(Debug)]
pub struct JobRec {
    /// The submitted spec.
    pub spec: JobSpec,
    /// Sanitized checkpoint-directory key of `spec.namespace()`; two
    /// jobs with equal keys would resume each other's generations, so
    /// admission refuses the collision while the first is live.
    pub ns_key: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// Attempts started (1 on first dispatch).
    pub attempts: u32,
    /// Armed deterministic kill for the *first* attempt only.
    pub kill_at: Option<u64>,
    /// Recent snapshots (bounded ring; old entries are dropped).
    pub snapshots: VecDeque<SnapRec>,
    /// Next snapshot sequence number to assign.
    pub next_seq: u64,
    /// Final observables and attempt count, once done.
    pub result: Option<(JobObservables, u32)>,
    /// Why the job failed, once [`JobState::Failed`].
    pub error: Option<String>,
    /// When the job reached a terminal state (Done/Failed) — the clock
    /// the result-retention TTL runs against.
    pub finished: Option<Instant>,
}

/// How many snapshots a job retains for late-joining `Await` streams.
const SNAPSHOT_RING: usize = 64;

/// The scheduler: job table, pending queue, counters, tenant health.
#[derive(Default)]
pub struct Sched {
    /// All accepted jobs, indexed by id. `None` marks a terminal job
    /// whose record was evicted after its result-retention TTL expired
    /// (ids are never reused, so the slot stays).
    jobs: Vec<Option<JobRec>>,
    /// Ids awaiting a worker.
    pending: Vec<u64>,
    /// Set once a drain begins; rejects new submissions.
    pub draining: bool,
    /// Server counters (`serve.*`) and absorbed per-tenant registries.
    pub obs: RankObs,
    /// Per-tenant online health over completed-job mean energies.
    tenant_health: Vec<(String, HealthMonitor)>,
}

impl Sched {
    /// The record for `id`, if it exists and has not been evicted.
    pub fn job(&self, id: u64) -> Option<&JobRec> {
        self.jobs.get(id as usize).and_then(Option::as_ref)
    }

    /// True when `id` was a real job whose terminal record has since
    /// been evicted by the retention TTL (distinguishes "evicted" from
    /// "never existed" in client-facing errors).
    pub fn was_evicted(&self, id: u64) -> bool {
        matches!(self.jobs.get(id as usize), Some(None))
    }

    /// A live (non-evicted) record, by internal invariant: only
    /// terminal jobs are ever evicted, so any id the scheduler still
    /// acts on must have its record.
    fn rec(&self, id: u64) -> &JobRec {
        self.jobs[id as usize]
            .as_ref()
            .expect("only terminal jobs are evicted; a live id keeps its record")
    }

    fn rec_mut(&mut self, id: u64) -> &mut JobRec {
        self.jobs[id as usize]
            .as_mut()
            .expect("only terminal jobs are evicted; a live id keeps its record")
    }

    /// Evict terminal (Done/Failed) records older than `ttl`, freeing
    /// their snapshots and results. Paused jobs are never evicted — a
    /// drained job's record is what a restarted server resumes from.
    /// Returns how many records were dropped.
    pub fn evict_expired(&mut self, ttl: Duration) -> usize {
        let mut evicted = 0u64;
        for slot in &mut self.jobs {
            let expired = slot.as_ref().is_some_and(|rec| {
                matches!(rec.state, JobState::Done | JobState::Failed)
                    && rec.finished.is_some_and(|at| at.elapsed() >= ttl)
            });
            if expired {
                *slot = None;
                evicted += 1;
            }
        }
        if evicted > 0 {
            self.obs.counter_add("serve.jobs_evicted", evicted);
        }
        evicted as usize
    }

    /// Admission: validation, drain check, tenant quota. On success the
    /// job is queued and its id returned.
    pub fn submit(
        &mut self,
        spec: JobSpec,
        quota: &TenantQuota,
        kills: &[KillSpec],
    ) -> Result<u64, String> {
        self.obs.counter_add("serve.jobs_submitted", 1);
        if self.draining {
            self.obs.counter_add("serve.jobs_rejected", 1);
            return Err("server is draining".into());
        }
        if let Err(reason) = spec.validate() {
            self.obs.counter_add("serve.jobs_rejected", 1);
            return Err(reason);
        }
        let active = self
            .jobs
            .iter()
            .flatten()
            .filter(|j| {
                j.spec.tenant == spec.tenant
                    && matches!(j.state, JobState::Queued | JobState::Running)
            })
            .count();
        if active >= quota.max_active {
            self.obs.counter_add("serve.jobs_rejected", 1);
            return Err(format!(
                "tenant {} quota exceeded ({active} active, limit {})",
                spec.tenant, quota.max_active
            ));
        }
        // Namespace uniqueness: the checkpoint directory is keyed by the
        // *sanitized* tenant/name, so distinct names can still collide
        // on disk ("job a" vs "job_a"). Two live jobs sharing a
        // namespace would resume each other's generations; refuse the
        // second while the first is Queued/Running/Paused. (Done and
        // Failed jobs release the name — the worker removes their
        // checkpoint directory, so reuse starts from a clean store.)
        let ns_key = qmc_ckpt::namespace_key(&spec.namespace());
        let live_collision = self.jobs.iter().flatten().any(|j| {
            j.ns_key == ns_key
                && matches!(
                    j.state,
                    JobState::Queued | JobState::Running | JobState::Paused
                )
        });
        if live_collision {
            self.obs.counter_add("serve.jobs_rejected", 1);
            return Err(format!(
                "job namespace '{}' collides with a live job's checkpoint \
                 directory ({ns_key})",
                spec.namespace()
            ));
        }
        let id = self.jobs.len() as u64;
        let kill_at = kills.iter().find(|k| k.job == id).map(|k| k.at_sweep);
        self.jobs.push(Some(JobRec {
            spec,
            ns_key,
            state: JobState::Queued,
            attempts: 0,
            kill_at,
            snapshots: VecDeque::new(),
            next_seq: 1,
            result: None,
            error: None,
            finished: None,
        }));
        // Bounded by construction: admission above enforces the tenant
        // quota before anything is queued.
        self.pending.push(id);
        Ok(id)
    }

    /// Pop the next job to run: highest priority first, then oldest id
    /// (a requeued job keeps its original id, so it goes back to the
    /// front of its priority class).
    pub fn pop_next(&mut self) -> Option<u64> {
        let best = self
            .pending
            .iter()
            .enumerate()
            .max_by_key(|(_, &id)| (self.rec(id).spec.priority, std::cmp::Reverse(id)))?
            .0;
        let id = self.pending.swap_remove(best);
        let rec = self.rec_mut(id);
        rec.state = JobState::Running;
        rec.attempts += 1;
        Some(id)
    }

    /// Number of jobs awaiting a worker.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Record a progress snapshot (bounded ring per job).
    pub fn record_snapshot(&mut self, id: u64, sweep: u64, total: u64, mean_energy: f64) {
        let rec = self.rec_mut(id);
        let snap = SnapRec {
            seq: rec.next_seq,
            sweep,
            total,
            mean_energy,
            attempt: rec.attempts,
        };
        rec.next_seq += 1;
        if rec.snapshots.len() == SNAPSHOT_RING {
            rec.snapshots.pop_front();
        }
        rec.snapshots.push_back(snap);
        self.obs.counter_add("serve.snapshots", 1);
    }

    /// A worker finished the job: store the result, fold the engine's
    /// registry into the tenant namespace, feed tenant health.
    pub fn complete(&mut self, id: u64, obs: JobObservables, engine_metrics: &Registry) {
        let rec = self.rec_mut(id);
        rec.state = JobState::Done;
        // lint: allow(wall-clock) — the result-retention TTL is wall time
        rec.finished = Some(Instant::now());
        let attempts = rec.attempts;
        let tenant = rec.spec.tenant.clone();
        let mean = obs
            .energy
            .first()
            .filter(|e| !e.is_empty())
            .map(|e| e.iter().sum::<f64>() / e.len() as f64);
        rec.result = Some((obs, attempts));
        self.obs
            .absorb_registry_prefixed(engine_metrics, &format!("tenant.{tenant}."));
        self.obs.counter_add("serve.jobs_completed", 1);
        self.obs
            .counter_add(&format!("tenant.{tenant}.jobs_completed"), 1);
        if let Some(mean) = mean {
            let idx = match self.tenant_health.iter().position(|(t, _)| *t == tenant) {
                Some(i) => i,
                None => {
                    self.tenant_health.push((tenant, HealthMonitor::new(4)));
                    self.tenant_health.len() - 1
                }
            };
            self.tenant_health[idx].1.push(mean);
        }
    }

    /// A worker died running the job: put it back in the queue (the
    /// armed kill is disarmed — a requeue retries for real).
    pub fn requeue(&mut self, id: u64) {
        let rec = self.rec_mut(id);
        rec.state = JobState::Queued;
        rec.kill_at = None;
        // Re-admission is not re-checked against the quota: the job
        // already holds its admission slot (it never left Queued|Running
        // from the tenant's accounting perspective).
        self.pending.push(id);
        self.obs.counter_add("serve.requeues", 1);
        self.obs.counter_add("serve.worker_kills", 1);
    }

    /// Requeue with a retry cap: if the job has already started
    /// `max_attempts` attempts, transition it to [`JobState::Failed`]
    /// with `last_error` instead of queueing attempt `max_attempts + 1`.
    /// Returns `true` if the job was requeued, `false` if it was failed
    /// (the caller must then release any per-job resources exactly as
    /// it does for [`Sched::fail`]).
    pub fn requeue_capped(&mut self, id: u64, max_attempts: u32, last_error: String) -> bool {
        if self.rec(id).attempts >= max_attempts {
            self.obs.counter_add("serve.worker_kills", 1);
            self.fail(
                id,
                format!("retry cap reached ({max_attempts} attempts): {last_error}"),
            );
            return false;
        }
        self.requeue(id);
        true
    }

    /// A PT world rode through a worker death in place: record how it
    /// survived (`respawns` in-place rank respawns and/or one ladder
    /// `resize`) without the job ever leaving `Running`.
    pub fn note_elastic(&mut self, respawns: u32, resized: bool) {
        if respawns > 0 {
            self.obs.counter_add("serve.respawns", respawns as u64);
        }
        if resized {
            self.obs.counter_add("serve.resizes", 1);
        }
    }

    /// A drain checkpointed the job mid-run and parked it.
    pub fn pause(&mut self, id: u64) {
        self.rec_mut(id).state = JobState::Paused;
        self.obs.counter_add("serve.jobs_drained", 1);
    }

    /// An attempt died in a way a retry cannot fix (restore error,
    /// worker panic): park the job as Failed with the reason, releasing
    /// its quota slot and namespace instead of looping the failure.
    pub fn fail(&mut self, id: u64, reason: String) {
        let rec = self.rec_mut(id);
        rec.state = JobState::Failed;
        rec.error = Some(reason);
        // lint: allow(wall-clock) — the result-retention TTL is wall time
        rec.finished = Some(Instant::now());
        self.obs.counter_add("serve.jobs_failed", 1);
    }

    /// Counters and health snapshots, optionally filtered to one
    /// tenant's namespace (plus the global `serve.*` counters).
    pub fn stats(&self, tenant: &str) -> crate::TenantStats {
        let keep = |name: &str| {
            tenant.is_empty()
                || name.starts_with("serve.")
                || name.starts_with(&format!("tenant.{tenant}."))
        };
        let mut counters: Vec<(String, u64)> = self
            .obs
            .counters
            .iter()
            .filter(|(n, _)| keep(n))
            .cloned()
            .collect();
        counters.sort();
        let health = self
            .tenant_health
            .iter()
            .filter(|(t, _)| tenant.is_empty() || *t == tenant)
            .map(|(t, hm)| HealthSnapshot::of(&format!("tenant.{t}.energy"), hm))
            .collect();
        (counters, health)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;

    fn spec(tenant: &str, name: &str, priority: u8) -> JobSpec {
        JobSpec {
            tenant: tenant.into(),
            name: name.into(),
            kind: JobKind::Tfim {
                lx: 4,
                ly: 1,
                j: 1.0,
                h: 2.0,
                m: 4,
                wolff: 1,
            },
            betas: vec![1.0],
            therm: 2,
            sweeps: 8,
            seed: 1,
            priority,
            ckpt_every: 0,
        }
    }

    #[test]
    fn quota_rejects_excess_submissions() {
        let mut sched = Sched::default();
        let quota = TenantQuota { max_active: 2 };
        assert!(sched.submit(spec("a", "j1", 0), &quota, &[]).is_ok());
        assert!(sched.submit(spec("a", "j2", 0), &quota, &[]).is_ok());
        let err = sched.submit(spec("a", "j3", 0), &quota, &[]).unwrap_err();
        assert!(err.contains("quota"), "{err}");
        // Another tenant is unaffected.
        assert!(sched.submit(spec("b", "j1", 0), &quota, &[]).is_ok());
        assert_eq!(sched.obs.counter("serve.jobs_rejected"), 1);
    }

    #[test]
    fn dispatch_is_priority_then_fifo_and_requeue_goes_first() {
        let mut sched = Sched::default();
        let quota = TenantQuota::default();
        let lo1 = sched.submit(spec("a", "lo1", 1), &quota, &[]).unwrap();
        let hi = sched.submit(spec("a", "hi", 9), &quota, &[]).unwrap();
        let lo2 = sched.submit(spec("a", "lo2", 1), &quota, &[]).unwrap();
        assert_eq!(sched.pop_next(), Some(hi));
        assert_eq!(sched.pop_next(), Some(lo1));
        // A kill requeues lo1; it outranks lo2 (same priority, older id).
        sched.requeue(lo1);
        assert_eq!(sched.pop_next(), Some(lo1));
        assert_eq!(sched.pop_next(), Some(lo2));
        assert_eq!(sched.pop_next(), None);
        assert_eq!(sched.obs.counter("serve.requeues"), 1);
    }

    #[test]
    fn kills_arm_only_the_named_job_and_disarm_on_requeue() {
        let mut sched = Sched::default();
        let quota = TenantQuota::default();
        let kills = [KillSpec {
            job: 1,
            at_sweep: 5,
        }];
        let a = sched.submit(spec("a", "a", 0), &quota, &kills).unwrap();
        let b = sched.submit(spec("a", "b", 0), &quota, &kills).unwrap();
        assert_eq!(sched.job(a).unwrap().kill_at, None);
        assert_eq!(sched.job(b).unwrap().kill_at, Some(5));
        sched.requeue(b);
        assert_eq!(sched.job(b).unwrap().kill_at, None, "retry runs for real");
    }

    #[test]
    fn snapshot_ring_is_bounded() {
        let mut sched = Sched::default();
        let quota = TenantQuota::default();
        let id = sched.submit(spec("a", "a", 0), &quota, &[]).unwrap();
        for s in 0..(SNAPSHOT_RING as u64 + 40) {
            sched.record_snapshot(id, s, 1000, f64::NAN);
        }
        let rec = sched.job(id).unwrap();
        assert_eq!(rec.snapshots.len(), SNAPSHOT_RING);
        // Sequence numbers stay monotonic across the dropped prefix.
        assert_eq!(rec.snapshots.back().unwrap().seq, SNAPSHOT_RING as u64 + 40);
    }

    #[test]
    fn stats_filter_isolates_tenants() {
        let mut sched = Sched::default();
        let quota = TenantQuota::default();
        let a = sched.submit(spec("alice", "a", 0), &quota, &[]).unwrap();
        let b = sched.submit(spec("bob", "b", 0), &quota, &[]).unwrap();
        sched.pop_next();
        sched.pop_next();
        let mut reg = Registry::new();
        reg.add_named("accepted", 5);
        sched.complete(
            a,
            JobObservables {
                energy: vec![vec![-1.0]],
                extra: vec![],
            },
            &reg,
        );
        sched.complete(
            b,
            JobObservables {
                energy: vec![vec![-2.0]],
                extra: vec![],
            },
            &reg,
        );
        let (counters, health) = sched.stats("alice");
        assert!(counters.iter().any(|(n, _)| n == "tenant.alice.accepted"));
        assert!(
            !counters.iter().any(|(n, _)| n.starts_with("tenant.bob.")),
            "bob's counters leaked into alice's view"
        );
        assert_eq!(health.len(), 1);
        assert_eq!(health[0].name, "tenant.alice.energy");
        assert_eq!(health[0].mean, -1.0);
    }

    #[test]
    fn namespace_collisions_are_rejected_while_live() {
        let mut sched = Sched::default();
        let quota = TenantQuota::default();
        let id = sched.submit(spec("a", "job 1", 0), &quota, &[]).unwrap();
        // Same sanitized checkpoint directory, different literal name.
        let err = sched
            .submit(spec("a", "job_1", 0), &quota, &[])
            .unwrap_err();
        assert!(err.contains("collides"), "{err}");
        // Another tenant's identical job name is a different namespace.
        assert!(sched.submit(spec("b", "job 1", 0), &quota, &[]).is_ok());
        // Once the first job is done its namespace is free again.
        sched.pop_next();
        sched.complete(id, JobObservables::default(), &Registry::new());
        assert!(sched.submit(spec("a", "job_1", 0), &quota, &[]).is_ok());
    }

    #[test]
    fn failed_jobs_release_quota_and_keep_the_reason() {
        let mut sched = Sched::default();
        let quota = TenantQuota { max_active: 1 };
        let id = sched.submit(spec("a", "j1", 0), &quota, &[]).unwrap();
        sched.pop_next();
        sched.fail(id, "restore error: checkpoint corrupt".into());
        let rec = sched.job(id).unwrap();
        assert_eq!(rec.state, JobState::Failed);
        assert!(rec.error.as_deref().unwrap().contains("restore"));
        assert_eq!(sched.obs.counter("serve.jobs_failed"), 1);
        // The failed job no longer occupies the tenant's quota slot or
        // its checkpoint namespace.
        assert!(sched.submit(spec("a", "j1", 0), &quota, &[]).is_ok());
    }

    #[test]
    fn retry_cap_fails_the_job_with_the_last_error() {
        let mut sched = Sched::default();
        let quota = TenantQuota::default();
        let id = sched.submit(spec("a", "crashy", 0), &quota, &[]).unwrap();
        // Attempts 1 and 2 die and are requeued under a cap of 3.
        for _ in 0..2 {
            assert_eq!(sched.pop_next(), Some(id));
            assert!(sched.requeue_capped(id, 3, "worker panicked".into()));
            assert_eq!(sched.job(id).unwrap().state, JobState::Queued);
        }
        // Attempt 3 dies too: the cap is reached, so the job fails with
        // the last error instead of queueing a fourth attempt.
        assert_eq!(sched.pop_next(), Some(id));
        assert!(!sched.requeue_capped(id, 3, "worker panicked".into()));
        let rec = sched.job(id).unwrap();
        assert_eq!(rec.state, JobState::Failed);
        let err = rec.error.as_deref().unwrap();
        assert!(
            err.contains("retry cap") && err.contains("worker panicked"),
            "{err}"
        );
        assert_eq!(sched.pending_len(), 0, "a capped job must not be queued");
        assert_eq!(sched.pop_next(), None);
        assert_eq!(sched.obs.counter("serve.jobs_failed"), 1);
        assert_eq!(sched.obs.counter("serve.requeues"), 2);
        assert_eq!(sched.obs.counter("serve.worker_kills"), 3);
    }

    #[test]
    fn elastic_ride_throughs_bump_the_counters() {
        let mut sched = Sched::default();
        sched.note_elastic(2, false);
        sched.note_elastic(0, true);
        sched.note_elastic(0, false);
        assert_eq!(sched.obs.counter("serve.respawns"), 2);
        assert_eq!(sched.obs.counter("serve.resizes"), 1);
    }

    #[test]
    fn ttl_evicts_terminal_jobs_only() {
        let mut sched = Sched::default();
        let quota = TenantQuota::default();
        let done = sched.submit(spec("a", "done", 0), &quota, &[]).unwrap();
        let failed = sched.submit(spec("a", "failed", 0), &quota, &[]).unwrap();
        let queued = sched.submit(spec("a", "queued", 0), &quota, &[]).unwrap();
        let running = sched.submit(spec("a", "running", 0), &quota, &[]).unwrap();
        assert_eq!(sched.pop_next(), Some(done));
        sched.complete(done, JobObservables::default(), &Registry::new());
        assert_eq!(sched.pop_next(), Some(failed));
        sched.fail(failed, "injected".into());
        assert_eq!(sched.pop_next(), Some(queued));
        assert_eq!(sched.pop_next(), Some(running));
        // Requeue one so a job sits in each non-terminal state
        // alongside the two terminal ones.
        sched.requeue(queued);

        assert_eq!(sched.evict_expired(Duration::ZERO), 2);
        assert!(sched.was_evicted(done) && sched.job(done).is_none());
        assert!(sched.was_evicted(failed));
        assert!(sched.job(queued).is_some(), "queued jobs are never evicted");
        assert!(
            sched.job(running).is_some(),
            "running jobs are never evicted"
        );
        assert_eq!(sched.obs.counter("serve.jobs_evicted"), 2);
        // An id that never existed is not "evicted".
        assert!(!sched.was_evicted(99));
        // The pending queue and dispatch survive eviction untouched.
        assert_eq!(sched.pending_len(), 1);
        assert_eq!(sched.pop_next(), Some(queued));
    }

    #[test]
    fn ttl_retains_fresh_results() {
        let mut sched = Sched::default();
        let quota = TenantQuota::default();
        let id = sched.submit(spec("a", "j", 0), &quota, &[]).unwrap();
        sched.pop_next();
        sched.complete(id, JobObservables::default(), &Registry::new());
        assert_eq!(sched.evict_expired(Duration::from_secs(3600)), 0);
        assert!(sched.job(id).is_some(), "a fresh result must be retained");
        assert!(!sched.was_evicted(id));
    }

    #[test]
    fn draining_rejects_new_work() {
        let mut sched = Sched {
            draining: true,
            ..Sched::default()
        };
        let err = sched
            .submit(spec("a", "late", 0), &TenantQuota::default(), &[])
            .unwrap_err();
        assert!(err.contains("draining"), "{err}");
    }
}
