//! Job execution: one checkpointed drive loop per job kind.
//!
//! The server cannot depend on `qmc-bench` (which depends on this crate
//! for the demo), so the serial drive loop here mirrors
//! `qmc_bench::ckpt_driver` — restore from the newest generation,
//! checkpoint *before* the sweep whose index the generation carries,
//! honour kill/drain at sweep boundaries — against the same `qmc-ckpt`
//! section plans, so a job checkpointed by one incarnation of a worker
//! resumes bit-identically in the next.
//!
//! Kills come in two flavors, both deterministic:
//! * serial jobs abort at a chosen sweep boundary, leaving the store
//!   exactly as a real mid-run death would (any generation due at that
//!   boundary is written; nothing newer);
//! * parallel-tempering jobs die for real: one rank of the job's
//!   ThreadWorld panics mid-run and the elastic supervisor rides the
//!   death through *inside the attempt* — in-place respawn from the
//!   latest coordinated generation first, β-ladder resize when the
//!   respawn budget is spent — so the job no longer bounces back to the
//!   scheduler's requeue path unless both policies are unavailable.

use crate::job::{JobKind, JobObservables, JobSpec};
use qmc_ckpt::{
    plan_sections, restore_sections, Checkpoint, CkptStore, Decoder, Encoder, SectionPlan,
};
use qmc_comm::{run_threads, run_threads_elastic, Communicator, ElasticError};
use qmc_core::pt::{run_pt_parallel_ckpt, PtCheckpointing, PtConfig};
use qmc_obs::Registry;
use qmc_rng::{StreamFactory, Xoshiro256StarStar};
use qmc_tfim::serial::{SerialTfim, TfimSeries};
use qmc_tfim::TfimModel;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How a single attempt at a job ended.
#[derive(Debug)]
pub enum Outcome {
    /// Ran to completion; per-tenant engine counters ride along for the
    /// metrics namespace.
    Done {
        /// The job's observable series.
        obs: JobObservables,
        /// Per-tenant engine counters for the metrics namespace.
        metrics: Registry,
        /// Rank deaths absorbed by in-place respawn during the attempt.
        respawns: u32,
        /// Whether the β ladder was resized (shrunk) to finish.
        resized: bool,
    },
    /// The worker died at (or near) this sweep; the job's checkpoint
    /// store holds its latest surviving generation.
    Killed {
        /// Sweep boundary of the injected death.
        at_sweep: u64,
    },
    /// Graceful drain: a final checkpoint generation was written at this
    /// boundary before exiting.
    Drained {
        /// Sweep boundary the drain checkpoint carries.
        at_sweep: u64,
    },
    /// The attempt cannot proceed and a retry would hit the same wall
    /// (e.g. the checkpoint store fails to restore). The scheduler fails
    /// the job with this reason instead of requeueing it forever.
    Failed {
        /// What went wrong, with enough context to diagnose.
        reason: String,
    },
}

/// Controls for one attempt: checkpointing, fault injection, drain, and
/// progress streaming.
pub struct RunCtl<'a> {
    /// Per-job checkpoint store (`None` disables checkpointing — used
    /// for uninterrupted reference runs).
    pub store: Option<&'a CkptStore>,
    /// Checkpoint cadence in sweeps.
    pub every: usize,
    /// Full-snapshot cadence in generations (0 = all full).
    pub full_every: usize,
    /// Resume from the newest generation (a fresh store has none, so
    /// this is safe to leave on).
    pub resume: bool,
    /// Deterministic injected death at this sweep boundary.
    pub kill_at: Option<u64>,
    /// Graceful-drain flag, checked at sweep boundaries.
    pub stop: Option<&'a AtomicBool>,
    /// How many in-place rank respawns a parallel attempt may absorb
    /// before falling back to a ladder resize (and, failing that, the
    /// scheduler's requeue path). `0` disables respawn, forcing the
    /// resize policy on the first death.
    pub respawn_budget: usize,
    /// Progress callback: `(sweep, total, mean_energy)` at every
    /// checkpoint boundary.
    pub snapshot: Option<&'a mut dyn FnMut(u64, u64, f64)>,
}

impl Default for RunCtl<'_> {
    fn default() -> Self {
        RunCtl {
            store: None,
            every: 10,
            full_every: 3,
            resume: true,
            kill_at: None,
            stop: None,
            respawn_budget: 1,
            snapshot: None,
        }
    }
}

/// Run one attempt of `spec` under `ctl`. The spec must already be
/// validated; parameter errors here are bugs, not tenant input.
pub fn run_job(spec: &JobSpec, ctl: RunCtl<'_>) -> Outcome {
    match &spec.kind {
        JobKind::Tfim {
            lx,
            ly,
            j,
            h,
            m,
            wolff,
        } => {
            let model = TfimModel {
                lx: *lx,
                ly: *ly,
                j: *j,
                h: *h,
                beta: spec.betas[0],
                m: *m,
            };
            run_tfim(model, *wolff, spec, ctl)
        }
        JobKind::PtXxz {
            l,
            jx,
            jz,
            m,
            exchange_every,
        } => {
            let cfg = PtConfig {
                l: *l,
                jx: *jx,
                jz: *jz,
                m: *m,
                betas: spec.betas.clone(),
                therm: spec.therm as usize,
                sweeps: spec.sweeps as usize,
                exchange_every: *exchange_every,
                seed: spec.seed,
            };
            run_pt(cfg, spec, ctl)
        }
    }
}

/// Serial TFIM drive loop (mirrors `qmc_bench::ckpt_driver::drive`).
fn run_tfim(model: TfimModel, wolff: usize, spec: &JobSpec, mut ctl: RunCtl<'_>) -> Outcome {
    let therm = spec.therm as usize;
    let total = therm + spec.sweeps as usize;
    let mut eng = SerialTfim::new(model);
    let mut series = TfimSeries::default();
    let mut rng = Xoshiro256StarStar::new(spec.seed);

    let mut start = 0usize;
    if let Some(store) = ctl.store {
        if ctl.resume {
            if let Some((generation, file)) = store.latest() {
                // A restore failure (corrupt generation, or a checkpoint
                // written by a different spec) is terminal for the job,
                // not the worker: report it instead of panicking the
                // pool thread.
                let restored = (|| -> Result<usize, String> {
                    let meta = file.require("meta").map_err(|e| e.to_string())?;
                    let mut dec = Decoder::new(meta);
                    let s0 = dec.u64().map_err(|e| e.to_string())? as usize;
                    if generation != s0 as u64 {
                        return Err(format!(
                            "generation {generation} != checkpointed sweep {s0}"
                        ));
                    }
                    restore_sections(&file, "engine", &mut eng).map_err(|e| e.to_string())?;
                    restore_sections(&file, "rng", &mut rng).map_err(|e| e.to_string())?;
                    restore_sections(&file, "series", &mut series).map_err(|e| e.to_string())?;
                    Ok(s0)
                })();
                match restored {
                    Ok(s0) => start = s0,
                    Err(e) => {
                        return Outcome::Failed {
                            reason: format!("restore from checkpoint generation {generation}: {e}"),
                        }
                    }
                }
            }
        }
    }

    let mean = |series: &TfimSeries| -> f64 {
        if series.energy.is_empty() {
            f64::NAN
        } else {
            series.energy.iter().sum::<f64>() / series.energy.len() as f64
        }
    };

    for s in start..total {
        let draining = ctl.stop.is_some_and(|f| f.load(Ordering::SeqCst));
        if let Some(store) = ctl.store {
            if draining || s % ctl.every == 0 {
                let gen_index = s / ctl.every;
                let want_full =
                    draining || ctl.full_every == 0 || gen_index.is_multiple_of(ctl.full_every);
                let delta = !want_full && store.delta_base().is_some_and(|b| b < s as u64);
                let mut meta = Encoder::new();
                meta.u64(s as u64);
                let mut plan = vec![("meta".to_string(), SectionPlan::Payload(meta.into_bytes()))];
                plan_sections(&mut plan, "engine", &eng, delta);
                plan_sections(&mut plan, "rng", &rng, delta);
                plan_sections(&mut plan, "series", &series, delta);
                if store.write_plan(s as u64, plan, delta).is_ok() {
                    eng.mark_clean();
                    rng.mark_clean();
                    series.mark_clean();
                }
                if let Some(snap) = ctl.snapshot.as_deref_mut() {
                    snap(s as u64, total as u64, mean(&series));
                }
            }
        }
        if draining {
            return Outcome::Drained { at_sweep: s as u64 };
        }
        if ctl.kill_at == Some(s as u64) {
            // Die exactly as the crash-matrix tests do: after any
            // generation due at this boundary, before the sweep runs.
            return Outcome::Killed { at_sweep: s as u64 };
        }
        eng.metropolis_sweep(&mut rng);
        for _ in 0..wolff {
            eng.wolff_update(&mut rng);
        }
        if s >= therm {
            series.record(&eng.measure());
        }
    }
    let obs = JobObservables {
        energy: vec![series.energy.clone()],
        extra: vec![series.abs_m.clone()],
    };
    Outcome::Done {
        obs,
        metrics: eng.metrics().clone(),
        respawns: 0,
        resized: false,
    }
}

/// Serializes panic-hook swaps across workers: injected PT kills unwind
/// a whole ThreadWorld, and silencing the expected panic must not race
/// another worker doing the same.
static KILL_HOOK: Mutex<()> = Mutex::new(());

/// Parallel-tempering attempt on a fresh ThreadWorld (one rank per β).
///
/// Elastic ride-through of a rank death: the world is supervised by
/// [`run_threads_elastic`], so an injected kill is absorbed *inside the
/// attempt*. First policy is in-place respawn (up to
/// `ctl.respawn_budget` whole-world relaunches, every rank rehydrating
/// from the latest coordinated generation — bit-identical to a run that
/// never died). When the budget is spent and the job has a checkpoint
/// store with at least three rungs, the second policy resizes the
/// ladder: the dying rank's β is dropped and the survivors resume
/// remapped onto the smaller world. Only when neither applies does the
/// attempt report `Killed` for the scheduler's requeue path.
fn run_pt(cfg: PtConfig, spec: &JobSpec, mut ctl: RunCtl<'_>) -> Outcome {
    let every = ctl.every;
    let full_every = ctl.full_every;
    let dir = ctl.store.map(|s| s.dir().to_path_buf());
    let therm = cfg.therm;
    let sweeps = cfg.sweeps;
    let seed = spec.seed;

    if let Some(kill_sweep) = ctl.kill_at {
        // One-shot injected death: rank `1 % size` panics at the
        // scheduled sweep on its first pass only — a respawned world
        // replaying the same boundary must not die again, or the
        // respawn loop could never converge. The hook swap silences the
        // expected panic spam and is serialized so concurrent killed
        // jobs don't race it.
        let fired = Arc::new(AtomicBool::new(false));
        let snap = ctl.snapshot.take();
        let guard = KILL_HOOK.lock().expect("kill hook guard");
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let launch = |betas: Vec<f64>, elastic_from: Option<Vec<f64>>, budget: usize| {
            let ranks = betas.len();
            let cfg2 = PtConfig {
                betas,
                ..cfg.clone()
            };
            let dir2 = dir.clone();
            let fired = fired.clone();
            run_threads_elastic(ranks, Duration::from_secs(20), budget, move |comm| {
                let mut rng = StreamFactory::new(seed).stream(comm.rank());
                let store = dir2
                    .as_ref()
                    .map(|d| CkptStore::new(d, 3).expect("job store"));
                let ck = store.as_ref().map(|s| PtCheckpointing {
                    store: s,
                    every,
                    full_every,
                    resume: true,
                    stop: None,
                    elastic_from: elastic_from.as_deref(),
                });
                let fired = fired.clone();
                run_pt_parallel_ckpt(comm, &cfg2, &mut rng, ck.as_ref(), move |c, s| {
                    if s as u64 == kill_sweep
                        && c.rank() == 1 % c.size()
                        && !fired.swap(true, Ordering::SeqCst)
                    {
                        panic!("injected rank kill at sweep {s}");
                    }
                })
            })
        };
        let outcome = match launch(cfg.betas.clone(), None, ctl.respawn_budget) {
            Ok(run) => {
                let respawns = run.respawned.len() as u32;
                pt_outcome(run.results, therm, sweeps, snap, respawns, false)
            }
            Err(ElasticError::Exhausted {
                dead_rank,
                respawned,
                ..
            }) => {
                if cfg.betas.len() > 2 && dir.is_some() {
                    // Resize: drop the dying rank's β, resume survivors
                    // remapped from the pre-resize checkpoints.
                    let mut betas = cfg.betas.clone();
                    betas.remove(dead_rank.min(betas.len() - 1));
                    match launch(betas, Some(cfg.betas.clone()), 0) {
                        Ok(run) => pt_outcome(
                            run.results,
                            therm,
                            sweeps,
                            snap,
                            respawned.len() as u32,
                            true,
                        ),
                        Err(_) => Outcome::Killed {
                            at_sweep: kill_sweep,
                        },
                    }
                } else {
                    Outcome::Killed {
                        at_sweep: kill_sweep,
                    }
                }
            }
            Err(ElasticError::Stalled { message, .. }) => Outcome::Failed { reason: message },
        };
        std::panic::set_hook(hook);
        drop(guard);
        return outcome;
    }

    let ranks = cfg.betas.len();
    let dir2 = dir.clone();
    let cfg2 = cfg.clone();
    // Every rank shares the same drain flag; the PT driver reads it only
    // on rank 0 and broadcasts the verdict, so this is rank-consistent.
    let stop_outer = ctl.stop;
    let results = run_threads(ranks, move |comm| {
        let mut rng = StreamFactory::new(seed).stream(comm.rank());
        let store = dir2
            .as_ref()
            .map(|d| CkptStore::new(d, 3).expect("job store"));
        let ck = store.as_ref().map(|s| PtCheckpointing {
            store: s,
            every,
            full_every,
            resume: true,
            stop: stop_outer,
            elastic_from: None,
        });
        run_pt_parallel_ckpt(comm, &cfg2, &mut rng, ck.as_ref(), |_, _| {})
    });
    let mut snap = ctl.snapshot.take();
    let drained = results
        .first()
        .is_some_and(|(energies, _)| energies.len() < sweeps);
    if drained {
        let at = therm as u64 + results[0].0.len() as u64;
        if let Some(s) = snap.as_deref_mut() {
            s(at, (therm + sweeps) as u64, f64::NAN);
        }
        return Outcome::Drained { at_sweep: at };
    }
    pt_outcome(results, therm, sweeps, snap, 0, false)
}

fn pt_outcome(
    results: Vec<(Vec<f64>, Vec<f64>)>,
    therm: usize,
    sweeps: usize,
    snapshot: Option<&mut dyn FnMut(u64, u64, f64)>,
    respawns: u32,
    resized: bool,
) -> Outcome {
    let rates = results.first().map(|(_, r)| r.clone()).unwrap_or_default();
    let energy: Vec<Vec<f64>> = results.into_iter().map(|(e, _)| e).collect();
    if let Some(snap) = snapshot {
        let mean = energy
            .first()
            .filter(|e| !e.is_empty())
            .map(|e| e.iter().sum::<f64>() / e.len() as f64)
            .unwrap_or(f64::NAN);
        snap((therm + sweeps) as u64, (therm + sweeps) as u64, mean);
    }
    Outcome::Done {
        obs: JobObservables {
            energy,
            extra: vec![rates],
        },
        metrics: Registry::new(),
        respawns,
        resized,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicU64;

    fn scratch(label: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("qmc-serve-run-{}-{label}-{n}", std::process::id()))
    }

    fn tfim_spec() -> JobSpec {
        JobSpec {
            tenant: "alice".into(),
            name: "t".into(),
            kind: JobKind::Tfim {
                lx: 4,
                ly: 1,
                j: 1.0,
                h: 2.0,
                m: 4,
                wolff: 1,
            },
            betas: vec![1.0],
            therm: 5,
            sweeps: 15,
            seed: 11,
            priority: 0,
            ckpt_every: 4,
        }
    }

    fn pt_spec() -> JobSpec {
        JobSpec {
            tenant: "bob".into(),
            name: "pt".into(),
            kind: JobKind::PtXxz {
                l: 8,
                jx: 1.0,
                jz: 1.0,
                m: 8,
                exchange_every: 2,
            },
            betas: vec![0.5, 0.9, 1.4, 2.0],
            therm: 8,
            sweeps: 16,
            seed: 23,
            priority: 0,
            ckpt_every: 4,
        }
    }

    fn reference(spec: &JobSpec) -> JobObservables {
        match run_job(spec, RunCtl::default()) {
            Outcome::Done { obs, .. } => obs,
            other => panic!("reference run must complete, got {other:?}"),
        }
    }

    #[test]
    fn tfim_kill_and_resume_is_bit_identical() {
        let spec = tfim_spec();
        let want = reference(&spec);
        for kill in [3u64, 9, 14] {
            let dir = scratch("tfim-kill");
            let store = CkptStore::new(&dir, 3).unwrap();
            let killed = run_job(
                &spec,
                RunCtl {
                    store: Some(&store),
                    every: 4,
                    kill_at: Some(kill),
                    ..Default::default()
                },
            );
            assert!(matches!(killed, Outcome::Killed { at_sweep } if at_sweep == kill));
            let resumed = run_job(
                &spec,
                RunCtl {
                    store: Some(&store),
                    every: 4,
                    ..Default::default()
                },
            );
            match resumed {
                Outcome::Done { obs, .. } => {
                    assert!(obs.bits_eq(&want), "kill at {kill}: observables diverged")
                }
                other => panic!("resume must complete, got {other:?}"),
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn pt_world_kill_rides_through_via_respawn_bit_identical() {
        let spec = pt_spec();
        let want = reference(&spec);
        let dir = scratch("pt-kill");
        let store = CkptStore::new(&dir, 3).unwrap();
        let kill = (spec.therm + spec.sweeps) as u64 * 2 / 3;
        // One rank dies mid-flight; the world respawns it in place, rolls
        // everyone back to the newest coordinated generation, and finishes
        // in the SAME run_job call — no external requeue needed.
        let outcome = run_job(
            &spec,
            RunCtl {
                store: Some(&store),
                every: 4,
                kill_at: Some(kill),
                ..Default::default()
            },
        );
        match outcome {
            Outcome::Done {
                obs,
                respawns,
                resized,
                ..
            } => {
                assert_eq!(respawns, 1, "exactly one respawn expected");
                assert!(!resized, "respawn path must not shrink the ladder");
                assert!(obs.bits_eq(&want), "PT respawn ride-through diverged");
            }
            other => panic!("ride-through must complete, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pt_world_kill_with_no_budget_resizes_the_ladder() {
        let spec = pt_spec();
        let dir = scratch("pt-resize");
        let store = CkptStore::new(&dir, 3).unwrap();
        let kill = (spec.therm + spec.sweeps) as u64 * 2 / 3;
        let outcome = run_job(
            &spec,
            RunCtl {
                store: Some(&store),
                every: 4,
                kill_at: Some(kill),
                respawn_budget: 0,
                ..Default::default()
            },
        );
        match outcome {
            Outcome::Done {
                obs,
                respawns,
                resized,
                ..
            } => {
                assert_eq!(respawns, 0);
                assert!(resized, "budget 0 must fall back to a ladder resize");
                // One β was dropped: the surviving ladder has one fewer row.
                assert_eq!(obs.energy.len(), spec.betas.len() - 1);
            }
            other => panic!("resize ride-through must complete, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pt_world_kill_without_store_or_budget_is_killed() {
        let spec = pt_spec();
        let kill = (spec.therm + spec.sweeps) as u64 * 2 / 3;
        let outcome = run_job(
            &spec,
            RunCtl {
                kill_at: Some(kill),
                respawn_budget: 0,
                ..Default::default()
            },
        );
        assert!(
            matches!(outcome, Outcome::Killed { at_sweep } if at_sweep == kill),
            "{outcome:?}"
        );
    }

    #[test]
    fn tfim_drain_then_resume_is_bit_identical() {
        let spec = tfim_spec();
        let want = reference(&spec);
        let dir = scratch("tfim-drain");
        let store = CkptStore::new(&dir, 3).unwrap();
        let flag = AtomicBool::new(true); // drain immediately at the first boundary
        let drained = run_job(
            &spec,
            RunCtl {
                store: Some(&store),
                every: 4,
                stop: Some(&flag),
                ..Default::default()
            },
        );
        assert!(matches!(drained, Outcome::Drained { .. }), "{drained:?}");
        let resumed = run_job(
            &spec,
            RunCtl {
                store: Some(&store),
                every: 4,
                ..Default::default()
            },
        );
        match resumed {
            Outcome::Done { obs, .. } => assert!(obs.bits_eq(&want), "drain resume diverged"),
            other => panic!("resume must complete, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshots_stream_at_checkpoint_boundaries() {
        let spec = tfim_spec();
        let dir = scratch("tfim-snap");
        let store = CkptStore::new(&dir, 3).unwrap();
        let mut seen: Vec<(u64, u64)> = Vec::new();
        let mut cb = |sweep: u64, total: u64, _mean: f64| seen.push((sweep, total));
        let done = run_job(
            &spec,
            RunCtl {
                store: Some(&store),
                every: 4,
                snapshot: Some(&mut cb),
                ..Default::default()
            },
        );
        assert!(matches!(done, Outcome::Done { .. }));
        let total = (spec.therm + spec.sweeps) as u64;
        assert_eq!(
            seen,
            (0..total)
                .step_by(4)
                .map(|s| (s, total))
                .collect::<Vec<_>>()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
