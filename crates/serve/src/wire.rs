//! The job protocol: versioned, schema-tagged messages inside CRC'd
//! frames.
//!
//! Transport framing (magic, length, CRC) is [`qmc_comm::tcp`]; this
//! module is the payload layer, built on the same bounds-checked
//! [`qmc_ckpt::Encoder`]/[`qmc_ckpt::Decoder`] the checkpoint files use.
//! Every payload starts with the schema string and a one-byte message
//! tag, so a peer speaking a different protocol revision is rejected
//! with a diagnosable error instead of a garbled decode.

use crate::job::{JobObservables, JobSpec};
use qmc_ckpt::{CkptError, Decoder, Encoder};
use qmc_obs::HealthSnapshot;

/// Protocol schema tag carried by every message.
pub const SCHEMA: &str = "qmc-serve/v1";
/// Protocol revision negotiated in `Hello`/`HelloAck`.
pub const PROTO_VERSION: u32 = 1;

/// Every message either side can send.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Client → server: open a session for `tenant`.
    Hello {
        /// Client's protocol revision.
        proto: u32,
        /// Tenant the session bills to.
        tenant: String,
    },
    /// Server → client: session accepted.
    HelloAck {
        /// Server's protocol revision.
        proto: u32,
    },
    /// Client → server: submit a job.
    Submit {
        /// The full job request.
        spec: JobSpec,
    },
    /// Server → client: job admitted with a server-assigned id.
    Accepted {
        /// Server-assigned job id.
        job: u64,
    },
    /// Server → client: job refused (quota, validation, draining…).
    Rejected {
        /// Human-readable reason.
        reason: String,
    },
    /// Client → server: stream progress for `job`, starting after
    /// snapshot sequence number `after`.
    Await {
        /// Job id from `Accepted`.
        job: u64,
        /// Last snapshot sequence the client has seen (0 = none).
        after: u64,
    },
    /// Server → client: incremental progress for a running job.
    Snapshot {
        /// Job id.
        job: u64,
        /// Monotonic per-job snapshot sequence number.
        seq: u64,
        /// Sweeps completed so far.
        sweep: u64,
        /// Total sweeps budgeted (therm + measured).
        total: u64,
        /// Running mean energy (NaN until measurement starts).
        mean_energy: f64,
        /// Which attempt produced this snapshot (> 1 after a requeue).
        attempt: u32,
    },
    /// Server → client: final observables for a completed job.
    Result {
        /// Job id.
        job: u64,
        /// The observable series.
        obs: JobObservables,
        /// Attempts consumed (1 = never killed).
        attempts: u32,
    },
    /// Client → server: request the server/tenant counters.
    Stats {
        /// Tenant whose namespace to report ("" = all).
        tenant: String,
    },
    /// Server → client: counters and health series.
    StatsReply {
        /// `(name, value)` counters, sorted by name.
        counters: Vec<(String, u64)>,
        /// Per-tenant health snapshots.
        health: Vec<HealthSnapshot>,
    },
    /// Client → server: drain the server (checkpoint in-flight jobs and
    /// exit cleanly).
    Drain,
    /// Server → client: acknowledges a drain is underway.
    Draining,
    /// Server → client: protocol-level failure (with peer/tenant
    /// context).
    Error {
        /// What went wrong.
        detail: String,
    },
}

impl Msg {
    fn tag(&self) -> u8 {
        match self {
            Msg::Hello { .. } => 1,
            Msg::HelloAck { .. } => 2,
            Msg::Submit { .. } => 3,
            Msg::Accepted { .. } => 4,
            Msg::Rejected { .. } => 5,
            Msg::Await { .. } => 6,
            Msg::Snapshot { .. } => 7,
            Msg::Result { .. } => 8,
            Msg::Stats { .. } => 9,
            Msg::StatsReply { .. } => 10,
            Msg::Drain => 11,
            Msg::Draining => 12,
            Msg::Error { .. } => 13,
        }
    }

    /// Serialize to a frame payload (schema, tag, body).
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.str(SCHEMA);
        enc.u8(self.tag());
        match self {
            Msg::Hello { proto, tenant } => {
                enc.u32(*proto);
                enc.str(tenant);
            }
            Msg::HelloAck { proto } => enc.u32(*proto),
            Msg::Submit { spec } => spec.encode(&mut enc),
            Msg::Accepted { job } => enc.u64(*job),
            Msg::Rejected { reason } => enc.str(reason),
            Msg::Await { job, after } => {
                enc.u64(*job);
                enc.u64(*after);
            }
            Msg::Snapshot {
                job,
                seq,
                sweep,
                total,
                mean_energy,
                attempt,
            } => {
                enc.u64(*job);
                enc.u64(*seq);
                enc.u64(*sweep);
                enc.u64(*total);
                enc.f64(*mean_energy);
                enc.u32(*attempt);
            }
            Msg::Result { job, obs, attempts } => {
                enc.u64(*job);
                obs.encode(&mut enc);
                enc.u32(*attempts);
            }
            Msg::Stats { tenant } => enc.str(tenant),
            Msg::StatsReply { counters, health } => {
                enc.u32(counters.len() as u32);
                for (name, v) in counters {
                    enc.str(name);
                    enc.u64(*v);
                }
                enc.u32(health.len() as u32);
                for h in health {
                    enc.str(&h.name);
                    enc.u64(h.count);
                    enc.f64(h.mean);
                    enc.f64(h.std_dev);
                    enc.f64(h.error);
                    enc.f64(h.tau_int);
                    enc.f64(h.drift_z);
                }
            }
            Msg::Drain | Msg::Draining => {}
            Msg::Error { detail } => enc.str(detail),
        }
        enc.into_bytes()
    }

    /// Parse a frame payload. Every failure is a structured
    /// [`CkptError`]; the caller (server/client) adds peer and tenant
    /// context before surfacing it.
    pub fn decode(payload: &[u8]) -> Result<Msg, CkptError> {
        let mut dec = Decoder::new(payload);
        let schema = dec.str()?;
        if schema != SCHEMA {
            return Err(CkptError::BadSchema { found: schema });
        }
        let tag = dec.u8()?;
        let msg = match tag {
            1 => Msg::Hello {
                proto: dec.u32()?,
                tenant: dec.str()?,
            },
            2 => Msg::HelloAck { proto: dec.u32()? },
            3 => Msg::Submit {
                spec: JobSpec::decode(&mut dec)?,
            },
            4 => Msg::Accepted { job: dec.u64()? },
            5 => Msg::Rejected { reason: dec.str()? },
            6 => Msg::Await {
                job: dec.u64()?,
                after: dec.u64()?,
            },
            7 => Msg::Snapshot {
                job: dec.u64()?,
                seq: dec.u64()?,
                sweep: dec.u64()?,
                total: dec.u64()?,
                mean_energy: dec.f64()?,
                attempt: dec.u32()?,
            },
            8 => Msg::Result {
                job: dec.u64()?,
                obs: JobObservables::decode(&mut dec)?,
                attempts: dec.u32()?,
            },
            9 => Msg::Stats { tenant: dec.str()? },
            10 => {
                let nc = dec.u32()? as usize;
                if nc > 65_536 {
                    return Err(CkptError::corrupt("implausible counter count"));
                }
                let mut counters = Vec::with_capacity(nc.min(1024));
                for _ in 0..nc {
                    let name = dec.str()?;
                    counters.push((name, dec.u64()?));
                }
                let nh = dec.u32()? as usize;
                if nh > 65_536 {
                    return Err(CkptError::corrupt("implausible health count"));
                }
                let mut health = Vec::with_capacity(nh.min(1024));
                for _ in 0..nh {
                    health.push(HealthSnapshot {
                        name: dec.str()?,
                        count: dec.u64()?,
                        mean: dec.f64()?,
                        std_dev: dec.f64()?,
                        error: dec.f64()?,
                        tau_int: dec.f64()?,
                        drift_z: dec.f64()?,
                    });
                }
                Msg::StatsReply { counters, health }
            }
            11 => Msg::Drain,
            12 => Msg::Draining,
            13 => Msg::Error { detail: dec.str()? },
            t => {
                return Err(CkptError::corrupt(format!(
                    "unknown qmc-serve message tag {t}"
                )))
            }
        };
        dec.expect_empty()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;

    fn samples() -> Vec<Msg> {
        let spec = JobSpec {
            tenant: "alice".into(),
            name: "job-1".into(),
            kind: JobKind::Tfim {
                lx: 4,
                ly: 1,
                j: 1.0,
                h: 2.0,
                m: 4,
                wolff: 1,
            },
            betas: vec![1.0],
            therm: 4,
            sweeps: 16,
            seed: 7,
            priority: 3,
            ckpt_every: 5,
        };
        vec![
            Msg::Hello {
                proto: PROTO_VERSION,
                tenant: "alice".into(),
            },
            Msg::HelloAck {
                proto: PROTO_VERSION,
            },
            Msg::Submit { spec },
            Msg::Accepted { job: 42 },
            Msg::Rejected {
                reason: "tenant quota exceeded".into(),
            },
            Msg::Await { job: 42, after: 3 },
            Msg::Snapshot {
                job: 42,
                seq: 4,
                sweep: 10,
                total: 20,
                mean_energy: -1.25,
                attempt: 2,
            },
            Msg::Result {
                job: 42,
                obs: JobObservables {
                    energy: vec![vec![-1.0, -1.5]],
                    extra: vec![vec![0.5, 0.25]],
                },
                attempts: 2,
            },
            Msg::Stats {
                tenant: "alice".into(),
            },
            Msg::StatsReply {
                counters: vec![
                    ("serve.jobs_completed".into(), 7),
                    ("tenant.alice.accepted".into(), 41),
                ],
                health: vec![HealthSnapshot {
                    name: "tenant.alice.energy".into(),
                    count: 100,
                    mean: -1.2,
                    std_dev: 0.1,
                    error: 0.01,
                    tau_int: 1.5,
                    drift_z: 0.3,
                }],
            },
            Msg::Drain,
            Msg::Draining,
            Msg::Error {
                detail: "peer 127.0.0.1:9 tenant alice: frame CRC mismatch".into(),
            },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in samples() {
            let bytes = msg.encode();
            let back = Msg::decode(&bytes).unwrap_or_else(|e| panic!("{msg:?}: {e}"));
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let mut enc = Encoder::new();
        enc.str("qmc-serve/v9");
        enc.u8(1);
        let err = Msg::decode(&enc.into_bytes()).unwrap_err();
        assert!(matches!(err, CkptError::BadSchema { .. }), "{err}");
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut enc = Encoder::new();
        enc.str(SCHEMA);
        enc.u8(200);
        assert!(Msg::decode(&enc.into_bytes()).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = Msg::Drain.encode();
        bytes.push(0);
        assert!(Msg::decode(&bytes).is_err());
    }

    /// The torn-file idiom from qmc-ckpt, applied to every message: any
    /// truncation point decodes to an error, never a panic or a wrong
    /// message.
    #[test]
    fn truncation_at_every_cut_never_panics() {
        for msg in samples() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                let res = Msg::decode(&bytes[..cut]);
                assert!(res.is_err(), "{msg:?} truncated at {cut} decoded");
            }
        }
    }

    /// Bit-flip sweep: flipped payloads either fail to decode or decode
    /// to a *different, well-formed* message — never panic. (The CRC at
    /// the frame layer catches flips in transit; this guards the decode
    /// path itself against crafted payloads.)
    #[test]
    fn bit_flips_never_panic() {
        for msg in samples() {
            let bytes = msg.encode();
            for byte in 0..bytes.len() {
                for bit in 0..8 {
                    let mut bad = bytes.clone();
                    bad[byte] ^= 1 << bit;
                    let _ = Msg::decode(&bad); // must not panic
                }
            }
        }
    }
}
