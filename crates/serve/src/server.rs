//! The job server: acceptor, connection handlers, and the worker pool.
//!
//! Thread layout:
//! * one acceptor thread polls the non-blocking listener (2 ms sleep
//!   between polls) and spawns a handler per connection;
//! * handler threads speak the [`crate::wire`] protocol with one client,
//!   using a bounded read timeout so they notice a server drain;
//! * `cfg.workers` worker threads pull jobs from the scheduler, run
//!   attempts via [`crate::run::run_job`] under a per-job namespaced
//!   checkpoint store, and requeue on an injected death.
//!
//! Locking discipline: the scheduler mutex is held only for state
//! transitions — never across a sweep, a socket write, or a condvar wait
//! with work in hand.

use crate::run::{run_job, Outcome, RunCtl};
use crate::sched::{JobState, KillSpec, Sched, TenantQuota};
use crate::wire::{Msg, PROTO_VERSION};
use qmc_ckpt::CkptStore;
use qmc_comm::tcp::{FrameConn, FrameError, FrameListener};
use qmc_obs::RankObs;
use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker pool size (concurrent jobs; a PT job's ranks are threads
    /// *inside* one worker).
    pub workers: usize,
    /// Root directory for per-job checkpoint namespaces.
    pub ckpt_root: PathBuf,
    /// Default checkpoint cadence in sweeps (a job's `ckpt_every`
    /// overrides it when nonzero).
    pub ckpt_every: usize,
    /// Per-tenant admission quota.
    pub quota: TenantQuota,
    /// Deterministic injected worker deaths (demo / fault drills).
    pub kills: Vec<KillSpec>,
    /// Per-frame payload cap for client connections.
    pub max_frame: usize,
    /// Tenant name granted operator powers: sessions handshaken as this
    /// tenant may read unfiltered `Stats` and request a `Drain`. Every
    /// other session sees only its own tenant's counters and cannot
    /// drain the server.
    pub admin: String,
    /// Result-retention TTL: terminal (Done/Failed) job records older
    /// than this are evicted on the worker tick, bounding server memory
    /// against tenants that never `Await` their results. `None` retains
    /// every record for the server's lifetime.
    pub ttl: Option<Duration>,
    /// Retry cap: a job whose worker dies after `max_attempts` started
    /// attempts transitions to `Failed` with the last error instead of
    /// being requeued forever.
    pub max_attempts: u32,
    /// In-place rank respawns a PT attempt may perform before falling
    /// back to a ladder resize (see [`crate::run::RunCtl`]); deaths the
    /// attempt rides through never reach the requeue path at all.
    pub respawn_budget: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            ckpt_root: std::env::temp_dir().join("qmc-serve"),
            ckpt_every: 10,
            quota: TenantQuota::default(),
            kills: Vec::new(),
            max_frame: 1024 * 1024,
            admin: "admin".into(),
            ttl: None,
            max_attempts: 5,
            respawn_budget: 1,
        }
    }
}

/// State shared by every server thread.
struct Shared {
    cfg: ServeConfig,
    sched: Mutex<Sched>,
    /// Wakes workers when work is queued or a drain begins.
    work_cv: Condvar,
    /// Wakes `Await` streams when a job progresses.
    update_cv: Condvar,
    /// Drain requested: reject new jobs, checkpoint in-flight ones,
    /// wind every thread down.
    stop: AtomicBool,
}

/// A running job server. Dropping the handle does NOT stop the server;
/// call [`Server::drain`] then [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (port 0 for ephemeral) and start the thread pool.
    pub fn start(cfg: ServeConfig, addr: &str) -> io::Result<Server> {
        let listener = FrameListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cfg,
            sched: Mutex::new(Sched::default()),
            work_cv: Condvar::new(),
            update_cv: Condvar::new(),
            stop: AtomicBool::new(false),
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();

        Ok(Server {
            shared,
            addr: local,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (with the kernel-chosen port after a port-0
    /// bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin a graceful drain: reject new submissions, checkpoint
    /// in-flight jobs at their next sweep boundary, wind down.
    pub fn drain(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        let mut sched = self.shared.sched.lock().expect("scheduler lock");
        sched.draining = true;
        drop(sched);
        self.shared.work_cv.notify_all();
        self.shared.update_cv.notify_all();
    }

    /// Wait for the acceptor and every worker to exit (requires
    /// [`Server::drain`] first, or the queue to go idle forever).
    pub fn join(mut self) -> RankObs {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let sched = self.shared.sched.lock().expect("scheduler lock");
        sched.obs.clone()
    }

    /// Convenience: drain and join in one call, returning the final
    /// server metrics record.
    pub fn shutdown(self) -> RankObs {
        self.drain();
        self.join()
    }

    /// Snapshot of the counters and (optionally tenant-filtered) health
    /// series without going over the wire.
    pub fn stats(&self, tenant: &str) -> crate::TenantStats {
        self.shared
            .sched
            .lock()
            .expect("scheduler lock")
            .stats(tenant)
    }
}

fn accept_loop(listener: FrameListener, shared: Arc<Shared>) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok(Some(conn)) => {
                let shared = Arc::clone(&shared);
                // Handler threads are detached; they exit on hangup or
                // when the stop flag trips their read timeout.
                std::thread::spawn(move || handle_conn(conn, shared));
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(2)),
            Err(_) => return,
        }
    }
}

/// One client connection: Hello handshake, then a command loop.
fn handle_conn(mut conn: FrameConn, shared: Arc<Shared>) {
    conn.set_max_frame(shared.cfg.max_frame);
    let _ = conn.set_recv_timeout(Some(Duration::from_millis(100)));
    let peer = conn.peer().to_string();

    // Handshake: first frame must be a version-matched Hello.
    let tenant = loop {
        match recv_msg(&mut conn, &shared, &peer, "<handshake>") {
            Ok(Some(Msg::Hello { proto, tenant })) if proto == PROTO_VERSION => {
                let _ = send_msg(
                    &mut conn,
                    &Msg::HelloAck {
                        proto: PROTO_VERSION,
                    },
                );
                break tenant;
            }
            Ok(Some(Msg::Hello { proto, .. })) => {
                let _ = send_msg(
                    &mut conn,
                    &Msg::Error {
                        detail: format!(
                            "peer {peer}: protocol revision {proto} unsupported (want {PROTO_VERSION})"
                        ),
                    },
                );
                return;
            }
            Ok(Some(_)) => {
                let _ = send_msg(
                    &mut conn,
                    &Msg::Error {
                        detail: format!("peer {peer}: expected Hello"),
                    },
                );
                return;
            }
            Ok(None) => {
                // Timeout tick: a client that never says Hello must not
                // pin this handler past a drain.
                if shared.stop.load(Ordering::SeqCst) {
                    let _ = send_msg(&mut conn, &Msg::Draining);
                    return;
                }
                continue;
            }
            Err(()) => return,
        }
    };
    let is_admin = tenant == shared.cfg.admin;

    loop {
        let msg = match recv_msg(&mut conn, &shared, &peer, &tenant) {
            Ok(Some(m)) => m,
            Ok(None) => {
                if shared.stop.load(Ordering::SeqCst) {
                    let _ = send_msg(&mut conn, &Msg::Draining);
                    return;
                }
                continue;
            }
            Err(()) => return,
        };
        match msg {
            Msg::Submit { spec } => {
                let reply = {
                    let mut sched = shared.sched.lock().expect("scheduler lock");
                    // Admission enforces the tenant quota before anything
                    // is queued; a spoofed tenant field bills the spoofer.
                    let quota = shared.cfg.quota;
                    match sched.submit(spec, &quota, &shared.cfg.kills) {
                        Ok(job) => Msg::Accepted { job },
                        Err(reason) => Msg::Rejected { reason },
                    }
                };
                if matches!(reply, Msg::Accepted { .. }) {
                    shared.work_cv.notify_one();
                }
                if send_msg(&mut conn, &reply).is_err() {
                    return;
                }
            }
            Msg::Await { job, mut after } => {
                // Stream snapshots (and finally the result) for one job.
                loop {
                    enum Step {
                        Send(Vec<Msg>),
                        Finished(Msg),
                        Wait,
                    }
                    let step = {
                        let sched = shared.sched.lock().expect("scheduler lock");
                        match sched.job(job) {
                            None if sched.was_evicted(job) => Step::Finished(Msg::Error {
                                detail: format!(
                                    "peer {peer} tenant {tenant}: job {job} was evicted \
                                     after its result-retention TTL expired"
                                ),
                            }),
                            None => Step::Finished(Msg::Error {
                                detail: format!("peer {peer} tenant {tenant}: unknown job {job}"),
                            }),
                            Some(rec) => {
                                let fresh: Vec<Msg> = rec
                                    .snapshots
                                    .iter()
                                    .filter(|s| s.seq > after)
                                    .map(|s| Msg::Snapshot {
                                        job,
                                        seq: s.seq,
                                        sweep: s.sweep,
                                        total: s.total,
                                        mean_energy: s.mean_energy,
                                        attempt: s.attempt,
                                    })
                                    .collect();
                                if !fresh.is_empty() {
                                    Step::Send(fresh)
                                } else if let Some((obs, attempts)) = &rec.result {
                                    Step::Finished(Msg::Result {
                                        job,
                                        obs: obs.clone(),
                                        attempts: *attempts,
                                    })
                                } else if rec.state == JobState::Paused {
                                    Step::Finished(Msg::Draining)
                                } else if rec.state == JobState::Failed {
                                    Step::Finished(Msg::Error {
                                        detail: format!(
                                            "job {job} failed: {}",
                                            rec.error.as_deref().unwrap_or("unknown")
                                        ),
                                    })
                                } else {
                                    Step::Wait
                                }
                            }
                        }
                    };
                    match step {
                        Step::Send(msgs) => {
                            for m in msgs {
                                if let Msg::Snapshot { seq, .. } = m {
                                    after = after.max(seq);
                                }
                                if send_msg(&mut conn, &m).is_err() {
                                    return;
                                }
                            }
                        }
                        Step::Finished(m) => {
                            let _ = send_msg(&mut conn, &m);
                            break;
                        }
                        Step::Wait => {
                            if shared.stop.load(Ordering::SeqCst) {
                                let _ = send_msg(&mut conn, &Msg::Draining);
                                return;
                            }
                            let sched = shared.sched.lock().expect("scheduler lock");
                            let _unused = shared
                                .update_cv
                                .wait_timeout(sched, Duration::from_millis(100))
                                .expect("scheduler lock");
                        }
                    }
                }
            }
            Msg::Stats { tenant: filter } => {
                // Isolation is pinned at the socket layer: a non-admin
                // session's view is always scoped to its handshaken
                // tenant, whatever filter the client sent (in particular
                // `""`, which for an admin means the global view).
                let filter = if is_admin { filter } else { tenant.clone() };
                let (counters, health) = {
                    let sched = shared.sched.lock().expect("scheduler lock");
                    sched.stats(&filter)
                };
                if send_msg(&mut conn, &Msg::StatsReply { counters, health }).is_err() {
                    return;
                }
            }
            Msg::Drain if !is_admin => {
                let reply = Msg::Error {
                    detail: format!(
                        "peer {peer} tenant {tenant}: drain requires the '{}' tenant",
                        shared.cfg.admin
                    ),
                };
                if send_msg(&mut conn, &reply).is_err() {
                    return;
                }
            }
            Msg::Drain => {
                shared.stop.store(true, Ordering::SeqCst);
                {
                    let mut sched = shared.sched.lock().expect("scheduler lock");
                    sched.draining = true;
                }
                shared.work_cv.notify_all();
                shared.update_cv.notify_all();
                let _ = send_msg(&mut conn, &Msg::Draining);
                return;
            }
            other => {
                let _ = send_msg(
                    &mut conn,
                    &Msg::Error {
                        detail: format!(
                            "peer {peer} tenant {tenant}: unexpected {other:?} from a client"
                        ),
                    },
                );
                return;
            }
        }
    }
}

/// Receive and decode one message. `Ok(None)` is a retryable timeout
/// tick. A malformed frame or payload bumps `serve.bad_frames`, sends an
/// `Error` with peer/tenant context, and drops the connection (`Err`).
fn recv_msg(
    conn: &mut FrameConn,
    shared: &Shared,
    peer: &str,
    tenant: &str,
) -> Result<Option<Msg>, ()> {
    match conn.recv() {
        Ok(payload) => match Msg::decode(&payload) {
            Ok(msg) => Ok(Some(msg)),
            Err(e) => {
                bad_frame(shared);
                let _ = send_msg(
                    conn,
                    &Msg::Error {
                        detail: format!("peer {peer} tenant {tenant}: {e}"),
                    },
                );
                Err(())
            }
        },
        Err(FrameError::TimedOut) => Ok(None),
        Err(FrameError::Closed) => Err(()),
        Err(e) => {
            bad_frame(shared);
            let _ = send_msg(
                conn,
                &Msg::Error {
                    detail: format!("peer {peer} tenant {tenant}: {e}"),
                },
            );
            Err(())
        }
    }
}

fn bad_frame(shared: &Shared) {
    let mut sched = shared.sched.lock().expect("scheduler lock");
    sched.obs.counter_add("serve.bad_frames", 1);
}

fn send_msg(conn: &mut FrameConn, msg: &Msg) -> Result<(), FrameError> {
    conn.send(&msg.encode())
}

/// One worker: pull, run, report, repeat — until drained and idle.
fn worker_loop(shared: Arc<Shared>) {
    loop {
        // Pull the next job (or exit if draining with nothing queued).
        let job = {
            let mut sched = shared.sched.lock().expect("scheduler lock");
            loop {
                // Retention sweep rides the worker tick (the 100 ms
                // condvar timeout below), so eviction needs no thread of
                // its own.
                if let Some(ttl) = shared.cfg.ttl {
                    sched.evict_expired(ttl);
                }
                if let Some(id) = sched.pop_next() {
                    break Some(id);
                }
                if shared.stop.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .work_cv
                    .wait_timeout(sched, Duration::from_millis(100))
                    .expect("scheduler lock");
                sched = guard;
            }
        };
        let Some(id) = job else { return };

        // Snapshot what the attempt needs, then run without the lock.
        let (spec, kill_at) = {
            let sched = shared.sched.lock().expect("scheduler lock");
            let rec = sched.job(id).expect("a dispatched job is never evicted");
            (rec.spec.clone(), rec.kill_at)
        };
        let every = if spec.ckpt_every > 0 {
            spec.ckpt_every as usize
        } else {
            shared.cfg.ckpt_every
        };
        let store = match CkptStore::open_namespace(&shared.cfg.ckpt_root, &spec.namespace(), 3) {
            Ok(store) => store,
            Err(e) => {
                let mut sched = shared.sched.lock().expect("scheduler lock");
                sched.fail(id, format!("open checkpoint namespace: {e}"));
                drop(sched);
                shared.update_cv.notify_all();
                continue;
            }
        };
        let mut on_snapshot = |sweep: u64, total: u64, mean: f64| {
            let mut sched = shared.sched.lock().expect("scheduler lock");
            sched.record_snapshot(id, sweep, total, mean);
            drop(sched);
            shared.update_cv.notify_all();
        };
        // An attempt must not be able to take the pool thread down with
        // it: a panic anywhere in the drive loop (engine invariant, PT
        // world restore, store I/O) fails the *job* — clients get the
        // reason via Await — and the worker lives on.
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(
                &spec,
                RunCtl {
                    store: Some(&store),
                    every,
                    full_every: 3,
                    resume: true,
                    kill_at,
                    stop: Some(&shared.stop),
                    snapshot: Some(&mut on_snapshot),
                    respawn_budget: shared.cfg.respawn_budget,
                },
            )
        }));
        let outcome = match attempt {
            Ok(outcome) => outcome,
            Err(payload) => {
                let reason = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "worker panicked".into());
                Outcome::Failed {
                    reason: format!("attempt panicked: {reason}"),
                }
            }
        };

        let mut sched = shared.sched.lock().expect("scheduler lock");
        let release_namespace = match outcome {
            Outcome::Done {
                obs,
                metrics,
                respawns,
                resized,
            } => {
                // A PT attempt that rode through a worker death in place
                // (rank respawn and/or ladder resize) completes like any
                // other — only the elastic counters record the event.
                sched.note_elastic(respawns, resized);
                sched.complete(id, obs, &metrics);
                true
            }
            Outcome::Killed { at_sweep } => {
                if sched.requeue_capped(
                    id,
                    shared.cfg.max_attempts,
                    format!("worker killed at sweep {at_sweep}"),
                ) {
                    drop(sched);
                    // The "respawned" worker is this same thread looping
                    // around; wake a sibling in case it is idle.
                    shared.work_cv.notify_one();
                    shared.update_cv.notify_all();
                    continue;
                }
                // Retry cap reached: the job is now Failed, so release
                // its namespace like any other terminal state.
                true
            }
            // A paused job's checkpoints are exactly what a restarted
            // server resumes from; keep them.
            Outcome::Drained { .. } => {
                sched.pause(id);
                false
            }
            Outcome::Failed { reason } => {
                sched.fail(id, reason);
                true
            }
        };
        drop(sched);
        if release_namespace {
            // Terminal states free the job's namespace: removing the
            // checkpoint directory keeps finished jobs from accumulating
            // on disk without bound, and guarantees a reused name starts
            // from a clean store instead of a stale generation.
            let _ = std::fs::remove_dir_all(store.dir());
        }
        shared.update_cv.notify_all();
    }
}
