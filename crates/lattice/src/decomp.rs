//! Block domain decomposition onto a periodic 2-D processor grid.
//!
//! This is the layout the SC'93-class mesh multicomputers used: the global
//! `lx × ly` lattice is cut into `px × py` rectangular blocks, one per
//! processor. Each processor stores its block plus a one-cell ghost (halo)
//! frame; after each half-sweep, edge cells are exchanged with the four
//! mesh neighbours.

/// Cardinal directions on the processor mesh (periodic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// +x neighbour.
    East,
    /// −x neighbour.
    West,
    /// +y neighbour.
    North,
    /// −y neighbour.
    South,
}

impl Dir {
    /// All four directions.
    pub const ALL: [Dir; 4] = [Dir::East, Dir::West, Dir::North, Dir::South];

    /// The direction a message sent this way arrives *from*.
    pub fn opposite(self) -> Dir {
        match self {
            Dir::East => Dir::West,
            Dir::West => Dir::East,
            Dir::North => Dir::South,
            Dir::South => Dir::North,
        }
    }
}

/// A periodic `px × py` processor grid with row-major rank numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcGrid {
    px: usize,
    py: usize,
}

impl ProcGrid {
    /// Create a grid; both extents must be ≥ 1.
    pub fn new(px: usize, py: usize) -> Self {
        assert!(px >= 1 && py >= 1, "degenerate processor grid {px}×{py}");
        Self { px, py }
    }

    /// Choose the most nearly square `px × py = p` factorization —
    /// minimizes halo surface, the standard default for mesh machines.
    pub fn nearly_square(p: usize) -> Self {
        assert!(p >= 1, "need at least one processor");
        let mut best = (1, p);
        let mut px = 1;
        while px * px <= p {
            if p.is_multiple_of(px) {
                best = (px, p / px);
            }
            px += 1;
        }
        // Prefer wider-than-tall for row-major locality (purely a
        // convention; transpose is equivalent).
        Self::new(best.1, best.0)
    }

    /// Grid width.
    pub fn px(&self) -> usize {
        self.px
    }

    /// Grid height.
    pub fn py(&self) -> usize {
        self.py
    }

    /// Total processors.
    pub fn size(&self) -> usize {
        self.px * self.py
    }

    /// Grid coordinates of a rank.
    pub fn coords_of(&self, rank: usize) -> (usize, usize) {
        assert!(rank < self.size(), "rank {rank} out of grid");
        (rank % self.px, rank / self.px)
    }

    /// Rank at grid coordinates (periodic wrap applied).
    pub fn rank_of(&self, cx: isize, cy: isize) -> usize {
        let x = cx.rem_euclid(self.px as isize) as usize;
        let y = cy.rem_euclid(self.py as isize) as usize;
        y * self.px + x
    }

    /// The mesh neighbour of `rank` in direction `dir` (periodic).
    pub fn neighbor(&self, rank: usize, dir: Dir) -> usize {
        let (cx, cy) = self.coords_of(rank);
        let (cx, cy) = (cx as isize, cy as isize);
        match dir {
            Dir::East => self.rank_of(cx + 1, cy),
            Dir::West => self.rank_of(cx - 1, cy),
            Dir::North => self.rank_of(cx, cy + 1),
            Dir::South => self.rank_of(cx, cy - 1),
        }
    }

    /// Manhattan hop distance between two ranks on the (periodic) mesh —
    /// the quantity the network cost model charges per message.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        let (ax, ay) = self.coords_of(a);
        let (bx, by) = self.coords_of(b);
        let dx = ax.abs_diff(bx).min(self.px - ax.abs_diff(bx));
        let dy = ay.abs_diff(by).min(self.py - ay.abs_diff(by));
        dx + dy
    }
}

/// One processor's rectangular block of the global lattice.
///
/// Local storage convention: the owning engine allocates a
/// `(w+2) × (h+2)` array; interior cell `(ix, iy)` (0-based, `ix < w`)
/// lives at local index `(iy+1)·(w+2) + (ix+1)`, and the frame holds
/// ghosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subdomain {
    /// Global x of the block's first column.
    pub x0: usize,
    /// Global y of the block's first row.
    pub y0: usize,
    /// Block width.
    pub w: usize,
    /// Block height.
    pub h: usize,
}

impl Subdomain {
    /// Local array extent including the ghost frame.
    pub fn padded_len(&self) -> usize {
        (self.w + 2) * (self.h + 2)
    }

    /// Local index of interior cell `(ix, iy)`; ghost cells are reached
    /// with `ix = -1 | w` or `iy = -1 | h`.
    pub fn local(&self, ix: isize, iy: isize) -> usize {
        debug_assert!(ix >= -1 && ix <= self.w as isize);
        debug_assert!(iy >= -1 && iy <= self.h as isize);
        ((iy + 1) as usize) * (self.w + 2) + (ix + 1) as usize
    }

    /// Global coordinates of interior cell `(ix, iy)` given global lattice
    /// extents (periodic).
    pub fn global(&self, ix: usize, iy: usize, lx: usize, ly: usize) -> (usize, usize) {
        ((self.x0 + ix) % lx, (self.y0 + iy) % ly)
    }

    /// Local indices of the interior edge strip that must be *sent*
    /// toward `dir`.
    pub fn send_strip(&self, dir: Dir) -> Vec<usize> {
        match dir {
            Dir::East => (0..self.h)
                .map(|iy| self.local(self.w as isize - 1, iy as isize))
                .collect(),
            Dir::West => (0..self.h).map(|iy| self.local(0, iy as isize)).collect(),
            Dir::North => (0..self.w)
                .map(|ix| self.local(ix as isize, self.h as isize - 1))
                .collect(),
            Dir::South => (0..self.w).map(|ix| self.local(ix as isize, 0)).collect(),
        }
    }

    /// Local indices of the ghost strip that *receives* data arriving from
    /// `dir`.
    pub fn recv_strip(&self, dir: Dir) -> Vec<usize> {
        match dir {
            Dir::East => (0..self.h)
                .map(|iy| self.local(self.w as isize, iy as isize))
                .collect(),
            Dir::West => (0..self.h).map(|iy| self.local(-1, iy as isize)).collect(),
            Dir::North => (0..self.w)
                .map(|ix| self.local(ix as isize, self.h as isize))
                .collect(),
            Dir::South => (0..self.w).map(|ix| self.local(ix as isize, -1)).collect(),
        }
    }
}

/// A full decomposition of an `lx × ly` lattice over a [`ProcGrid`].
#[derive(Debug, Clone)]
pub struct Decomposition {
    lx: usize,
    ly: usize,
    grid: ProcGrid,
    subs: Vec<Subdomain>,
}

/// Split `n` cells into `parts` contiguous chunks whose sizes differ by at
/// most one (larger chunks first).
fn split(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push((start, len));
        start += len;
    }
    out
}

impl Decomposition {
    /// Decompose an `lx × ly` lattice over `grid`. Every processor must
    /// receive at least one column and one row.
    pub fn new(lx: usize, ly: usize, grid: ProcGrid) -> Self {
        assert!(
            grid.px() <= lx && grid.py() <= ly,
            "grid {}×{} larger than lattice {lx}×{ly}",
            grid.px(),
            grid.py()
        );
        let xs = split(lx, grid.px());
        let ys = split(ly, grid.py());
        let mut subs = Vec::with_capacity(grid.size());
        for &(y0, h) in &ys {
            for &(x0, w) in &xs {
                subs.push(Subdomain { x0, y0, w, h });
            }
        }
        Self { lx, ly, grid, subs }
    }

    /// Global lattice width.
    pub fn lx(&self) -> usize {
        self.lx
    }

    /// Global lattice height.
    pub fn ly(&self) -> usize {
        self.ly
    }

    /// The processor grid.
    pub fn grid(&self) -> &ProcGrid {
        &self.grid
    }

    /// The block owned by `rank`.
    pub fn subdomain(&self, rank: usize) -> Subdomain {
        self.subs[rank]
    }

    /// The rank owning global cell `(x, y)`.
    pub fn owner_of(&self, x: usize, y: usize) -> usize {
        assert!(x < self.lx && y < self.ly, "cell ({x},{y}) outside lattice");
        self.subs
            .iter()
            .position(|s| x >= s.x0 && x < s.x0 + s.w && y >= s.y0 && y < s.y0 + s.h)
            .expect("decomposition must cover the lattice")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearly_square_factorizations() {
        assert_eq!(ProcGrid::nearly_square(1), ProcGrid::new(1, 1));
        assert_eq!(ProcGrid::nearly_square(4), ProcGrid::new(2, 2));
        assert_eq!(ProcGrid::nearly_square(12), ProcGrid::new(4, 3));
        assert_eq!(ProcGrid::nearly_square(7), ProcGrid::new(7, 1));
        assert_eq!(ProcGrid::nearly_square(1024), ProcGrid::new(32, 32));
    }

    #[test]
    fn rank_coords_roundtrip() {
        let g = ProcGrid::new(4, 3);
        for r in 0..g.size() {
            let (cx, cy) = g.coords_of(r);
            assert_eq!(g.rank_of(cx as isize, cy as isize), r);
        }
    }

    #[test]
    fn neighbor_relations_are_inverse() {
        let g = ProcGrid::new(4, 4);
        for r in 0..g.size() {
            for d in Dir::ALL {
                assert_eq!(g.neighbor(g.neighbor(r, d), d.opposite()), r);
            }
        }
    }

    #[test]
    fn periodic_wrap_on_edges() {
        let g = ProcGrid::new(3, 2);
        assert_eq!(g.neighbor(2, Dir::East), 0); // row 0 wraps
        assert_eq!(g.neighbor(0, Dir::West), 2);
        assert_eq!(g.neighbor(0, Dir::South), 3); // column wraps
    }

    #[test]
    fn hops_metric() {
        let g = ProcGrid::new(4, 4);
        assert_eq!(g.hops(0, 0), 0);
        assert_eq!(g.hops(0, 1), 1);
        assert_eq!(g.hops(0, 3), 1); // periodic shortcut
        assert_eq!(g.hops(0, 5), 2);
    }

    #[test]
    fn decomposition_exactly_covers_lattice() {
        // Exhaustive over every grid shape up to 4×4 on a spread of
        // lattice sizes (including ragged, non-divisible extents).
        for &(lx, ly) in &[(4usize, 4usize), (5, 7), (11, 4), (17, 23), (39, 38)] {
            for px in 1..5usize {
                for py in 1..5usize {
                    if px > lx || py > ly {
                        continue;
                    }
                    let d = Decomposition::new(lx, ly, ProcGrid::new(px, py));
                    let mut covered = vec![false; lx * ly];
                    for r in 0..px * py {
                        let s = d.subdomain(r);
                        for iy in 0..s.h {
                            for ix in 0..s.w {
                                let (gx, gy) = s.global(ix, iy, lx, ly);
                                let idx = gy * lx + gx;
                                assert!(!covered[idx], "cell covered twice");
                                covered[idx] = true;
                                assert_eq!(d.owner_of(gx, gy), r);
                            }
                        }
                    }
                    assert!(covered.iter().all(|&c| c), "cell uncovered");
                }
            }
        }
    }

    #[test]
    fn strips_have_correct_length() {
        // Exhaustive over all block shapes up to 9×9.
        for w in 1..10usize {
            for h in 1..10usize {
                let s = Subdomain { x0: 0, y0: 0, w, h };
                assert_eq!(s.send_strip(Dir::East).len(), h);
                assert_eq!(s.send_strip(Dir::West).len(), h);
                assert_eq!(s.send_strip(Dir::North).len(), w);
                assert_eq!(s.send_strip(Dir::South).len(), w);
                assert_eq!(s.recv_strip(Dir::East).len(), h);
                assert_eq!(s.recv_strip(Dir::North).len(), w);
            }
        }
    }

    #[test]
    fn local_indexing_layout() {
        let s = Subdomain {
            x0: 0,
            y0: 0,
            w: 3,
            h: 2,
        };
        assert_eq!(s.padded_len(), 5 * 4);
        assert_eq!(s.local(0, 0), 6); // row 1, col 1 of a 5-wide array
        assert_eq!(s.local(-1, -1), 0); // corner ghost
        assert_eq!(s.local(3, 2), 19); // far corner ghost
    }

    #[test]
    fn send_and_recv_strips_disjoint() {
        let s = Subdomain {
            x0: 0,
            y0: 0,
            w: 4,
            h: 4,
        };
        for d in Dir::ALL {
            let send = s.send_strip(d);
            let recv = s.recv_strip(d);
            assert!(send.iter().all(|i| !recv.contains(i)));
        }
    }

    #[test]
    fn uneven_split_sizes_differ_by_at_most_one() {
        let d = Decomposition::new(10, 7, ProcGrid::new(3, 2));
        let widths: Vec<usize> = (0..6).map(|r| d.subdomain(r).w).collect();
        let heights: Vec<usize> = (0..6).map(|r| d.subdomain(r).h).collect();
        assert!(widths.iter().max().unwrap() - widths.iter().min().unwrap() <= 1);
        assert!(heights.iter().max().unwrap() - heights.iter().min().unwrap() <= 1);
    }

    #[test]
    #[should_panic(expected = "larger than lattice")]
    fn rejects_grid_larger_than_lattice() {
        Decomposition::new(2, 2, ProcGrid::new(3, 1));
    }
}
