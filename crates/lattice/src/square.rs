//! Periodic square lattice.

use crate::{Bond, Lattice};

/// An `lx × ly` square lattice with periodic boundaries.
///
/// Both extents must be even (≥ 2) for a valid 4-coloring and
/// bipartiteness across the periodic seam. Site indexing is row-major:
/// `site = y·lx + x`.
///
/// The four bond colors are the standard checkerboard breakup:
/// 0 = horizontal bonds starting at even `x`, 1 = horizontal at odd `x`,
/// 2 = vertical at even `y`, 3 = vertical at odd `y`.
#[derive(Debug, Clone)]
pub struct Square {
    lx: usize,
    ly: usize,
    bonds: Vec<Bond>,
    offsets: [usize; 5],
}

impl Square {
    /// Build a periodic `lx × ly` lattice (both even, ≥ 2).
    pub fn new(lx: usize, ly: usize) -> Self {
        assert!(
            lx >= 2 && ly >= 2 && lx.is_multiple_of(2) && ly.is_multiple_of(2),
            "square extents must be even ≥ 2, got {lx}×{ly}"
        );
        let mut bonds = Vec::with_capacity(2 * lx * ly);
        let site = |x: usize, y: usize| (y * lx + x) as u32;
        let mut offsets = [0usize; 5];

        // Horizontal bonds, colored by x parity.
        #[allow(clippy::needless_range_loop)] // `color` indexes both loops and offsets
        for color in 0..2usize {
            offsets[color] = bonds.len();
            for y in 0..ly {
                for x in (color..lx).step_by(2) {
                    if lx == 2 && color == 1 {
                        continue; // single distinct horizontal bond per row
                    }
                    bonds.push(Bond {
                        a: site(x, y),
                        b: site((x + 1) % lx, y),
                        color: color as u8,
                    });
                }
            }
        }
        // Vertical bonds, colored by y parity.
        for color in 0..2usize {
            offsets[color + 2] = bonds.len();
            for y in (color..ly).step_by(2) {
                if ly == 2 && color == 1 {
                    continue;
                }
                for x in 0..lx {
                    bonds.push(Bond {
                        a: site(x, y),
                        b: site(x, (y + 1) % ly),
                        color: (color + 2) as u8,
                    });
                }
            }
        }
        offsets[4] = bonds.len();

        Self {
            lx,
            ly,
            bonds,
            offsets,
        }
    }

    /// Width (x-extent).
    pub fn lx(&self) -> usize {
        self.lx
    }

    /// Height (y-extent).
    pub fn ly(&self) -> usize {
        self.ly
    }

    /// Row-major site index of `(x, y)`.
    pub fn site(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.lx && y < self.ly);
        y * self.lx + x
    }

    /// `(x, y)` coordinates of a site index.
    pub fn coords(&self, site: usize) -> (usize, usize) {
        (site % self.lx, site / self.lx)
    }

    /// The four nearest neighbours of a site (periodic): +x, −x, +y, −y.
    pub fn neighbors(&self, site: usize) -> [usize; 4] {
        let (x, y) = self.coords(site);
        [
            self.site((x + 1) % self.lx, y),
            self.site((x + self.lx - 1) % self.lx, y),
            self.site(x, (y + 1) % self.ly),
            self.site(x, (y + self.ly - 1) % self.ly),
        ]
    }
}

impl Lattice for Square {
    fn num_sites(&self) -> usize {
        self.lx * self.ly
    }

    fn bonds(&self) -> &[Bond] {
        &self.bonds
    }

    fn num_colors(&self) -> usize {
        4
    }

    fn bonds_of_color(&self, color: u8) -> &[Bond] {
        let c = color as usize;
        &self.bonds[self.offsets[c]..self.offsets[c + 1]]
    }

    fn sublattice(&self, site: usize) -> u8 {
        let (x, y) = self.coords(site);
        ((x + y) % 2) as u8
    }

    fn coordination(&self) -> usize {
        4
    }

    fn ring_plaquettes(&self) -> Vec<[u32; 4]> {
        let mut out = Vec::with_capacity(self.lx * self.ly);
        for y in 0..self.ly {
            for x in 0..self.lx {
                let xp = (x + 1) % self.lx;
                let yp = (y + 1) % self.ly;
                out.push([
                    self.site(x, y) as u32,
                    self.site(xp, y) as u32,
                    self.site(xp, yp) as u32,
                    self.site(x, yp) as u32,
                ]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bond_count_general() {
        // L ≥ 4 in both directions: 2·N bonds.
        let sq = Square::new(4, 6);
        assert_eq!(sq.bonds().len(), 2 * 24);
    }

    #[test]
    fn bond_count_two_by_two() {
        // 2×2 periodic: each pair connected once per direction → 8 would
        // double-count; distinct bonds = 4 horizontal? No: per row one
        // distinct horizontal bond (2 rows → 2) + per column one distinct
        // vertical bond (2 cols → 2)… plus the wrap duplicates are
        // excluded, leaving 2 + 2 = 4? Each row has sites (0,1) with both
        // (0-1) and (1-0 wrap) identical → 1 bond per row. Same for
        // columns. Total = 2 rows + 2 cols = 4.
        let sq = Square::new(2, 2);
        assert_eq!(sq.bonds().len(), 4);
        assert!(sq.coloring_is_valid());
    }

    #[test]
    fn site_coords_roundtrip() {
        let sq = Square::new(6, 4);
        for s in 0..sq.num_sites() {
            let (x, y) = sq.coords(s);
            assert_eq!(sq.site(x, y), s);
        }
    }

    #[test]
    fn neighbors_are_mutual() {
        let sq = Square::new(4, 4);
        for s in 0..sq.num_sites() {
            for n in sq.neighbors(s) {
                assert!(
                    sq.neighbors(n).contains(&s),
                    "site {s} lists {n} but not vice versa"
                );
            }
        }
    }

    #[test]
    fn every_site_degree_four() {
        let sq = Square::new(6, 4);
        let mut deg = vec![0usize; sq.num_sites()];
        for b in sq.bonds() {
            deg[b.a as usize] += 1;
            deg[b.b as usize] += 1;
        }
        assert!(deg.iter().all(|&d| d == 4), "degrees: {deg:?}");
    }

    #[test]
    fn horizontal_colors_before_vertical() {
        let sq = Square::new(4, 4);
        for b in sq.bonds_of_color(0).iter().chain(sq.bonds_of_color(1)) {
            let (_, ya) = sq.coords(b.a as usize);
            let (_, yb) = sq.coords(b.b as usize);
            assert_eq!(ya, yb, "horizontal bond must stay in its row");
        }
        for b in sq.bonds_of_color(2).iter().chain(sq.bonds_of_color(3)) {
            let (xa, _) = sq.coords(b.a as usize);
            let (xb, _) = sq.coords(b.b as usize);
            assert_eq!(xa, xb, "vertical bond must stay in its column");
        }
    }

    #[test]
    fn coloring_valid_for_even_sizes() {
        // Exhaustive over every even extent pair up to 10×10.
        for lx in (2usize..=10).step_by(2) {
            for ly in (2usize..=10).step_by(2) {
                let sq = Square::new(lx, ly);
                assert!(sq.coloring_is_valid(), "{lx}×{ly} coloring invalid");
                // every bond appears exactly once (no duplicate pairs)
                let mut seen = std::collections::HashSet::new();
                for b in sq.bonds() {
                    let key = (b.a.min(b.b), b.a.max(b.b));
                    assert!(seen.insert(key), "duplicate bond {key:?} in {lx}×{ly}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn rejects_odd_extent() {
        Square::new(3, 4);
    }
}
