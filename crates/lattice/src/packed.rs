//! Bit-packed spin storage for multi-spin coding.
//!
//! Ising spins are two-valued, so a `u64` word holds 64 of them; bitwise
//! kernels then update all 64 with the same handful of instructions. Two
//! packings are useful (see DESIGN.md "Multi-spin coding"):
//!
//! * **Replica packing** (primary): bit `j` of word `i` is spin `i` of
//!   *replica* `j` — 64 independent simulations, or 64 members of a
//!   β-ladder, advance in lockstep. Every bit of a word sees the same
//!   lattice geometry, so there are no edge cases at word boundaries.
//! * **Spatial packing**: bit `j` of word `i` is site `64·i + j` of a
//!   single replica — neighbour words come from shifts with carries
//!   across word boundaries, and checkerboard sweeps mask alternating
//!   bits. Denser, but only when the fast-varying extent divides by 64.
//!
//! [`PackedLattice`] is the storage type shared by both modes: a flat
//! `Vec<u64>` of *cells* (lattice sites in replica mode, 64-site groups in
//! spatial mode) with up to 64 active *lanes* per cell. The convention
//! throughout the workspace is **bit 1 ⇔ spin +1**.

/// Bit-packed spin configuration: `cells` words of up to 64 lanes.
///
/// Inactive lanes (bits ≥ `lanes`) are kept at 0 so popcount-based
/// observable kernels never need to mask them out of per-word counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedLattice {
    words: Vec<u64>,
    cells: usize,
    lanes: usize,
}

impl PackedLattice {
    /// Fresh configuration with every active lane spin-up (bit set).
    ///
    /// `cells` is the number of packed words (sites × slices in replica
    /// mode); `lanes ∈ [1, 64]` the number of active bits per word.
    pub fn new(cells: usize, lanes: usize) -> Self {
        assert!(cells > 0, "packed lattice needs at least one cell");
        assert!((1..=64).contains(&lanes), "lanes must be in 1..=64");
        let mask = if lanes == 64 { !0 } else { (1u64 << lanes) - 1 };
        Self {
            words: vec![mask; cells],
            cells,
            lanes,
        }
    }

    /// Number of packed words.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Number of active lanes per word.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Mask with the low `lanes` bits set — every valid word satisfies
    /// `w & !mask == 0`.
    pub fn lane_mask(&self) -> u64 {
        if self.lanes == 64 {
            !0
        } else {
            (1u64 << self.lanes) - 1
        }
    }

    /// Raw packed words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable raw packed words. Callers must keep inactive lanes zero
    /// (mask flip words with [`Self::lane_mask`]).
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Spin (±1) of `lane` at `cell`.
    #[inline]
    pub fn get(&self, cell: usize, lane: usize) -> i8 {
        debug_assert!(lane < self.lanes);
        if (self.words[cell] >> lane) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Set the spin (±1) of `lane` at `cell`.
    #[inline]
    pub fn set(&mut self, cell: usize, lane: usize, s: i8) {
        debug_assert!(lane < self.lanes);
        debug_assert!(s == 1 || s == -1);
        let bit = 1u64 << lane;
        if s == 1 {
            self.words[cell] |= bit;
        } else {
            self.words[cell] &= !bit;
        }
    }

    /// Pack a full scalar configuration (±1 per cell) into one lane.
    pub fn pack_lane(&mut self, lane: usize, spins: &[i8]) {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        assert_eq!(spins.len(), self.cells, "configuration length mismatch");
        let bit = 1u64 << lane;
        for (w, &s) in self.words.iter_mut().zip(spins) {
            debug_assert!(s == 1 || s == -1);
            if s == 1 {
                *w |= bit;
            } else {
                *w &= !bit;
            }
        }
    }

    /// Unpack one lane into a scalar configuration (±1 per cell).
    pub fn unpack_lane(&self, lane: usize, out: &mut [i8]) {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        assert_eq!(out.len(), self.cells, "configuration length mismatch");
        for (s, &w) in out.iter_mut().zip(&self.words) {
            *s = if (w >> lane) & 1 == 1 { 1 } else { -1 };
        }
    }
}

/// Checkerboard mask for spatially packed words: the bits whose index has
/// the given parity (`0` → bits 0, 2, 4, …; `1` → bits 1, 3, 5, …).
///
/// When the packed (fast-varying) extent is a multiple of 64, bit parity
/// equals site-coordinate parity in every word, so one constant mask per
/// row selects the active checkerboard half.
#[inline]
pub const fn parity_mask(parity: usize) -> u64 {
    match parity & 1 {
        0 => 0x5555_5555_5555_5555,
        _ => 0xAAAA_AAAA_AAAA_AAAA,
    }
}

/// In-place 64×64 bit-matrix transpose (Hacker's Delight 7-3): bit `i` of
/// output word `k` equals bit `k` of input word `i`.
///
/// This is the bridge between the two packing views: a block of 64
/// replica-packed words (word = cell, bit = lane) transposes into 64
/// lane-major words (word = lane, bit = cell), after which per-lane
/// observables are single `count_ones` calls.
pub fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Streaming per-lane popcount: push replica-packed words one at a time;
/// every full block of 64 is transposed once and folded into 64 per-lane
/// counts (one `count_ones` per lane instead of 64 single-bit extractions
/// per word). Fixed-size stack scratch — no allocation.
#[derive(Debug)]
pub struct LaneCounter {
    block: [u64; 64],
    fill: usize,
    counts: [u64; 64],
}

impl Default for LaneCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl LaneCounter {
    /// Empty counter.
    pub fn new() -> Self {
        Self {
            block: [0; 64],
            fill: 0,
            counts: [0; 64],
        }
    }

    /// Add one packed word to the tally.
    #[inline]
    pub fn push(&mut self, w: u64) {
        self.block[self.fill] = w;
        self.fill += 1;
        if self.fill == 64 {
            self.flush();
        }
    }

    fn flush(&mut self) {
        transpose64(&mut self.block);
        for (c, b) in self.counts.iter_mut().zip(self.block.iter()) {
            *c += b.count_ones() as u64;
        }
        self.block = [0; 64];
        self.fill = 0;
    }

    /// Per-lane set-bit counts over every pushed word.
    pub fn finish(mut self) -> [u64; 64] {
        if self.fill > 0 {
            // The tail of the block is still zero (flush re-zeroes it),
            // so a partial flush counts exactly the pushed words.
            self.flush();
        }
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_lattice_is_all_up_with_clean_inactive_lanes() {
        let lat = PackedLattice::new(10, 5);
        assert_eq!(lat.lane_mask(), 0b11111);
        for c in 0..10 {
            for l in 0..5 {
                assert_eq!(lat.get(c, l), 1);
            }
            assert_eq!(lat.words()[c] & !lat.lane_mask(), 0);
        }
        assert_eq!(PackedLattice::new(3, 64).lane_mask(), u64::MAX);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut lat = PackedLattice::new(7, 64);
        lat.set(3, 17, -1);
        lat.set(6, 63, -1);
        lat.set(6, 63, 1);
        assert_eq!(lat.get(3, 17), -1);
        assert_eq!(lat.get(3, 16), 1);
        assert_eq!(lat.get(6, 63), 1);
    }

    #[test]
    fn pack_unpack_lane_roundtrip() {
        // Pseudo-random ±1 pattern without an RNG dependency.
        let spins: Vec<i8> = (0..97u64)
            .map(|i| {
                if (i.wrapping_mul(0x9E37_79B9)) & 4 == 0 {
                    1
                } else {
                    -1
                }
            })
            .collect();
        let mut lat = PackedLattice::new(97, 3);
        lat.pack_lane(1, &spins);
        let mut out = vec![0i8; 97];
        lat.unpack_lane(1, &mut out);
        assert_eq!(out, spins);
        // Other lanes untouched (still all-up).
        lat.unpack_lane(0, &mut out);
        assert!(out.iter().all(|&s| s == 1));
    }

    #[test]
    fn parity_masks_partition_the_word() {
        assert_eq!(parity_mask(0) | parity_mask(1), u64::MAX);
        assert_eq!(parity_mask(0) & parity_mask(1), 0);
        assert_eq!(parity_mask(0) & 1, 1);
        assert_eq!(parity_mask(2), parity_mask(0));
    }

    #[test]
    fn transpose64_matches_naive_bit_swap() {
        // Deterministic pseudo-random matrix via SplitMix-style mixing.
        let mut a = [0u64; 64];
        let mut x = 0x853c_49e6_748f_ea9bu64;
        for w in a.iter_mut() {
            x = x
                .wrapping_mul(0x2545_F491_4F6C_DD1D)
                .wrapping_add(0x9E37_79B9_7F4A_7C15);
            *w = x ^ (x >> 29);
        }
        let orig = a;
        transpose64(&mut a);
        for (i, ow) in orig.iter().enumerate() {
            for (k, aw) in a.iter().enumerate() {
                assert_eq!((aw >> i) & 1, (ow >> k) & 1, "({i},{k})");
            }
        }
        // Involution: transposing twice restores the original.
        transpose64(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn lane_counter_counts_per_lane_including_partial_blocks() {
        // 150 words (two full blocks + a 22-word tail): lane j gets a bit
        // in word i iff (i + j) divisible by (j + 2).
        let mut lc = LaneCounter::new();
        let mut expect = [0u64; 64];
        for i in 0..150usize {
            let mut w = 0u64;
            for (j, e) in expect.iter_mut().enumerate() {
                if (i + j) % (j + 2) == 0 {
                    w |= 1 << j;
                    *e += 1;
                }
            }
            lc.push(w);
        }
        assert_eq!(lc.finish(), expect);
    }
}
