//! Lattice geometry, bond coloring, and domain decomposition.
//!
//! Quantum spin models live on a lattice of sites connected by bonds; the
//! two facts a parallel QMC engine needs from the geometry layer are:
//!
//! 1. **Bond coloring** — the Suzuki-Trotter "checkerboard" breakup splits
//!    the Hamiltonian into groups of mutually non-overlapping bonds
//!    (`H = Σ_c H_c` with every bond in `H_c` disjoint), so that
//!    `exp(−Δτ H_c)` factorizes exactly into independent two-site
//!    propagators. A chain needs 2 colors (even/odd bonds); a square
//!    lattice needs 4.
//! 2. **Domain decomposition** — assigning contiguous blocks of sites to
//!    processors of a 2-D mesh with ghost (halo) cells, the layout the
//!    SC'93-class machines used.
//!
//! [`Chain`] and [`Square`] implement the [`Lattice`] trait;
//! [`decomp`] contains the processor-grid block decomposition.
//!
//! ```
//! use qmc_lattice::{Decomposition, Lattice, ProcGrid, Square};
//!
//! let lat = Square::new(8, 8);
//! assert!(lat.coloring_is_valid()); // 4-color checkerboard
//!
//! // Split the lattice over a 2×2 processor grid with ghost frames.
//! let d = Decomposition::new(8, 8, ProcGrid::new(2, 2));
//! let block = d.subdomain(3);
//! assert_eq!((block.w, block.h), (4, 4));
//! assert_eq!(block.padded_len(), 36); // (4+2)²
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod square;

pub mod decomp;
pub mod packed;

pub use chain::Chain;
pub use decomp::{Decomposition, Dir, ProcGrid, Subdomain};
pub use packed::{parity_mask, transpose64, LaneCounter, PackedLattice};
pub use square::Square;

/// An undirected bond between two sites, tagged with its checkerboard
/// color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bond {
    /// First site index.
    pub a: u32,
    /// Second site index.
    pub b: u32,
    /// Checkerboard color: bonds of equal color never share a site.
    pub color: u8,
}

/// Common interface of the lattices the QMC engines run on.
pub trait Lattice {
    /// Number of sites.
    fn num_sites(&self) -> usize;

    /// All bonds, in color-major order (color 0 first).
    fn bonds(&self) -> &[Bond];

    /// Number of checkerboard colors.
    fn num_colors(&self) -> usize;

    /// The bonds of one color (a contiguous slice of [`Lattice::bonds`]).
    fn bonds_of_color(&self, color: u8) -> &[Bond];

    /// Bipartite sublattice (0 = A, 1 = B) of a site. All lattices here
    /// are bipartite with even linear extents; the staggered phase
    /// `(-1)^{sublattice}` enters AFM estimators and the sign-free
    /// sublattice rotation.
    fn sublattice(&self, site: usize) -> u8;

    /// Coordination number (bonds per site).
    fn coordination(&self) -> usize;

    /// Elementary 4-site ring plaquettes `(i, j, k, l)` in cyclic order
    /// (empty for lattices without them, e.g. chains). World-line
    /// algorithms in d ≥ 2 need ring moves around these to change the
    /// per-bond hop parity (ring-exchange world-line configurations).
    fn ring_plaquettes(&self) -> Vec<[u32; 4]> {
        Vec::new()
    }

    /// Verify the coloring invariant: no two bonds of the same color touch
    /// a common site. Used by tests and debug assertions.
    fn coloring_is_valid(&self) -> bool {
        for c in 0..self.num_colors() as u8 {
            let mut touched = vec![false; self.num_sites()];
            for bond in self.bonds_of_color(c) {
                for s in [bond.a as usize, bond.b as usize] {
                    if touched[s] {
                        return false;
                    }
                    touched[s] = true;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_and_square_colorings_valid() {
        assert!(Chain::new(8).coloring_is_valid());
        assert!(Chain::new(2).coloring_is_valid());
        assert!(Square::new(4, 6).coloring_is_valid());
        assert!(Square::new(2, 2).coloring_is_valid());
    }

    #[test]
    fn bonds_partition_into_colors() {
        let sq = Square::new(4, 4);
        let total: usize = (0..sq.num_colors() as u8)
            .map(|c| sq.bonds_of_color(c).len())
            .sum();
        assert_eq!(total, sq.bonds().len());
    }

    #[test]
    fn bipartite_structure_respected_by_bonds() {
        let sq = Square::new(6, 4);
        for bond in sq.bonds() {
            assert_ne!(
                sq.sublattice(bond.a as usize),
                sq.sublattice(bond.b as usize),
                "bond {bond:?} connects same sublattice"
            );
        }
        let ch = Chain::new(10);
        for bond in ch.bonds() {
            assert_ne!(
                ch.sublattice(bond.a as usize),
                ch.sublattice(bond.b as usize)
            );
        }
    }
}
