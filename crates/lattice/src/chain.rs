//! Periodic spin chain.

use crate::{Bond, Lattice};

/// A one-dimensional periodic chain of `len` sites.
///
/// `len` must be even (≥ 2) so the even/odd bond coloring closes around
/// the periodic boundary and the lattice stays bipartite.
#[derive(Debug, Clone)]
pub struct Chain {
    len: usize,
    bonds: Vec<Bond>,
    /// Offsets of each color in `bonds`: color c occupies
    /// `bonds[offsets[c]..offsets[c+1]]`.
    offsets: [usize; 3],
}

impl Chain {
    /// Build a periodic chain of `len` sites (even, ≥ 2).
    pub fn new(len: usize) -> Self {
        assert!(
            len >= 2 && len.is_multiple_of(2),
            "chain length must be even ≥ 2, got {len}"
        );
        let mut bonds = Vec::with_capacity(len);
        // color 0: bonds (0,1), (2,3), … ; color 1: (1,2), (3,4), …, (len-1,0)
        for color in 0..2u8 {
            for i in (color as usize..len).step_by(2) {
                // L = 2 is a special case: only one distinct bond exists;
                // keep both "directions" out of the bond list exactly once.
                let j = (i + 1) % len;
                if len == 2 && color == 1 {
                    continue;
                }
                bonds.push(Bond {
                    a: i as u32,
                    b: j as u32,
                    color,
                });
            }
        }
        let n0 = bonds.iter().filter(|b| b.color == 0).count();
        let offsets = [0, n0, bonds.len()];
        Self {
            len,
            bonds,
            offsets,
        }
    }

    /// Chain length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for the (disallowed) zero-length chain; present for clippy
    /// convention completeness.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Right neighbour with periodic wrap.
    pub fn right(&self, i: usize) -> usize {
        (i + 1) % self.len
    }

    /// Left neighbour with periodic wrap.
    pub fn left(&self, i: usize) -> usize {
        (i + self.len - 1) % self.len
    }
}

impl Lattice for Chain {
    fn num_sites(&self) -> usize {
        self.len
    }

    fn bonds(&self) -> &[Bond] {
        &self.bonds
    }

    fn num_colors(&self) -> usize {
        2
    }

    fn bonds_of_color(&self, color: u8) -> &[Bond] {
        let c = color as usize;
        &self.bonds[self.offsets[c]..self.offsets[c + 1]]
    }

    fn sublattice(&self, site: usize) -> u8 {
        (site % 2) as u8
    }

    fn coordination(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bond_count_periodic() {
        // periodic chain of L ≥ 4 has L bonds
        assert_eq!(Chain::new(4).bonds().len(), 4);
        assert_eq!(Chain::new(10).bonds().len(), 10);
    }

    #[test]
    fn two_site_chain_single_bond() {
        let c = Chain::new(2);
        assert_eq!(c.bonds().len(), 1);
        assert_eq!(
            c.bonds()[0],
            Bond {
                a: 0,
                b: 1,
                color: 0
            }
        );
    }

    #[test]
    fn colors_alternate() {
        let c = Chain::new(8);
        for b in c.bonds_of_color(0) {
            assert_eq!(b.a % 2, 0);
        }
        for b in c.bonds_of_color(1) {
            assert_eq!(b.a % 2, 1);
        }
    }

    #[test]
    fn wraparound_bond_present() {
        let c = Chain::new(6);
        assert!(
            c.bonds().iter().any(|b| (b.a, b.b) == (5, 0)),
            "missing periodic bond"
        );
    }

    #[test]
    fn neighbours_wrap() {
        let c = Chain::new(6);
        assert_eq!(c.right(5), 0);
        assert_eq!(c.left(0), 5);
        assert_eq!(c.right(2), 3);
    }

    #[test]
    fn every_site_has_coordination_bonds() {
        let c = Chain::new(8);
        let mut deg = [0usize; 8];
        for b in c.bonds() {
            deg[b.a as usize] += 1;
            deg[b.b as usize] += 1;
        }
        assert!(deg.iter().all(|&d| d == c.coordination()));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn rejects_odd_length() {
        Chain::new(5);
    }
}
