// Fixture: wall-clock reads inside a #[qmc_hot::hot] kernel.
// Not compiled — read by the qmc-lint self-tests, which assert the
// `hot-wall-clock` rule fires on every violation below.

#[qmc_hot::hot]
pub fn bad_self_timed_sweep(spins: &mut [u64]) -> f64 {
    // VIOLATION: per-call clock read inside the kernel.
    let t0 = std::time::Instant::now();
    for w in spins.iter_mut() {
        *w ^= 1;
    }
    t0.elapsed().as_secs_f64()
}

#[qmc_hot::hot]
fn bad_deadline_poll(spins: &mut [u64]) {
    for w in spins.iter_mut() {
        // VIOLATION: system time polled per iteration.
        let _ = std::time::SystemTime::now();
        *w ^= 1;
    }
}

// Timing the kernel from outside the hot region is the sanctioned
// pattern: the span guard pays the two clock reads once.
pub fn timed_caller(spins: &mut [u64]) {
    let _g = qmc_obs::span("tfim.sweep");
    bad_deadline_poll(spins);
}
