// Fixture: a file every lint rule accepts — table-driven hot kernel,
// setup-time allocation, waived wall-clock read, test-only unwrap.
// Not compiled — read by the qmc-lint self-tests, which assert zero
// findings.

use std::time::Instant;

pub struct Kernel {
    table: Vec<f64>,
    scratch: Vec<usize>,
}

impl Kernel {
    // Table construction: transcendentals and allocation are fine here.
    pub fn new(beta: f64, n: usize) -> Self {
        let table = (0..16).map(|k| (-beta * k as f64).exp()).collect();
        Self {
            table,
            scratch: Vec::with_capacity(n),
        }
    }

    #[qmc_hot::hot]
    pub fn sweep(&mut self, keys: &[usize]) -> f64 {
        // Steady state: table lookups and reused buffers only.
        let mut acc = 0.0;
        self.scratch.clear();
        for &k in keys {
            acc += self.table[k & 15];
            self.scratch.push(k);
        }
        acc
    }
}

pub fn sanctioned_deadline() -> Instant {
    // lint: allow(wall-clock) — receive timeouts need host time
    Instant::now()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_unwrap_and_time() {
        let t = Instant::now();
        let v: Option<u8> = Some(3);
        assert_eq!(v.unwrap(), 3);
        assert!(t.elapsed().as_secs() < 60);
    }
}
