// Fixture: heap allocation inside a #[qmc_hot::hot] kernel.
// Not compiled — read by the qmc-lint self-tests, which assert the
// `hot-alloc` rule fires on every violation below.

#[qmc_hot::hot]
pub fn bad_sweep(spins: &[i8]) -> Vec<usize> {
    // VIOLATION: fresh vector per sweep.
    let mut flips = Vec::new();
    for (i, &s) in spins.iter().enumerate() {
        if s > 0 {
            flips.push(i);
        }
    }
    // VIOLATION: collect allocates.
    flips.iter().copied().collect()
}

#[qmc_hot::hot]
fn bad_buffers(n: usize) -> Vec<u8> {
    // VIOLATION: vec! macro allocates; Box::new allocates.
    let _b = Box::new(n);
    vec![0u8; n]
}

// Setup code may allocate freely.
pub fn make_scratch(n: usize) -> Vec<u8> {
    vec![0u8; n]
}
