// Fixture: wall-clock reads outside qmc-obs.
// Not compiled — read by the qmc-lint self-tests, which assert the
// `wall-clock` rule fires on the unwaived sites below.

use std::time::{Instant, SystemTime};

pub fn bad_timing() -> f64 {
    // VIOLATION: ad-hoc wall-clock read in library code.
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}

pub fn bad_epoch() -> bool {
    // VIOLATION: SystemTime in library code.
    SystemTime::now().elapsed().is_ok()
}

pub fn sanctioned_timeout() -> Instant {
    // lint: allow(wall-clock) — fixture for the waiver path
    Instant::now()
}
