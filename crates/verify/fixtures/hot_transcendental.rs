// Fixture: transcendental calls inside a #[qmc_hot::hot] kernel.
// Not compiled — read by the qmc-lint self-tests, which assert the
// `hot-transcendental` rule fires on every violation below.

#[qmc_hot::hot]
pub fn bad_metropolis(delta: f64, beta: f64) -> f64 {
    // VIOLATION: per-proposal exponential.
    (-beta * delta).exp()
}

#[qmc_hot::hot]
fn bad_log_weight(w: f64) -> f64 {
    // VIOLATION: per-call logarithm.
    w.ln() + f64::sqrt(w)
}

// Table construction outside the hot region is fine.
pub fn build_table(beta: f64) -> [f64; 8] {
    let mut t = [0.0; 8];
    for (i, slot) in t.iter_mut().enumerate() {
        *slot = (-beta * i as f64).exp();
    }
    t
}
