// Fixture: per-spin acceptance branching inside a hot kernel — each
// site burns one RNG call and one branch, where a multi-spin-coded
// kernel resolves 64 sites per word with batched draws and a masked
// XOR. Not compiled — read by the qmc-lint self-tests.

pub struct ScalarSweep {
    spins: Vec<i8>,
    ratio: f64,
}

impl ScalarSweep {
    #[qmc_hot::hot]
    pub fn sweep<R: Rng64>(&mut self, rng: &mut R) {
        for i in 0..self.spins.len() {
            if rng.metropolis(self.ratio) {
                self.spins[i] = -self.spins[i];
            }
            if rng.bernoulli(0.5) {
                self.spins[i] = 1;
            }
        }
    }
}
