//! Lint fixture: queue growth in a network-fed loop with no quota —
//! `net-unbounded-queue` must fire on the `push` and the `push_back`.

use std::collections::VecDeque;
use std::io::Read;
use std::net::TcpListener;

pub struct Inbox {
    jobs: Vec<Vec<u8>>,
    backlog: VecDeque<Vec<u8>>,
}

pub fn admit(listener: &TcpListener, inbox: &mut Inbox) {
    for stream in listener.incoming().flatten() {
        let mut payload = Vec::new();
        let mut s = stream;
        if s.read_to_end(&mut payload).is_ok() {
            // BAD: nothing bounds how many jobs a peer may enqueue.
            inbox.jobs.push(payload.clone());
            inbox.backlog.push_back(payload);
        }
    }
}
