//! Lint fixture: network-fed read loops with no timeout, shutdown
//! flag, or deadline anywhere in the file — `blocking-recv-no-stop`
//! fires on the framed receive and on the raw `read_exact`. (Words
//! like "quota" keep `net-unbounded-queue` out of the way so this
//! fixture exercises exactly one rule.)

struct Pump {
    sock: TcpStream,
    quota: usize,
}

impl Pump {
    fn run(&mut self) {
        loop {
            let frame = self.sock.recv_frame();
            self.dispatch(frame);
        }
    }

    fn fill(&mut self, buf: &mut [u8]) {
        let mut off = 0;
        while off < buf.len() {
            off += self.sock.read_exact(&mut buf[off..]);
        }
    }

    fn one_shot(&mut self) -> Frame {
        // Outside any loop: a single blocking receive is not a parked
        // thread, so the rule stays quiet here.
        self.sock.recv_frame()
    }
}
