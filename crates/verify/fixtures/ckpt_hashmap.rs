// Fixture: HashMap in a checkpoint/wire-serialization file.
// Not compiled — read by the qmc-lint self-tests, which assert the
// `ckpt-hashmap` rule fires: this file implements `Checkpoint`, so map
// iteration order would leak into the wire bytes.

use std::collections::HashMap;

pub struct BadState {
    // VIOLATION: nondeterministic iteration order in a serialized type.
    pub counts: HashMap<u32, u64>,
}

impl Checkpoint for BadState {
    fn kind(&self) -> &'static str {
        "fixture.bad"
    }

    fn save(&self, enc: &mut Encoder) {
        // VIOLATION: serializing in HashMap iteration order makes the
        // byte stream depend on hasher seeding.
        for (k, v) in &self.counts {
            enc.u64(*k as u64);
            enc.u64(*v);
        }
    }
}
