// Fixture: .unwrap() in library non-test code.
// Not compiled — read by the qmc-lint self-tests, which assert the
// `lib-unwrap` rule fires on the non-test sites and stays silent on
// the test module.

pub fn bad_parse(s: &str) -> u64 {
    // VIOLATION: panics without context.
    s.parse().unwrap()
}

pub fn good_parse(s: &str) -> u64 {
    s.parse().expect("generation file names are numeric")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
