//! Lint fixture: delta checkpoint writes with no full-snapshot bound.
//!
//! `ckpt-unbounded-chain` must fire here — this file writes deltas in a
//! loop but never mentions a full-snapshot cadence knob, nor does it
//! ever compact the chain, so every restore walks an ever-longer chain
//! of bases.

fn checkpoint_forever(store: &CkptStore, mut next_plan: impl FnMut(u64) -> Plan) {
    for s in 0.. {
        let _ = store.write_delta(s, next_plan(s));
    }
}
