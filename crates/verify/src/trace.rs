//! Per-rank communication event traces and the recording communicator.
//!
//! [`RecordingComm`] wraps any [`Communicator`] and captures every
//! point-to-point operation (user *and* collective-internal) plus a
//! marker per collective entry. Recording is strictly opt-in: production
//! drivers never construct the wrapper, so the hot paths carry zero
//! overhead. The captured [`WorldTrace`] feeds the offline checker in
//! [`crate::checker`].

use qmc_comm::{CommStats, Communicator};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One recorded communication event on a single rank.
///
/// Events are recorded in program order per rank; the checker replays
/// them under the deterministic `(source, tag)` matching semantics of
/// the comm layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A buffered, non-blocking send to `dst`.
    Send {
        /// Destination rank.
        dst: usize,
        /// Message tag.
        tag: u32,
        /// Payload size.
        bytes: usize,
        /// True when issued by a collective implementation (reserved
        /// tag range); false for user-level `send_bytes`.
        internal: bool,
    },
    /// A completed blocking receive from `src`.
    Recv {
        /// Source rank named by the receive.
        src: usize,
        /// Message tag named by the receive.
        tag: u32,
        /// Payload size actually delivered.
        bytes: usize,
        /// True when issued by a collective implementation.
        internal: bool,
    },
    /// Entry into a provided collective (barrier/broadcast/reduce/
    /// gather); `seq` is the SPMD collective sequence number, which must
    /// advance identically on every rank.
    Collective {
        /// The collective sequence number observed.
        seq: u32,
    },
}

/// The full trace of one SPMD run: `ranks[r]` is rank `r`'s event list.
#[derive(Debug, Clone, Default)]
pub struct WorldTrace {
    /// Per-rank event lists, indexed by rank.
    pub ranks: Vec<Vec<Event>>,
}

impl WorldTrace {
    /// Total number of recorded events across all ranks.
    pub fn len(&self) -> usize {
        self.ranks.iter().map(Vec::len).sum()
    }

    /// True when no rank recorded any event.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A communicator wrapper that records every operation it forwards.
///
/// All compound operations ([`Communicator::sendrecv_bytes`], the
/// collectives, the `_into` buffer-reuse variants) are *not* forwarded
/// wholesale: the trait's default implementations decompose them into
/// `send_bytes`/`recv_bytes`/`*_internal` calls on the wrapper itself,
/// so the trace contains the exact point-to-point message pattern the
/// backends would execute.
pub struct RecordingComm<'a, C: Communicator> {
    inner: &'a mut C,
    events: Vec<Event>,
}

impl<'a, C: Communicator> RecordingComm<'a, C> {
    /// Wrap `inner`, recording into a fresh event list.
    pub fn new(inner: &'a mut C) -> Self {
        Self {
            inner,
            events: Vec::new(),
        }
    }

    /// Consume the wrapper and return the recorded events.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    /// Events recorded so far.
    pub fn events(&self) -> &[Event] {
        &self.events
    }
}

impl<C: Communicator> Communicator for RecordingComm<'_, C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send_bytes(&mut self, dest: usize, tag: u32, data: &[u8]) {
        self.events.push(Event::Send {
            dst: dest,
            tag,
            bytes: data.len(),
            internal: false,
        });
        self.inner.send_bytes(dest, tag, data);
    }

    fn recv_bytes(&mut self, src: usize, tag: u32) -> Vec<u8> {
        let msg = self.inner.recv_bytes(src, tag);
        self.events.push(Event::Recv {
            src,
            tag,
            bytes: msg.len(),
            internal: false,
        });
        msg
    }

    fn recv_bytes_timeout(&mut self, src: usize, tag: u32, timeout: Duration) -> Option<Vec<u8>> {
        let msg = self.inner.recv_bytes_timeout(src, tag, timeout)?;
        self.events.push(Event::Recv {
            src,
            tag,
            bytes: msg.len(),
            internal: false,
        });
        Some(msg)
    }

    fn compute(&mut self, units: f64) {
        self.inner.compute(units);
    }

    fn now(&self) -> f64 {
        self.inner.now()
    }

    fn stats(&self) -> CommStats {
        self.inner.stats()
    }

    fn next_collective_seq(&mut self) -> u32 {
        let seq = self.inner.next_collective_seq();
        self.events.push(Event::Collective { seq });
        seq
    }

    fn send_internal(&mut self, dest: usize, tag: u32, data: &[u8]) {
        self.events.push(Event::Send {
            dst: dest,
            tag,
            bytes: data.len(),
            internal: true,
        });
        self.inner.send_internal(dest, tag, data);
    }

    fn recv_internal(&mut self, src: usize, tag: u32) -> Vec<u8> {
        let msg = self.inner.recv_internal(src, tag);
        self.events.push(Event::Recv {
            src,
            tag,
            bytes: msg.len(),
            internal: true,
        });
        msg
    }
}

/// Run an SPMD function on `nranks` thread-backed ranks with recording
/// enabled, returning each rank's result alongside the assembled
/// [`WorldTrace`].
///
/// This is the one-call entry point for protocol verification:
///
/// ```
/// use qmc_comm::Communicator;
///
/// let (results, trace) = qmc_verify::record_threads(2, |comm| {
///     if comm.rank() == 0 {
///         comm.send_bytes(1, 5, &[1, 2, 3]);
///         0
///     } else {
///         comm.recv_bytes(0, 5).len()
///     }
/// });
/// assert_eq!(results, vec![0, 3]);
/// qmc_verify::check(&trace).expect("protocol is clean");
/// ```
pub fn record_threads<T, F>(nranks: usize, f: F) -> (Vec<T>, WorldTrace)
where
    T: Send,
    F: Fn(&mut RecordingComm<'_, qmc_comm::ThreadComm>) -> T + Send + Sync,
{
    let slots: Arc<Mutex<Vec<Vec<Event>>>> = Arc::new(Mutex::new(vec![Vec::new(); nranks]));
    let slots2 = slots.clone();
    let results = qmc_comm::run_threads(nranks, move |comm| {
        let rank = comm.rank();
        let mut rec = RecordingComm::new(comm);
        let out = f(&mut rec);
        let events = rec.into_events();
        slots2.lock().unwrap_or_else(|e| e.into_inner())[rank] = events;
        out
    });
    let ranks = std::mem::take(&mut *slots.lock().unwrap_or_else(|e| e.into_inner()));
    (results, WorldTrace { ranks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmc_comm::SerialComm;

    #[test]
    fn records_user_send_recv() {
        let mut comm = SerialComm::new();
        let mut rec = RecordingComm::new(&mut comm);
        rec.send_bytes(0, 3, &[1, 2]);
        let got = rec.recv_bytes(0, 3);
        assert_eq!(got, vec![1, 2]);
        assert_eq!(
            rec.into_events(),
            vec![
                Event::Send {
                    dst: 0,
                    tag: 3,
                    bytes: 2,
                    internal: false
                },
                Event::Recv {
                    src: 0,
                    tag: 3,
                    bytes: 2,
                    internal: false
                },
            ]
        );
    }

    #[test]
    fn collectives_decompose_into_internal_events() {
        let (_, trace) = record_threads(2, |comm| {
            comm.allreduce_f64(&[comm.rank() as f64], qmc_comm::ReduceOp::Sum)
        });
        for events in &trace.ranks {
            assert!(matches!(events[0], Event::Collective { seq: 0 }));
            assert!(events
                .iter()
                .any(|e| matches!(e, Event::Send { internal: true, .. })));
            assert!(events
                .iter()
                .any(|e| matches!(e, Event::Recv { internal: true, .. })));
        }
    }

    #[test]
    fn sendrecv_decomposes_into_send_then_recv() {
        let (_, trace) = record_threads(2, |comm| {
            let other = 1 - comm.rank();
            comm.sendrecv_bytes(other, 4, &[9], other, 4)
        });
        for events in &trace.ranks {
            assert_eq!(events.len(), 2);
            assert!(matches!(
                events[0],
                Event::Send {
                    internal: false,
                    ..
                }
            ));
            assert!(matches!(
                events[1],
                Event::Recv {
                    internal: false,
                    ..
                }
            ));
        }
    }
}
