//! Protocol verification and static invariant checking for the QMC
//! workspace.
//!
//! Parallel Monte Carlo correctness bugs are silent biases, not
//! crashes: a message matched out of order, an extra RNG draw, a
//! transcendental sneaking back into a table-driven kernel — all leave
//! the program running and the physics subtly wrong. This crate holds
//! the two mechanical checkers that keep those invariants honest:
//!
//! * **Comm-protocol model checker** ([`trace`], [`checker`]):
//!   [`RecordingComm`] captures per-rank event traces over any
//!   [`qmc_comm::Communicator`]; [`check`] replays them under the
//!   deterministic `(source, tag)` matching semantics and proves
//!   deadlock-freedom, send/recv matching, reserved-tag discipline and
//!   SPMD collective agreement — or reports the exact wait-for cycle.
//!   Its runtime counterpart lives in `qmc_comm::ThreadComm`, which
//!   detects wait-for cycles while the program runs and panics with the
//!   cycle instead of hanging the suite.
//! * **Workspace invariant linter** ([`lint`], `qmc-lint` binary):
//!   a dependency-free token-level scanner enforcing the kernel and
//!   serialization disciplines (`hot-transcendental`, `hot-alloc`,
//!   `wall-clock`, `ckpt-hashmap`, `lib-unwrap`) across the workspace,
//!   with per-site waiver comments as the audit trail.
//! * **Exhaustive protocol explorer** ([`explore`], [`model`]): the
//!   checkpoint-commit, drain-verdict, and `qmc-serve` scheduler
//!   protocols modeled as deterministic per-process step functions;
//!   [`explore`] enumerates *every* distinguishable interleaving of
//!   deliveries, crashes, and write failures (sleep sets + dynamic
//!   partial-order reduction) within a configurable depth/fault
//!   budget, and renders any violation as a minimized counterexample
//!   schedule. The `tests/explore.rs` conformance suite replays those
//!   schedules against the real `Sched`/`CkptStore`/`ThreadComm`.
//!
//! `repro verify` and `scripts/check.sh` run all three on every gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod explore;
pub mod lint;
pub mod model;
pub mod trace;

pub use checker::{check, Report, Violation, WaitEdge};
pub use explore::{explore, explore_naive, Budget, CounterExample, ExploreStats, Model, Outcome};
pub use lint::{lint_source, lint_workspace, workspace_root_from, Finding, Rule};
pub use trace::{record_threads, Event, RecordingComm, WorldTrace};
