//! `qmc-lint` — the workspace invariant linter.
//!
//! A token-level scanner (dependency-free, in the spirit of the
//! `qmc_obs::json` parser) that mechanically enforces invariants the
//! repo otherwise carries only as prose:
//!
//! | rule                | invariant                                            |
//! |---------------------|------------------------------------------------------|
//! | `hot-transcendental`| no `exp`/`ln`/`powf`/`sqrt`/… inside `#[qmc_hot::hot]` functions — sweep kernels are table-driven |
//! | `hot-alloc`         | no `Vec::new`/`Box::new`/`collect`/`vec![]`/`to_vec` inside `#[qmc_hot::hot]` functions — steady state is allocation-free |
//! | `wall-clock`        | no `Instant::now`/`SystemTime::now` outside the `qmc-obs` crate (waivable where timeouts genuinely need host time) |
//! | `ckpt-hashmap`      | no `HashMap`/`HashSet` in checkpoint/wire-serialization files — iteration order would break the deterministic format |
//! | `lib-unwrap`        | no `.unwrap()` in library crates' non-test code       |
//! | `ckpt-unbounded-chain` | no `.write_delta(`/`.write_plan(` in a file that never mentions a `full_every` cadence knob or `compact` — an unbounded delta chain grows restore cost without limit |
//! | `hot-scalar-spin-loop` | no per-spin `.metropolis(`/`.bernoulli(` decision inside `#[qmc_hot::hot]` functions — a multi-spin-coded equivalent (batched draws, bitwise acceptance; see `qmc_tfim::packed`) exists, so scalar per-spin branching in a hot kernel must be a sanctioned reference path (waived) |
//! | `hot-wall-clock`    | no `Instant::now`/`SystemTime::now` inside `#[qmc_hot::hot]` functions, *any* crate — timing belongs in `qmc_obs::span` guards around the kernel, not per-iteration clock reads inside it |
//! | `net-unbounded-queue` | no `.push(`/`.push_back(` in a network-fed file (`TcpStream`/`TcpListener`/`FrameConn`/`FrameListener`/`recv_frame`) that never mentions a quota — a hostile peer must hit an admission bound, not grow server memory |
//! | `blocking-recv-no-stop` | no blocking `.recv(`/`.recv_frame(`/`.read(`/`.read_exact(` inside a `loop`/`while` body of a network-fed file that never consults a timeout, stop flag, drain, or deadline — a dead peer parks that loop forever and the thread never re-checks shutdown |
//!
//! Test code (`#[cfg(test)]` items, `#[test]` functions, `tests/`
//! directories) is exempt from every rule. A violation can be waived at
//! a specific site with a comment on the same or the preceding line:
//!
//! ```text
//! // lint: allow(wall-clock) — receive timeouts need host time
//! let deadline = Instant::now() + timeout;
//! ```
//!
//! Waivers are deliberately loud: they are the audit trail of every
//! sanctioned exception.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

/// The lint rules, each enforcing one workspace invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Transcendental call inside a `#[qmc_hot::hot]` region.
    HotTranscendental,
    /// Heap allocation inside a `#[qmc_hot::hot]` region.
    HotAlloc,
    /// Wall-clock read outside `qmc-obs`.
    WallClock,
    /// `HashMap`/`HashSet` in a checkpoint-serialization file.
    CkptHashMap,
    /// `.unwrap()` in library non-test code.
    LibUnwrap,
    /// Delta checkpoint writes in a file with no full-snapshot bound.
    CkptUnboundedChain,
    /// Per-spin acceptance branching inside a `#[qmc_hot::hot]` region.
    HotScalarSpinLoop,
    /// Wall-clock read inside a `#[qmc_hot::hot]` region (any crate).
    HotWallClock,
    /// Queue growth in a network-fed file with no quota in sight.
    NetUnboundedQueue,
    /// Blocking receive in a loop of a network-fed file that never
    /// consults a timeout, stop flag, drain, or deadline.
    BlockingRecvNoStop,
}

impl Rule {
    /// The kebab-case name used in output and waiver comments.
    pub fn name(self) -> &'static str {
        match self {
            Rule::HotTranscendental => "hot-transcendental",
            Rule::HotAlloc => "hot-alloc",
            Rule::WallClock => "wall-clock",
            Rule::CkptHashMap => "ckpt-hashmap",
            Rule::LibUnwrap => "lib-unwrap",
            Rule::CkptUnboundedChain => "ckpt-unbounded-chain",
            Rule::HotScalarSpinLoop => "hot-scalar-spin-loop",
            Rule::HotWallClock => "hot-wall-clock",
            Rule::NetUnboundedQueue => "net-unbounded-queue",
            Rule::BlockingRecvNoStop => "blocking-recv-no-stop",
        }
    }

    /// All rules, for iteration and `--rules` listings.
    pub fn all() -> &'static [Rule] {
        &[
            Rule::HotTranscendental,
            Rule::HotAlloc,
            Rule::WallClock,
            Rule::CkptHashMap,
            Rule::LibUnwrap,
            Rule::CkptUnboundedChain,
            Rule::HotScalarSpinLoop,
            Rule::HotWallClock,
            Rule::NetUnboundedQueue,
            Rule::BlockingRecvNoStop,
        ]
    }
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

// ---------------------------------------------------------------------
// Lexer: Rust source → significant tokens + waiver map
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Punct(char),
    Num,
    Str,
    CharLit,
    Lifetime,
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: u32,
}

#[derive(Default)]
struct Lexed {
    tokens: Vec<Token>,
    /// line → rule names waived on that line (by a `lint: allow(...)`
    /// comment on it).
    waivers: BTreeMap<u32, Vec<String>>,
}

fn record_waiver(waivers: &mut BTreeMap<u32, Vec<String>>, comment: &str, line: u32) {
    let Some(idx) = comment.find("lint:") else {
        return;
    };
    let rest = comment[idx + 5..].trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return;
    };
    let Some(close) = rest.find(')') else { return };
    for rule in rest[..close].split(',') {
        waivers
            .entry(line)
            .or_default()
            .push(rule.trim().to_string());
    }
}

fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    let is_ident_start = |c: u8| c == b'_' || c.is_ascii_alphabetic();
    let is_ident_cont = |c: u8| c == b'_' || c.is_ascii_alphanumeric();

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                record_waiver(&mut out.waivers, &src[start..i], line);
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                record_waiver(&mut out.waivers, &src[start..i], start_line);
            }
            b'"' => {
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                out.tokens.push(Token {
                    tok: Tok::Str,
                    line,
                });
            }
            b'\'' => {
                // Lifetime vs char literal. A char literal closes with a
                // quote after one (possibly escaped) character; a
                // lifetime is a quote followed by an identifier with no
                // closing quote.
                if i + 1 < b.len() && b[i + 1] == b'\\' {
                    i += 3; // ' \ x
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                    out.tokens.push(Token {
                        tok: Tok::CharLit,
                        line,
                    });
                } else if i + 1 < b.len() && is_ident_start(b[i + 1]) {
                    let mut j = i + 1;
                    while j < b.len() && is_ident_cont(b[j]) {
                        j += 1;
                    }
                    if j < b.len() && b[j] == b'\'' {
                        i = j + 1;
                        out.tokens.push(Token {
                            tok: Tok::CharLit,
                            line,
                        });
                    } else {
                        i = j;
                        out.tokens.push(Token {
                            tok: Tok::Lifetime,
                            line,
                        });
                    }
                } else {
                    // ',' '(' etc.: single non-ident char literal.
                    i += 2;
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                    out.tokens.push(Token {
                        tok: Tok::CharLit,
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                while i < b.len() && (is_ident_cont(b[i])) {
                    i += 1;
                }
                // Fractional part, but never consume a `..` range.
                if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < b.len() && is_ident_cont(b[i]) {
                        i += 1;
                    }
                }
                out.tokens.push(Token {
                    tok: Tok::Num,
                    line,
                });
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_cont(b[i]) {
                    i += 1;
                }
                let word = &src[start..i];
                // Raw strings (r"", r#""#, br""), byte strings (b"").
                let next = b.get(i).copied();
                if matches!(word, "r" | "b" | "br") && matches!(next, Some(b'"') | Some(b'#')) {
                    if next == Some(b'#') {
                        // Raw identifier r#name?
                        let mut j = i;
                        while j < b.len() && b[j] == b'#' {
                            j += 1;
                        }
                        if j < b.len() && is_ident_start(b[j]) && word == "r" && j == i + 1 {
                            // r#ident — a raw identifier.
                            let start2 = j;
                            while j < b.len() && is_ident_cont(b[j]) {
                                j += 1;
                            }
                            out.tokens.push(Token {
                                tok: Tok::Ident(src[start2..j].to_string()),
                                line,
                            });
                            i = j;
                            continue;
                        }
                        if j >= b.len() || b[j] != b'"' {
                            // Not a raw string after all.
                            out.tokens.push(Token {
                                tok: Tok::Ident(word.to_string()),
                                line,
                            });
                            continue;
                        }
                        let hashes = j - i;
                        i = j + 1; // past the opening quote
                        let closer: Vec<u8> = std::iter::once(b'"')
                            .chain(std::iter::repeat_n(b'#', hashes))
                            .collect();
                        while i < b.len() {
                            if b[i] == b'\n' {
                                line += 1;
                            }
                            if b[i..].starts_with(&closer) {
                                i += closer.len();
                                break;
                            }
                            i += 1;
                        }
                    } else {
                        // r"..." / b"..." — plain quote-delimited.
                        i += 1;
                        while i < b.len() {
                            match b[i] {
                                b'\\' if word == "b" => i += 2,
                                b'"' => {
                                    i += 1;
                                    break;
                                }
                                b'\n' => {
                                    line += 1;
                                    i += 1;
                                }
                                _ => i += 1,
                            }
                        }
                    }
                    out.tokens.push(Token {
                        tok: Tok::Str,
                        line,
                    });
                } else {
                    out.tokens.push(Token {
                        tok: Tok::Ident(word.to_string()),
                        line,
                    });
                }
            }
            c => {
                out.tokens.push(Token {
                    tok: Tok::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Region analysis: #[cfg(test)] / #[test] items, #[qmc_hot::hot] fns
// ---------------------------------------------------------------------

/// Per-token masks: `test[i]` / `hot[i]` say which region token `i`
/// falls in.
struct Regions {
    test: Vec<bool>,
    hot: Vec<bool>,
}

fn bracket_match(tokens: &[Token], open: usize, open_ch: char, close_ch: char) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct(c) if c == open_ch => depth += 1,
            Tok::Punct(c) if c == close_ch => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len() - 1
}

fn attr_idents(tokens: &[Token], start: usize, end: usize) -> Vec<&str> {
    tokens[start..=end]
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        })
        .collect()
}

/// Find the end (inclusive) of the item starting at `start`: the close
/// of its first depth-0 brace block, or its terminating depth-0 `;`.
fn item_end(tokens: &[Token], start: usize) -> usize {
    let mut depth = 0i32;
    let mut i = start;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct('{') if depth == 0 => return bracket_match(tokens, i, '{', '}'),
            Tok::Punct(';') if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    tokens.len().saturating_sub(1)
}

fn compute_regions(tokens: &[Token]) -> Regions {
    let mut test = vec![false; tokens.len()];
    let mut hot = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !matches!(tokens[i].tok, Tok::Punct('#')) {
            i += 1;
            continue;
        }
        // Inner attribute `#![...]`: no item follows it; skip.
        if matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!'))) {
            if matches!(tokens.get(i + 2).map(|t| &t.tok), Some(Tok::Punct('['))) {
                i = bracket_match(tokens, i + 2, '[', ']') + 1;
            } else {
                i += 1;
            }
            continue;
        }
        if !matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('['))) {
            i += 1;
            continue;
        }
        // Collect the full run of consecutive outer attributes.
        let mut is_test_item = false;
        let mut is_hot_item = false;
        let mut j = i;
        while matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('#')))
            && matches!(tokens.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
        {
            let close = bracket_match(tokens, j + 1, '[', ']');
            let idents = attr_idents(tokens, j + 1, close);
            match idents.as_slice() {
                ["test"] | ["cfg", "test"] => is_test_item = true,
                ["hot"] | ["qmc_hot", "hot"] => is_hot_item = true,
                _ => {}
            }
            j = close + 1;
        }
        if is_test_item || is_hot_item {
            let end = item_end(tokens, j);
            for k in j..=end.min(tokens.len() - 1) {
                if is_test_item {
                    test[k] = true;
                }
                if is_hot_item {
                    hot[k] = true;
                }
            }
        }
        // Continue scanning *inside* the item (nested attributes).
        i = j;
    }
    Regions { test, hot }
}

/// Per-token mask of `loop { … }` / `while … { … }` bodies. The body is
/// the brace-balanced region opened by the first `{` after the keyword
/// — sound at token level because Rust forbids an unparenthesized
/// struct literal in a `while` condition. Nested loops re-mark inner
/// tokens, which is idempotent.
fn compute_loop_regions(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !matches!(&tokens[i].tok, Tok::Ident(s) if s == "loop" || s == "while") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        while j < tokens.len() && !matches!(tokens[j].tok, Tok::Punct('{')) {
            j += 1;
        }
        let mut depth = 0i32;
        while j < tokens.len() {
            match tokens[j].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            mask[j] = true;
            j += 1;
        }
        i += 1;
    }
    mask
}

// ---------------------------------------------------------------------
// File classification
// ---------------------------------------------------------------------

struct FileClass {
    /// `crates/<name>/...` → `Some(name)`.
    crate_name: Option<String>,
    /// Under a `tests/` directory (integration tests, exempt from all
    /// rules).
    in_tests_dir: bool,
}

fn classify(display_path: &str) -> FileClass {
    let parts: Vec<&str> = display_path.split(['/', '\\']).collect();
    let crate_name = parts
        .iter()
        .position(|p| *p == "crates")
        .and_then(|i| parts.get(i + 1))
        .map(|s| s.to_string());
    let in_tests_dir = parts.contains(&"tests");
    FileClass {
        crate_name,
        in_tests_dir,
    }
}

// ---------------------------------------------------------------------
// Rule scanning
// ---------------------------------------------------------------------

const TRANSCENDENTALS: &[&str] = &[
    "exp", "exp2", "exp_m1", "ln", "ln_1p", "log", "log2", "log10", "powf", "powi", "sqrt", "cbrt",
    "sin", "cos", "tan", "sinh", "cosh", "tanh", "atan", "atan2", "asin", "acos",
];

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// `.name(` — a method call on some receiver.
fn method_call<'t>(tokens: &'t [Token], i: usize, names: &[&str]) -> Option<&'t str> {
    if !punct_at(tokens, i, '.') {
        return None;
    }
    let name = ident_at(tokens, i + 1)?;
    if names.contains(&name) && punct_at(tokens, i + 2, '(') {
        Some(name)
    } else {
        None
    }
}

/// Is token `i` part of a `use ...;` declaration? Walks back through
/// path/brace tokens looking for the `use` keyword.
fn inside_use_decl(tokens: &[Token], i: usize) -> bool {
    let mut j = i;
    for _ in 0..64 {
        if j == 0 {
            return false;
        }
        j -= 1;
        match &tokens[j].tok {
            Tok::Ident(s) if s == "use" => return true,
            Tok::Ident(_) | Tok::Punct(':') | Tok::Punct('{') | Tok::Punct(',') => {}
            _ => return false,
        }
    }
    false
}

/// `First::second` — a path expression head.
fn path_expr(tokens: &[Token], i: usize, first: &str, second: &str) -> bool {
    ident_at(tokens, i) == Some(first)
        && punct_at(tokens, i + 1, ':')
        && punct_at(tokens, i + 2, ':')
        && ident_at(tokens, i + 3) == Some(second)
}

/// Lint a single file's source text. `display_path` determines crate
/// classification (rule applicability) and appears in findings.
pub fn lint_source(display_path: &str, source: &str) -> Vec<Finding> {
    let class = classify(display_path);
    if class.in_tests_dir {
        return Vec::new();
    }
    let lexed = lex(source);
    let tokens = &lexed.tokens;
    let regions = compute_regions(tokens);

    let is_obs = class.crate_name.as_deref() == Some("obs");
    let is_lib_crate = matches!(&class.crate_name, Some(c) if c != "bench");
    // Checkpoint-serialization file: anything in qmc-ckpt, or any file
    // implementing the `Checkpoint` wire trait.
    let ckpt_file = class.crate_name.as_deref() == Some("ckpt")
        || tokens.windows(2).any(|w| {
            matches!(&w[0].tok, Tok::Ident(a) if a == "Checkpoint")
                && matches!(&w[1].tok, Tok::Ident(b) if b == "for")
        });

    // Delta-chain bounding: a file that writes delta generations must
    // also carry the policy that bounds the chain — a `full_every`
    // cadence knob or a `compact` call. Without either, every restore
    // walks an ever-longer base chain and a single torn base strands
    // every delta behind it.
    let chain_bounded = tokens
        .iter()
        .any(|t| matches!(&t.tok, Tok::Ident(s) if s == "full_every" || s == "compact"));

    // Network-fed queue bounding: a file that reads from the network
    // (raw TCP or the framed transport) and grows a queue must mention
    // the quota that bounds it. Without an admission bound a hostile
    // peer can submit until the server dies of allocation.
    let net_fed = tokens.iter().any(|t| {
        matches!(&t.tok, Tok::Ident(s) if s == "TcpStream"
            || s == "TcpListener"
            || s == "FrameConn"
            || s == "FrameListener"
            || s == "recv_frame")
    });
    let queue_bounded = tokens
        .iter()
        .any(|t| matches!(&t.tok, Tok::Ident(s) if s.to_lowercase().contains("quota")));

    // Blocking-receive liveness: a network-fed file whose read loops
    // can park forever must somewhere consult a timeout, stop flag,
    // drain verdict, or deadline — any such ident anywhere in the file
    // counts as the loop's escape hatch.
    let stop_aware = tokens.iter().any(|t| {
        matches!(&t.tok, Tok::Ident(s) if {
            let s = s.to_lowercase();
            s.contains("timeout") || s.contains("stop") || s.contains("drain")
                || s.contains("deadline")
        })
    });
    let loops = compute_loop_regions(tokens);

    let mut findings = Vec::new();
    let mut push = |line: u32, rule: Rule, message: String| {
        let waived = [line, line.saturating_sub(1)].iter().any(|l| {
            lexed
                .waivers
                .get(l)
                .is_some_and(|rules| rules.iter().any(|r| r == rule.name() || r == "all"))
        });
        if !waived {
            findings.push(Finding {
                path: display_path.to_string(),
                line,
                rule,
                message,
            });
        }
    };

    for i in 0..tokens.len() {
        let in_test = regions.test[i];
        if in_test {
            continue;
        }
        let line = tokens[i].line;

        if regions.hot[i] {
            if let Some(name) = method_call(tokens, i, TRANSCENDENTALS) {
                push(
                    line,
                    Rule::HotTranscendental,
                    format!("transcendental `.{name}()` inside a #[qmc_hot::hot] kernel (precompute a table instead)"),
                );
            }
            for ty in ["f64", "f32"] {
                for name in TRANSCENDENTALS {
                    if path_expr(tokens, i, ty, name) {
                        push(
                            line,
                            Rule::HotTranscendental,
                            format!("transcendental `{ty}::{name}` inside a #[qmc_hot::hot] kernel (precompute a table instead)"),
                        );
                    }
                }
            }
            for (first, second) in [
                ("Vec", "new"),
                ("Vec", "with_capacity"),
                ("Box", "new"),
                ("String", "new"),
                ("String", "from"),
            ] {
                if path_expr(tokens, i, first, second) {
                    push(
                        line,
                        Rule::HotAlloc,
                        format!("heap allocation `{first}::{second}` inside a #[qmc_hot::hot] kernel (reuse persistent buffers)"),
                    );
                }
            }
            if let Some(name) = method_call(tokens, i, &["collect", "to_vec", "to_owned"]) {
                push(
                    line,
                    Rule::HotAlloc,
                    format!("heap allocation `.{name}()` inside a #[qmc_hot::hot] kernel (reuse persistent buffers)"),
                );
            }
            for mac in ["vec", "format"] {
                if ident_at(tokens, i) == Some(mac) && punct_at(tokens, i + 1, '!') {
                    push(
                        line,
                        Rule::HotAlloc,
                        format!("heap allocation `{mac}!` inside a #[qmc_hot::hot] kernel (reuse persistent buffers)"),
                    );
                }
            }
            if let Some(name) = method_call(tokens, i, &["metropolis", "bernoulli"]) {
                push(
                    line,
                    Rule::HotScalarSpinLoop,
                    format!("per-spin `.{name}()` decision inside a #[qmc_hot::hot] kernel (multi-spin coding resolves 64 spins per word with batched draws — see qmc_tfim::packed; waive only on sanctioned reference scalar kernels)"),
                );
            }
            // Unlike the crate-scoped `wall-clock` rule this one fires even
            // in qmc-obs: a hot kernel must not read the clock per
            // iteration — wrap the kernel in a `qmc_obs::span` guard and
            // let the span pay the two clock reads once.
            for clock in ["Instant", "SystemTime"] {
                if path_expr(tokens, i, clock, "now") {
                    push(
                        line,
                        Rule::HotWallClock,
                        format!("`{clock}::now()` inside a #[qmc_hot::hot] kernel (time the kernel with a qmc_obs::span guard around the call site, not per-iteration clock reads)"),
                    );
                }
            }
        }

        if !is_obs {
            for clock in ["Instant", "SystemTime"] {
                if path_expr(tokens, i, clock, "now") {
                    push(
                        line,
                        Rule::WallClock,
                        format!("`{clock}::now()` outside qmc-obs (wall-clock reads belong to the observability layer; waive where a timeout genuinely needs host time)"),
                    );
                }
            }
        }

        if ckpt_file {
            for map in ["HashMap", "HashSet"] {
                if ident_at(tokens, i) == Some(map) && !inside_use_decl(tokens, i) {
                    push(
                        line,
                        Rule::CkptHashMap,
                        format!("`{map}` in a checkpoint/wire-serialization file (iteration order is nondeterministic; use BTreeMap or a sorted Vec)"),
                    );
                }
            }
        }

        if !chain_bounded {
            if let Some(name) = method_call(tokens, i, &["write_delta", "write_plan"]) {
                push(
                    line,
                    Rule::CkptUnboundedChain,
                    format!("`.{name}()` writes delta checkpoints but this file never bounds the chain (add a `full_every` cadence or a periodic `compact`)"),
                );
            }
        }

        if net_fed && !queue_bounded {
            if let Some(name) = method_call(tokens, i, &["push", "push_back"]) {
                push(
                    line,
                    Rule::NetUnboundedQueue,
                    format!("`.{name}()` grows a queue in a network-fed file that never names a quota (enforce an admission quota before queueing; waive only for provably bounded buffers)"),
                );
            }
        }

        if net_fed && !stop_aware && loops[i] {
            if let Some(name) =
                method_call(tokens, i, &["recv", "recv_frame", "read", "read_exact"])
            {
                push(
                    line,
                    Rule::BlockingRecvNoStop,
                    format!("blocking `.{name}()` in a loop of a network-fed file that never consults a timeout, stop flag, drain, or deadline (a dead peer parks this loop forever; add a read timeout or a shutdown check, or waive for provably finite protocols)"),
                );
            }
        }

        if is_lib_crate && method_call(tokens, i, &["unwrap"]).is_some() {
            push(
                line,
                Rule::LibUnwrap,
                "`.unwrap()` in library non-test code (use `expect` with context or propagate the error)"
                    .to_string(),
            );
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------

/// Find the workspace root by walking up from `start` looking for a
/// `Cargo.toml` that declares `[workspace]`.
pub fn workspace_root_from(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Lint every `.rs` file under `root`'s `crates/`, `tests/` and
/// `examples/` directories (skipping `target/` and lint `fixtures/`).
/// Findings are sorted by path and line.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for sub in ["crates", "tests", "examples"] {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk_rs(&dir, &mut files);
        }
    }
    let mut findings = Vec::new();
    for path in files {
        let source = std::fs::read_to_string(&path)?;
        let display = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(lint_source(&display, &source));
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOT_BAD_TRANSCENDENTAL: &str = include_str!("../fixtures/hot_transcendental.rs");
    const HOT_BAD_ALLOC: &str = include_str!("../fixtures/hot_alloc.rs");
    const WALL_CLOCK_BAD: &str = include_str!("../fixtures/wall_clock.rs");
    const CKPT_HASHMAP_BAD: &str = include_str!("../fixtures/ckpt_hashmap.rs");
    const LIB_UNWRAP_BAD: &str = include_str!("../fixtures/lib_unwrap.rs");
    const CKPT_CHAIN_BAD: &str = include_str!("../fixtures/ckpt_chain.rs");
    const HOT_SCALAR_SPIN_BAD: &str = include_str!("../fixtures/hot_scalar_spin_loop.rs");
    const HOT_WALL_CLOCK_BAD: &str = include_str!("../fixtures/hot_wall_clock.rs");
    const NET_QUEUE_BAD: &str = include_str!("../fixtures/net_queue.rs");
    const BLOCKING_RECV_BAD: &str = include_str!("../fixtures/blocking_recv.rs");
    const CLEAN: &str = include_str!("../fixtures/clean.rs");

    fn rules_fired(path: &str, src: &str) -> Vec<Rule> {
        lint_source(path, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn fixture_fires_hot_transcendental() {
        let fired = rules_fired("crates/fixture/src/lib.rs", HOT_BAD_TRANSCENDENTAL);
        assert!(fired.contains(&Rule::HotTranscendental), "{fired:?}");
    }

    #[test]
    fn fixture_fires_hot_alloc() {
        let fired = rules_fired("crates/fixture/src/lib.rs", HOT_BAD_ALLOC);
        assert!(fired.contains(&Rule::HotAlloc), "{fired:?}");
    }

    #[test]
    fn fixture_fires_wall_clock() {
        let fired = rules_fired("crates/fixture/src/lib.rs", WALL_CLOCK_BAD);
        assert!(fired.contains(&Rule::WallClock), "{fired:?}");
    }

    #[test]
    fn fixture_fires_ckpt_hashmap() {
        let fired = rules_fired("crates/fixture/src/lib.rs", CKPT_HASHMAP_BAD);
        assert!(fired.contains(&Rule::CkptHashMap), "{fired:?}");
    }

    #[test]
    fn fixture_fires_lib_unwrap() {
        let fired = rules_fired("crates/fixture/src/lib.rs", LIB_UNWRAP_BAD);
        assert!(fired.contains(&Rule::LibUnwrap), "{fired:?}");
    }

    #[test]
    fn fixture_fires_ckpt_unbounded_chain() {
        let fired = rules_fired("crates/fixture/src/lib.rs", CKPT_CHAIN_BAD);
        assert!(fired.contains(&Rule::CkptUnboundedChain), "{fired:?}");
    }

    #[test]
    fn fixture_fires_hot_scalar_spin_loop() {
        let fired = rules_fired("crates/fixture/src/lib.rs", HOT_SCALAR_SPIN_BAD);
        // Both the `.metropolis(` and the `.bernoulli(` branch fire.
        assert_eq!(
            fired
                .iter()
                .filter(|r| **r == Rule::HotScalarSpinLoop)
                .count(),
            2,
            "{fired:?}"
        );
    }

    #[test]
    fn fixture_fires_hot_wall_clock() {
        let fired = rules_fired("crates/fixture/src/lib.rs", HOT_WALL_CLOCK_BAD);
        // Both the Instant and the SystemTime violation fire; the
        // span-guarded caller outside the hot region does not.
        assert_eq!(
            fired.iter().filter(|r| **r == Rule::HotWallClock).count(),
            2,
            "{fired:?}"
        );
    }

    #[test]
    fn fixture_fires_net_unbounded_queue() {
        let fired = rules_fired("crates/fixture/src/lib.rs", NET_QUEUE_BAD);
        // The Vec push and the VecDeque push_back both fire; the
        // quota-checked sibling file pattern is covered below.
        assert_eq!(
            fired
                .iter()
                .filter(|r| **r == Rule::NetUnboundedQueue)
                .count(),
            2,
            "{fired:?}"
        );
    }

    #[test]
    fn fixture_fires_blocking_recv_no_stop() {
        let fired = rules_fired("crates/fixture/src/lib.rs", BLOCKING_RECV_BAD);
        // The `loop { recv_frame }` and the `while { read_exact }`
        // fire; the one-shot receive outside any loop does not.
        assert_eq!(
            fired
                .iter()
                .filter(|r| **r == Rule::BlockingRecvNoStop)
                .count(),
            2,
            "{fired:?}"
        );
    }

    #[test]
    fn blocking_recv_is_fine_once_the_file_consults_a_stop() {
        // Any timeout/stop/drain/deadline ident anywhere in the file is
        // the loop's escape hatch — here a receive-timeout setter.
        let aware = BLOCKING_RECV_BAD.replace("fn run(", "fn run_with_timeout(");
        let fired = rules_fired("crates/fixture/src/lib.rs", &aware);
        assert!(!fired.contains(&Rule::BlockingRecvNoStop), "{fired:?}");
    }

    #[test]
    fn net_queue_is_fine_once_a_quota_is_named() {
        let bounded = NET_QUEUE_BAD.replace(
            "fn admit(",
            "fn admit_quota(", // any ident naming the quota bounds the file
        );
        let fired = rules_fired("crates/fixture/src/lib.rs", &bounded);
        assert!(!fired.contains(&Rule::NetUnboundedQueue), "{fired:?}");
    }

    #[test]
    fn hot_wall_clock_fires_even_inside_qmc_obs() {
        // The crate-scoped `wall-clock` rule exempts qmc-obs; the hot
        // variant must not — a kernel is a kernel wherever it lives.
        let src = "
            #[qmc_hot::hot]
            fn bad(xs: &mut [f64]) {
                let _t = Instant::now();
            }
        ";
        let fired = rules_fired("crates/obs/src/lib.rs", src);
        assert!(fired.contains(&Rule::HotWallClock), "{fired:?}");
        assert!(!fired.contains(&Rule::WallClock), "{fired:?}");
    }

    #[test]
    fn scalar_spin_decisions_outside_hot_fns_are_fine() {
        // Replica exchange and cluster seeding legitimately draw per
        // decision — the rule only polices `#[qmc_hot::hot]` kernels.
        let src = "
            fn exchange<R: Rng64>(&mut self, rng: &mut R) {
                if rng.metropolis(self.ratio) {
                    self.swap();
                }
            }
        ";
        assert!(rules_fired("crates/fixture/src/lib.rs", src).is_empty());
    }

    #[test]
    fn chain_write_is_fine_when_the_file_bounds_it() {
        let src = "
            fn drive(store: &CkptStore, full_every: usize, s: u64, plan: Plan, delta: bool) {
                let _ = store.write_plan(s, plan, delta);
            }
        ";
        assert!(rules_fired("crates/fixture/src/lib.rs", src).is_empty());
    }

    #[test]
    fn every_rule_has_a_live_fixture() {
        // The union of the fixture corpus must exercise every rule — a
        // rule nothing can trigger is dead code.
        let mut fired: Vec<Rule> = Vec::new();
        for src in [
            HOT_BAD_TRANSCENDENTAL,
            HOT_BAD_ALLOC,
            WALL_CLOCK_BAD,
            CKPT_HASHMAP_BAD,
            LIB_UNWRAP_BAD,
            CKPT_CHAIN_BAD,
            HOT_SCALAR_SPIN_BAD,
            HOT_WALL_CLOCK_BAD,
            NET_QUEUE_BAD,
            BLOCKING_RECV_BAD,
        ] {
            fired.extend(rules_fired("crates/fixture/src/lib.rs", src));
        }
        for rule in Rule::all() {
            assert!(
                fired.contains(rule),
                "rule {} has no fixture that triggers it",
                rule.name()
            );
        }
    }

    #[test]
    fn clean_fixture_has_no_findings() {
        let findings = lint_source("crates/fixture/src/lib.rs", CLEAN);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                fn helper() { let x: Option<u8> = None; x.unwrap(); }
                #[test]
                fn t() { let _ = std::time::Instant::now(); }
            }
        "#;
        assert!(rules_fired("crates/comm/src/lib.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_fn_is_exempt() {
        let src = r#"
            #[cfg(test)]
            fn reference_impl(x: f64) -> f64 { x.exp() }
        "#;
        assert!(rules_fired("crates/tfim/src/serial.rs", src).is_empty());
    }

    #[test]
    fn tests_dir_is_exempt() {
        let src = "fn f() { let x: Option<u8> = None; x.unwrap(); }";
        assert!(rules_fired("tests/integration.rs", src).is_empty());
        assert!(rules_fired("crates/comm/tests/conformance.rs", src).is_empty());
    }

    #[test]
    fn bench_crate_exempt_from_unwrap_but_not_wall_clock() {
        let src = "fn f() { let x: Option<u8> = None; x.unwrap(); let _ = Instant::now(); }";
        let fired = rules_fired("crates/bench/src/kernels.rs", src);
        assert_eq!(fired, vec![Rule::WallClock]);
    }

    #[test]
    fn waiver_on_same_or_previous_line_suppresses() {
        let src = "
            fn f() {
                // lint: allow(wall-clock) — timeout bookkeeping
                let _ = Instant::now();
                let _ = Instant::now(); // lint: allow(wall-clock)
            }
        ";
        assert!(rules_fired("crates/comm/src/lib.rs", src).is_empty());
    }

    #[test]
    fn waiver_for_other_rule_does_not_suppress() {
        let src = "
            fn f() {
                // lint: allow(lib-unwrap)
                let _ = Instant::now();
            }
        ";
        assert_eq!(
            rules_fired("crates/comm/src/lib.rs", src),
            vec![Rule::WallClock]
        );
    }

    #[test]
    fn strings_and_chars_are_not_code() {
        let src = r##"
            fn f() -> &'static str {
                let _c = '.';
                let _s = "x.unwrap() Instant::now()";
                r#"Vec::new() .collect()"#
            }
        "##;
        assert!(rules_fired("crates/comm/src/lib.rs", src).is_empty());
    }

    #[test]
    fn hot_region_scopes_to_the_annotated_fn_only() {
        let src = r#"
            #[qmc_hot::hot]
            fn kernel(t: &[f64], i: usize) -> f64 { t[i] }

            fn table() -> Vec<f64> {
                (0..10).map(|k| (k as f64).exp()).collect()
            }
        "#;
        assert!(
            rules_fired("crates/tfim/src/serial.rs", src).is_empty(),
            "table construction outside the hot fn must be allowed"
        );
    }

    #[test]
    fn hot_violation_inside_annotated_fn_detected_with_line() {
        let src = "#[qmc_hot::hot]\nfn kernel(x: f64) -> f64 {\n    x.exp()\n}\n";
        let findings = lint_source("crates/tfim/src/serial.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 3);
        assert_eq!(findings[0].rule, Rule::HotTranscendental);
    }

    #[test]
    fn ckpt_rule_triggers_on_impl_checkpoint_outside_ckpt_crate() {
        let src = "
            struct S;
            impl Checkpoint for S {}
            fn f(m: &HashMap<u32, u32>) -> usize { m.len() }
        ";
        assert_eq!(
            rules_fired("crates/tfim/src/serial.rs", src),
            vec![Rule::CkptHashMap]
        );
    }

    #[test]
    fn use_declaration_of_hashmap_is_not_flagged() {
        let src = "
            use std::collections::HashMap;
            struct S;
            impl Checkpoint for S {}
        ";
        assert!(rules_fired("crates/ckpt/src/wire.rs", src).is_empty());
    }
}
