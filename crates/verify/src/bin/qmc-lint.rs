//! `qmc-lint` — run the workspace invariant linter.
//!
//! ```text
//! qmc-lint [--root DIR] [--rules] [--quiet]
//! ```
//!
//! Scans every `.rs` file under `crates/`, `tests/` and `examples/`
//! (skipping `target/` and lint `fixtures/`) and reports violations of
//! the workspace invariants. Exit code 0 when clean, 1 when any
//! violation is found, 2 on usage errors.

// CLI entry point: exiting with a status code is this file's job.
#![allow(clippy::disallowed_methods)]
use qmc_verify::lint;

fn main() {
    let mut root: Option<std::path::PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(d) => root = Some(d.into()),
                None => {
                    eprintln!("--root needs a directory");
                    std::process::exit(2); // lint binary, not library code
                }
            },
            "--rules" => {
                for rule in lint::Rule::all() {
                    println!("{}", rule.name());
                }
                return;
            }
            "--quiet" => quiet = true,
            other => {
                eprintln!("usage: qmc-lint [--root DIR] [--rules] [--quiet] (got '{other}')");
                std::process::exit(2);
            }
        }
    }

    let root = root
        .or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|d| lint::workspace_root_from(&d))
        })
        .unwrap_or_else(|| {
            eprintln!("qmc-lint: no workspace root found (pass --root DIR)");
            std::process::exit(2);
        });

    let findings = lint::lint_workspace(&root).unwrap_or_else(|e| {
        eprintln!("qmc-lint: I/O error while scanning {}: {e}", root.display());
        std::process::exit(2);
    });

    if findings.is_empty() {
        if !quiet {
            println!(
                "qmc-lint: workspace clean ({} rules over {})",
                lint::Rule::all().len(),
                root.display()
            );
        }
        return;
    }
    for f in &findings {
        println!("{f}");
    }
    eprintln!("qmc-lint: {} violation(s)", findings.len());
    std::process::exit(1);
}
