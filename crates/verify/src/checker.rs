//! Offline model checker for recorded communication traces.
//!
//! The checker replays a [`WorldTrace`] under the comm layer's exact
//! matching semantics — receives name `(source, tag)`, sends are
//! buffered and never block, message order is FIFO per
//! `(source, destination, tag)` channel — and validates:
//!
//! * **Deadlock freedom**: the replay is driven greedily; because sends
//!   never block, the greedy schedule is confluent, so if it gets stuck
//!   the program deadlocks under *every* schedule. Stuck states are
//!   diagnosed via the wait-for graph: cycles are reported rank by rank
//!   (`rank 0 waits on rank 1 (tag 0x7) -> ...`).
//! * **Send/recv matching**: leftover queued messages at finalize are
//!   orphaned sends; a rank blocked on a peer that has finished (or that
//!   never sends a matching message) is an unreceivable receive.
//! * **Reserved-tag discipline**: user events must stay below
//!   `COLLECTIVE_TAG_BASE`, collective-internal events at or above it.
//! * **SPMD collective order**: every rank must observe the identical
//!   sequence of collective sequence numbers.
//! * **FIFO payload consistency**: each receive's payload size must
//!   equal the matched send's (a mismatch means the transport reordered
//!   or altered messages and the determinism argument is void).

use crate::trace::{Event, WorldTrace};
use qmc_comm::COLLECTIVE_TAG_BASE;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;

/// One edge of a wait-for cycle: `rank` is blocked receiving from `src`
/// with `tag`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitEdge {
    /// The blocked rank.
    pub rank: usize,
    /// The rank it waits on.
    pub src: usize,
    /// The tag it waits for.
    pub tag: u32,
}

impl fmt::Display for WaitEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rank {} waits on rank {} (tag {:#x})",
            self.rank, self.src, self.tag
        )
    }
}

/// A protocol violation found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A wait-for cycle: no rank in it can ever proceed.
    Deadlock {
        /// The cycle, canonicalized to start at its smallest rank.
        cycle: Vec<WaitEdge>,
    },
    /// A rank blocked on a receive that no remaining send can satisfy.
    UnreceivableRecv {
        /// The blocked rank.
        rank: usize,
        /// The named source rank (which has finished its trace).
        src: usize,
        /// The named tag.
        tag: u32,
        /// Index of the blocked receive in the rank's event list.
        event_index: usize,
    },
    /// A rank stuck behind another blocked rank (collateral damage of a
    /// deadlock or unreceivable receive elsewhere).
    Stalled {
        /// The stuck rank.
        rank: usize,
        /// The blocked rank it waits on.
        src: usize,
        /// The tag it waits for.
        tag: u32,
    },
    /// Messages still queued on a channel after every rank finished.
    OrphanSends {
        /// Sending rank.
        src: usize,
        /// Destination rank.
        dst: usize,
        /// Channel tag.
        tag: u32,
        /// Number of unconsumed messages.
        count: usize,
    },
    /// A user-level event used a reserved collective tag, or a
    /// collective-internal event used a user tag.
    ReservedTagMisuse {
        /// Offending rank.
        rank: usize,
        /// Index in the rank's event list.
        event_index: usize,
        /// The tag in question.
        tag: u32,
        /// True when a user event strayed into the reserved range;
        /// false when an internal event used a user tag.
        user_event: bool,
    },
    /// Ranks disagree on the order of collective operations.
    CollectiveDivergence {
        /// First rank of the disagreeing pair.
        rank_a: usize,
        /// Second rank of the disagreeing pair.
        rank_b: usize,
        /// Human-readable description of the first divergence.
        detail: String,
    },
    /// A receive's payload size differs from the matched send's.
    PayloadMismatch {
        /// Sending rank.
        src: usize,
        /// Receiving rank.
        dst: usize,
        /// Channel tag.
        tag: u32,
        /// Bytes recorded at the send.
        sent: usize,
        /// Bytes recorded at the receive.
        received: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Deadlock { cycle } => {
                write!(f, "deadlock: ")?;
                for (i, e) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, " -> rank {}", cycle[0].rank)
            }
            Violation::UnreceivableRecv {
                rank,
                src,
                tag,
                event_index,
            } => write!(
                f,
                "unreceivable recv: rank {rank} event #{event_index} waits on rank {src} \
                 (tag {tag:#x}), but rank {src} finishes without a matching send"
            ),
            Violation::Stalled { rank, src, tag } => write!(
                f,
                "stalled: rank {rank} waits on blocked rank {src} (tag {tag:#x})"
            ),
            Violation::OrphanSends {
                src,
                dst,
                tag,
                count,
            } => write!(
                f,
                "orphaned sends: {count} message(s) from rank {src} to rank {dst} \
                 (tag {tag:#x}) never received"
            ),
            Violation::ReservedTagMisuse {
                rank,
                event_index,
                tag,
                user_event,
            } => {
                if *user_event {
                    write!(
                        f,
                        "reserved-tag misuse: rank {rank} event #{event_index} uses tag \
                         {tag:#x} in the collective-reserved range"
                    )
                } else {
                    write!(
                        f,
                        "reserved-tag misuse: rank {rank} event #{event_index} is \
                         collective-internal but uses user tag {tag:#x}"
                    )
                }
            }
            Violation::CollectiveDivergence {
                rank_a,
                rank_b,
                detail,
            } => write!(
                f,
                "collective divergence between rank {rank_a} and rank {rank_b}: {detail}"
            ),
            Violation::PayloadMismatch {
                src,
                dst,
                tag,
                sent,
                received,
            } => write!(
                f,
                "payload mismatch on channel rank {src} -> rank {dst} (tag {tag:#x}): \
                 sent {sent} bytes, received {received}"
            ),
        }
    }
}

/// Summary of a successfully verified trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Number of ranks in the trace.
    pub ranks: usize,
    /// Total events across all ranks.
    pub events: usize,
    /// User-level messages matched send-to-recv.
    pub user_messages: usize,
    /// Collective-internal messages matched.
    pub internal_messages: usize,
    /// Collective operations (per rank; identical on every rank).
    pub collectives: usize,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ranks, {} events: {} user + {} internal messages matched, \
             {} collectives, deadlock-free",
            self.ranks, self.events, self.user_messages, self.internal_messages, self.collectives
        )
    }
}

/// Verify a recorded trace; `Ok` carries match statistics, `Err` every
/// violation found (deadlock diagnosis first).
pub fn check(trace: &WorldTrace) -> Result<Report, Vec<Violation>> {
    let n = trace.ranks.len();
    let mut violations = Vec::new();

    // --- Static per-event checks: reserved-tag discipline. ---
    for (rank, events) in trace.ranks.iter().enumerate() {
        for (i, ev) in events.iter().enumerate() {
            let (tag, internal) = match ev {
                Event::Send { tag, internal, .. } | Event::Recv { tag, internal, .. } => {
                    (*tag, *internal)
                }
                Event::Collective { .. } => continue,
            };
            let reserved = tag >= COLLECTIVE_TAG_BASE;
            if reserved != internal {
                violations.push(Violation::ReservedTagMisuse {
                    rank,
                    event_index: i,
                    tag,
                    user_event: !internal,
                });
            }
        }
    }

    // --- SPMD collective order must agree across ranks. ---
    let coll: Vec<Vec<u32>> = trace
        .ranks
        .iter()
        .map(|events| {
            events
                .iter()
                .filter_map(|e| match e {
                    Event::Collective { seq } => Some(*seq),
                    _ => None,
                })
                .collect()
        })
        .collect();
    for r in 1..n {
        if coll[r] != coll[0] {
            let detail = if coll[r].len() != coll[0].len() {
                format!(
                    "rank 0 performed {} collectives, rank {r} performed {}",
                    coll[0].len(),
                    coll[r].len()
                )
            } else {
                let k = coll[0]
                    .iter()
                    .zip(&coll[r])
                    .position(|(a, b)| a != b)
                    .unwrap_or(0);
                format!(
                    "collective #{k} has seq {} on rank 0 but {} on rank {r}",
                    coll[0][k], coll[r][k]
                )
            };
            violations.push(Violation::CollectiveDivergence {
                rank_a: 0,
                rank_b: r,
                detail,
            });
        }
    }

    // --- Greedy replay under buffered-send semantics. ---
    let mut cursor = vec![0usize; n];
    let mut channels: HashMap<(usize, usize, u32), VecDeque<usize>> = HashMap::new();
    let mut user_messages = 0usize;
    let mut internal_messages = 0usize;
    loop {
        let mut progressed = false;
        #[allow(clippy::needless_range_loop)] // rank indexes two parallel tables
        for rank in 0..n {
            while cursor[rank] < trace.ranks[rank].len() {
                match &trace.ranks[rank][cursor[rank]] {
                    Event::Collective { .. } => {}
                    Event::Send {
                        dst, tag, bytes, ..
                    } => {
                        channels
                            .entry((rank, *dst, *tag))
                            .or_default()
                            .push_back(*bytes);
                    }
                    Event::Recv {
                        src,
                        tag,
                        bytes,
                        internal,
                    } => {
                        let Some(sent) = channels
                            .get_mut(&(*src, rank, *tag))
                            .and_then(|q| q.pop_front())
                        else {
                            break; // blocked: no matching send yet
                        };
                        if sent != *bytes {
                            violations.push(Violation::PayloadMismatch {
                                src: *src,
                                dst: rank,
                                tag: *tag,
                                sent,
                                received: *bytes,
                            });
                        }
                        if *internal {
                            internal_messages += 1;
                        } else {
                            user_messages += 1;
                        }
                    }
                }
                cursor[rank] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    // --- Stuck ranks: wait-for graph diagnosis. ---
    let blocked: Vec<Option<(usize, u32, usize)>> = (0..n)
        .map(|rank| {
            if cursor[rank] >= trace.ranks[rank].len() {
                return None;
            }
            match &trace.ranks[rank][cursor[rank]] {
                Event::Recv { src, tag, .. } => Some((*src, *tag, cursor[rank])),
                _ => None,
            }
        })
        .collect();
    let mut in_reported_cycle = vec![false; n];
    for start in 0..n {
        let Some(_) = blocked[start] else { continue };
        if in_reported_cycle[start] {
            continue;
        }
        // Follow the wait-for chain from `start` looking for a cycle.
        let mut chain = vec![start];
        let mut cur = start;
        let cycle = loop {
            let Some((src, _, _)) = blocked[cur] else {
                break None; // chain ends at a finished rank
            };
            if let Some(pos) = chain.iter().position(|&r| r == src) {
                break Some(chain[pos..].to_vec());
            }
            chain.push(src);
            cur = src;
        };
        if let Some(cycle_ranks) = cycle {
            // Canonicalize: rotate so the smallest rank leads, report once.
            let min_pos = cycle_ranks
                .iter()
                .enumerate()
                .min_by_key(|(_, &r)| r)
                .map(|(i, _)| i)
                .unwrap_or(0);
            let rotated: Vec<usize> = cycle_ranks[min_pos..]
                .iter()
                .chain(&cycle_ranks[..min_pos])
                .copied()
                .collect();
            if !in_reported_cycle[rotated[0]] {
                for &r in &rotated {
                    in_reported_cycle[r] = true;
                }
                let edges = rotated
                    .iter()
                    .map(|&r| {
                        let (src, tag, _) = blocked[r].expect("cycle member is blocked");
                        WaitEdge { rank: r, src, tag }
                    })
                    .collect();
                violations.push(Violation::Deadlock { cycle: edges });
            }
        }
    }
    for rank in 0..n {
        let Some((src, tag, event_index)) = blocked[rank] else {
            continue;
        };
        if in_reported_cycle[rank] {
            continue;
        }
        if blocked[src].is_some() {
            violations.push(Violation::Stalled { rank, src, tag });
        } else {
            violations.push(Violation::UnreceivableRecv {
                rank,
                src,
                tag,
                event_index,
            });
        }
    }

    // --- Finalize: every queued message must have been consumed. ---
    let mut orphans: Vec<((usize, usize, u32), usize)> = channels
        .into_iter()
        .filter(|(_, q)| !q.is_empty())
        .map(|(k, q)| (k, q.len()))
        .collect();
    orphans.sort_unstable_by_key(|&(k, _)| k);
    for ((src, dst, tag), count) in orphans {
        violations.push(Violation::OrphanSends {
            src,
            dst,
            tag,
            count,
        });
    }

    if violations.is_empty() {
        Ok(Report {
            ranks: n,
            events: trace.len(),
            user_messages,
            internal_messages,
            collectives: coll.first().map(Vec::len).unwrap_or(0),
        })
    } else {
        // Deadlocks first: they are the root cause of everything else.
        violations.sort_by_key(|v| match v {
            Violation::Deadlock { .. } => 0,
            Violation::UnreceivableRecv { .. } => 1,
            Violation::Stalled { .. } => 2,
            Violation::ReservedTagMisuse { .. } => 3,
            Violation::CollectiveDivergence { .. } => 4,
            Violation::PayloadMismatch { .. } => 5,
            Violation::OrphanSends { .. } => 6,
        });
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(dst: usize, tag: u32, bytes: usize) -> Event {
        Event::Send {
            dst,
            tag,
            bytes,
            internal: false,
        }
    }

    fn recv(src: usize, tag: u32, bytes: usize) -> Event {
        Event::Recv {
            src,
            tag,
            bytes,
            internal: false,
        }
    }

    #[test]
    fn clean_pingpong_verifies() {
        let trace = WorldTrace {
            ranks: vec![
                vec![send(1, 1, 8), recv(1, 2, 4)],
                vec![recv(0, 1, 8), send(0, 2, 4)],
            ],
        };
        let report = check(&trace).expect("clean trace");
        assert_eq!(report.user_messages, 2);
        assert_eq!(report.ranks, 2);
    }

    #[test]
    fn crossed_recv_two_rank_cycle() {
        // Both ranks receive before sending: the textbook deadlock.
        let trace = WorldTrace {
            ranks: vec![
                vec![recv(1, 7, 1), send(1, 7, 1)],
                vec![recv(0, 7, 1), send(0, 7, 1)],
            ],
        };
        let violations = check(&trace).expect_err("deadlock");
        let Violation::Deadlock { cycle } = &violations[0] else {
            panic!("expected deadlock first, got {:?}", violations[0]);
        };
        assert_eq!(
            cycle,
            &vec![
                WaitEdge {
                    rank: 0,
                    src: 1,
                    tag: 7
                },
                WaitEdge {
                    rank: 1,
                    src: 0,
                    tag: 7
                },
            ]
        );
        let text = violations[0].to_string();
        assert!(
            text.contains("rank 0 waits on rank 1 (tag 0x7) -> rank 1 waits on rank 0 (tag 0x7)"),
            "message was: {text}"
        );
    }

    #[test]
    fn three_rank_cycle_reported_once_canonically() {
        // 0 waits on 1, 1 waits on 2, 2 waits on 0.
        let trace = WorldTrace {
            ranks: vec![
                vec![recv(1, 3, 1)],
                vec![recv(2, 3, 1)],
                vec![recv(0, 3, 1)],
            ],
        };
        let violations = check(&trace).expect_err("deadlock");
        let deadlocks: Vec<_> = violations
            .iter()
            .filter(|v| matches!(v, Violation::Deadlock { .. }))
            .collect();
        assert_eq!(deadlocks.len(), 1, "one canonical cycle report");
        let Violation::Deadlock { cycle } = deadlocks[0] else {
            unreachable!()
        };
        assert_eq!(cycle[0].rank, 0, "canonical rotation starts at min rank");
        assert_eq!(cycle.len(), 3);
    }

    #[test]
    fn orphaned_send_detected() {
        let trace = WorldTrace {
            ranks: vec![vec![send(1, 1, 8)], vec![]],
        };
        let violations = check(&trace).expect_err("orphan");
        assert_eq!(
            violations,
            vec![Violation::OrphanSends {
                src: 0,
                dst: 1,
                tag: 1,
                count: 1
            }]
        );
    }

    #[test]
    fn unreceivable_recv_detected() {
        // Rank 1 waits on rank 0, which finished without sending.
        let trace = WorldTrace {
            ranks: vec![vec![], vec![recv(0, 9, 1)]],
        };
        let violations = check(&trace).expect_err("unreceivable");
        assert!(matches!(
            violations[0],
            Violation::UnreceivableRecv {
                rank: 1,
                src: 0,
                tag: 9,
                ..
            }
        ));
    }

    #[test]
    fn stalled_rank_behind_cycle_reported() {
        // 0 and 1 deadlock; 2 waits on 0 (collateral).
        let trace = WorldTrace {
            ranks: vec![
                vec![recv(1, 1, 1)],
                vec![recv(0, 1, 1)],
                vec![recv(0, 2, 1)],
            ],
        };
        let violations = check(&trace).expect_err("deadlock + stall");
        assert!(matches!(violations[0], Violation::Deadlock { .. }));
        assert!(violations.iter().any(|v| matches!(
            v,
            Violation::Stalled {
                rank: 2,
                src: 0,
                ..
            }
        )));
    }

    #[test]
    fn reserved_tag_misuse_detected_both_ways() {
        let trace = WorldTrace {
            ranks: vec![vec![
                Event::Send {
                    dst: 0,
                    tag: qmc_comm::COLLECTIVE_TAG_BASE + 1,
                    bytes: 0,
                    internal: false,
                },
                Event::Recv {
                    src: 0,
                    tag: qmc_comm::COLLECTIVE_TAG_BASE + 1,
                    bytes: 0,
                    internal: false,
                },
                Event::Send {
                    dst: 0,
                    tag: 5,
                    bytes: 0,
                    internal: true,
                },
                Event::Recv {
                    src: 0,
                    tag: 5,
                    bytes: 0,
                    internal: true,
                },
            ]],
        };
        let violations = check(&trace).expect_err("misuse");
        let misuses: Vec<_> = violations
            .iter()
            .filter(|v| matches!(v, Violation::ReservedTagMisuse { .. }))
            .collect();
        assert_eq!(misuses.len(), 4);
    }

    #[test]
    fn fifo_matching_pairs_in_order_and_flags_size_mismatch() {
        // Two sends 8 then 4 bytes; receiver records 4 then 8 — the FIFO
        // match pairs (8,4) and (4,8), both mismatched.
        let trace = WorldTrace {
            ranks: vec![
                vec![send(1, 1, 8), send(1, 1, 4)],
                vec![recv(0, 1, 4), recv(0, 1, 8)],
            ],
        };
        let violations = check(&trace).expect_err("mismatch");
        assert_eq!(
            violations
                .iter()
                .filter(|v| matches!(v, Violation::PayloadMismatch { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn collective_divergence_detected() {
        let trace = WorldTrace {
            ranks: vec![
                vec![Event::Collective { seq: 0 }, Event::Collective { seq: 1 }],
                vec![Event::Collective { seq: 0 }],
            ],
        };
        let violations = check(&trace).expect_err("divergence");
        assert!(matches!(
            violations[0],
            Violation::CollectiveDivergence { rank_b: 1, .. }
        ));
    }

    #[test]
    fn self_wait_is_a_length_one_cycle() {
        let trace = WorldTrace {
            ranks: vec![vec![recv(0, 2, 1)]],
        };
        let violations = check(&trace).expect_err("self deadlock");
        let Violation::Deadlock { cycle } = &violations[0] else {
            panic!("expected deadlock");
        };
        assert_eq!(cycle.len(), 1);
        assert_eq!(cycle[0].rank, 0);
        assert_eq!(cycle[0].src, 0);
    }
}
