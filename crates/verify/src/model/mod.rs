//! Protocol models: the workspace's multi-party coordination protocols
//! extracted as pure state machines for the [`crate::explore`] DPOR
//! explorer.
//!
//! Extraction rules (see DESIGN.md "Exhaustive protocol exploration"):
//!
//! * One model process per participant (rank, worker, environment);
//!   every source of nondeterminism — message delivery, crash timing,
//!   write failure, flag raise — is a distinct action, so the explorer
//!   owns the schedule completely.
//! * Transitions mirror the real implementation step-for-step at the
//!   granularity of its atomic sections (one mutex-held region or one
//!   blocking call boundary per action); the conformance suite in
//!   `tests/explore.rs` replays explored schedules against the real
//!   `Sched`/`CkptStore`/`ThreadComm` code to keep the two pinned.
//! * Each model carries an optional seeded *mutation* reproducing a
//!   protocol bug the real code was engineered to avoid (dropping the
//!   commit-ack gate, reading the drain flag locally, forgetting the
//!   kill-requeue). Mutants exist so the checker's teeth are tested:
//!   every mutant must yield a minimized counterexample, and the
//!   unmutated model must explore clean.
//!
//! The four models:
//!
//! * [`ckpt_commit`]: coordinated full-vs-delta checkpoint write with
//!   rank-0 decision broadcast, plan gather, persist, and the
//!   commit-ack broadcast that gates `mark_clean` — under crash and
//!   write-failure injection (mirrors
//!   `qmc_ckpt::coord::write_coordinated_sections` and its callers).
//! * [`drain`]: the graceful-drain verdict broadcast at sweep
//!   boundaries — every rank must stop at the same sweep in every
//!   schedule (mirrors the drain check in
//!   `qmc_core::pt::run_pt_parallel_ckpt`).
//! * [`sched`]: the qmc-serve job lifecycle — submit admission
//!   (quota, namespace uniqueness, draining), dispatch,
//!   worker-kill/requeue, fail, drain-park — with no-lost-job and
//!   quota invariants (mirrors `qmc_serve::sched::Sched`).
//! * [`respawn`]: the elastic-world respawn barrier — reset only after
//!   every incarnation-0 thread exited, restore exactly once behind the
//!   rejoin ack barrier (mirrors `qmc_comm::run_threads_elastic` plus
//!   the rejoin path of `qmc_ckpt::coord::restore_coordinated`).

pub mod ckpt_commit;
pub mod drain;
pub mod respawn;
pub mod sched;

pub use ckpt_commit::{CkptAction, CkptCommitModel, CkptMutation};
pub use drain::{DrainAction, DrainModel, DrainMutation, TAG_VERDICT};
pub use respawn::{RespawnAction, RespawnModel, RespawnMutation, TAG_ACK, TAG_GEN};
pub use sched::{JobSt, SchedAction, SchedModel, SchedMutation, SchedState};
