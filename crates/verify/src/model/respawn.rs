//! Model of the elastic-world respawn barrier
//! (`qmc_comm::run_threads_elastic` + the rejoin restore in
//! `qmc_ckpt::coord::restore_coordinated`).
//!
//! The real protocol: when a rank thread dies, the supervisor waits
//! until *every* incarnation-0 thread has exited (returned or
//! panicked), resets the mailboxes and clears the poison word, then
//! relaunches all rank slots as incarnation 1. The relaunched world
//! rehydrates behind a barrier: rank 0 broadcasts the recovery
//! generation, every other rank restores exactly once and acks, and
//! rank 0 completes only after collecting all acks.
//!
//! Two hazards the barrier exists to exclude:
//!
//! * **Stale residue**: a message deposited by incarnation 0 must never
//!   be consumed by incarnation 1 — resetting the mailboxes while an
//!   old thread still runs lets its sends land *after* the wipe.
//! * **Double restore**: the rejoin path and the ordinary resume path
//!   must not both rehydrate a rank — replaying the generation twice
//!   desynchronizes its RNG stream from the survivors.
//!
//! Seeded mutations: [`RespawnMutation::EagerReset`] resets as soon as
//! the crash is detected (stragglers still alive) — their residue lands
//! in the wiped queues and incarnation 1 consumes it;
//! [`RespawnMutation::SkipRespawn`] never relaunches the dead slot —
//! rank 0's ack collection starves, a deadlock rendered through the
//! wait-for-cycle reporter; [`RespawnMutation::DoubleRestore`] has the
//! rejoined rank run the ordinary resume restore on top of the rejoin
//! restore.

use crate::checker::WaitEdge;
use crate::explore::Model;

/// Tag used in rendered wait-for edges for the generation broadcast.
pub const TAG_GEN: u32 = 0x30;
/// Tag used in rendered wait-for edges for the rejoin-barrier acks.
pub const TAG_ACK: u32 = 0x31;

/// Seeded protocol bugs (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RespawnMutation {
    /// Reset the mailboxes on crash detection without waiting for the
    /// surviving incarnation-0 threads to exit.
    EagerReset,
    /// Never relaunch the dead slot; the survivors run the rejoin
    /// barrier against a world that is one rank short.
    SkipRespawn,
    /// The rejoined rank restores a second time via the ordinary
    /// resume path.
    DoubleRestore,
}

/// The respawn-barrier protocol model.
#[derive(Debug, Clone, Copy)]
pub struct RespawnModel {
    /// Number of rank slots (>= 2).
    pub ranks: usize,
    /// Optional seeded bug.
    pub mutation: Option<RespawnMutation>,
}

impl RespawnModel {
    /// Unmutated model.
    pub fn new(ranks: usize) -> Self {
        RespawnModel {
            ranks,
            mutation: None,
        }
    }

    /// Same instance with a seeded bug.
    pub fn mutated(mut self, m: RespawnMutation) -> Self {
        self.mutation = Some(m);
        self
    }
}

/// Lifecycle of one rank slot across the two incarnations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotPhase {
    /// Incarnation-0 thread running.
    Running0,
    /// Incarnation-0 thread panicked (the death that triggers respawn).
    Crashed0,
    /// Incarnation-0 thread exited normally (or failed fast on poison).
    Exited0,
    /// Incarnation-1 thread running, not yet rehydrated.
    Running1,
    /// Rank 0 only: generation broadcast sent, collecting acks.
    AwaitAcks,
    /// Incarnation-1 thread rehydrated and done.
    Done1,
}

/// One in-flight mailbox message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// Ordinary incarnation-0 traffic (stale after a reset).
    Stale,
    /// The recovery-generation broadcast from rank 0.
    Gen,
    /// A rejoin-barrier ack to rank 0.
    Ack,
}

/// Global model state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RespawnState {
    phase: Vec<SlotPhase>,
    /// Per-slot mailbox queue (FIFO).
    queues: Vec<Vec<MsgKind>>,
    /// Which slot crashed, once one has.
    crashed: Option<u8>,
    /// Supervisor has performed the reset-and-relaunch.
    reset_done: bool,
    /// Slot's incarnation-0 thread already performed its one send.
    sent0: Vec<bool>,
    /// Slots whose incarnation-0 thread was still alive at reset time
    /// (EagerReset only): the abandoned thread may still deposit.
    straggler: Vec<bool>,
    /// Restores performed per slot.
    restores: Vec<u8>,
    /// An incarnation-1 thread consumed incarnation-0 residue.
    consumed_stale: bool,
}

/// One scheduler choice in the respawn protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RespawnAction {
    /// The environment kills `rank`'s incarnation-0 thread (at most one
    /// crash per run).
    Crash {
        /// Dying slot.
        rank: u8,
    },
    /// `rank`'s incarnation-0 thread deposits one ordinary message to
    /// its ring neighbour.
    Send0 {
        /// Sending slot.
        rank: u8,
    },
    /// `rank`'s incarnation-0 thread exits (finishes, or fails fast on
    /// the poisoned world).
    Exit0 {
        /// Exiting slot.
        rank: u8,
    },
    /// Supervisor: wipe every mailbox, clear the poison, relaunch the
    /// slots as incarnation 1.
    Reset,
    /// An abandoned incarnation-0 thread (EagerReset only) deposits its
    /// message after the wipe.
    StragglerSend {
        /// Abandoned slot.
        rank: u8,
    },
    /// Rank 0 (incarnation 1) broadcasts the recovery generation.
    BroadcastGen,
    /// Rank `rank` (incarnation 1) consumes its next message; a `Gen`
    /// restores-and-acks, residue trips the staleness invariant.
    Recv1 {
        /// Receiving slot.
        rank: u8,
    },
    /// Rank 0 collects the full ack set and completes.
    CollectAcks,
    /// DoubleRestore mutant only: the rejoined rank re-runs the
    /// ordinary resume restore.
    RestoreAgain {
        /// Rejoined slot.
        rank: u8,
    },
}

impl RespawnModel {
    fn neighbour(&self, rank: usize) -> usize {
        (rank + 1) % self.ranks
    }

    /// Queues an action pops from.
    fn pops(&self, a: &RespawnAction) -> Vec<usize> {
        match a {
            RespawnAction::Recv1 { rank } => vec![*rank as usize],
            RespawnAction::CollectAcks => vec![0],
            _ => Vec::new(),
        }
    }

    /// `(queue, kind)` pushes an action performs.
    fn pushes(&self, a: &RespawnAction) -> Vec<(usize, MsgKind)> {
        match a {
            RespawnAction::Send0 { rank } | RespawnAction::StragglerSend { rank } => {
                vec![(self.neighbour(*rank as usize), MsgKind::Stale)]
            }
            RespawnAction::BroadcastGen => (1..self.ranks).map(|r| (r, MsgKind::Gen)).collect(),
            RespawnAction::Recv1 { .. } => vec![(0, MsgKind::Ack)],
            _ => Vec::new(),
        }
    }
}

impl Model for RespawnModel {
    type State = RespawnState;
    type Action = RespawnAction;

    fn init(&self) -> RespawnState {
        RespawnState {
            phase: vec![SlotPhase::Running0; self.ranks],
            queues: vec![Vec::new(); self.ranks],
            crashed: None,
            reset_done: false,
            sent0: vec![false; self.ranks],
            straggler: vec![false; self.ranks],
            restores: vec![0; self.ranks],
            consumed_stale: false,
        }
    }

    fn actions(&self, s: &RespawnState) -> Vec<RespawnAction> {
        let mut acts = Vec::new();
        for (r, ph) in s.phase.iter().enumerate() {
            let rank = r as u8;
            match *ph {
                SlotPhase::Running0 => {
                    if s.crashed.is_none() {
                        acts.push(RespawnAction::Crash { rank });
                    }
                    if !s.sent0[r] {
                        acts.push(RespawnAction::Send0 { rank });
                    }
                    acts.push(RespawnAction::Exit0 { rank });
                }
                SlotPhase::Running1 => {
                    if r == 0 {
                        acts.push(RespawnAction::BroadcastGen);
                    } else if !s.queues[r].is_empty() {
                        acts.push(RespawnAction::Recv1 { rank });
                    }
                    // else: blocked on the generation broadcast.
                }
                SlotPhase::AwaitAcks => {
                    let acks = s.queues[0].iter().filter(|m| **m == MsgKind::Ack).count();
                    if acks >= self.ranks - 1 {
                        acts.push(RespawnAction::CollectAcks);
                    }
                    // else: blocked on the missing acks.
                }
                SlotPhase::Done1 => {
                    if self.mutation == Some(RespawnMutation::DoubleRestore)
                        && s.crashed == Some(rank)
                        && s.restores[r] == 1
                    {
                        acts.push(RespawnAction::RestoreAgain { rank });
                    }
                }
                SlotPhase::Crashed0 | SlotPhase::Exited0 => {}
            }
            if s.straggler[r] && !s.sent0[r] {
                acts.push(RespawnAction::StragglerSend { rank });
            }
        }
        if s.crashed.is_some() && !s.reset_done {
            let barrier_ok = self.mutation == Some(RespawnMutation::EagerReset)
                || s.phase
                    .iter()
                    .all(|ph| matches!(ph, SlotPhase::Crashed0 | SlotPhase::Exited0));
            if barrier_ok {
                acts.push(RespawnAction::Reset);
            }
        }
        acts
    }

    fn apply(&self, s: &RespawnState, a: &RespawnAction) -> RespawnState {
        let mut t = s.clone();
        match *a {
            RespawnAction::Crash { rank } => {
                t.phase[rank as usize] = SlotPhase::Crashed0;
                t.crashed = Some(rank);
            }
            RespawnAction::Send0 { rank } | RespawnAction::StragglerSend { rank } => {
                let to = self.neighbour(rank as usize);
                t.queues[to].push(MsgKind::Stale);
                t.sent0[rank as usize] = true;
                t.straggler[rank as usize] = false;
            }
            RespawnAction::Exit0 { rank } => t.phase[rank as usize] = SlotPhase::Exited0,
            RespawnAction::Reset => {
                for q in &mut t.queues {
                    q.clear();
                }
                for (r, ph) in t.phase.iter_mut().enumerate() {
                    match *ph {
                        SlotPhase::Running0 => {
                            // EagerReset only: the thread is abandoned
                            // alive while its slot is relaunched.
                            t.straggler[r] = true;
                            *ph = SlotPhase::Running1;
                        }
                        SlotPhase::Exited0 => *ph = SlotPhase::Running1,
                        SlotPhase::Crashed0
                            if self.mutation != Some(RespawnMutation::SkipRespawn) =>
                        {
                            *ph = SlotPhase::Running1;
                        }
                        _ => {}
                    }
                }
                t.reset_done = true;
            }
            RespawnAction::BroadcastGen => {
                for r in 1..self.ranks {
                    if s.phase[r] != SlotPhase::Crashed0 {
                        t.queues[r].push(MsgKind::Gen);
                    }
                }
                t.phase[0] = SlotPhase::AwaitAcks;
            }
            RespawnAction::Recv1 { rank } => {
                let r = rank as usize;
                match t.queues[r].remove(0) {
                    MsgKind::Gen => {
                        t.restores[r] += 1;
                        t.queues[0].push(MsgKind::Ack);
                        t.phase[r] = SlotPhase::Done1;
                    }
                    MsgKind::Stale => t.consumed_stale = true,
                    MsgKind::Ack => {}
                }
            }
            RespawnAction::CollectAcks => {
                t.queues[0].retain(|m| *m != MsgKind::Ack);
                t.restores[0] += 1;
                t.phase[0] = SlotPhase::Done1;
            }
            RespawnAction::RestoreAgain { rank } => t.restores[rank as usize] += 1,
        }
        t
    }

    fn invariant(&self, s: &RespawnState) -> Result<(), String> {
        if s.consumed_stale {
            return Err(
                "an incarnation-1 rank consumed a message deposited by incarnation 0 \
                 (mailbox reset raced a live thread)"
                    .into(),
            );
        }
        if let Some(r) = s.restores.iter().position(|n| *n > 1) {
            return Err(format!(
                "rank {r} restored the recovery generation {} times (rejoin and \
                 resume paths must be exclusive)",
                s.restores[r]
            ));
        }
        Ok(())
    }

    fn pid(&self, a: &RespawnAction) -> usize {
        match a {
            RespawnAction::Crash { .. } => self.ranks + 1, // environment
            RespawnAction::Reset => self.ranks,            // supervisor
            RespawnAction::Send0 { rank }
            | RespawnAction::Exit0 { rank }
            | RespawnAction::StragglerSend { rank }
            | RespawnAction::Recv1 { rank }
            | RespawnAction::RestoreAgain { rank } => *rank as usize,
            RespawnAction::BroadcastGen | RespawnAction::CollectAcks => 0,
        }
    }

    fn dependent(&self, a: &RespawnAction, b: &RespawnAction) -> bool {
        if self.pid(a) == self.pid(b) {
            return true;
        }
        // Crash gates the supervisor and disables whole action classes;
        // Reset rewrites every queue and phase. Both are rare single
        // actions, so conservative full dependence is cheap and sound.
        let global =
            |x: &RespawnAction| matches!(x, RespawnAction::Crash { .. } | RespawnAction::Reset);
        if global(a) || global(b) {
            return true;
        }
        // Queue conflicts: a pop conflicts with anything touching its
        // queue; two pushes conflict only when their kinds differ (equal
        // messages commute, e.g. two barrier acks into rank 0's queue).
        let (pa, pb) = (self.pops(a), self.pops(b));
        let (ha, hb) = (self.pushes(a), self.pushes(b));
        if pa
            .iter()
            .any(|q| pb.contains(q) || hb.iter().any(|(t, _)| t == q))
        {
            return true;
        }
        if pb.iter().any(|q| ha.iter().any(|(t, _)| t == q)) {
            return true;
        }
        ha.iter()
            .any(|(q, k)| hb.iter().any(|(q2, k2)| q == q2 && k != k2))
    }

    fn is_final(&self, s: &RespawnState) -> bool {
        match s.crashed {
            // A run with no death completes in incarnation 0.
            None => s.phase.iter().all(|ph| *ph == SlotPhase::Exited0),
            // A death must be ridden through: every slot rehydrated.
            Some(_) => s.phase.iter().all(|ph| *ph == SlotPhase::Done1),
        }
    }

    fn wait_edges(&self, s: &RespawnState) -> Vec<WaitEdge> {
        let mut edges = Vec::new();
        for (r, ph) in s.phase.iter().enumerate() {
            match *ph {
                SlotPhase::Running1 if r > 0 && s.queues[r].is_empty() => {
                    edges.push(WaitEdge {
                        rank: r,
                        src: 0,
                        tag: TAG_GEN,
                    });
                }
                SlotPhase::AwaitAcks => {
                    // Waiting on every slot whose ack cannot have
                    // arrived yet.
                    for (src, ph2) in s.phase.iter().enumerate().skip(1) {
                        if *ph2 != SlotPhase::Done1 {
                            edges.push(WaitEdge {
                                rank: 0,
                                src,
                                tag: TAG_ACK,
                            });
                        }
                    }
                }
                _ => {}
            }
        }
        edges
    }

    fn describe(&self, a: &RespawnAction) -> String {
        match *a {
            RespawnAction::Crash { rank } => {
                format!("environment: kill rank {rank}'s incarnation-0 thread")
            }
            RespawnAction::Send0 { rank } => {
                format!(
                    "rank {rank} (inc 0): send to rank {}",
                    self.neighbour(rank as usize)
                )
            }
            RespawnAction::Exit0 { rank } => format!("rank {rank} (inc 0): exit"),
            RespawnAction::Reset => {
                "supervisor: wipe mailboxes, clear poison, relaunch incarnation 1".into()
            }
            RespawnAction::StragglerSend { rank } => format!(
                "abandoned rank-{rank} thread: deposit into rank {}'s wiped mailbox",
                self.neighbour(rank as usize)
            ),
            RespawnAction::BroadcastGen => {
                "rank 0 (inc 1): broadcast the recovery generation".into()
            }
            RespawnAction::Recv1 { rank } => {
                format!("rank {rank} (inc 1): receive, restore, ack")
            }
            RespawnAction::CollectAcks => "rank 0 (inc 1): collect the rejoin-barrier acks".into(),
            RespawnAction::RestoreAgain { rank } => {
                format!("rank {rank}: re-run the ordinary resume restore")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::Violation;
    use crate::explore::{explore, explore_naive, Budget, Outcome};

    #[test]
    fn respawn_barrier_is_schedule_independent() {
        let m = RespawnModel::new(3);
        let out = explore(&m, Budget::with_faults(0));
        assert!(out.is_clean(), "expected clean, got {:?}", out.stats());
    }

    #[test]
    fn eager_reset_mutant_lets_incarnation_one_consume_residue() {
        let m = RespawnModel::new(2).mutated(RespawnMutation::EagerReset);
        let out = explore(&m, Budget::with_faults(0));
        let Outcome::Violation(ce) = out else {
            panic!("an eager reset must leak incarnation-0 residue");
        };
        assert!(
            ce.message.contains("incarnation 0"),
            "message: {}",
            ce.message
        );
    }

    #[test]
    fn skip_respawn_mutant_starves_the_ack_barrier() {
        let m = RespawnModel::new(3).mutated(RespawnMutation::SkipRespawn);
        let out = explore(&m, Budget::with_faults(0));
        let Outcome::Violation(ce) = out else {
            panic!("never relaunching the dead slot must deadlock the barrier");
        };
        let Some(Violation::Deadlock { cycle }) = &ce.deadlock else {
            panic!("expected rendered wait-for edges, got {:?}", ce.deadlock);
        };
        // Either side of the barrier can starve on the dead slot: rank 0
        // waiting for its ack, or the survivors waiting for its
        // broadcast (when slot 0 itself died).
        assert!(
            cycle
                .iter()
                .all(|e| (e.rank == 0 && e.tag == TAG_ACK) || (e.src == 0 && e.tag == TAG_GEN)),
            "the starvation must be on the rejoin barrier: {cycle:?}"
        );
    }

    #[test]
    fn double_restore_mutant_is_caught() {
        let m = RespawnModel::new(2).mutated(RespawnMutation::DoubleRestore);
        let out = explore(&m, Budget::with_faults(0));
        let Outcome::Violation(ce) = out else {
            panic!("a second restore must violate the at-most-once invariant");
        };
        assert!(
            ce.message
                .contains("restored the recovery generation 2 times"),
            "message: {}",
            ce.message
        );
    }

    #[test]
    fn dpor_agrees_with_naive_and_reduces() {
        let m = RespawnModel::new(3);
        let budget = Budget::with_faults(0);
        let d = explore(&m, budget);
        let nv = explore_naive(&m, budget);
        assert!(d.is_clean() && nv.is_clean());
        assert!(
            d.stats().transitions * 2 <= nv.stats().transitions,
            "DPOR {} vs naive {}",
            d.stats().transitions,
            nv.stats().transitions
        );
    }
}
