//! Model of the qmc-serve job lifecycle (`qmc_serve::sched::Sched`
//! plus the worker pool's dispatch/kill/requeue/drain behavior).
//!
//! Processes: one submitting client per tenant, the worker pool (one
//! process per worker), and the admin issuing the drain. The scheduler
//! itself is the shared state behind one mutex; every action is one
//! lock-held region of the real code:
//!
//! * **Submit**: admission in order — draining rejects, per-tenant
//!   active quota (queued + running), namespace-key uniqueness among
//!   live jobs; accepted jobs enter the pending queue.
//! * **Dispatch**: an idle worker pops the highest-priority (FIFO
//!   within a priority level) pending job.
//! * **Complete / Fail**: terminal transitions, worker freed.
//! * **Kill**: the environment kills the worker mid-job; the real
//!   worker loop *requeues* the job ([`SchedMutation::ForgetRequeue`]
//!   drops that, losing the job while its namespace stays claimed).
//! * **Drain / DrainPark**: after the drain, no new admissions and no
//!   dispatch; running jobs park as Paused at the next boundary.
//!
//! Invariants (every reachable state): per-tenant active count within
//! quota; namespace uniqueness among live jobs; the running-job ↔
//! worker assignment is a bijection; the pending queue holds exactly
//! the queued jobs, once each — together: no job is ever lost or
//! duplicated, in any interleaving of clients, workers, kills, and
//! the drain.

use crate::explore::Model;

/// Seeded protocol bugs (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMutation {
    /// The worker loop forgets to requeue a killed job: the worker
    /// frees itself but the job stays Running with no executor.
    ForgetRequeue,
    /// Admission skips the per-tenant quota check.
    SkipQuota,
}

/// The scheduler lifecycle model.
#[derive(Debug, Clone, Copy)]
pub struct SchedModel {
    /// Number of tenants (one submitting client each).
    pub tenants: usize,
    /// Jobs each tenant submits, in order.
    pub jobs_per_tenant: usize,
    /// Worker pool size.
    pub workers: usize,
    /// Per-tenant active-job quota.
    pub quota: usize,
    /// When true, each tenant's jobs all share one namespace key, so
    /// the second submit while the first is live must be rejected.
    pub ns_collide: bool,
    /// Optional seeded bug.
    pub mutation: Option<SchedMutation>,
}

impl SchedModel {
    /// Unmutated model.
    pub fn new(tenants: usize, jobs_per_tenant: usize, workers: usize, quota: usize) -> Self {
        SchedModel {
            tenants,
            jobs_per_tenant,
            workers,
            quota,
            ns_collide: false,
            mutation: None,
        }
    }

    /// Same instance with colliding namespace keys per tenant.
    pub fn with_ns_collision(mut self) -> Self {
        self.ns_collide = true;
        self
    }

    /// Same instance with a seeded bug.
    pub fn mutated(mut self, m: SchedMutation) -> Self {
        self.mutation = Some(m);
        self
    }

    fn njobs(&self) -> usize {
        self.tenants * self.jobs_per_tenant
    }

    fn tenant_of(&self, job: usize) -> usize {
        job / self.jobs_per_tenant
    }

    /// Namespace key id: shared within a tenant when colliding,
    /// unique otherwise.
    fn ns_of(&self, job: usize) -> usize {
        if self.ns_collide {
            self.tenant_of(job)
        } else {
            job
        }
    }

    /// Mirror of the real `pop_next`: highest priority first, FIFO
    /// (lowest id) within a level. Second job of a tenant gets
    /// priority 1 so the ordering path is exercised.
    fn priority_of(&self, job: usize) -> u8 {
        u8::from(self.jobs_per_tenant > 1 && job % self.jobs_per_tenant == 1)
    }
}

/// Lifecycle state of one modeled job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobSt {
    /// Client has not submitted it yet.
    NotSubmitted,
    /// Admission rejected it (quota / namespace / draining).
    Rejected,
    /// Accepted, waiting in the pending queue.
    Queued,
    /// Dispatched to worker `.0`.
    Running(u8),
    /// Checkpointed and parked by the drain.
    Paused,
    /// Completed.
    Done,
    /// Failed.
    Failed,
}

impl JobSt {
    fn live(&self) -> bool {
        matches!(self, JobSt::Queued | JobSt::Running(_) | JobSt::Paused)
    }

    fn active(&self) -> bool {
        matches!(self, JobSt::Queued | JobSt::Running(_))
    }
}

/// Global model state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SchedState {
    jobs: Vec<JobSt>,
    /// Queued job ids in submission/requeue order.
    pending: Vec<u8>,
    /// Worker → running job.
    workers: Vec<Option<u8>>,
    draining: bool,
}

impl SchedState {
    /// The queued jobs, pending-queue membership, worker table and
    /// per-state job sets — exposed for the conformance suite's
    /// abstraction function.
    pub fn snapshot(&self) -> (Vec<JobSt>, Vec<u8>, Vec<Option<u8>>, bool) {
        (
            self.jobs.clone(),
            self.pending.clone(),
            self.workers.clone(),
            self.draining,
        )
    }
}

/// One scheduler choice in the lifecycle model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedAction {
    /// Tenant `tenant` submits its next job (admission applies).
    Submit {
        /// Submitting tenant.
        tenant: u8,
    },
    /// Idle worker `worker` pops the best pending job.
    Dispatch {
        /// Dispatching worker.
        worker: u8,
    },
    /// Worker `worker` finishes its job successfully.
    Complete {
        /// Finishing worker.
        worker: u8,
    },
    /// Worker `worker`'s job fails (fault budget).
    Fail {
        /// Failing worker.
        worker: u8,
    },
    /// The environment kills worker `worker` mid-job; the job is
    /// requeued (fault budget).
    Kill {
        /// Killed worker.
        worker: u8,
    },
    /// The admin starts a graceful drain.
    Drain,
    /// Worker `worker` parks its running job at the next checkpoint
    /// boundary (drain in effect).
    DrainPark {
        /// Parking worker.
        worker: u8,
    },
}

impl Model for SchedModel {
    type State = SchedState;
    type Action = SchedAction;

    fn init(&self) -> SchedState {
        SchedState {
            jobs: vec![JobSt::NotSubmitted; self.njobs()],
            pending: Vec::new(),
            workers: vec![None; self.workers],
            draining: false,
        }
    }

    fn actions(&self, s: &SchedState) -> Vec<SchedAction> {
        let mut acts = Vec::new();
        for t in 0..self.tenants {
            let next = (0..self.jobs_per_tenant)
                .map(|j| t * self.jobs_per_tenant + j)
                .find(|&id| s.jobs[id] == JobSt::NotSubmitted);
            if next.is_some() {
                acts.push(SchedAction::Submit { tenant: t as u8 });
            }
        }
        for (w, slot) in s.workers.iter().enumerate() {
            let w8 = w as u8;
            match slot {
                None => {
                    if !s.pending.is_empty() && !s.draining {
                        acts.push(SchedAction::Dispatch { worker: w8 });
                    }
                }
                Some(_) => {
                    acts.push(SchedAction::Complete { worker: w8 });
                    acts.push(SchedAction::Fail { worker: w8 });
                    acts.push(SchedAction::Kill { worker: w8 });
                    if s.draining {
                        acts.push(SchedAction::DrainPark { worker: w8 });
                    }
                }
            }
        }
        if !s.draining {
            acts.push(SchedAction::Drain);
        }
        acts
    }

    fn apply(&self, s: &SchedState, a: &SchedAction) -> SchedState {
        let mut t = s.clone();
        match *a {
            SchedAction::Submit { tenant } => {
                let tenant = tenant as usize;
                let id = (0..self.jobs_per_tenant)
                    .map(|j| tenant * self.jobs_per_tenant + j)
                    .find(|&id| t.jobs[id] == JobSt::NotSubmitted)
                    .expect("submit enabled only with a job left");
                let active = t
                    .jobs
                    .iter()
                    .enumerate()
                    .filter(|(j, st)| self.tenant_of(*j) == tenant && st.active())
                    .count();
                let ns_taken = t
                    .jobs
                    .iter()
                    .enumerate()
                    .any(|(j, st)| st.live() && self.ns_of(j) == self.ns_of(id));
                let over_quota =
                    active >= self.quota && self.mutation != Some(SchedMutation::SkipQuota);
                if t.draining || over_quota || ns_taken {
                    t.jobs[id] = JobSt::Rejected;
                } else {
                    t.jobs[id] = JobSt::Queued;
                    t.pending.push(id as u8);
                }
            }
            SchedAction::Dispatch { worker } => {
                // Mirror of the real `pop_next`: highest priority, then
                // oldest id — NOT queue position. A requeued job keeps
                // its original (older) id, so it outranks later
                // submissions of the same priority even though the
                // requeue pushed it to the back of the queue.
                let best = *t
                    .pending
                    .iter()
                    .max_by_key(|&&id| (self.priority_of(id as usize), std::cmp::Reverse(id)))
                    .expect("dispatch enabled only with pending jobs");
                t.pending.retain(|&id| id != best);
                t.jobs[best as usize] = JobSt::Running(worker);
                t.workers[worker as usize] = Some(best);
            }
            SchedAction::Complete { worker } => {
                let id = t.workers[worker as usize].expect("complete needs a running job");
                t.jobs[id as usize] = JobSt::Done;
                t.workers[worker as usize] = None;
            }
            SchedAction::Fail { worker } => {
                let id = t.workers[worker as usize].expect("fail needs a running job");
                t.jobs[id as usize] = JobSt::Failed;
                t.workers[worker as usize] = None;
            }
            SchedAction::Kill { worker } => {
                let id = t.workers[worker as usize].expect("kill needs a running job");
                t.workers[worker as usize] = None;
                if self.mutation == Some(SchedMutation::ForgetRequeue) {
                    // Bug: the job record still says Running(worker).
                } else {
                    t.jobs[id as usize] = JobSt::Queued;
                    t.pending.push(id);
                }
            }
            SchedAction::Drain => t.draining = true,
            SchedAction::DrainPark { worker } => {
                let id = t.workers[worker as usize].expect("park needs a running job");
                t.jobs[id as usize] = JobSt::Paused;
                t.workers[worker as usize] = None;
            }
        }
        t
    }

    fn invariant(&self, s: &SchedState) -> Result<(), String> {
        // Per-tenant quota over active (queued + running) jobs.
        for t in 0..self.tenants {
            let active = s
                .jobs
                .iter()
                .enumerate()
                .filter(|(j, st)| self.tenant_of(*j) == t && st.active())
                .count();
            if active > self.quota {
                return Err(format!(
                    "tenant {t} has {active} active jobs, quota is {}",
                    self.quota
                ));
            }
        }
        // Namespace uniqueness among live jobs.
        for a in 0..self.njobs() {
            for b in (a + 1)..self.njobs() {
                if s.jobs[a].live() && s.jobs[b].live() && self.ns_of(a) == self.ns_of(b) {
                    return Err(format!(
                        "jobs {a} and {b} are both live under namespace key {}",
                        self.ns_of(a)
                    ));
                }
            }
        }
        // Running ↔ worker bijection: a lost job is a Running record
        // no worker owns.
        for (j, st) in s.jobs.iter().enumerate() {
            if let JobSt::Running(w) = st {
                if s.workers.get(*w as usize).copied().flatten() != Some(j as u8) {
                    return Err(format!(
                        "job {j} is recorded Running on worker {w}, but that worker \
                         is not executing it — the job is lost"
                    ));
                }
            }
        }
        for (w, slot) in s.workers.iter().enumerate() {
            if let Some(id) = slot {
                if s.jobs[*id as usize] != JobSt::Running(w as u8) {
                    return Err(format!(
                        "worker {w} claims job {id}, whose record says {:?}",
                        s.jobs[*id as usize]
                    ));
                }
            }
        }
        // Pending holds exactly the queued jobs, once each.
        for (i, &id) in s.pending.iter().enumerate() {
            if s.jobs[id as usize] != JobSt::Queued {
                return Err(format!(
                    "pending queue holds job {id} in state {:?}",
                    s.jobs[id as usize]
                ));
            }
            if s.pending[i + 1..].contains(&id) {
                return Err(format!("job {id} queued twice"));
            }
        }
        for (j, st) in s.jobs.iter().enumerate() {
            if *st == JobSt::Queued && !s.pending.contains(&(j as u8)) {
                return Err(format!("queued job {j} missing from the pending queue"));
            }
        }
        Ok(())
    }

    fn pid(&self, a: &SchedAction) -> usize {
        match a {
            SchedAction::Submit { tenant } => *tenant as usize,
            SchedAction::Dispatch { worker }
            | SchedAction::Complete { worker }
            | SchedAction::Fail { worker }
            | SchedAction::Kill { worker }
            | SchedAction::DrainPark { worker } => self.tenants + *worker as usize,
            SchedAction::Drain => self.tenants + self.workers,
        }
    }

    fn dependent(&self, a: &SchedAction, b: &SchedAction) -> bool {
        if self.pid(a) == self.pid(b) {
            return true;
        }
        // The drain gates admission and dispatch globally.
        if matches!(a, SchedAction::Drain) || matches!(b, SchedAction::Drain) {
            return true;
        }
        // Actions that reorder or consume the shared pending queue.
        let pending_touch = |x: &SchedAction| {
            matches!(
                x,
                SchedAction::Submit { .. }
                    | SchedAction::Dispatch { .. }
                    | SchedAction::Kill { .. }
            )
        };
        if pending_touch(a) && pending_touch(b) {
            return true;
        }
        // Admission reads quota and namespace liveness over the whole
        // job table, and worker transitions change both — keep every
        // (Submit, worker-action) pair dependent.
        if matches!(a, SchedAction::Submit { .. }) || matches!(b, SchedAction::Submit { .. }) {
            return true;
        }
        // Remaining pairs: Complete/Fail/DrainPark/Dispatch on
        // different workers touch disjoint jobs.
        false
    }

    fn is_fault(&self, a: &SchedAction) -> bool {
        matches!(a, SchedAction::Kill { .. } | SchedAction::Fail { .. })
    }

    fn is_final(&self, s: &SchedState) -> bool {
        let submits_left = s.jobs.contains(&JobSt::NotSubmitted);
        let workers_idle = s.workers.iter().all(Option::is_none);
        let queue_drained = s.pending.is_empty() || s.draining;
        !submits_left && workers_idle && queue_drained
    }

    fn describe(&self, a: &SchedAction) -> String {
        match *a {
            SchedAction::Submit { tenant } => format!("tenant {tenant}: submit next job"),
            SchedAction::Dispatch { worker } => format!("worker {worker}: dispatch best pending"),
            SchedAction::Complete { worker } => format!("worker {worker}: job completes"),
            SchedAction::Fail { worker } => format!("worker {worker}: job FAILS"),
            SchedAction::Kill { worker } => format!("worker {worker}: KILLED mid-job"),
            SchedAction::Drain => "admin: begin graceful drain".into(),
            SchedAction::DrainPark { worker } => {
                format!("worker {worker}: park job at checkpoint boundary")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, Budget, Outcome};

    #[test]
    fn lifecycle_explores_clean_with_kills_and_drain() {
        let m = SchedModel::new(2, 1, 1, 1);
        let out = explore(&m, Budget::with_faults(1));
        assert!(out.is_clean(), "expected clean, got {:?}", out.stats());
    }

    #[test]
    fn quota_and_ns_admission_explore_clean() {
        let m = SchedModel::new(1, 2, 1, 1).with_ns_collision();
        let out = explore(&m, Budget::with_faults(1));
        assert!(out.is_clean(), "expected clean, got {:?}", out.stats());
    }

    #[test]
    fn forget_requeue_mutant_loses_the_job() {
        let m = SchedModel::new(1, 1, 1, 1).mutated(SchedMutation::ForgetRequeue);
        let out = explore(&m, Budget::with_faults(1));
        let Outcome::Violation(ce) = out else {
            panic!("forgetting the requeue must lose the job");
        };
        assert!(ce.message.contains("lost"), "message: {}", ce.message);
        // Minimal: submit, dispatch, kill.
        assert_eq!(ce.schedule.len(), 3, "schedule: {:#?}", ce.schedule);
        assert!(matches!(ce.schedule[2], SchedAction::Kill { .. }));
    }

    #[test]
    fn skip_quota_mutant_over_admits() {
        let m = SchedModel::new(1, 2, 1, 1).mutated(SchedMutation::SkipQuota);
        let out = explore(&m, Budget::with_faults(0));
        let Outcome::Violation(ce) = out else {
            panic!("skipping the quota check must over-admit");
        };
        assert!(
            ce.message.contains("active jobs, quota is"),
            "message: {}",
            ce.message
        );
        // Minimal: two submits back to back.
        assert_eq!(ce.schedule.len(), 2, "schedule: {:#?}", ce.schedule);
    }
}
