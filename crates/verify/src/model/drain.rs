//! Model of the graceful-drain verdict broadcast
//! (`qmc_core::pt::run_pt_parallel_ckpt`'s stop-flag check at sweep
//! boundaries).
//!
//! The real loop: at every sweep boundary rank 0 reads the shared stop
//! flag and broadcasts the verdict; every rank honors the *broadcast*
//! value, never its own read, so either all ranks run the sweep or all
//! stop before it. The environment may raise the flag at any moment —
//! including between two ranks' boundary checks, which is exactly the
//! race a per-rank flag read gets wrong.
//!
//! Invariant: in every reachable state, all ranks that have stopped
//! did so at the same sweep boundary, and no rank finishes the full
//! run while another stopped early.
//!
//! Seeded mutations: [`DrainMutation::LocalFlagRead`] has every rank
//! read the flag itself (no broadcast) — the environment can split
//! the ranks across a boundary; [`DrainMutation::SkipFinalBroadcast`]
//! has rank 0 stop on a raised flag *without* broadcasting the stop
//! verdict — every other rank blocks forever on the verdict receive,
//! a deadlock rendered through the wait-for-cycle reporter.

use crate::checker::WaitEdge;
use crate::explore::Model;

/// Tag used in rendered wait-for edges for the verdict broadcast.
pub const TAG_VERDICT: u32 = 0x20;

/// Seeded protocol bugs (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainMutation {
    /// Each rank consults the stop flag directly instead of the
    /// broadcast verdict.
    LocalFlagRead,
    /// Rank 0 stops on a raised flag without broadcasting the final
    /// stop verdict.
    SkipFinalBroadcast,
}

/// The drain-verdict broadcast protocol model.
#[derive(Debug, Clone, Copy)]
pub struct DrainModel {
    /// Number of ranks (>= 1).
    pub ranks: usize,
    /// Total sweeps in the run (boundaries 0..sweeps are checked).
    pub sweeps: u8,
    /// Optional seeded bug.
    pub mutation: Option<DrainMutation>,
}

impl DrainModel {
    /// Unmutated model.
    pub fn new(ranks: usize, sweeps: u8) -> Self {
        DrainModel {
            ranks,
            sweeps,
            mutation: None,
        }
    }

    /// Same instance with a seeded bug.
    pub fn mutated(mut self, m: DrainMutation) -> Self {
        self.mutation = Some(m);
        self
    }
}

/// Per-rank progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankState {
    /// At the boundary before sweep `.0`.
    Boundary(u8),
    /// Stopped before sweep `.0` (completed `.0` sweeps).
    Stopped(u8),
    /// Ran every sweep to completion.
    Finished,
}

/// Global model state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DrainState {
    flag: bool,
    ranks: Vec<RankState>,
    /// Verdicts in flight to each rank > 0 (FIFO): `(sweep, stop)`.
    verdicts: Vec<Vec<(u8, bool)>>,
}

/// One scheduler choice in the drain protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainAction {
    /// The environment raises the stop flag (a sweep-boundary request
    /// from the operator; at most once).
    RaiseStop,
    /// Rank 0 reads the flag at boundary `sweep` and broadcasts the
    /// verdict.
    CheckFlag {
        /// Boundary being checked.
        sweep: u8,
    },
    /// Rank `rank` receives the next verdict and advances or stops.
    RecvVerdict {
        /// Receiving rank.
        rank: u8,
    },
    /// `LocalFlagRead` mutant only: rank `rank` reads the flag itself
    /// at boundary `sweep`.
    CheckLocal {
        /// Reading rank.
        rank: u8,
        /// Boundary being checked.
        sweep: u8,
    },
}

impl DrainModel {
    fn local_read(&self) -> bool {
        self.mutation == Some(DrainMutation::LocalFlagRead)
    }

    fn advance(&self, at: u8, stop: bool) -> RankState {
        if stop {
            RankState::Stopped(at)
        } else if at + 1 >= self.sweeps {
            RankState::Finished
        } else {
            RankState::Boundary(at + 1)
        }
    }
}

impl Model for DrainModel {
    type State = DrainState;
    type Action = DrainAction;

    fn init(&self) -> DrainState {
        DrainState {
            flag: false,
            ranks: vec![RankState::Boundary(0); self.ranks],
            verdicts: vec![Vec::new(); self.ranks],
        }
    }

    fn actions(&self, s: &DrainState) -> Vec<DrainAction> {
        let mut acts = Vec::new();
        for (r, st) in s.ranks.iter().enumerate() {
            let RankState::Boundary(sweep) = *st else {
                continue;
            };
            if r == 0 || self.local_read() {
                if r == 0 && !self.local_read() {
                    acts.push(DrainAction::CheckFlag { sweep });
                } else {
                    acts.push(DrainAction::CheckLocal {
                        rank: r as u8,
                        sweep,
                    });
                }
            } else if !s.verdicts[r].is_empty() {
                acts.push(DrainAction::RecvVerdict { rank: r as u8 });
            }
            // else: blocked on the verdict broadcast.
        }
        if !s.flag {
            acts.push(DrainAction::RaiseStop);
        }
        acts
    }

    fn apply(&self, s: &DrainState, a: &DrainAction) -> DrainState {
        let mut t = s.clone();
        match *a {
            DrainAction::RaiseStop => t.flag = true,
            DrainAction::CheckFlag { sweep } => {
                let stop = t.flag;
                let broadcast = !(stop && self.mutation == Some(DrainMutation::SkipFinalBroadcast));
                if broadcast {
                    for q in t.verdicts.iter_mut().skip(1) {
                        q.push((sweep, stop));
                    }
                }
                t.ranks[0] = self.advance(sweep, stop);
            }
            DrainAction::RecvVerdict { rank } => {
                let (sweep, stop) = t.verdicts[rank as usize].remove(0);
                t.ranks[rank as usize] = self.advance(sweep, stop);
            }
            DrainAction::CheckLocal { rank, sweep } => {
                let stop = t.flag;
                t.ranks[rank as usize] = self.advance(sweep, stop);
            }
        }
        t
    }

    fn invariant(&self, s: &DrainState) -> Result<(), String> {
        let mut stopped: Option<(usize, u8)> = None;
        let mut finished: Option<usize> = None;
        for (r, st) in s.ranks.iter().enumerate() {
            match *st {
                RankState::Stopped(at) => match stopped {
                    Some((r0, at0)) if at0 != at => {
                        return Err(format!(
                            "rank {r0} stopped at sweep boundary {at0} but rank {r} \
                             stopped at {at}"
                        ));
                    }
                    _ => stopped = Some((r, at)),
                },
                RankState::Finished => finished = Some(r),
                RankState::Boundary(_) => {}
            }
        }
        if let (Some((rs, at)), Some(rf)) = (stopped, finished) {
            return Err(format!(
                "rank {rs} stopped at sweep boundary {at} but rank {rf} ran all \
                 {} sweeps to completion",
                self.sweeps
            ));
        }
        Ok(())
    }

    fn pid(&self, a: &DrainAction) -> usize {
        match a {
            DrainAction::RaiseStop => self.ranks, // environment process
            DrainAction::CheckFlag { .. } => 0,
            DrainAction::RecvVerdict { rank } => *rank as usize,
            DrainAction::CheckLocal { rank, .. } => *rank as usize,
        }
    }

    fn dependent(&self, a: &DrainAction, b: &DrainAction) -> bool {
        if self.pid(a) == self.pid(b) {
            return true;
        }
        let reads_flag = |x: &DrainAction| {
            matches!(
                x,
                DrainAction::RaiseStop
                    | DrainAction::CheckFlag { .. }
                    | DrainAction::CheckLocal { .. }
            )
        };
        if reads_flag(a) && reads_flag(b) {
            return true;
        }
        // CheckFlag broadcasts on every (0, r) channel; RecvVerdict(r)
        // consumes from it.
        let channel = |x: &DrainAction| -> Option<u8> {
            match x {
                DrainAction::RecvVerdict { rank } => Some(*rank),
                _ => None,
            }
        };
        matches!(
            (a, b),
            (DrainAction::CheckFlag { .. }, _) | (_, DrainAction::CheckFlag { .. })
        ) && (channel(a).is_some() || channel(b).is_some())
    }

    fn is_final(&self, s: &DrainState) -> bool {
        // The flag not being raised yet keeps RaiseStop enabled, so a
        // quiescent state always has every rank terminal; both
        // terminal outcomes are legitimate completions.
        s.ranks
            .iter()
            .all(|st| !matches!(st, RankState::Boundary(_)))
    }

    fn wait_edges(&self, s: &DrainState) -> Vec<WaitEdge> {
        s.ranks
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(r, st)| matches!(st, RankState::Boundary(_)) && s.verdicts[*r].is_empty())
            .map(|(r, _)| WaitEdge {
                rank: r,
                src: 0,
                tag: TAG_VERDICT,
            })
            .collect()
    }

    fn describe(&self, a: &DrainAction) -> String {
        match *a {
            DrainAction::RaiseStop => "environment: raise the stop flag".into(),
            DrainAction::CheckFlag { sweep } => {
                format!("rank 0: check flag at boundary {sweep}, broadcast verdict")
            }
            DrainAction::RecvVerdict { rank } => {
                format!("rank {rank}: receive verdict, advance or stop")
            }
            DrainAction::CheckLocal { rank, sweep } => {
                format!("rank {rank}: read flag locally at boundary {sweep}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::Violation;
    use crate::explore::{explore, explore_naive, Budget, Outcome};

    #[test]
    fn broadcast_drain_is_schedule_independent() {
        let m = DrainModel::new(3, 3);
        let out = explore(&m, Budget::with_faults(0));
        assert!(out.is_clean(), "expected clean, got {:?}", out.stats());
    }

    #[test]
    fn local_flag_read_mutant_splits_the_world() {
        let m = DrainModel::new(2, 1).mutated(DrainMutation::LocalFlagRead);
        let out = explore(&m, Budget::with_faults(0));
        let Outcome::Violation(ce) = out else {
            panic!("local flag reads must diverge");
        };
        assert_eq!(ce.schedule.len(), 3, "schedule: {:#?}", ce.schedule);
        assert!(
            ce.message.contains("ran all") || ce.message.contains("stopped at"),
            "message: {}",
            ce.message
        );
    }

    #[test]
    fn skip_final_broadcast_mutant_deadlocks_with_wait_edges() {
        let m = DrainModel::new(3, 2).mutated(DrainMutation::SkipFinalBroadcast);
        let out = explore(&m, Budget::with_faults(0));
        let Outcome::Violation(ce) = out else {
            panic!("skipping the stop broadcast must deadlock the world");
        };
        let Some(Violation::Deadlock { cycle }) = &ce.deadlock else {
            panic!("expected rendered wait-for edges, got {:?}", ce.deadlock);
        };
        assert_eq!(cycle.len(), 2, "ranks 1 and 2 both wait on rank 0");
        assert!(cycle.iter().all(|e| e.src == 0 && e.tag == TAG_VERDICT));
        // Minimal: raise the flag, rank 0 stops silently.
        assert_eq!(ce.schedule.len(), 2, "schedule: {:#?}", ce.schedule);
    }

    #[test]
    fn dpor_agrees_with_naive_and_reduces() {
        let m = DrainModel::new(3, 2);
        let budget = Budget::with_faults(0);
        let d = explore(&m, budget);
        let nv = explore_naive(&m, budget);
        assert!(d.is_clean() && nv.is_clean());
        assert!(
            d.stats().transitions * 2 <= nv.stats().transitions,
            "DPOR {} vs naive {}",
            d.stats().transitions,
            nv.stats().transitions
        );
    }
}
