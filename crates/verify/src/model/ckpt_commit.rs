//! Model of the coordinated checkpoint write/commit protocol
//! (`qmc_ckpt::coord::write_coordinated_sections` plus its callers'
//! commit-ack gate), under crash and write-failure injection.
//!
//! Protocol per round (generation `g = round + 1`):
//!
//! 1. Rank 0 decides full vs delta (`delta = !want_full && a base
//!    generation is committed`) and broadcasts the decision.
//! 2. Every rank receives the decision and sends its section plan
//!    (tagged with the delta flag it believes applies) to rank 0.
//! 3. Rank 0 gathers all plans, persists the archive (which may
//!    *fail*), then broadcasts the commit ack carrying the outcome.
//! 4. Each rank marks its dirty tracking clean and advances its
//!    latest-generation belief **only if the ack says the write
//!    committed** — this is the gate the real callers implement with
//!    `if committed { state.mark_clean() }`.
//!
//! Faults: any rank may crash at any action boundary; a blocked rank
//! whose awaited peer is dead (and the channel drained) aborts —
//! keeping its volatile dirty/latest state but abandoning the round,
//! which models the runtime deadlock-detector unwind.
//!
//! Invariants (checked at every reachable state):
//!
//! * **gate**: a rank that believes itself clean points at a committed
//!   generation, and *any* latest-generation belief names a committed
//!   generation (one-directional: staying dirty after a successful
//!   commit is safe; marking clean after a failed one is a lost
//!   update at restore time).
//! * **decision agreement**: every section plan in flight carries
//!   exactly the delta decision rank 0 broadcast for that round — a
//!   rank substituting its own guess would make rank 0 assemble a
//!   delta archive on a full base or vice versa.
//! * **generation agreement**: ranks that complete the protocol agree
//!   on the latest committed generation.
//!
//! Seeded mutations: [`CkptMutation::SkipAckGate`] marks clean
//! regardless of the ack outcome; [`CkptMutation::LocalDecision`] has
//! ranks guess the delta decision locally instead of using the
//! broadcast value.

use crate::checker::WaitEdge;
use crate::explore::Model;

/// Tag used in rendered wait-for edges for the decision broadcast.
pub const TAG_DECIDE: u32 = 0x10;
/// Tag used in rendered wait-for edges for the plan gather.
pub const TAG_PLAN: u32 = 0x11;
/// Tag used in rendered wait-for edges for the commit-ack broadcast.
pub const TAG_ACK: u32 = 0x12;

/// Seeded protocol bugs (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptMutation {
    /// Mark clean / advance latest regardless of the commit-ack
    /// outcome (drops the `if committed` gate).
    SkipAckGate,
    /// Ranks use a local guess ("delta whenever this is not the first
    /// round") instead of the broadcast decision.
    LocalDecision,
}

/// The coordinated checkpoint-commit protocol model.
#[derive(Debug, Clone, Copy)]
pub struct CkptCommitModel {
    /// Number of ranks (>= 1).
    pub ranks: usize,
    /// Checkpoint rounds to run (generation `round + 1`).
    pub rounds: u8,
    /// A full snapshot every `full_every` rounds (round 0 always
    /// full); mirrors `PtCheckpointing::full_every`.
    pub full_every: u8,
    /// Optional seeded bug.
    pub mutation: Option<CkptMutation>,
}

impl CkptCommitModel {
    /// Unmutated model.
    pub fn new(ranks: usize, rounds: u8, full_every: u8) -> Self {
        CkptCommitModel {
            ranks,
            rounds,
            full_every,
            mutation: None,
        }
    }

    /// Same instance with a seeded bug.
    pub fn mutated(mut self, m: CkptMutation) -> Self {
        self.mutation = Some(m);
        self
    }

    fn want_full(&self, round: u8) -> bool {
        self.full_every <= 1 || round.is_multiple_of(self.full_every)
    }
}

/// In-flight protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Msg {
    /// Rank 0's full-vs-delta decision.
    Decide {
        /// True for a delta archive on the committed base.
        delta: bool,
    },
    /// A rank's section plan for the round.
    Plan {
        /// Round the plan belongs to.
        round: u8,
        /// The delta flag the sender believes applies.
        delta: bool,
    },
    /// Commit acknowledgement.
    Ack {
        /// Did the persist succeed?
        ok: bool,
    },
}

/// Per-rank protocol phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Rank 0: about to decide full vs delta.
    Decide,
    /// Rank 0: gathering section plans.
    WaitPlans,
    /// Rank 0: persisting the archive.
    Persist,
    /// Rank 0: persisted (or failed); ack broadcast pending.
    Commit {
        /// Outcome of the persist.
        ok: bool,
    },
    /// Rank > 0: awaiting the decision broadcast.
    WaitDecide,
    /// Rank > 0: awaiting the commit ack.
    WaitAck,
    /// All rounds completed.
    Done,
    /// Crashed (volatile state lost).
    Crashed,
    /// Unwound after observing a dead peer (volatile state kept).
    Aborted,
}

impl Phase {
    fn terminal(&self) -> bool {
        matches!(self, Phase::Done | Phase::Crashed | Phase::Aborted)
    }
}

/// Global model state: every rank, the network, the persistent store.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CkptState {
    phase: Vec<Phase>,
    round: Vec<u8>,
    dirty: Vec<bool>,
    latest: Vec<Option<u8>>,
    /// Generations present in the (crash-surviving) store, sorted.
    committed: Vec<u8>,
    /// Rank 0's broadcast decision per round (model bookkeeping for
    /// the decision-agreement invariant).
    decision: Vec<Option<bool>>,
    /// Rank 0: which ranks' plans arrived this round.
    plan_got: Vec<bool>,
    /// In-flight messages, FIFO per (src, dst) channel.
    msgs: Vec<(u8, u8, Msg)>,
}

impl CkptState {
    fn head(&self, src: u8, dst: u8) -> Option<&Msg> {
        self.msgs
            .iter()
            .find(|(s, d, _)| *s == src && *d == dst)
            .map(|(_, _, m)| m)
    }

    fn pop(&mut self, src: u8, dst: u8) -> Msg {
        let i = self
            .msgs
            .iter()
            .position(|(s, d, _)| *s == src && *d == dst)
            .expect("recv enabled only with a queued message");
        self.msgs.remove(i).2
    }
}

/// One scheduler choice in the checkpoint-commit protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptAction {
    /// Rank 0 decides and broadcasts full vs delta.
    Decide {
        /// Round being decided.
        round: u8,
        /// The decision taken.
        delta: bool,
    },
    /// Rank 0 receives the section plan from `src`.
    RecvPlan {
        /// Sending rank.
        src: u8,
    },
    /// Rank 0 persists the archive; `ok: false` is an injected write
    /// failure (fault budget).
    Write {
        /// Round being persisted.
        round: u8,
        /// Persist outcome.
        ok: bool,
    },
    /// Rank 0 broadcasts the commit ack and applies its own gate.
    SendAcks {
        /// Round being acknowledged.
        round: u8,
        /// Outcome carried by the ack.
        ok: bool,
    },
    /// Rank `rank` receives the decision and sends its plan.
    RecvDecide {
        /// Receiving rank.
        rank: u8,
    },
    /// Rank `rank` receives the commit ack and applies the gate.
    RecvAck {
        /// Receiving rank.
        rank: u8,
    },
    /// Rank `rank` crashes (fault budget).
    Crash {
        /// Crashing rank.
        rank: u8,
    },
    /// Rank `rank` unwinds after observing a dead peer.
    Abort {
        /// Aborting rank.
        rank: u8,
    },
}

impl CkptAction {
    fn rank(&self) -> u8 {
        match self {
            CkptAction::Decide { .. }
            | CkptAction::RecvPlan { .. }
            | CkptAction::Write { .. }
            | CkptAction::SendAcks { .. } => 0,
            CkptAction::RecvDecide { rank }
            | CkptAction::RecvAck { rank }
            | CkptAction::Crash { rank }
            | CkptAction::Abort { rank } => *rank,
        }
    }

    /// Channels this action sends on or consumes from, for the
    /// dependence relation.
    fn channels(&self, n: u8) -> Vec<(u8, u8)> {
        match self {
            CkptAction::Decide { .. } | CkptAction::SendAcks { .. } => {
                (1..n).map(|r| (0, r)).collect()
            }
            CkptAction::RecvPlan { src } => vec![(*src, 0)],
            CkptAction::RecvDecide { rank } => vec![(0, *rank), (*rank, 0)],
            CkptAction::RecvAck { rank } => vec![(0, *rank)],
            CkptAction::Write { .. } | CkptAction::Crash { .. } | CkptAction::Abort { .. } => {
                Vec::new()
            }
        }
    }

    fn is_fault_like(&self) -> bool {
        matches!(self, CkptAction::Crash { .. } | CkptAction::Abort { .. })
    }
}

impl CkptCommitModel {
    fn gen_of(round: u8) -> u8 {
        round + 1
    }

    /// A peer is "dead" for abort purposes once it can never send
    /// again.
    fn dead(phase: Phase) -> bool {
        matches!(phase, Phase::Crashed | Phase::Aborted)
    }
}

impl Model for CkptCommitModel {
    type State = CkptState;
    type Action = CkptAction;

    fn init(&self) -> CkptState {
        let n = self.ranks;
        CkptState {
            phase: (0..n)
                .map(|r| {
                    if r == 0 {
                        Phase::Decide
                    } else {
                        Phase::WaitDecide
                    }
                })
                .collect(),
            round: vec![0; n],
            dirty: vec![true; n],
            latest: vec![None; n],
            committed: Vec::new(),
            decision: vec![None; self.rounds as usize],
            plan_got: vec![false; n],
            msgs: Vec::new(),
        }
    }

    fn actions(&self, s: &CkptState) -> Vec<CkptAction> {
        let n = self.ranks as u8;
        let mut acts = Vec::new();
        // Rank 0.
        match s.phase[0] {
            Phase::Decide => {
                let k = s.round[0];
                let delta = !self.want_full(k) && !s.committed.is_empty();
                acts.push(CkptAction::Decide { round: k, delta });
            }
            Phase::WaitPlans => {
                let mut peer_dead = false;
                for r in 1..n {
                    if s.plan_got[r as usize] {
                        continue;
                    }
                    if s.head(r, 0).is_some() {
                        acts.push(CkptAction::RecvPlan { src: r });
                    } else if Self::dead(s.phase[r as usize]) {
                        peer_dead = true;
                    }
                }
                if peer_dead {
                    acts.push(CkptAction::Abort { rank: 0 });
                }
            }
            Phase::Persist => {
                let k = s.round[0];
                acts.push(CkptAction::Write { round: k, ok: true });
                acts.push(CkptAction::Write {
                    round: k,
                    ok: false,
                });
            }
            Phase::Commit { ok } => {
                acts.push(CkptAction::SendAcks {
                    round: s.round[0],
                    ok,
                });
            }
            _ => {}
        }
        // Ranks > 0.
        for r in 1..n {
            match s.phase[r as usize] {
                Phase::WaitDecide | Phase::WaitAck => {
                    if s.head(0, r).is_some() {
                        acts.push(if s.phase[r as usize] == Phase::WaitDecide {
                            CkptAction::RecvDecide { rank: r }
                        } else {
                            CkptAction::RecvAck { rank: r }
                        });
                    } else if Self::dead(s.phase[0]) {
                        acts.push(CkptAction::Abort { rank: r });
                    }
                }
                _ => {}
            }
        }
        // Crashes: any live rank, at any boundary.
        for r in 0..n {
            if !s.phase[r as usize].terminal() {
                acts.push(CkptAction::Crash { rank: r });
            }
        }
        acts
    }

    fn apply(&self, s: &CkptState, a: &CkptAction) -> CkptState {
        let n = self.ranks as u8;
        let mut t = s.clone();
        match *a {
            CkptAction::Decide { round, delta } => {
                t.decision[round as usize] = Some(delta);
                // New sweeps ran since the last checkpoint.
                t.dirty[0] = true;
                for r in 1..n {
                    t.msgs.push((0, r, Msg::Decide { delta }));
                }
                t.plan_got = vec![false; self.ranks];
                t.plan_got[0] = true; // rank 0's own plan
                t.phase[0] = if n == 1 {
                    Phase::Persist
                } else {
                    Phase::WaitPlans
                };
            }
            CkptAction::RecvPlan { src } => {
                let m = t.pop(src, 0);
                debug_assert!(matches!(m, Msg::Plan { .. }));
                t.plan_got[src as usize] = true;
                if t.plan_got.iter().all(|&g| g) {
                    t.phase[0] = Phase::Persist;
                }
            }
            CkptAction::Write { round, ok } => {
                if ok {
                    t.committed.push(Self::gen_of(round));
                    t.committed.sort_unstable();
                }
                t.phase[0] = Phase::Commit { ok };
            }
            CkptAction::SendAcks { round, ok } => {
                for r in 1..n {
                    t.msgs.push((0, r, Msg::Ack { ok }));
                }
                if ok || self.mutation == Some(CkptMutation::SkipAckGate) {
                    t.dirty[0] = false;
                    t.latest[0] = Some(Self::gen_of(round));
                }
                t.round[0] = round + 1;
                t.phase[0] = if t.round[0] == self.rounds {
                    Phase::Done
                } else {
                    Phase::Decide
                };
            }
            CkptAction::RecvDecide { rank } => {
                let Msg::Decide { delta } = t.pop(0, rank) else {
                    // FIFO heads always match the phase under this
                    // protocol; a mismatch means the model drifted.
                    panic!("rank {rank} expected Decide at head");
                };
                t.dirty[rank as usize] = true;
                let sent = if self.mutation == Some(CkptMutation::LocalDecision) {
                    t.round[rank as usize] > 0
                } else {
                    delta
                };
                t.msgs.push((
                    rank,
                    0,
                    Msg::Plan {
                        round: t.round[rank as usize],
                        delta: sent,
                    },
                ));
                t.phase[rank as usize] = Phase::WaitAck;
            }
            CkptAction::RecvAck { rank } => {
                let Msg::Ack { ok } = t.pop(0, rank) else {
                    panic!("rank {rank} expected Ack at head");
                };
                let k = t.round[rank as usize];
                if ok || self.mutation == Some(CkptMutation::SkipAckGate) {
                    t.dirty[rank as usize] = false;
                    t.latest[rank as usize] = Some(Self::gen_of(k));
                }
                t.round[rank as usize] = k + 1;
                t.phase[rank as usize] = if k + 1 == self.rounds {
                    Phase::Done
                } else {
                    Phase::WaitDecide
                };
            }
            CkptAction::Crash { rank } => {
                t.phase[rank as usize] = Phase::Crashed;
            }
            CkptAction::Abort { rank } => {
                t.phase[rank as usize] = Phase::Aborted;
            }
        }
        t
    }

    fn invariant(&self, s: &CkptState) -> Result<(), String> {
        // Gate: clean implies committed; latest beliefs name committed
        // generations. Crashed ranks lost their volatile state.
        for r in 0..self.ranks {
            if s.phase[r] == Phase::Crashed {
                continue;
            }
            if let Some(g) = s.latest[r] {
                if !s.committed.contains(&g) {
                    return Err(format!(
                        "rank {r} believes generation {g} is committed but the store \
                         only holds {:?}",
                        s.committed
                    ));
                }
            }
            if !s.dirty[r] && s.latest[r].is_none() {
                return Err(format!(
                    "rank {r} is marked clean without any committed generation"
                ));
            }
        }
        // Decision agreement: every plan in flight matches rank 0's
        // broadcast decision for its round.
        for (_, _, m) in &s.msgs {
            if let Msg::Plan { round, delta } = m {
                match s.decision.get(*round as usize).copied().flatten() {
                    Some(d) if d == *delta => {}
                    Some(d) => {
                        return Err(format!(
                            "round {round}: a rank planned {} but rank 0 decided {}",
                            flavor(*delta),
                            flavor(d)
                        ));
                    }
                    None => {
                        return Err(format!("round {round}: plan in flight before any decision"));
                    }
                }
            }
        }
        // Generation agreement among completed ranks.
        let done: Vec<(usize, Option<u8>)> = (0..self.ranks)
            .filter(|&r| s.phase[r] == Phase::Done)
            .map(|r| (r, s.latest[r]))
            .collect();
        if let Some(((r0, g0), rest)) = done.split_first().map(|(f, r)| (*f, r)) {
            for &(r, g) in rest {
                if g != g0 {
                    return Err(format!(
                        "ranks {r0} and {r} completed with different latest \
                         generations ({g0:?} vs {g:?})"
                    ));
                }
            }
        }
        Ok(())
    }

    fn pid(&self, a: &CkptAction) -> usize {
        a.rank() as usize
    }

    fn dependent(&self, a: &CkptAction, b: &CkptAction) -> bool {
        if self.pid(a) == self.pid(b) {
            return true;
        }
        // Crashes and aborts interact with everyone's enabledness.
        if a.is_fault_like() || b.is_fault_like() {
            return true;
        }
        let n = self.ranks as u8;
        let ca = a.channels(n);
        b.channels(n).iter().any(|c| ca.contains(c))
    }

    fn is_fault(&self, a: &CkptAction) -> bool {
        matches!(a, CkptAction::Crash { .. }) || matches!(a, CkptAction::Write { ok: false, .. })
    }

    fn is_final(&self, s: &CkptState) -> bool {
        s.phase.iter().all(Phase::terminal)
    }

    fn wait_edges(&self, s: &CkptState) -> Vec<WaitEdge> {
        let mut edges = Vec::new();
        for r in 0..self.ranks {
            match s.phase[r] {
                Phase::WaitDecide => edges.push(WaitEdge {
                    rank: r,
                    src: 0,
                    tag: TAG_DECIDE,
                }),
                Phase::WaitAck => edges.push(WaitEdge {
                    rank: r,
                    src: 0,
                    tag: TAG_ACK,
                }),
                Phase::WaitPlans => {
                    for p in 1..self.ranks {
                        if !s.plan_got[p] {
                            edges.push(WaitEdge {
                                rank: 0,
                                src: p,
                                tag: TAG_PLAN,
                            });
                        }
                    }
                }
                _ => {}
            }
        }
        edges
    }

    fn describe(&self, a: &CkptAction) -> String {
        match *a {
            CkptAction::Decide { round, delta } => format!(
                "rank 0: decide gen {} is {} and broadcast",
                CkptCommitModel::gen_of(round),
                flavor(delta)
            ),
            CkptAction::RecvPlan { src } => format!("rank 0: receive section plan from rank {src}"),
            CkptAction::Write { round, ok } => format!(
                "rank 0: persist gen {} archive -> {}",
                CkptCommitModel::gen_of(round),
                if ok { "ok" } else { "WRITE FAILS" }
            ),
            CkptAction::SendAcks { round, ok } => format!(
                "rank 0: broadcast commit ack (gen {}, committed={ok}) and apply gate",
                CkptCommitModel::gen_of(round)
            ),
            CkptAction::RecvDecide { rank } => {
                format!("rank {rank}: receive decision, send section plan")
            }
            CkptAction::RecvAck { rank } => format!("rank {rank}: receive commit ack, apply gate"),
            CkptAction::Crash { rank } => format!("rank {rank}: CRASH"),
            CkptAction::Abort { rank } => format!("rank {rank}: abort (peer dead)"),
        }
    }
}

fn flavor(delta: bool) -> &'static str {
    if delta {
        "delta"
    } else {
        "full"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, explore_naive, Budget, Outcome};

    #[test]
    fn clean_protocol_explores_clean_without_faults() {
        let m = CkptCommitModel::new(3, 2, 2);
        let out = explore(&m, Budget::with_faults(0));
        assert!(out.is_clean(), "expected clean, got {:?}", out.stats());
    }

    #[test]
    fn clean_protocol_survives_crash_and_write_failure_injection() {
        let m = CkptCommitModel::new(3, 2, 2);
        let out = explore(&m, Budget::with_faults(1));
        assert!(
            out.is_clean(),
            "crash/write-fault at any step must not break the gate"
        );
    }

    #[test]
    fn skip_ack_gate_mutant_is_caught_and_minimized() {
        let m = CkptCommitModel::new(2, 1, 1).mutated(CkptMutation::SkipAckGate);
        let out = explore(&m, Budget::with_faults(1));
        let Outcome::Violation(ce) = out else {
            panic!("mutant must violate the gate invariant");
        };
        assert!(
            ce.message.contains("believes generation"),
            "message: {}",
            ce.message
        );
        // Minimal run: decide, rank 1 plans, plan received, write
        // fails, acks broadcast (mutant cleans rank 0 anyway).
        assert_eq!(ce.schedule.len(), 5, "schedule: {:#?}", ce.schedule);
        assert!(matches!(
            ce.schedule[3],
            CkptAction::Write { ok: false, .. }
        ));
    }

    #[test]
    fn local_decision_mutant_is_caught() {
        // full_every = 1 => every round full; the mutant guesses
        // "delta after round 0" and diverges at round 1.
        let m = CkptCommitModel::new(2, 2, 1).mutated(CkptMutation::LocalDecision);
        let out = explore(&m, Budget::with_faults(0));
        let Outcome::Violation(ce) = out else {
            panic!("mutant must violate decision agreement");
        };
        assert!(
            ce.message.contains("planned delta but rank 0 decided full"),
            "message: {}",
            ce.message
        );
        // The unmutated protocol on the same instance is clean.
        let clean = CkptCommitModel::new(2, 2, 1);
        assert!(explore(&clean, Budget::with_faults(0)).is_clean());
    }

    #[test]
    fn dpor_agrees_with_naive_on_small_instance() {
        // Crash actions are conservatively dependent with everything,
        // so the reduction shows on the crash-free instance where the
        // per-rank deliveries genuinely commute.
        let small = CkptCommitModel::new(3, 1, 1);
        let budget = Budget::with_faults(0);
        let d = explore(&small, budget);
        let nv = explore_naive(&small, budget);
        assert!(d.is_clean() && nv.is_clean());
        assert!(
            d.stats().transitions * 2 <= nv.stats().transitions,
            "DPOR {} vs naive {}",
            d.stats().transitions,
            nv.stats().transitions
        );
    }
}
