//! Exhaustive state-space exploration with dynamic partial-order
//! reduction (DPOR).
//!
//! The trace checker in [`crate::checker`] verifies *one* recorded
//! schedule; it is sound for deadlock-freedom only because buffered
//! sends make the greedy replay confluent. The coordination protocols
//! layered on the comm substrate (coordinated checkpoint commit, the
//! drain-verdict broadcast, the qmc-serve scheduler lifecycle) make
//! control decisions from message *contents* and from crash timing, so
//! one schedule proves nothing about the rest. This module explores
//! **every distinguishable interleaving** of a protocol expressed as a
//! pure state machine:
//!
//! * A [`Model`] supplies the initial state, the enabled actions of a
//!   state, a deterministic transition function, a safety invariant
//!   checked at every reached state, and a *dependence* relation over
//!   actions (an over-approximation: independent actions commute from
//!   every state in which both are enabled).
//! * [`explore`] runs a depth-first search with **sleep sets** plus the
//!   classic Flanagan–Godefroid **dynamic partial-order reduction**:
//!   after executing action `a`, the deepest earlier transition
//!   dependent on `a` (by a different process) gains a backtrack point,
//!   so every Mazurkiewicz trace (equivalence class of schedules) is
//!   visited at least once while most commuting permutations are
//!   skipped. Soundness needs `dependent` to over-approximate — when
//!   unsure, return `true`; the penalty is extra states, never a missed
//!   violation.
//! * [`explore_naive`] is the same engine with reduction disabled —
//!   every enabled action at every node — used as the ground-truth
//!   baseline: on a small instance both must return the same verdict,
//!   and the transition-count ratio is the reduction factor recorded in
//!   `VERIFY_explore.json`.
//! * Faults (crashes, write failures, worker kills) are ordinary
//!   actions flagged by [`Model::is_fault`]; the explorer enforces
//!   [`Budget::max_faults`] per execution, so "crash at any step, up to
//!   k crashes" is part of the explored space rather than a hand-picked
//!   scenario.
//! * A violation (invariant failure, or a quiescent state that is not
//!   [`Model::is_final`] — a deadlock) is **minimized**: a breadth-first
//!   search bounded by the depth of the DFS-found schedule returns a
//!   globally shortest violating schedule. Deadlocks additionally
//!   render through the existing wait-for-cycle machinery
//!   ([`crate::Violation::Deadlock`]) via [`Model::wait_edges`].
//!
//! Budgets make exploration a committed gate rather than an unbounded
//! search: [`Budget::max_transitions`] bounds total work (exceeding it
//! is a *failure* — a state-space blowup regression), `max_depth` is a
//! safety net against accidentally cyclic models, and `max_faults`
//! bounds the crash dimension.

use crate::checker::Violation;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;

/// A protocol expressed as a pure, deterministic state machine over
/// explicit scheduler choices.
///
/// Determinism contract: `apply(s, a)` must depend only on `(s, a)` —
/// all nondeterminism (delivery order, crash timing, environment
/// choices) must be reified as distinct actions. `actions(s)` must
/// return a deterministic ordering for reproducible exploration.
pub trait Model {
    /// Global protocol state (all ranks + network + persistent store).
    type State: Clone + Eq + Hash;
    /// One scheduler choice: deliver a message, step a rank, crash...
    type Action: Clone + Eq + fmt::Debug;

    /// The initial state.
    fn init(&self) -> Self::State;
    /// All actions enabled in `s`, in deterministic order.
    fn actions(&self, s: &Self::State) -> Vec<Self::Action>;
    /// Deterministic transition function.
    fn apply(&self, s: &Self::State, a: &Self::Action) -> Self::State;
    /// Safety invariant, checked at every reached state; `Err` is the
    /// human-readable violation description.
    fn invariant(&self, s: &Self::State) -> Result<(), String>;
    /// The process (rank / worker / environment) an action belongs to.
    /// Actions of the same process are always dependent (program
    /// order).
    fn pid(&self, a: &Self::Action) -> usize;
    /// Dependence over-approximation: MUST return `true` whenever the
    /// two actions might not commute (touch the same channel, the same
    /// shared cell, or belong to the same process). Returning `true`
    /// spuriously only costs states; returning `false` spuriously
    /// loses soundness.
    fn dependent(&self, a: &Self::Action, b: &Self::Action) -> bool;
    /// Is this a fault injection (crash, kill, write failure)? Fault
    /// actions are limited per execution by [`Budget::max_faults`].
    fn is_fault(&self, _a: &Self::Action) -> bool {
        false
    }
    /// Is a quiescent (no enabled actions) state an expected
    /// completion? A quiescent non-final state is reported as a
    /// deadlock.
    fn is_final(&self, s: &Self::State) -> bool;
    /// Wait-for edges of a deadlocked state, rendered through the trace
    /// checker's cycle reporter. Empty means "no cycle structure to
    /// show" and only the textual description is used.
    fn wait_edges(&self, _s: &Self::State) -> Vec<crate::checker::WaitEdge> {
        Vec::new()
    }
    /// Human-readable rendering of an action for counterexample
    /// schedules.
    fn describe(&self, a: &Self::Action) -> String {
        format!("{a:?}")
    }
}

/// Exploration budget. Exceeding any bound aborts with
/// [`Outcome::BudgetExceeded`] — in the gate that is a *failure*
/// (state-space blowup), not a pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum schedule length (safety net against cyclic models).
    pub max_depth: usize,
    /// Maximum fault actions per execution.
    pub max_faults: usize,
    /// Maximum total transitions executed across the whole search.
    pub max_transitions: u64,
}

impl Budget {
    /// Budget with `max_faults` crashes and generous default ceilings.
    pub fn with_faults(max_faults: usize) -> Self {
        Budget {
            max_depth: 256,
            max_faults,
            max_transitions: 2_000_000,
        }
    }
}

/// Search statistics, reported for both clean and violating outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Transitions executed (the work measure; the DPOR/naive ratio of
    /// this number is the reduction factor).
    pub transitions: u64,
    /// Distinct states reached (informational).
    pub unique_states: u64,
    /// Maximal executions completed (leaves of the search tree).
    pub executions: u64,
    /// Deepest schedule reached.
    pub max_depth: usize,
    /// Executions pruned by sleep sets (redundant-interleaving skips).
    pub sleep_skips: u64,
}

/// A violating schedule, minimized to globally shortest length.
#[derive(Debug, Clone)]
pub struct CounterExample<A> {
    /// The minimized schedule of actions from the initial state.
    pub schedule: Vec<A>,
    /// [`Model::describe`] rendering of each schedule step.
    pub rendered: Vec<String>,
    /// The invariant failure message, or the deadlock description.
    pub message: String,
    /// For deadlocks with cycle structure: the wait-for cycle rendered
    /// through the trace checker's canonical reporter.
    pub deadlock: Option<Violation>,
    /// Statistics of the search that found it.
    pub stats: ExploreStats,
}

impl<A> CounterExample<A> {
    /// Multi-line rendering: numbered schedule, then the violation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, line) in self.rendered.iter().enumerate() {
            out.push_str(&format!("  step {:>2}: {line}\n", i + 1));
        }
        out.push_str(&format!("  => {}", self.message));
        if let Some(d) = &self.deadlock {
            out.push_str(&format!("\n  => {d}"));
        }
        out
    }
}

/// Result of an exploration.
#[derive(Debug, Clone)]
pub enum Outcome<A> {
    /// Every reachable state within budget satisfies the invariant and
    /// every quiescent state is final.
    Clean(ExploreStats),
    /// A reachable state violates the invariant or deadlocks; carries
    /// the minimized schedule.
    Violation(Box<CounterExample<A>>),
    /// The search exceeded [`Budget::max_transitions`] or
    /// [`Budget::max_depth`] — treat as a gate failure.
    BudgetExceeded(ExploreStats),
}

impl<A> Outcome<A> {
    /// Statistics regardless of verdict.
    pub fn stats(&self) -> ExploreStats {
        match self {
            Outcome::Clean(s) | Outcome::BudgetExceeded(s) => *s,
            Outcome::Violation(ce) => ce.stats,
        }
    }

    /// True iff the model explored clean within budget.
    pub fn is_clean(&self) -> bool {
        matches!(self, Outcome::Clean(_))
    }
}

/// Explore with sleep sets + dynamic partial-order reduction.
pub fn explore<M: Model>(model: &M, budget: Budget) -> Outcome<M::Action> {
    explore_inner(model, budget, true)
}

/// Explore every interleaving with no reduction (ground-truth
/// baseline; use only on small instances).
pub fn explore_naive<M: Model>(model: &M, budget: Budget) -> Outcome<M::Action> {
    explore_inner(model, budget, false)
}

/// One node of the DFS stack.
///
/// Backtrack sets range over *pids*, not actions: DPOR prunes
/// scheduling choices (which process moves next), but a process may
/// have several enabled actions (branching nondeterminism — crash vs
/// step, write success vs failure). When a pid is scheduled, every one
/// of its enabled actions is explored; only the choice *between pids*
/// is reduced. Sleep sets still operate on individual actions.
struct Frame<S, A> {
    state: S,
    enabled: Vec<A>,
    /// Distinct pids of `enabled`, in first-occurrence order.
    pids: Vec<usize>,
    /// Parallel to `pids`: explore this pid's actions from this node?
    backtrack: Vec<bool>,
    /// Parallel to `enabled`: action already explored (or slept) here.
    action_done: Vec<bool>,
    sleep: Vec<A>,
    /// Index into `enabled` of the action taken to reach the child.
    chosen: Option<usize>,
    faults_used: usize,
}

impl<S, A> Frame<S, A> {
    fn chosen_action(&self) -> Option<&A> {
        self.chosen.map(|i| &self.enabled[i])
    }
}

fn distinct_pids<M: Model>(model: &M, enabled: &[M::Action]) -> Vec<usize> {
    let mut pids = Vec::new();
    for a in enabled {
        let p = model.pid(a);
        if !pids.contains(&p) {
            pids.push(p);
        }
    }
    pids
}

/// Enabled actions of `s`, with fault actions removed once the fault
/// budget is spent.
fn enabled_within<M: Model>(
    model: &M,
    s: &M::State,
    faults_used: usize,
    budget: &Budget,
) -> Vec<M::Action> {
    let mut acts = model.actions(s);
    if faults_used >= budget.max_faults {
        acts.retain(|a| !model.is_fault(a));
    }
    acts
}

fn violation_of<M: Model>(model: &M, s: &M::State) -> Option<String> {
    model.invariant(s).err()
}

/// Build the (not yet minimized) counterexample for the schedule on the
/// DFS stack plus the violating state's description, then minimize.
fn finish_violation<M: Model>(
    model: &M,
    budget: &Budget,
    stack: &[Frame<M::State, M::Action>],
    bad_state: &M::State,
    message: String,
    deadlocked: bool,
    stats: ExploreStats,
) -> Outcome<M::Action> {
    // Every frame's `chosen` action, root to top, is the violating
    // schedule (the just-executed action is the top frame's `chosen`).
    let schedule: Vec<M::Action> = stack
        .iter()
        .filter_map(|f| f.chosen.map(|i| f.enabled[i].clone()))
        .collect();
    let (schedule, final_state) = minimize(model, budget, schedule, bad_state);
    let deadlock = if deadlocked {
        let edges = model.wait_edges(&final_state);
        if edges.is_empty() {
            None
        } else {
            Some(Violation::Deadlock { cycle: edges })
        }
    } else {
        None
    };
    let rendered = schedule.iter().map(|a| model.describe(a)).collect();
    Outcome::Violation(Box::new(CounterExample {
        schedule,
        rendered,
        message,
        deadlock,
        stats,
    }))
}

/// BFS from the initial state for the shortest schedule reaching *any*
/// violating state, bounded by the DFS-found schedule's length. Returns
/// the found schedule and its end state (falls back to the DFS schedule
/// when the BFS re-search exceeds the transition budget).
fn minimize<M: Model>(
    model: &M,
    budget: &Budget,
    fallback: Vec<M::Action>,
    fallback_state: &M::State,
) -> (Vec<M::Action>, M::State) {
    let bound = fallback.len();
    let init = model.init();
    // Node identity includes the fault count: two paths to the same
    // state with different fault spend differ in future enabledness.
    type Parent<M> = HashMap<
        (<M as Model>::State, usize),
        Option<((<M as Model>::State, usize), <M as Model>::Action)>,
    >;
    let mut parent: Parent<M> = HashMap::new();
    parent.insert((init.clone(), 0), None);
    let mut queue: VecDeque<((M::State, usize), usize)> = VecDeque::new();
    queue.push_back(((init, 0), 0));
    let mut work: u64 = 0;
    while let Some((node, depth)) = queue.pop_front() {
        let (state, faults) = &node;
        let enabled = enabled_within(model, state, *faults, budget);
        let bad = violation_of(model, state)
            .is_some()
            .then_some(())
            .or_else(|| (enabled.is_empty() && !model.is_final(state)).then_some(()));
        if bad.is_some() {
            // Reconstruct the schedule back to the root.
            let mut sched = Vec::new();
            let mut cur = node.clone();
            while let Some(Some((prev, act))) = parent.get(&cur) {
                sched.push(act.clone());
                cur = prev.clone();
            }
            sched.reverse();
            return (sched, node.0);
        }
        if depth >= bound {
            continue;
        }
        for a in enabled {
            work += 1;
            if work > budget.max_transitions {
                return (fallback, fallback_state.clone());
            }
            let next = model.apply(state, &a);
            let nf = faults + usize::from(model.is_fault(&a));
            if let Entry::Vacant(e) = parent.entry((next.clone(), nf)) {
                e.insert(Some((node.clone(), a)));
                queue.push_back(((next, nf), depth + 1));
            }
        }
    }
    // No violation found within the bound (should not happen: the DFS
    // witnessed one at depth `bound`); keep the DFS schedule.
    (fallback, fallback_state.clone())
}

fn explore_inner<M: Model>(model: &M, budget: Budget, reduce: bool) -> Outcome<M::Action> {
    let mut stats = ExploreStats::default();
    let mut seen: HashSet<M::State> = HashSet::new();

    let init = model.init();
    seen.insert(init.clone());
    stats.unique_states = 1;
    if let Some(msg) = violation_of(model, &init) {
        return finish_violation(model, &budget, &[], &init, msg, false, stats);
    }
    let enabled = enabled_within(model, &init, 0, &budget);
    if enabled.is_empty() {
        if !model.is_final(&init) {
            return finish_violation(
                model,
                &budget,
                &[],
                &init,
                "deadlock: initial state is quiescent but not final".into(),
                true,
                stats,
            );
        }
        stats.executions = 1;
        return Outcome::Clean(stats);
    }
    let pids = distinct_pids(model, &enabled);
    let mut root = Frame {
        state: init,
        backtrack: vec![!reduce; pids.len()],
        action_done: vec![false; enabled.len()],
        pids,
        sleep: Vec::new(),
        enabled,
        chosen: None,
        faults_used: 0,
    };
    if reduce {
        root.backtrack[0] = true;
    }
    let mut stack: Vec<Frame<M::State, M::Action>> = vec![root];

    while let Some(top_idx) = stack.len().checked_sub(1) {
        // Select the next action at the top frame: the first
        // not-yet-done action of any backtracked pid, skipping (and
        // counting) sleep-set members.
        let mut pick: Option<usize> = None;
        {
            let top = &mut stack[top_idx];
            'scan: for i in 0..top.enabled.len() {
                if top.action_done[i] {
                    continue;
                }
                let p = model.pid(&top.enabled[i]);
                let pi = top
                    .pids
                    .iter()
                    .position(|&q| q == p)
                    .expect("pid indexed at frame creation");
                if !top.backtrack[pi] {
                    continue;
                }
                if top.sleep.contains(&top.enabled[i]) {
                    top.action_done[i] = true;
                    stats.sleep_skips += 1;
                    continue 'scan;
                }
                pick = Some(i);
                break;
            }
        }
        let Some(i) = pick else {
            stack.pop();
            continue;
        };

        let (action, state, faults_used) = {
            let top = &mut stack[top_idx];
            top.action_done[i] = true;
            top.chosen = Some(i);
            (top.enabled[i].clone(), top.state.clone(), top.faults_used)
        };

        stats.transitions += 1;
        if stats.transitions > budget.max_transitions {
            return Outcome::BudgetExceeded(stats);
        }

        if reduce {
            // DPOR backtrack-point insertion: the deepest earlier
            // transition by a different process that `action` depends
            // on is a race; re-explore that node with `action`'s
            // process scheduled first.
            for j in (0..top_idx).rev() {
                let fj = &stack[j];
                let Some(c) = fj.chosen_action() else {
                    continue;
                };
                if model.pid(c) != model.pid(&action) && model.dependent(c, &action) {
                    let p = model.pid(&action);
                    let fj = &mut stack[j];
                    if let Some(pi) = fj.pids.iter().position(|&q| q == p) {
                        fj.backtrack[pi] = true;
                    } else {
                        for b in fj.backtrack.iter_mut() {
                            *b = true;
                        }
                    }
                    break;
                }
            }
        }

        let next = model.apply(&state, &action);
        let depth = stack.len();
        stats.max_depth = stats.max_depth.max(depth);
        if seen.insert(next.clone()) {
            stats.unique_states += 1;
        }
        if let Some(msg) = violation_of(model, &next) {
            return finish_violation(model, &budget, &stack, &next, msg, false, stats);
        }
        if depth >= budget.max_depth {
            return Outcome::BudgetExceeded(stats);
        }

        let next_faults = faults_used + usize::from(model.is_fault(&action));
        let child_enabled = enabled_within(model, &next, next_faults, &budget);
        if child_enabled.is_empty() {
            stats.executions += 1;
            if !model.is_final(&next) {
                let msg = "deadlock: quiescent state is not a completed protocol run".to_string();
                return finish_violation(model, &budget, &stack, &next, msg, true, stats);
            }
            continue;
        }

        // Child sleep set: completed siblings at this node join the
        // inherited set; keep only members independent of `action`.
        let child_sleep: Vec<M::Action> = if reduce {
            let top = &stack[top_idx];
            top.sleep
                .iter()
                .chain(
                    top.enabled
                        .iter()
                        .enumerate()
                        .filter(|&(k, _)| k != i && top.action_done[k])
                        .map(|(_, a)| a),
                )
                .filter(|x| !model.dependent(x, &action))
                .cloned()
                .collect()
        } else {
            Vec::new()
        };

        let child_pids = distinct_pids(model, &child_enabled);
        let mut child = Frame {
            state: next,
            backtrack: vec![!reduce; child_pids.len()],
            action_done: vec![false; child_enabled.len()],
            pids: child_pids,
            sleep: child_sleep,
            enabled: child_enabled,
            chosen: None,
            faults_used: next_faults,
        };
        if reduce {
            // Seed the pid of the first non-sleeping action; if every
            // enabled action is asleep this subtree is redundant and
            // pops immediately.
            if let Some(a) = child.enabled.iter().find(|a| !child.sleep.contains(*a)) {
                let p = model.pid(a);
                if let Some(pi) = child.pids.iter().position(|&q| q == p) {
                    child.backtrack[pi] = true;
                }
            }
        }
        stack.push(child);
    }

    Outcome::Clean(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::WaitEdge;

    /// N independent counters, each incremented to `limit` — every pair
    /// of actions from different pids is independent, so DPOR should
    /// explore essentially one interleaving while naive explores the
    /// full multinomial.
    struct Counters {
        n: usize,
        limit: u8,
    }

    impl Model for Counters {
        type State = Vec<u8>;
        type Action = usize; // pid to increment

        fn init(&self) -> Vec<u8> {
            vec![0; self.n]
        }
        fn actions(&self, s: &Vec<u8>) -> Vec<usize> {
            (0..self.n).filter(|&i| s[i] < self.limit).collect()
        }
        fn apply(&self, s: &Vec<u8>, a: &usize) -> Vec<u8> {
            let mut t = s.clone();
            t[*a] += 1;
            t
        }
        fn invariant(&self, _s: &Vec<u8>) -> Result<(), String> {
            Ok(())
        }
        fn pid(&self, a: &usize) -> usize {
            *a
        }
        fn dependent(&self, a: &usize, b: &usize) -> bool {
            a == b
        }
        fn is_final(&self, s: &Vec<u8>) -> bool {
            s.iter().all(|&c| c == self.limit)
        }
    }

    #[test]
    fn independent_counters_reduce_to_linear_work() {
        let m = Counters { n: 3, limit: 2 };
        let budget = Budget::with_faults(0);
        let dpor = explore(&m, budget);
        let naive = explore_naive(&m, budget);
        assert!(dpor.is_clean() && naive.is_clean());
        // Naive explores 6!/(2!2!2!) = 90 executions; DPOR needs one.
        assert_eq!(naive.stats().executions, 90);
        assert_eq!(dpor.stats().executions, 1);
        assert!(dpor.stats().transitions < naive.stats().transitions / 10);
    }

    /// Two processes racing on one shared cell; invariant forbids the
    /// value produced by one specific order.
    struct Race;

    impl Model for Race {
        // (cell, p0_done, p1_done)
        type State = (u8, bool, bool);
        type Action = u8; // 0: cell = 1; 1: cell *= 2

        fn init(&self) -> Self::State {
            (0, false, false)
        }
        fn actions(&self, s: &Self::State) -> Vec<u8> {
            let mut v = Vec::new();
            if !s.1 {
                v.push(0);
            }
            if !s.2 {
                v.push(1);
            }
            v
        }
        fn apply(&self, s: &Self::State, a: &u8) -> Self::State {
            let mut t = *s;
            if *a == 0 {
                t.0 = 1;
                t.1 = true;
            } else {
                t.0 *= 2;
                t.2 = true;
            }
            t
        }
        fn invariant(&self, s: &Self::State) -> Result<(), String> {
            // cell == 2 only arises from the order (write 1, double).
            if s.0 == 2 {
                Err("cell reached 2 via write-then-double".into())
            } else {
                Ok(())
            }
        }
        fn pid(&self, a: &u8) -> usize {
            *a as usize
        }
        fn dependent(&self, _a: &u8, _b: &u8) -> bool {
            true // both touch the cell
        }
        fn is_final(&self, s: &Self::State) -> bool {
            s.1 && s.2
        }
    }

    #[test]
    fn race_found_and_minimized() {
        let out = explore(&Race, Budget::with_faults(0));
        let Outcome::Violation(ce) = out else {
            panic!("expected violation, got {:?}", out.stats());
        };
        assert_eq!(ce.schedule, vec![0, 1], "shortest schedule");
        assert!(ce.message.contains("write-then-double"));
    }

    /// A model whose only quiescent state is not final => deadlock,
    /// with wait edges to exercise the cycle renderer.
    struct Stuck;

    impl Model for Stuck {
        type State = u8;
        type Action = u8;

        fn init(&self) -> u8 {
            0
        }
        fn actions(&self, s: &u8) -> Vec<u8> {
            if *s == 0 {
                vec![1]
            } else {
                vec![]
            }
        }
        fn apply(&self, _s: &u8, a: &u8) -> u8 {
            *a
        }
        fn invariant(&self, _s: &u8) -> Result<(), String> {
            Ok(())
        }
        fn pid(&self, _a: &u8) -> usize {
            0
        }
        fn dependent(&self, _a: &u8, _b: &u8) -> bool {
            true
        }
        fn is_final(&self, _s: &u8) -> bool {
            false
        }
        fn wait_edges(&self, _s: &u8) -> Vec<WaitEdge> {
            vec![
                WaitEdge {
                    rank: 0,
                    src: 1,
                    tag: 0x7,
                },
                WaitEdge {
                    rank: 1,
                    src: 0,
                    tag: 0x7,
                },
            ]
        }
    }

    #[test]
    fn deadlock_renders_via_wait_for_cycle() {
        let out = explore(&Stuck, Budget::with_faults(0));
        let Outcome::Violation(ce) = out else {
            panic!("expected deadlock violation");
        };
        let text = ce.render();
        assert!(
            text.contains("rank 0 waits on rank 1 (tag 0x7)"),
            "render: {text}"
        );
        assert!(matches!(ce.deadlock, Some(Violation::Deadlock { .. })));
    }

    /// Fault budget: a crash action is only explored `max_faults`
    /// times per execution.
    struct Crashy;

    impl Model for Crashy {
        // (steps, crashes)
        type State = (u8, u8);
        type Action = bool; // false = step, true = crash

        fn init(&self) -> Self::State {
            (0, 0)
        }
        fn actions(&self, s: &Self::State) -> Vec<bool> {
            if s.0 < 3 {
                vec![false, true]
            } else {
                vec![]
            }
        }
        fn apply(&self, s: &Self::State, a: &bool) -> Self::State {
            if *a {
                (s.0 + 1, s.1 + 1)
            } else {
                (s.0 + 1, s.1)
            }
        }
        fn invariant(&self, s: &Self::State) -> Result<(), String> {
            if s.1 > 1 {
                Err("two crashes in one run".into())
            } else {
                Ok(())
            }
        }
        fn pid(&self, _a: &bool) -> usize {
            0
        }
        fn dependent(&self, _a: &bool, _b: &bool) -> bool {
            true
        }
        fn is_fault(&self, a: &bool) -> bool {
            *a
        }
        fn is_final(&self, s: &Self::State) -> bool {
            s.0 == 3
        }
    }

    #[test]
    fn fault_budget_bounds_crash_dimension() {
        // With max_faults = 1 the two-crash invariant cannot trip.
        assert!(explore(&Crashy, Budget::with_faults(1)).is_clean());
        // With max_faults = 2 it must.
        let out = explore(&Crashy, Budget::with_faults(2));
        let Outcome::Violation(ce) = out else {
            panic!("expected two-crash violation");
        };
        assert_eq!(ce.schedule, vec![true, true], "minimized to two crashes");
    }

    #[test]
    fn transition_budget_reports_blowup() {
        let m = Counters { n: 4, limit: 4 };
        let tight = Budget {
            max_depth: 256,
            max_faults: 0,
            max_transitions: 50,
        };
        assert!(matches!(
            explore_naive(&m, tight),
            Outcome::BudgetExceeded(_)
        ));
    }

    #[test]
    fn dpor_and_naive_agree_on_verdicts() {
        let budget = Budget::with_faults(2);
        assert_eq!(
            explore(&Race, budget).is_clean(),
            explore_naive(&Race, budget).is_clean()
        );
        assert_eq!(
            explore(&Crashy, budget).is_clean(),
            explore_naive(&Crashy, budget).is_clean()
        );
        let m = Counters { n: 2, limit: 3 };
        assert_eq!(
            explore(&m, budget).is_clean(),
            explore_naive(&m, budget).is_clean()
        );
    }
}
