//! Runtime deadlock-detector behaviour tests.
//!
//! The contract: a wait-for cycle among thread-backed ranks is converted
//! into a deterministic panic naming the exact cycle, fast (well under a
//! second, long before any receive timeout), and clean exchange patterns
//! are never disturbed.

use qmc_comm::{run_threads, run_threads_with_timeout, Communicator, ReduceOp};
use std::panic::catch_unwind;
use std::time::{Duration, Instant};

/// Run `f` catching the propagated rank panic; return its message and
/// how long the run took.
fn panic_message_and_elapsed<F>(f: F) -> (String, Duration)
where
    F: FnOnce() + std::panic::UnwindSafe,
{
    let t0 = Instant::now();
    let err = catch_unwind(f).expect_err("run was supposed to deadlock");
    let elapsed = t0.elapsed();
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload should be a string");
    (msg, elapsed)
}

#[test]
fn crossed_recv_two_ranks_reports_exact_cycle_fast() {
    // Both ranks post a receive for the other first: the canonical
    // crossed-recv deadlock. The 30 s receive timeout is deliberately
    // generous — only the detector can fail this fast.
    let (msg, elapsed) = panic_message_and_elapsed(|| {
        run_threads_with_timeout(2, Duration::from_secs(30), |c| {
            let other = 1 - c.rank();
            let got = c.recv_bytes(other, 7);
            c.send_bytes(other, 7, &[c.rank() as u8]);
            got
        });
    });
    assert_eq!(
        msg,
        "deadlock detected: rank 0 waits on rank 1 (tag 0x7) -> \
         rank 1 waits on rank 0 (tag 0x7)"
    );
    assert!(
        elapsed < Duration::from_secs(1),
        "detection took {elapsed:?}, budget is < 1s"
    );
}

#[test]
fn three_rank_cycle_reports_all_edges() {
    // 0 waits on 2, 1 waits on 0, 2 waits on 1: a 3-cycle where no pair
    // is mutually blocked — only the graph walk can see it.
    let (msg, elapsed) = panic_message_and_elapsed(|| {
        run_threads_with_timeout(3, Duration::from_secs(30), |c| {
            let prev = (c.rank() + 2) % 3;
            let _ = c.recv_bytes(prev, 5);
        });
    });
    assert_eq!(
        msg,
        "deadlock detected: rank 0 waits on rank 2 (tag 0x5) -> \
         rank 2 waits on rank 1 (tag 0x5) -> rank 1 waits on rank 0 (tag 0x5)"
    );
    assert!(
        elapsed < Duration::from_secs(1),
        "detection took {elapsed:?}, budget is < 1s"
    );
}

#[test]
fn rank_stalled_behind_a_cycle_fails_fast_too() {
    // Rank 2 is not part of the 0<->1 cycle, just blocked on rank 0.
    // Poison propagation (or its own walk reaching the cycle) must fail
    // it fast as well — the whole run ends in well under a second even
    // though every receive timeout is 30 s.
    let (msg, elapsed) = panic_message_and_elapsed(|| {
        run_threads_with_timeout(3, Duration::from_secs(30), |c| match c.rank() {
            0 => {
                let _ = c.recv_bytes(1, 3);
            }
            1 => {
                let _ = c.recv_bytes(0, 3);
            }
            _ => {
                let _ = c.recv_bytes(0, 4);
            }
        });
    });
    assert!(
        msg.contains("rank 0 waits on rank 1 (tag 0x3) -> rank 1 waits on rank 0 (tag 0x3)"),
        "unexpected message: {msg}"
    );
    assert!(
        elapsed < Duration::from_secs(1),
        "stalled rank held the run for {elapsed:?}"
    );
}

#[test]
fn waiting_on_a_finished_rank_is_a_dead_peer_not_a_hang() {
    // Rank 1 exits without ever sending: rank 0's message can never
    // arrive and the detector says so by name.
    let (msg, elapsed) = panic_message_and_elapsed(|| {
        run_threads_with_timeout(2, Duration::from_secs(30), |c| {
            if c.rank() == 0 {
                let _ = c.recv_bytes(1, 9);
            }
        });
    });
    assert!(
        msg.contains("rank 0 waits on rank 1 (tag 0x9) but rank 1 has already finished"),
        "unexpected message: {msg}"
    );
    assert!(elapsed < Duration::from_secs(1), "took {elapsed:?}");
}

#[test]
fn clean_exchange_patterns_are_undisturbed() {
    // Negative control: a PT-style neighbour exchange (even/odd pairing,
    // lower rank sends first) plus collectives — exactly the traffic the
    // detector watches in production runs — completes with correct data.
    let out = run_threads(4, |c| {
        let me = c.rank();
        let mut acc = Vec::new();
        for phase in 0..2usize {
            let partner = if (me + phase) % 2 == 0 {
                me.checked_add(1).filter(|&p| p < 4)
            } else {
                me.checked_sub(1)
            };
            if let Some(p) = partner {
                let got = if me < p {
                    c.send_bytes(p, 7, &[me as u8]);
                    c.recv_bytes(p, 7)
                } else {
                    let got = c.recv_bytes(p, 7);
                    c.send_bytes(p, 7, &[me as u8]);
                    got
                };
                acc.push(got[0]);
            }
            c.barrier();
        }
        let sum = c.allreduce_f64(&[me as f64], ReduceOp::Sum)[0];
        (acc, sum)
    });
    // Phase 0 pairs (0,1) (2,3); phase 1 pairs (1,2), ranks 0 and 3 idle.
    assert_eq!(out[0].0, vec![1]);
    assert_eq!(out[1].0, vec![0, 2]);
    assert_eq!(out[2].0, vec![3, 1]);
    assert_eq!(out[3].0, vec![2]);
    for (_, sum) in &out {
        assert_eq!(*sum, 6.0);
    }
}

#[test]
fn detector_tolerates_slow_but_live_senders() {
    // A sender that dawdles 3 wait slices before sending must NOT be
    // flagged: it is Running the whole time, so no walk can conclude.
    let out = run_threads(2, |c| {
        if c.rank() == 0 {
            std::thread::sleep(Duration::from_millis(80));
            c.send_bytes(1, 2, &[42]);
            0
        } else {
            c.recv_bytes(0, 2)[0]
        }
    });
    assert_eq!(out[1], 42);
}

#[test]
fn collective_after_peer_panic_fails_fast() {
    // Rank 1 dies before its barrier; rank 0 blocks inside the
    // collective's internal receive and must get a dead-peer diagnosis
    // (reserved internal tag) instead of the 30 s timeout.
    let (msg, elapsed) = panic_message_and_elapsed(|| {
        run_threads_with_timeout(2, Duration::from_secs(30), |c| {
            if c.rank() == 1 {
                panic!("rank 1 aborts before the barrier");
            }
            c.barrier();
        });
    });
    assert!(
        msg.contains("rank 1 aborts before the barrier")
            || (msg.contains("rank 0 waits on rank 1") && msg.contains("panicked")),
        "unexpected message: {msg}"
    );
    assert!(elapsed < Duration::from_secs(1), "took {elapsed:?}");
}
