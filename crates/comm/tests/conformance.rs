//! Backend conformance: misused receives must die loudly and uniformly.
//!
//! `Communicator::recv_bytes` with an out-of-range `src` or a reserved
//! (collective) tag is always a harness bug, never valid traffic. Each
//! backend must panic — not hang, not return garbage — and the panic
//! message must carry enough context to debug a multi-rank run: the
//! receiving rank, the requested source, and the tag. This suite pins
//! that contract for every backend so a new one can't regress it.

use qmc_comm::{run_threads, Communicator, MachineModel, SerialComm, COLLECTIVE_TAG_BASE};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Run `f`, which must panic, and return its panic message.
fn panic_message<F: FnOnce()>(f: F) -> String {
    let err = catch_unwind(AssertUnwindSafe(f)).expect_err("call was expected to panic");
    if let Some(s) = err.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = err.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        panic!("panic payload was not a string");
    }
}

fn assert_src_message(msg: &str, me: usize, src: usize) {
    assert!(
        msg.contains(&format!("rank {me}")),
        "missing receiving rank in: {msg}"
    );
    assert!(
        msg.contains(&format!("src={src}")),
        "missing requested src in: {msg}"
    );
    assert!(
        msg.contains("src out of range"),
        "wrong diagnosis in: {msg}"
    );
}

fn assert_tag_message(msg: &str, me: usize) {
    assert!(
        msg.contains(&format!("rank {me}")),
        "missing receiving rank in: {msg}"
    );
    assert!(
        msg.contains("reserved for collectives"),
        "wrong diagnosis in: {msg}"
    );
}

#[test]
fn serial_recv_src_out_of_range_panics_with_context() {
    let msg = panic_message(|| {
        let mut c = SerialComm::new();
        let _ = c.recv_bytes(3, 1);
    });
    assert_src_message(&msg, 0, 3);
}

#[test]
fn serial_recv_reserved_tag_panics_with_context() {
    let msg = panic_message(|| {
        let mut c = SerialComm::new();
        let _ = c.recv_bytes(0, COLLECTIVE_TAG_BASE + 7);
    });
    assert_tag_message(&msg, 0);
}

#[test]
fn serial_recv_timeout_checks_args_too() {
    let msg = panic_message(|| {
        let mut c = SerialComm::new();
        let _ = c.recv_bytes_timeout(9, 1, std::time::Duration::from_millis(1));
    });
    assert_src_message(&msg, 0, 9);
}

#[test]
fn thread_recv_src_out_of_range_panics_with_context() {
    // Catch inside the rank closure so the original message survives the
    // thread join (which would otherwise rewrap it).
    let msgs = run_threads(2, |c| {
        panic_message(AssertUnwindSafe(|| {
            let _ = c.recv_bytes(5, 1);
        }))
    });
    for (me, msg) in msgs.iter().enumerate() {
        assert_src_message(msg, me, 5);
    }
}

#[test]
fn thread_recv_reserved_tag_panics_with_context() {
    let msgs = run_threads(2, |c| {
        panic_message(AssertUnwindSafe(|| {
            let _ = c.recv_bytes(0, COLLECTIVE_TAG_BASE);
        }))
    });
    for (me, msg) in msgs.iter().enumerate() {
        assert_tag_message(msg, me);
    }
}

#[test]
fn thread_recv_timeout_checks_args_too() {
    let msgs = run_threads(2, |c| {
        panic_message(AssertUnwindSafe(|| {
            let _ = c.recv_bytes_timeout(7, 1, std::time::Duration::from_millis(1));
        }))
    });
    for (me, msg) in msgs.iter().enumerate() {
        assert_src_message(msg, me, 7);
    }
}

#[test]
fn model_recv_src_out_of_range_panics_with_context() {
    let reports = qmc_comm::run_model(2, MachineModel::ideal(2), |c| {
        let me = c.rank();
        let msg = panic_message(AssertUnwindSafe(|| {
            let _ = c.recv_bytes(4, 1);
        }));
        assert_src_message(&msg, me, 4);
        true
    });
    assert!(reports.iter().all(|r| r.result));
}

#[test]
fn model_recv_reserved_tag_panics_with_context() {
    let reports = qmc_comm::run_model(2, MachineModel::ideal(2), |c| {
        let me = c.rank();
        let msg = panic_message(AssertUnwindSafe(|| {
            let _ = c.recv_bytes(0, COLLECTIVE_TAG_BASE + 1);
        }));
        assert_tag_message(&msg, me);
        true
    });
    assert!(reports.iter().all(|r| r.result));
}
