//! TCP frame transport: length-prefixed, CRC-guarded message framing.
//!
//! The job server (`qmc-serve`) talks to clients over TCP. TCP is a byte
//! stream, so this module supplies the message boundary discipline the
//! rest of the workspace already uses on disk (`qmc-ckpt`): every frame
//! is
//!
//! ```text
//! "QFRM" | u32 LE payload length | payload bytes | u32 LE CRC-32(payload)
//! ```
//!
//! The pure encode/parse half ([`encode_frame`] / [`read_frame`]) works
//! on any `Read`, so the adversarial tests run on in-memory cursors
//! without sockets. The connected half ([`FrameConn`] / [`FrameListener`])
//! wraps `TcpStream`/`TcpListener` with the same discipline plus
//! timeouts.
//!
//! Design rules, shared with the checkpoint format:
//! * the length prefix is validated against a caller-supplied cap
//!   *before* any allocation, so a hostile 4 GiB length cannot OOM the
//!   server;
//! * the CRC covers the payload, so a flipped bit is a decode error, not
//!   undefined behavior downstream;
//! * a clean EOF on a frame boundary is [`FrameError::Closed`] (normal
//!   hangup), while EOF mid-frame is [`FrameError::Truncated`].
//!
//! No wall-clock reads here: blocking behavior is controlled through
//! socket read timeouts and non-blocking accepts, keeping timing policy
//! out of the transport.

use crate::crc::crc32;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Magic prefix of every frame on the wire.
pub const FRAME_MAGIC: [u8; 4] = *b"QFRM";

/// Default cap on a single frame's payload (16 MiB). Callers that know
/// their messages are small should pass something much tighter.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Everything that can go wrong reading one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The 4-byte magic was wrong: the peer is not speaking this protocol.
    BadMagic([u8; 4]),
    /// The length prefix exceeds the configured cap; rejected before
    /// allocating.
    TooLarge {
        /// Length the peer claimed.
        len: usize,
        /// Cap the reader was configured with.
        max: usize,
    },
    /// Payload CRC mismatch — the frame was corrupted in flight.
    BadCrc,
    /// The stream ended mid-frame.
    Truncated,
    /// The peer closed the connection cleanly on a frame boundary.
    Closed,
    /// The configured read timeout elapsed *before any byte of a frame*
    /// arrived — retryable: the stream is still frame-aligned. (A
    /// timeout mid-frame is `Truncated` instead: partial reads are
    /// discarded, so the stream cannot be resynchronized.)
    TimedOut,
    /// Underlying socket error (message kept, source type erased so the
    /// error stays `Clone`/`PartialEq` for tests).
    Io(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame length {len} exceeds cap {max}")
            }
            FrameError::BadCrc => write!(f, "frame CRC mismatch"),
            FrameError::Truncated => write!(f, "stream truncated mid-frame"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::TimedOut => write!(f, "read timed out on a frame boundary"),
            FrameError::Io(e) => write!(f, "frame io error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::UnexpectedEof => FrameError::Truncated,
            _ => FrameError::Io(e.to_string()),
        }
    }
}

/// Encode one payload as a wire frame (magic, LE length, payload, CRC).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 12);
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Read exactly `buf.len()` bytes; `eof_is_close` maps EOF *before the
/// first byte* to `Closed` (frame boundary) instead of `Truncated`.
fn read_exact_or(r: &mut impl Read, buf: &mut [u8], eof_is_close: bool) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 && eof_is_close {
                    FrameError::Closed
                } else {
                    FrameError::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Retryable only when the frame hasn't started; a
                // timeout mid-frame loses the buffered prefix, so the
                // stream can't be realigned.
                return Err(if filled == 0 && eof_is_close {
                    FrameError::TimedOut
                } else {
                    FrameError::Truncated
                });
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Read one frame from `r`, returning its payload. Rejects bad magic,
/// lengths above `max`, truncation, and CRC mismatches; a clean EOF on
/// the frame boundary is [`FrameError::Closed`].
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Vec<u8>, FrameError> {
    let mut head = [0u8; 8];
    read_exact_or(r, &mut head, true)?;
    let magic: [u8; 4] = head[..4].try_into().expect("4-byte slice");
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let len = u32::from_le_bytes(head[4..8].try_into().expect("4-byte slice")) as usize;
    if len > max {
        // Reject before allocating: the length is attacker-controlled.
        return Err(FrameError::TooLarge { len, max });
    }
    let mut payload = vec![0u8; len];
    read_exact_or(r, &mut payload, false)?;
    let mut crc_bytes = [0u8; 4];
    read_exact_or(r, &mut crc_bytes, false)?;
    if u32::from_le_bytes(crc_bytes) != crc32(&payload) {
        return Err(FrameError::BadCrc);
    }
    Ok(payload)
}

/// A connected, framed TCP endpoint.
pub struct FrameConn {
    stream: TcpStream,
    max_frame: usize,
    peer: String,
}

impl FrameConn {
    /// Connect to `addr` with the default frame cap.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<FrameConn> {
        let stream = TcpStream::connect(addr)?;
        Ok(FrameConn::from_stream(stream))
    }

    /// Wrap an accepted/connected stream. Disables Nagle so small
    /// request/response frames are not batched behind each other.
    pub fn from_stream(stream: TcpStream) -> FrameConn {
        let _ = stream.set_nodelay(true);
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".to_string());
        FrameConn {
            stream,
            max_frame: MAX_FRAME_BYTES,
            peer,
        }
    }

    /// Override the per-frame payload cap for this connection.
    pub fn set_max_frame(&mut self, max: usize) {
        self.max_frame = max;
    }

    /// Peer address label for error context ("host:port" when known).
    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// Bound how long a single [`FrameConn::recv`] may block.
    /// `None` blocks indefinitely.
    pub fn set_recv_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(dur)
    }

    /// Send one payload as a frame.
    pub fn send(&mut self, payload: &[u8]) -> Result<(), FrameError> {
        let frame = encode_frame(payload);
        self.stream.write_all(&frame)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Receive one frame's payload (blocking, subject to the configured
    /// read timeout).
    pub fn recv(&mut self) -> Result<Vec<u8>, FrameError> {
        read_frame(&mut self.stream, self.max_frame)
    }

    /// A second handle to the same socket — used to shut a blocked
    /// reader down from another thread.
    pub fn try_clone(&self) -> io::Result<FrameConn> {
        Ok(FrameConn {
            stream: self.stream.try_clone()?,
            max_frame: self.max_frame,
            peer: self.peer.clone(),
        })
    }

    /// Shut both directions down; a peer blocked in `recv` observes
    /// [`FrameError::Closed`].
    pub fn shutdown(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// A framed TCP listener with non-blocking accept, so an accept loop can
/// poll a stop flag instead of parking forever in the kernel.
pub struct FrameListener {
    listener: TcpListener,
}

impl FrameListener {
    /// Bind to `addr` (use port 0 for an ephemeral port in tests).
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<FrameListener> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(FrameListener { listener })
    }

    /// The bound address (reports the kernel-chosen port after a port-0
    /// bind).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Try to accept one connection. `Ok(None)` means no pending
    /// connection right now — the caller should sleep briefly and
    /// re-check its stop flag.
    pub fn accept(&self) -> io::Result<Option<FrameConn>> {
        match self.listener.accept() {
            Ok((stream, _)) => {
                // Accepted sockets inherit non-blocking on some
                // platforms; frames want blocking reads.
                stream.set_nonblocking(false)?;
                Ok(Some(FrameConn::from_stream(stream)))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip() {
        let payload = b"hello frames";
        let wire = encode_frame(payload);
        let mut cur = Cursor::new(wire);
        assert_eq!(read_frame(&mut cur, MAX_FRAME_BYTES).unwrap(), payload);
        // Stream now at clean EOF: next read reports Closed.
        assert_eq!(
            read_frame(&mut cur, MAX_FRAME_BYTES).unwrap_err(),
            FrameError::Closed
        );
    }

    #[test]
    fn empty_payload_round_trips() {
        let wire = encode_frame(b"");
        let mut cur = Cursor::new(wire);
        assert_eq!(read_frame(&mut cur, 16).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn back_to_back_frames() {
        let mut wire = encode_frame(b"one");
        wire.extend_from_slice(&encode_frame(b"two"));
        let mut cur = Cursor::new(wire);
        assert_eq!(read_frame(&mut cur, 64).unwrap(), b"one");
        assert_eq!(read_frame(&mut cur, 64).unwrap(), b"two");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut wire = encode_frame(b"payload");
        wire[0] = b'X';
        let err = read_frame(&mut Cursor::new(wire), 64).unwrap_err();
        assert!(matches!(err, FrameError::BadMagic(_)), "{err}");
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        // Claim a ~4 GiB payload; the reader must reject on the prefix
        // alone rather than trying to allocate it.
        let mut wire = Vec::new();
        wire.extend_from_slice(&FRAME_MAGIC);
        wire.extend_from_slice(&0xFFFF_FFF0u32.to_le_bytes());
        let err = read_frame(&mut Cursor::new(wire), 1024).unwrap_err();
        assert_eq!(
            err,
            FrameError::TooLarge {
                len: 0xFFFF_FFF0,
                max: 1024
            }
        );
    }

    #[test]
    fn truncation_at_every_cut_is_detected() {
        let wire = encode_frame(b"some payload worth guarding");
        for cut in 1..wire.len() {
            let err = read_frame(&mut Cursor::new(wire[..cut].to_vec()), 64).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated),
                "cut at {cut}: got {err}"
            );
        }
    }

    /// Serves a byte-stream prefix, then fails every further read with
    /// the given error kind forever — a peer that stalled (or died
    /// behind a dropped link) at an arbitrary wire position, as seen
    /// through a socket read timeout.
    struct StallAfter {
        data: Cursor<Vec<u8>>,
        kind: io::ErrorKind,
        /// Serve at most this many bytes per read (1 exercises the
        /// re-fill loop inside a single `read_exact_or` call).
        chunk: usize,
    }

    impl Read for StallAfter {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let want = buf.len().min(self.chunk);
            match self.data.read(&mut buf[..want])? {
                0 => Err(io::Error::new(self.kind, "simulated read timeout")),
                n => Ok(n),
            }
        }
    }

    #[test]
    fn timeout_at_every_cut_is_classified_by_frame_alignment() {
        // The retryability contract: a timeout is `TimedOut` (retryable,
        // stream still frame-aligned) only when *no byte* of the frame
        // has arrived. A peer stalling at any later cut — inside the
        // header, between header and payload, inside the payload or the
        // CRC — must be `Truncated` (non-retryable), or a retrying
        // client would re-read a misaligned stream.
        let wire = encode_frame(b"some payload worth guarding");
        for kind in [io::ErrorKind::WouldBlock, io::ErrorKind::TimedOut] {
            for chunk in [usize::MAX, 1] {
                for cut in 0..=wire.len() {
                    let mut r = StallAfter {
                        data: Cursor::new(wire[..cut].to_vec()),
                        kind,
                        chunk,
                    };
                    let res = read_frame(&mut r, 64);
                    let label = format!("cut {cut}, kind {kind:?}, chunk {chunk}");
                    match cut {
                        0 => assert_eq!(res.unwrap_err(), FrameError::TimedOut, "{label}"),
                        c if c == wire.len() => {
                            assert_eq!(res.unwrap(), b"some payload worth guarding", "{label}");
                        }
                        _ => assert_eq!(res.unwrap_err(), FrameError::Truncated, "{label}"),
                    }
                }
            }
        }
    }

    #[test]
    fn timeout_between_header_and_payload_is_truncated() {
        // The boundary the retry loops get wrong if misclassified: the
        // full 8-byte header arrived, then the peer died before the
        // first payload byte. Pin it by name, not just via the sweep.
        let wire = encode_frame(b"boundary");
        let mut r = StallAfter {
            data: Cursor::new(wire[..8].to_vec()),
            kind: io::ErrorKind::WouldBlock,
            chunk: usize::MAX,
        };
        assert_eq!(read_frame(&mut r, 64).unwrap_err(), FrameError::Truncated);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let wire = encode_frame(b"bit flip target");
        for byte in 0..wire.len() {
            for bit in 0..8 {
                let mut bad = wire.clone();
                bad[byte] ^= 1 << bit;
                let res = read_frame(&mut Cursor::new(bad), 64);
                assert!(res.is_err(), "flip at byte {byte} bit {bit} was accepted");
            }
        }
    }

    #[test]
    fn socket_round_trip_and_shutdown() {
        let listener = FrameListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = FrameConn::connect(addr).unwrap();

        // Non-blocking accept: poll until the pending connection shows up.
        let mut server = loop {
            if let Some(c) = listener.accept().unwrap() {
                break c;
            }
            std::thread::sleep(Duration::from_millis(1));
        };

        client.send(b"ping").unwrap();
        assert_eq!(server.recv().unwrap(), b"ping");
        server.send(b"pong").unwrap();
        assert_eq!(client.recv().unwrap(), b"pong");

        // Shutting the server side down unblocks the client with Closed.
        server.shutdown();
        assert_eq!(client.recv().unwrap_err(), FrameError::Closed);
    }
}
