//! Runtime deadlock detection for the thread-backed world.
//!
//! Every `ThreadComm` receive that blocks registers the rank as
//! `Waiting { src, tag, epoch }` in its own mailbox (under the same
//! mutex as the message queues — see `mailbox.rs` for why that coupling
//! matters). While blocked, the rank periodically walks the wait-for
//! graph: rank *r* waiting on source *s* is an edge *r → s*. A cycle of
//! `Waiting` ranks is a candidate deadlock.
//!
//! One snapshot is not proof — the walk is not atomic, and a rank can be
//! mid-handoff between "message deposited" and "woke up". Soundness
//! comes from *epoch stability*: a second walk that observes the exact
//! same cycle with the exact same epochs proves every member was
//! continuously blocked in between, because (a) a matching deposit flips
//! the waiter to `Running` under the mailbox lock, and (b) every
//! re-registration bumps the epoch. Stable `Waiting { epoch }` therefore
//! means "queue stayed empty and the rank never woke" — the cycle is a
//! genuine deadlock under every schedule.
//!
//! The detecting rank panics with the canonical cycle (rotated to start
//! at the lowest rank, so every detector reports the same text) and
//! poisons the world; other blocked ranks pick the poison up on their
//! next wait slice and fail fast too, instead of riding out the full
//! receive timeout.

use crate::mailbox::Mailbox;
use std::sync::Mutex;

/// What a rank is doing right now, as visible to the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RankState {
    /// Computing, sending, or between receives.
    Running,
    /// Blocked in a receive for `(src, tag)`; `epoch` increments on
    /// every registration so stale observations can be told apart.
    Waiting { src: usize, tag: u32, epoch: u64 },
    /// The rank's closure returned (or unwound, when `panicked`).
    Done { panicked: bool },
}

/// One wait-for edge with the epoch at which it was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct WaitLink {
    pub rank: usize,
    pub src: usize,
    pub tag: u32,
    pub epoch: u64,
}

/// What the wait-for walk concluded. Compared for equality across two
/// walks to confirm stability before anyone panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Diagnosis {
    /// A cycle of mutually waiting ranks (cycle members only, in walk
    /// order starting from the lowest rank in the cycle).
    Cycle(Vec<WaitLink>),
    /// A rank waits on a peer that has already finished and can never
    /// send again.
    DeadPeer { link: WaitLink, panicked: bool },
}

impl Diagnosis {
    /// Human-readable verdict; this exact text becomes the panic payload
    /// (and the world poison), so tests can assert on it.
    pub fn render(&self) -> String {
        match self {
            Diagnosis::Cycle(links) => {
                let chain = links
                    .iter()
                    .map(|l| format!("rank {} waits on rank {} (tag {:#x})", l.rank, l.src, l.tag))
                    .collect::<Vec<_>>()
                    .join(" -> ");
                format!("deadlock detected: {chain}")
            }
            Diagnosis::DeadPeer { link, panicked } => format!(
                "rank {} waits on rank {} (tag {:#x}) but rank {} has already {} — \
                 the message can never arrive",
                link.rank,
                link.src,
                link.tag,
                link.src,
                if *panicked { "panicked" } else { "finished" },
            ),
        }
    }
}

/// Walk the wait-for graph starting at `me`. Returns `None` while no
/// conclusion can be drawn (some rank on the path is still running).
///
/// The caller must walk **twice** and only act when both walks return
/// the same diagnosis — see the module docs for the stability argument.
pub(crate) fn diagnose(boxes: &[Mailbox], me: usize) -> Option<Diagnosis> {
    let mut chain: Vec<WaitLink> = Vec::new();
    let mut cur = me;
    loop {
        match boxes[cur].wait_state() {
            RankState::Running => return None,
            RankState::Done { panicked } => {
                // The *previous* link in the chain waits on a finished
                // rank. (cur == me can't be Done — we are running it.)
                let link = *chain.last()?;
                return Some(Diagnosis::DeadPeer { link, panicked });
            }
            RankState::Waiting { src, tag, epoch } => {
                if let Some(pos) = chain.iter().position(|l| l.rank == cur) {
                    // chain[pos..] is the cycle; anything before it is a
                    // stalled tail feeding into it (still doomed, and the
                    // cycle itself is what every detector should report).
                    let mut cycle = chain[pos..].to_vec();
                    // Canonical form: rotate to start at the lowest rank
                    // so all ranks render the identical message.
                    let min = cycle
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, l)| l.rank)
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    cycle.rotate_left(min);
                    return Some(Diagnosis::Cycle(cycle));
                }
                chain.push(WaitLink {
                    rank: cur,
                    src,
                    tag,
                    epoch,
                });
                cur = src;
            }
        }
    }
}

/// World-wide "a rank has diagnosed a deadlock" flag. Blocked ranks
/// check it every wait slice so one detection fails the whole run fast.
#[derive(Default)]
pub(crate) struct Poison {
    msg: Mutex<Option<String>>,
}

impl Poison {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&self, msg: &str) {
        let mut slot = self.msg.lock().unwrap_or_else(|e| e.into_inner());
        slot.get_or_insert_with(|| msg.to_owned());
    }

    pub fn get(&self) -> Option<String> {
        self.msg.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Clear the poison between elastic respawn rounds.
    ///
    /// Only the world supervisor may call this, and only after every
    /// rank thread of the poisoned round has exited — first-writer-wins
    /// still holds *within* a round, which is all the detector's
    /// soundness argument needs.
    pub fn clear(&self) {
        *self.msg.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn waiting(boxes: &[Mailbox], rank: usize, src: usize, tag: u32) {
        assert!(boxes[rank].register_waiting(src, tag).is_none());
    }

    #[test]
    fn all_running_is_no_diagnosis() {
        let boxes: Vec<Mailbox> = (0..3).map(|_| Mailbox::new()).collect();
        assert_eq!(diagnose(&boxes, 0), None);
    }

    #[test]
    fn chain_into_running_rank_is_no_diagnosis() {
        let boxes: Vec<Mailbox> = (0..3).map(|_| Mailbox::new()).collect();
        waiting(&boxes, 0, 1, 5);
        waiting(&boxes, 1, 2, 5);
        // rank 2 still running: no verdict yet.
        assert_eq!(diagnose(&boxes, 0), None);
    }

    #[test]
    fn two_cycle_is_detected_and_canonical() {
        let boxes: Vec<Mailbox> = (0..2).map(|_| Mailbox::new()).collect();
        waiting(&boxes, 0, 1, 7);
        waiting(&boxes, 1, 0, 7);
        let d0 = diagnose(&boxes, 0).expect("cycle");
        let d1 = diagnose(&boxes, 1).expect("cycle");
        // Both ranks must render the identical canonical message.
        assert_eq!(d0.render(), d1.render());
        assert_eq!(
            d0.render(),
            "deadlock detected: rank 0 waits on rank 1 (tag 0x7) -> \
             rank 1 waits on rank 0 (tag 0x7)"
        );
    }

    #[test]
    fn stalled_tail_reports_the_cycle_not_itself() {
        let boxes: Vec<Mailbox> = (0..3).map(|_| Mailbox::new()).collect();
        // 2 -> 0, 0 <-> 1 cycle.
        waiting(&boxes, 2, 0, 3);
        waiting(&boxes, 0, 1, 3);
        waiting(&boxes, 1, 0, 3);
        let d2 = diagnose(&boxes, 2).expect("cycle behind the stall");
        let Diagnosis::Cycle(links) = &d2 else {
            panic!("expected cycle, got {d2:?}");
        };
        assert_eq!(links.iter().map(|l| l.rank).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn dead_peer_is_reported_with_finish_kind() {
        let boxes: Vec<Mailbox> = (0..2).map(|_| Mailbox::new()).collect();
        waiting(&boxes, 0, 1, 9);
        boxes[1].set_done(false);
        let d = diagnose(&boxes, 0).expect("dead peer");
        assert!(d.render().contains("rank 1 has already finished"), "{d:?}");
        boxes[1].set_done(true);
        let d = diagnose(&boxes, 0).expect("dead peer");
        assert!(d.render().contains("rank 1 has already panicked"), "{d:?}");
    }

    #[test]
    fn epoch_instability_changes_the_diagnosis() {
        let boxes: Vec<Mailbox> = (0..2).map(|_| Mailbox::new()).collect();
        waiting(&boxes, 0, 1, 7);
        waiting(&boxes, 1, 0, 7);
        let first = diagnose(&boxes, 0).expect("cycle");
        // Rank 1 wakes and re-blocks on the same (src, tag): the shape is
        // identical but the epoch differs, so the confirm pass must not
        // treat the two walks as equal.
        boxes[1].set_running();
        waiting(&boxes, 1, 0, 7);
        let second = diagnose(&boxes, 0).expect("cycle");
        assert_ne!(first, second);
        assert_eq!(first.render(), second.render());
    }

    #[test]
    fn poison_is_first_writer_wins() {
        let p = Poison::new();
        assert_eq!(p.get(), None);
        p.set("first");
        p.set("second");
        assert_eq!(p.get().as_deref(), Some("first"));
    }

    #[test]
    fn poison_clear_opens_a_fresh_round() {
        let p = Poison::new();
        p.set("round 0 died");
        p.clear();
        assert_eq!(p.get(), None);
        p.set("round 1 died");
        assert_eq!(p.get().as_deref(), Some("round 1 died"));
    }
}
